//! Anomaly detection with WSAF flow samples (paper §III-B's motivation
//! for keeping mice samples): entropy collapse, super-spreaders (port
//! scans/worms) and DDoS victims, all as pure queries over the table.
//!
//! ```text
//! cargo run --release --example anomaly_scan
//! ```

use instameasure::core::apps::{
    flow_size_entropy, normalized_entropy, top_fanin_destinations, top_fanout_sources,
};
use instameasure::core::{InstaMeasure, InstaMeasureConfig};
use instameasure::packet::{FlowKey, PacketRecord, Protocol};
use instameasure::traffic::{merge_records, SyntheticTraceBuilder};

fn ip(a: u8, b: u8, c: u8, d: u8) -> [u8; 4] {
    [a, b, c, d]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Benign background traffic.
    let background = SyntheticTraceBuilder::new()
        .num_flows(8_000)
        .max_flow_size(20_000)
        .duration_secs(2.0)
        .seed(11)
        .build()
        .records;

    // Attack 1: a scanner sweeping 200 destinations (super-spreader).
    let mut scan = Vec::new();
    for d in 0..200u8 {
        for p in 0..400u64 {
            let key = FlowKey::new(ip(203, 0, 113, 66), ip(10, 40, d, 1), 31337, 80, Protocol::Tcp);
            scan.push(PacketRecord::new(
                key,
                60,
                500_000_000 + u64::from(d) * 1_000_000 + p * 2_000,
            ));
        }
    }

    // Attack 2: 300 bots flooding one victim (DDoS).
    let mut ddos = Vec::new();
    for b in 0..=255u8 {
        for p in 0..300u64 {
            let key =
                FlowKey::new(ip(198, 51, b, 7), ip(192, 0, 2, 80), 40_000, 443, Protocol::Udp);
            ddos.push(PacketRecord::new(
                key,
                1400,
                1_000_000_000 + u64::from(b) * 500_000 + p * 3_000,
            ));
        }
    }

    let records = merge_records(vec![background, scan, ddos]);
    let mut im = InstaMeasure::new(InstaMeasureConfig::default());
    for pkt in &records {
        im.process(pkt);
    }

    println!("measured {} packets into {} WSAF entries", records.len(), im.wsaf().len());
    println!(
        "flow-size entropy: {:.2} bits (normalized {:.3})",
        flow_size_entropy(im.wsaf()),
        normalized_entropy(im.wsaf())
    );

    println!("\ntop fan-out sources (super-spreader candidates):");
    for f in top_fanout_sources(im.wsaf(), 3) {
        println!(
            "  {}.{}.{}.{}  -> {} distinct destinations ({} pkts sampled)",
            f.host[0], f.host[1], f.host[2], f.host[3], f.distinct_peers, f.packets
        );
    }

    println!("\ntop fan-in destinations (DDoS victim candidates):");
    for f in top_fanin_destinations(im.wsaf(), 3) {
        println!(
            "  {}.{}.{}.{}  <- {} distinct sources ({} pkts sampled)",
            f.host[0], f.host[1], f.host[2], f.host[3], f.distinct_peers, f.packets
        );
    }

    let scanner = top_fanout_sources(im.wsaf(), 1)[0];
    let victim = top_fanin_destinations(im.wsaf(), 1)[0];
    assert_eq!(scanner.host, ip(203, 0, 113, 66), "scanner found");
    assert_eq!(victim.host, ip(192, 0, 2, 80), "victim found");
    println!("\nscanner and victim correctly identified from WSAF samples alone.");
    Ok(())
}
