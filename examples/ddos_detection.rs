//! DDoS / heavy-hitter detection scenario (the paper's headline use case).
//!
//! Injects constant-rate attack flows into background traffic and shows
//! how quickly InstaMeasure's saturation-based decoding flags them,
//! compared with a delegation-based (remote collector) design.
//!
//! ```text
//! cargo run --release --example ddos_detection
//! ```

use instameasure::core::heavy_hitter::{HeavyHitterDetector, HhMetric};
use instameasure::core::latency::{compare_detection_latency, DelegationParams};
use instameasure::core::InstaMeasureConfig;
use instameasure::sketch::SketchConfig;
use instameasure::traffic::attack::{attacker_key, constant_rate_flow};
use instameasure::traffic::{merge_records, SyntheticTraceBuilder};
use instameasure::wsaf::WsafConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = InstaMeasureConfig::default()
        .with_sketch(SketchConfig::builder().memory_bytes(32 * 1024).vector_bits(8).build()?)
        .with_wsaf(WsafConfig::builder().entries_log2(16).build()?);

    // Background: benign campus-style traffic.
    let background = SyntheticTraceBuilder::new()
        .num_flows(5_000)
        .max_flow_size(2_000)
        .duration_secs(2.0)
        .seed(3)
        .build()
        .records;

    // Scenario 1: three attackers at different rates, one detector.
    println!("== scenario 1: who gets flagged? ==");
    let mut streams = vec![background.clone()];
    for (id, kpps) in [(1u8, 50u64), (2, 120), (3, 5)] {
        streams.push(constant_rate_flow(attacker_key(id), kpps * 1000, 64, 0, 2_000_000_000));
    }
    let records = merge_records(streams);
    let mut detector = HeavyHitterDetector::new(cfg, HhMetric::Packets, 2_000.0);
    for pkt in &records {
        if let Some(d) = detector.process(pkt) {
            println!(
                "  detected {} at t={:.2} ms (estimate {:.0} pkts)",
                d.key,
                d.detected_at as f64 / 1e6,
                d.estimate
            );
        }
    }
    println!(
        "  attacker 3 (5 kpps, {} pkts total) flagged: {}",
        10_000,
        detector.detections().contains_key(&attacker_key(3))
    );

    // Scenario 2: detection-latency race at increasing attack rates.
    println!("\n== scenario 2: saturation vs delegation decoding ==");
    println!("  {:>9} {:>16} {:>16}", "kpps", "saturation_delay", "delegation_delay");
    for kpps in [10u64, 50, 130] {
        let attack = constant_rate_flow(attacker_key(9), kpps * 1000, 64, 0, 2_000_000_000);
        let records = merge_records(vec![background.clone(), attack]);
        let cmp = compare_detection_latency(
            &records,
            &attacker_key(9),
            500.0,
            cfg,
            DelegationParams::default(),
        );
        println!(
            "  {:>9} {:>13.2} ms {:>13.2} ms",
            kpps,
            cmp.saturation_delay_nanos().map_or(f64::NAN, |d| d as f64 / 1e6),
            cmp.delegation_delay_nanos().map_or(f64::NAN, |d| d as f64 / 1e6),
        );
    }
    println!("\nheavier attacks are caught faster; the collector round-trip never is.");
    Ok(())
}
