//! Trace-driven measurement through the real capture path.
//!
//! Writes a synthetic trace to a pcap file (valid Ethernet/IPv4/TCP/UDP
//! frames), reads it back through the libpcap-format reader and the header
//! parsers, and measures the recovered packet stream — the same path a
//! deployment tapping a mirror port would use.
//!
//! ```text
//! cargo run --release --example pcap_roundtrip [capture.pcap]
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};

use instameasure::core::{InstaMeasure, InstaMeasureConfig};
use instameasure::packet::pcap::{read_records, PcapWriter, TsResolution};
use instameasure::packet::synth::synthesize_frame;
use instameasure::sketch::SketchConfig;
use instameasure::traffic::SyntheticTraceBuilder;
use instameasure::wsaf::WsafConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        std::env::temp_dir().join("instameasure_example.pcap").display().to_string()
    });

    // 1. Generate a trace and write it as a pcap capture.
    let trace = SyntheticTraceBuilder::new()
        .num_flows(5_000)
        .max_flow_size(20_000)
        .duration_secs(2.0)
        .seed(21)
        .build();
    let mut writer = PcapWriter::new(BufWriter::new(File::create(&path)?), TsResolution::Nano)?;
    for pkt in &trace.records {
        writer.write_packet(pkt.ts_nanos, &synthesize_frame(pkt))?;
    }
    writer.into_inner()?;
    println!("wrote {} packets to {path}", trace.records.len());

    // 2. Read the capture back through the parser.
    let (records, skipped) = read_records(BufReader::new(File::open(&path)?))?;
    println!("read back {} packets ({skipped} unparseable)", records.len());
    assert_eq!(records.len(), trace.records.len());

    // 3. Measure the recovered stream.
    let cfg = InstaMeasureConfig::default()
        .with_sketch(SketchConfig::builder().memory_bytes(32 * 1024).vector_bits(8).build()?)
        .with_wsaf(WsafConfig::builder().entries_log2(16).build()?);
    let mut im = InstaMeasure::new(cfg);
    for pkt in &records {
        im.process(pkt);
    }

    println!("\ntop-5 flows measured from the capture:");
    for (key, truth) in trace.stats.truth.top_k(5, false) {
        let est = im.estimate_packets(&key);
        println!(
            "  {key}  true {truth}, est {est:.0} ({:+.2}%)",
            (est - truth as f64) / truth as f64 * 100.0
        );
    }

    std::fs::remove_file(&path).ok();
    Ok(())
}
