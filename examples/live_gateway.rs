//! Live gateway: the streaming daemon under concurrent remote taps.
//!
//! Boots the measurement daemon on loopback, streams a campus-like trace
//! into it from several pusher threads (each playing one remote tap), and
//! polls top-K from a separate operator connection while ingest is still
//! running — measuring the paper's headline metric, *detection latency*:
//! how long after an epoch starts until the true heaviest flow is already
//! visible at the top of the live top-K.
//!
//! ```text
//! cargo run --release --example live_gateway
//! ```

use std::time::{Duration, Instant};

use instameasure::core::InstaMeasureConfig;
use instameasure::service::server::{Server, ServiceConfig};
use instameasure::service::ServiceClient;
use instameasure::sketch::SketchConfig;
use instameasure::traffic::presets::campus_like;
use instameasure::wsaf::WsafConfig;

const TAPS: usize = 3;
const EPOCHS: u64 = 3;
const CHUNK: usize = 4_096;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ServiceConfig::builder()
        .addr("127.0.0.1:0")
        .workers(4)
        .batch_size(256)
        .per_worker(
            InstaMeasureConfig::default()
                .with_sketch(
                    SketchConfig::builder().memory_bytes(32 * 1024).vector_bits(8).build()?,
                )
                .with_wsaf(WsafConfig::builder().entries_log2(18).build()?),
        )
        .build()?;
    let server = Server::start(cfg)?;
    let addr = server.local_addr();
    println!("daemon listening on {addr} (4 workers)");

    let mut ops = ServiceClient::connect(addr)?;
    for epoch in 0..EPOCHS {
        // Each epoch gets a fresh trace; the heaviest true flow is the
        // detection target.
        let trace = campus_like(0.02, 41 + epoch);
        let (elephant, truth) = trace.stats.truth.top_k(1, false)[0];
        println!(
            "\nepoch {epoch}: {} packets / {} flows from {TAPS} taps; \
             target flow {elephant} ({truth} true packets)",
            trace.stats.packets, trace.stats.flows
        );

        let epoch_start = Instant::now();
        // Split the trace across the taps; each streams its share in
        // CHUNK-record ingest frames over its own connection.
        let shares: Vec<Vec<_>> = (0..TAPS)
            .map(|t| trace.records.iter().skip(t).step_by(TAPS).copied().collect())
            .collect();
        let pushers: Vec<_> = shares
            .into_iter()
            .map(|share| {
                std::thread::spawn(
                    move || -> Result<u64, Box<dyn std::error::Error + Send + Sync>> {
                        let mut tap = ServiceClient::connect(addr)?;
                        for chunk in share.chunks(CHUNK) {
                            tap.push_batch(chunk)?;
                        }
                        Ok(tap.finish()?)
                    },
                )
            })
            .collect();

        // Poll the live top-K from the operator connection until the true
        // elephant appears in it — ingest never pauses for these queries.
        let mut detected_after = None;
        let mut polls = 0u64;
        let poll_deadline = Instant::now() + Duration::from_secs(30);
        while detected_after.is_none() {
            polls += 1;
            let top = ops.top_k(5)?;
            if top.iter().any(|f| f.key == elephant) {
                detected_after = Some(epoch_start.elapsed());
            } else if Instant::now() > poll_deadline {
                return Err("elephant never surfaced in the live top-K".into());
            } else {
                std::thread::sleep(Duration::from_micros(200));
            }
        }

        let mut streamed = 0u64;
        for p in pushers {
            streamed += p.join().expect("pusher thread").map_err(|e| e.to_string())?;
        }
        let push_wall = epoch_start.elapsed();

        let detect = detected_after.expect("elephant detected");
        println!(
            "  detection latency: {:.2} ms ({polls} live top-K polls) — \
             elephant surfaced while the taps were still streaming",
            detect.as_secs_f64() * 1e3
        );
        println!(
            "  streamed {streamed} packets in {:.1} ms ({:.2} Mpps over TCP loopback)",
            push_wall.as_secs_f64() * 1e3,
            streamed as f64 / push_wall.as_secs_f64() / 1e6
        );
        let top = ops.top_k(5)?;
        println!("  live top-5 at epoch end:");
        for f in &top {
            let truth = trace.stats.truth.packets.get(&f.key).copied().unwrap_or(0);
            println!("    {}  est {:.0} pkts (true {truth})", f.key, f.packets);
        }

        let (new_epoch, retired) = ops.rotate()?;
        println!("  rotated to epoch {new_epoch}: {retired} flows retired");
    }

    let report = ops.shutdown()?;
    println!(
        "\ndrained and stopped: {} packets submitted, {} processed, {} connections over {} epochs",
        report.packets_submitted, report.packets_processed, report.connections, EPOCHS
    );
    assert_eq!(report.packets_submitted, report.packets_processed, "drain is packet-exact");
    server.join();
    Ok(())
}
