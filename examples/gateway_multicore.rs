//! Multi-core gateway monitoring (paper Fig. 5 / §IV-C).
//!
//! Replays a campus-like trace through the manager/worker pipeline:
//! packets are dispatched by popcount(source IP) to workers owning
//! exclusive FlowRegulators and WSAF shards; results are merged for
//! queries.
//!
//! ```text
//! cargo run --release --example gateway_multicore
//! ```

use instameasure::core::ingest::{run_multicore_pcap, IngestMode};
use instameasure::core::multicore::{run_multicore, MultiCoreConfig};
use instameasure::core::InstaMeasureConfig;
use instameasure::packet::pcap::{PcapWriter, TsResolution};
use instameasure::packet::synth::synthesize_frame;
use instameasure::sketch::SketchConfig;
use instameasure::telemetry::Instrumented;
use instameasure::traffic::presets::campus_like;
use instameasure::wsaf::WsafConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = campus_like(0.03, 42);
    println!(
        "campus-like trace: {} packets, {} flows over {:.1} virtual hours",
        trace.stats.packets,
        trace.stats.flows,
        trace.stats.duration_nanos as f64 / 1e8
    );

    let cfg = MultiCoreConfig::builder()
        .workers(4)
        .queue_capacity(8192)
        .batch_size(256)
        .per_worker(
            InstaMeasureConfig::default()
                .with_sketch(
                    SketchConfig::builder().memory_bytes(32 * 1024).vector_bits(8).build()?,
                )
                .with_wsaf(WsafConfig::builder().entries_log2(18).build()?),
        )
        .build()?;
    let (system, report) = run_multicore(&trace.records, &cfg);

    println!(
        "\nprocessed {} packets in {:.1} ms -> {:.2} Mpps end-to-end",
        report.packets,
        report.wall_nanos as f64 / 1e6,
        report.throughput_pps / 1e6
    );
    println!(
        "dispatch: {} batches of <= {} packets ({} partial flushes at end-of-stream)",
        report.batches_sent, cfg.batch_size, report.batch_flushes
    );
    println!("dispatch balance (max/min): {:.2}", report.imbalance());
    for (w, (pkts, stats)) in
        report.per_worker_packets.iter().zip(system.filter_stats()).enumerate()
    {
        println!(
            "  worker {w}: {pkts} packets, {:.2}% passed to its WSAF shard ({} entries)",
            stats.regulation_rate() * 100.0,
            system.shard(w).wsaf().len()
        );
    }

    println!("\nglobal top-5 flows (merged across shards):");
    for (key, pkts) in system.top_k_by_packets(5) {
        let truth = trace.stats.truth.packets.get(&key).copied().unwrap_or(0);
        println!("  {key}  est {pkts:.0} (true {truth})");
    }

    let max_queue = report.queue_depth_samples.iter().map(|&(_, d)| d).max().unwrap_or(0);
    println!("\npeak total queue depth observed: {max_queue} packets");

    // The unified telemetry view: run-level counters from the dispatch
    // loop merged with every shard's regulator + WSAF metrics.
    let mut snap = report.telemetry.clone();
    snap.merge(&system.telemetry());
    println!("\nmerged telemetry snapshot ({} metrics):", snap.len());
    print!("{}", snap.to_tsv());

    // Same trace again, but as a gateway would really see it: a pcap file
    // replayed through the zero-copy mmap ingest path straight into the
    // pipeline's recycled batches.
    let pcap_path =
        std::env::temp_dir().join(format!("instameasure_gateway_{}.pcap", std::process::id()));
    let mut w = PcapWriter::new(std::fs::File::create(&pcap_path)?, TsResolution::Nano)?;
    for pkt in &trace.records {
        w.write_packet(pkt.ts_nanos, &synthesize_frame(pkt))?;
    }
    w.into_inner()?;
    let (zc_system, zc_report, ingest) = run_multicore_pcap(&pcap_path, IngestMode::Mmap, &cfg)?;
    println!(
        "\nzero-copy pcap replay: {} packets in {:.1} ms -> {:.2} Mpps \
         ({} chunk fills, {} bytes mapped, {} copy fallbacks, {} frames skipped)",
        zc_report.packets,
        zc_report.wall_nanos as f64 / 1e6,
        zc_report.throughput_pps / 1e6,
        ingest.stats.chunk_fills,
        ingest.stats.bytes_mapped,
        ingest.stats.copy_fallbacks,
        ingest.skipped_frames
    );
    let direct: Vec<_> = system.top_k_by_packets(5);
    let replayed: Vec<_> = zc_system.top_k_by_packets(5);
    assert_eq!(direct, replayed, "pcap replay must reproduce the in-memory run exactly");
    println!("top-5 flows identical to the in-memory run — ingest is bit-faithful");
    std::fs::remove_file(&pcap_path).ok();
    Ok(())
}
