//! Quickstart: measure a synthetic Zipf trace and query per-flow results.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use instameasure::core::{InstaMeasure, InstaMeasureConfig};
use instameasure::sketch::SketchConfig;
use instameasure::traffic::SyntheticTraceBuilder;
use instameasure::wsaf::WsafConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A 20k-flow Zipf trace (stand-in for a real capture).
    let trace = SyntheticTraceBuilder::new()
        .num_flows(20_000)
        .zipf_alpha(1.05)
        .max_flow_size(50_000)
        .duration_secs(5.0)
        .seed(7)
        .build();
    println!(
        "trace: {} packets, {} flows, {:.1} s",
        trace.stats.packets,
        trace.stats.flows,
        trace.stats.duration_nanos as f64 / 1e9
    );

    // 2. An InstaMeasure instance: 128 KB FlowRegulator (32 KB L1) in
    //    front of a 2^18-entry in-DRAM WSAF.
    let cfg = InstaMeasureConfig::default()
        .with_sketch(SketchConfig::builder().memory_bytes(32 * 1024).vector_bits(8).build()?)
        .with_wsaf(WsafConfig::builder().entries_log2(18).build()?);
    let mut im = InstaMeasure::new(cfg);

    // 3. Feed the packet stream.
    for pkt in &trace.records {
        im.process(pkt);
    }
    let stats = im.filter_stats();
    println!(
        "regulation: {} packets in -> {} WSAF updates ({:.2}%)",
        stats.packets,
        stats.updates,
        stats.regulation_rate() * 100.0
    );

    // 4. Query the top-10 flows and compare against ground truth.
    println!("\n{:<46} {:>10} {:>12} {:>8}", "flow", "true_pkts", "est_pkts", "err");
    for (key, truth) in trace.stats.truth.top_k(10, false) {
        let est = im.estimate_packets(&key);
        println!(
            "{:<46} {:>10} {:>12.1} {:>7.2}%",
            key.to_string(),
            truth,
            est,
            (est - truth as f64).abs() / truth as f64 * 100.0
        );
    }

    // 5. Byte counting comes for free.
    let (biggest, true_bytes) = trace.stats.truth.top_k(1, true)[0];
    println!(
        "\nbiggest byte flow: {true_bytes} B true, {:.0} B estimated",
        im.estimate_bytes(&biggest)
    );
    Ok(())
}
