//! Deployment planning: which FlowRegulator configuration does a link
//! need? (The paper's §V-B margin discussion, operationalized.)
//!
//! ```text
//! cargo run --release --example deployment_planner
//! ```
//!
//! By default the DRAM rows use the paper's 80 ns random-access constant.
//! Pass `--profile PATH` (a profile written by `instameasure tune`) to
//! re-plan the DRAM rows against this host's *measured* latency instead:
//!
//! ```text
//! instameasure tune            # calibrates and caches the profile
//! cargo run --release --example deployment_planner -- --profile /tmp/instameasure-profile-v1.txt
//! ```

use instameasure::autotune::MachineProfile;
use instameasure::core::planner::{plan_regulator, plan_regulator_measured, Plan};
use instameasure::memmodel::MemoryTechnology;
use instameasure::traffic::presets::caida_like;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let profile =
        args.iter().position(|a| a == "--profile").and_then(|i| args.get(i + 1)).map(|path| {
            MachineProfile::load(std::path::Path::new(path)).unwrap_or_else(|e| {
                eprintln!("cannot load profile {path}: {e}");
                std::process::exit(2);
            })
        });

    // Workload sample: flow sizes from a prior measurement window.
    let trace = caida_like(0.02, 7);
    let sizes: Vec<u64> = trace.stats.truth.packets.values().copied().collect();
    println!(
        "workload sample: {} flows, mean size {:.0} pkts",
        sizes.len(),
        sizes.iter().sum::<u64>() as f64 / sizes.len() as f64
    );
    match &profile {
        Some(p) => println!(
            "DRAM latency: {:.1} ns measured (calibrated profile; SRAM/TCAM rows keep paper constants)",
            p.dram_ns()
        ),
        None => println!("DRAM latency: 80.0 ns (paper constant; pass --profile to use a calibrated one)"),
    }

    println!(
        "\n{:<26} {:>10} {:>8} {:>8} {:>12} {:>9}",
        "link / WSAF memory", "pps", "vector", "layers", "regulation", "margin"
    );
    for (name, pps, tech) in [
        ("1 GbE / DRAM", 1.488e6, MemoryTechnology::Dram),
        ("10 GbE / DRAM", 14.88e6, MemoryTechnology::Dram),
        ("40 GbE / DRAM", 59.5e6, MemoryTechnology::Dram),
        ("100 GbE / DRAM", 148.8e6, MemoryTechnology::Dram),
        ("100 GbE / SRAM", 148.8e6, MemoryTechnology::Sram),
        ("100 GbE / TCAM", 148.8e6, MemoryTechnology::Tcam),
    ] {
        // The calibrated profile only replaces the DRAM rows: the measured
        // ladder describes this host's cache/DRAM hierarchy, not an SRAM
        // or TCAM part it doesn't have.
        let plan: Option<Plan> = match (&profile, tech) {
            (Some(p), MemoryTechnology::Dram) => {
                plan_regulator_measured(pps, p.dram_ns(), &sizes, 3.0)
            }
            _ => plan_regulator(pps, tech, &sizes, 3.0),
        };
        match plan {
            Some(p) => println!(
                "{:<26} {:>10.2e} {:>7}b {:>8} {:>11.3}% {:>8.1}x",
                name,
                pps,
                p.vector_bits,
                p.layers,
                p.predicted_regulation * 100.0,
                p.margin
            ),
            None => println!("{name:<26} {pps:>10.2e}  -- no feasible plan --"),
        }
    }
    println!("\n(the paper's design point — 8-bit vectors, 2 layers — covers 10-100 GbE in DRAM)");
}
