//! Deployment planning: which FlowRegulator configuration does a link
//! need? (The paper's §V-B margin discussion, operationalized.)
//!
//! ```text
//! cargo run --release --example deployment_planner
//! ```

use instameasure::core::planner::plan_regulator;
use instameasure::memmodel::MemoryTechnology;
use instameasure::traffic::presets::caida_like;

fn main() {
    // Workload sample: flow sizes from a prior measurement window.
    let trace = caida_like(0.02, 7);
    let sizes: Vec<u64> = trace.stats.truth.packets.values().copied().collect();
    println!(
        "workload sample: {} flows, mean size {:.0} pkts",
        sizes.len(),
        sizes.iter().sum::<u64>() as f64 / sizes.len() as f64
    );

    println!(
        "\n{:<26} {:>10} {:>8} {:>8} {:>12} {:>9}",
        "link / WSAF memory", "pps", "vector", "layers", "regulation", "margin"
    );
    for (name, pps, tech) in [
        ("1 GbE / DRAM", 1.488e6, MemoryTechnology::Dram),
        ("10 GbE / DRAM", 14.88e6, MemoryTechnology::Dram),
        ("40 GbE / DRAM", 59.5e6, MemoryTechnology::Dram),
        ("100 GbE / DRAM", 148.8e6, MemoryTechnology::Dram),
        ("100 GbE / SRAM", 148.8e6, MemoryTechnology::Sram),
        ("100 GbE / TCAM", 148.8e6, MemoryTechnology::Tcam),
    ] {
        match plan_regulator(pps, tech, &sizes, 3.0) {
            Some(p) => println!(
                "{:<26} {:>10.2e} {:>7}b {:>8} {:>11.3}% {:>8.1}x",
                name,
                pps,
                p.vector_bits,
                p.layers,
                p.predicted_regulation * 100.0,
                p.margin
            ),
            None => println!("{name:<26} {pps:>10.2e}  -- no feasible plan --"),
        }
    }
    println!("\n(the paper's design point — 8-bit vectors, 2 layers — covers 10-100 GbE in DRAM)");
}
