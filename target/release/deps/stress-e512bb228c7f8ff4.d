/root/repo/target/release/deps/stress-e512bb228c7f8ff4.d: crates/bench/src/bin/stress.rs

/root/repo/target/release/deps/stress-e512bb228c7f8ff4: crates/bench/src/bin/stress.rs

crates/bench/src/bin/stress.rs:
