/root/repo/target/release/deps/fig14_hh_fpfn-00170871324f3603.d: crates/bench/src/bin/fig14_hh_fpfn.rs

/root/repo/target/release/deps/fig14_hh_fpfn-00170871324f3603: crates/bench/src/bin/fig14_hh_fpfn.rs

crates/bench/src/bin/fig14_hh_fpfn.rs:
