/root/repo/target/release/deps/instameasure-8b58fa0529bfc3de.d: src/lib.rs

/root/repo/target/release/deps/libinstameasure-8b58fa0529bfc3de.rlib: src/lib.rs

/root/repo/target/release/deps/libinstameasure-8b58fa0529bfc3de.rmeta: src/lib.rs

src/lib.rs:
