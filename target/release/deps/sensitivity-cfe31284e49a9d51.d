/root/repo/target/release/deps/sensitivity-cfe31284e49a9d51.d: crates/bench/src/bin/sensitivity.rs

/root/repo/target/release/deps/sensitivity-cfe31284e49a9d51: crates/bench/src/bin/sensitivity.rs

crates/bench/src/bin/sensitivity.rs:
