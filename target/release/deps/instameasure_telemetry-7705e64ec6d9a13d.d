/root/repo/target/release/deps/instameasure_telemetry-7705e64ec6d9a13d.d: crates/telemetry/src/lib.rs crates/telemetry/src/cell.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs

/root/repo/target/release/deps/libinstameasure_telemetry-7705e64ec6d9a13d.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/cell.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs

/root/repo/target/release/deps/libinstameasure_telemetry-7705e64ec6d9a13d.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/cell.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/cell.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/snapshot.rs:
