/root/repo/target/release/deps/instameasure_memmodel-61b1ffc107aa71e3.d: crates/memmodel/src/lib.rs

/root/repo/target/release/deps/libinstameasure_memmodel-61b1ffc107aa71e3.rlib: crates/memmodel/src/lib.rs

/root/repo/target/release/deps/libinstameasure_memmodel-61b1ffc107aa71e3.rmeta: crates/memmodel/src/lib.rs

crates/memmodel/src/lib.rs:
