/root/repo/target/release/deps/table_csm-097118fb115aa400.d: crates/bench/src/bin/table_csm.rs

/root/repo/target/release/deps/table_csm-097118fb115aa400: crates/bench/src/bin/table_csm.rs

crates/bench/src/bin/table_csm.rs:
