/root/repo/target/release/deps/instameasure_baselines-18d16b5db94eb6a1.d: crates/baselines/src/lib.rs crates/baselines/src/count_min.rs crates/baselines/src/csm.rs crates/baselines/src/exact.rs crates/baselines/src/sampled.rs crates/baselines/src/space_saving.rs

/root/repo/target/release/deps/libinstameasure_baselines-18d16b5db94eb6a1.rlib: crates/baselines/src/lib.rs crates/baselines/src/count_min.rs crates/baselines/src/csm.rs crates/baselines/src/exact.rs crates/baselines/src/sampled.rs crates/baselines/src/space_saving.rs

/root/repo/target/release/deps/libinstameasure_baselines-18d16b5db94eb6a1.rmeta: crates/baselines/src/lib.rs crates/baselines/src/count_min.rs crates/baselines/src/csm.rs crates/baselines/src/exact.rs crates/baselines/src/sampled.rs crates/baselines/src/space_saving.rs

crates/baselines/src/lib.rs:
crates/baselines/src/count_min.rs:
crates/baselines/src/csm.rs:
crates/baselines/src/exact.rs:
crates/baselines/src/sampled.rs:
crates/baselines/src/space_saving.rs:
