/root/repo/target/release/deps/fig9b_latency-b0b308c908902cad.d: crates/bench/src/bin/fig9b_latency.rs

/root/repo/target/release/deps/fig9b_latency-b0b308c908902cad: crates/bench/src/bin/fig9b_latency.rs

crates/bench/src/bin/fig9b_latency.rs:
