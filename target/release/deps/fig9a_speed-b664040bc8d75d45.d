/root/repo/target/release/deps/fig9a_speed-b664040bc8d75d45.d: crates/bench/src/bin/fig9a_speed.rs

/root/repo/target/release/deps/fig9a_speed-b664040bc8d75d45: crates/bench/src/bin/fig9a_speed.rs

crates/bench/src/bin/fig9a_speed.rs:
