/root/repo/target/release/deps/collector_overhead-3c660ea6e851d615.d: crates/bench/src/bin/collector_overhead.rs

/root/repo/target/release/deps/collector_overhead-3c660ea6e851d615: crates/bench/src/bin/collector_overhead.rs

crates/bench/src/bin/collector_overhead.rs:
