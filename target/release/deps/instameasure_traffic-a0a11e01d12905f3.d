/root/repo/target/release/deps/instameasure_traffic-a0a11e01d12905f3.d: crates/traffic/src/lib.rs crates/traffic/src/attack.rs crates/traffic/src/builder.rs crates/traffic/src/presets.rs crates/traffic/src/stats.rs crates/traffic/src/stream.rs crates/traffic/src/zipf.rs

/root/repo/target/release/deps/libinstameasure_traffic-a0a11e01d12905f3.rlib: crates/traffic/src/lib.rs crates/traffic/src/attack.rs crates/traffic/src/builder.rs crates/traffic/src/presets.rs crates/traffic/src/stats.rs crates/traffic/src/stream.rs crates/traffic/src/zipf.rs

/root/repo/target/release/deps/libinstameasure_traffic-a0a11e01d12905f3.rmeta: crates/traffic/src/lib.rs crates/traffic/src/attack.rs crates/traffic/src/builder.rs crates/traffic/src/presets.rs crates/traffic/src/stats.rs crates/traffic/src/stream.rs crates/traffic/src/zipf.rs

crates/traffic/src/lib.rs:
crates/traffic/src/attack.rs:
crates/traffic/src/builder.rs:
crates/traffic/src/presets.rs:
crates/traffic/src/stats.rs:
crates/traffic/src/stream.rs:
crates/traffic/src/zipf.rs:
