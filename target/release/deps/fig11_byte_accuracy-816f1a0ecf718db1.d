/root/repo/target/release/deps/fig11_byte_accuracy-816f1a0ecf718db1.d: crates/bench/src/bin/fig11_byte_accuracy.rs

/root/repo/target/release/deps/fig11_byte_accuracy-816f1a0ecf718db1: crates/bench/src/bin/fig11_byte_accuracy.rs

crates/bench/src/bin/fig11_byte_accuracy.rs:
