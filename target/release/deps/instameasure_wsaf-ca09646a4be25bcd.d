/root/repo/target/release/deps/instameasure_wsaf-ca09646a4be25bcd.d: crates/wsaf/src/lib.rs crates/wsaf/src/config.rs crates/wsaf/src/table.rs

/root/repo/target/release/deps/libinstameasure_wsaf-ca09646a4be25bcd.rlib: crates/wsaf/src/lib.rs crates/wsaf/src/config.rs crates/wsaf/src/table.rs

/root/repo/target/release/deps/libinstameasure_wsaf-ca09646a4be25bcd.rmeta: crates/wsaf/src/lib.rs crates/wsaf/src/config.rs crates/wsaf/src/table.rs

crates/wsaf/src/lib.rs:
crates/wsaf/src/config.rs:
crates/wsaf/src/table.rs:
