/root/repo/target/release/deps/instameasure-571d17fa4e04bd43.d: src/main.rs

/root/repo/target/release/deps/instameasure-571d17fa4e04bd43: src/main.rs

src/main.rs:
