/root/repo/target/release/deps/fig8_retention-35abb8fe071cbf10.d: crates/bench/src/bin/fig8_retention.rs

/root/repo/target/release/deps/fig8_retention-35abb8fe071cbf10: crates/bench/src/bin/fig8_retention.rs

crates/bench/src/bin/fig8_retention.rs:
