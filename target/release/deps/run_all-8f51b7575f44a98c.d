/root/repo/target/release/deps/run_all-8f51b7575f44a98c.d: crates/bench/src/bin/run_all.rs

/root/repo/target/release/deps/run_all-8f51b7575f44a98c: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
