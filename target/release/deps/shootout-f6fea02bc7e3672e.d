/root/repo/target/release/deps/shootout-f6fea02bc7e3672e.d: crates/bench/src/bin/shootout.rs

/root/repo/target/release/deps/shootout-f6fea02bc7e3672e: crates/bench/src/bin/shootout.rs

crates/bench/src/bin/shootout.rs:
