/root/repo/target/release/deps/instameasure_sketch-c9b99e223f2facce.d: crates/sketch/src/lib.rs crates/sketch/src/analysis.rs crates/sketch/src/config.rs crates/sketch/src/decode.rs crates/sketch/src/flow_regulator.rs crates/sketch/src/multi_layer.rs crates/sketch/src/rcc.rs crates/sketch/src/regulator.rs

/root/repo/target/release/deps/libinstameasure_sketch-c9b99e223f2facce.rlib: crates/sketch/src/lib.rs crates/sketch/src/analysis.rs crates/sketch/src/config.rs crates/sketch/src/decode.rs crates/sketch/src/flow_regulator.rs crates/sketch/src/multi_layer.rs crates/sketch/src/rcc.rs crates/sketch/src/regulator.rs

/root/repo/target/release/deps/libinstameasure_sketch-c9b99e223f2facce.rmeta: crates/sketch/src/lib.rs crates/sketch/src/analysis.rs crates/sketch/src/config.rs crates/sketch/src/decode.rs crates/sketch/src/flow_regulator.rs crates/sketch/src/multi_layer.rs crates/sketch/src/rcc.rs crates/sketch/src/regulator.rs

crates/sketch/src/lib.rs:
crates/sketch/src/analysis.rs:
crates/sketch/src/config.rs:
crates/sketch/src/decode.rs:
crates/sketch/src/flow_regulator.rs:
crates/sketch/src/multi_layer.rs:
crates/sketch/src/rcc.rs:
crates/sketch/src/regulator.rs:
