/root/repo/target/release/deps/ablations-46cabf6c5b157292.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-46cabf6c5b157292: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
