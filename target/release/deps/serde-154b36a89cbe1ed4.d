/root/repo/target/release/deps/serde-154b36a89cbe1ed4.d: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-154b36a89cbe1ed4.rlib: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-154b36a89cbe1ed4.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
