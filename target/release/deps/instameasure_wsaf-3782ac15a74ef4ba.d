/root/repo/target/release/deps/instameasure_wsaf-3782ac15a74ef4ba.d: crates/wsaf/src/lib.rs crates/wsaf/src/config.rs crates/wsaf/src/table.rs

/root/repo/target/release/deps/libinstameasure_wsaf-3782ac15a74ef4ba.rlib: crates/wsaf/src/lib.rs crates/wsaf/src/config.rs crates/wsaf/src/table.rs

/root/repo/target/release/deps/libinstameasure_wsaf-3782ac15a74ef4ba.rmeta: crates/wsaf/src/lib.rs crates/wsaf/src/config.rs crates/wsaf/src/table.rs

crates/wsaf/src/lib.rs:
crates/wsaf/src/config.rs:
crates/wsaf/src/table.rs:
