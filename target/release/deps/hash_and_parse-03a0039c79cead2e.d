/root/repo/target/release/deps/hash_and_parse-03a0039c79cead2e.d: crates/bench/benches/hash_and_parse.rs

/root/repo/target/release/deps/hash_and_parse-03a0039c79cead2e: crates/bench/benches/hash_and_parse.rs

crates/bench/benches/hash_and_parse.rs:
