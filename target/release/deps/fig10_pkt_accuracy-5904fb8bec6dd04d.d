/root/repo/target/release/deps/fig10_pkt_accuracy-5904fb8bec6dd04d.d: crates/bench/src/bin/fig10_pkt_accuracy.rs

/root/repo/target/release/deps/fig10_pkt_accuracy-5904fb8bec6dd04d: crates/bench/src/bin/fig10_pkt_accuracy.rs

crates/bench/src/bin/fig10_pkt_accuracy.rs:
