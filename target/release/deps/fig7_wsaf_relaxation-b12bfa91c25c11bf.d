/root/repo/target/release/deps/fig7_wsaf_relaxation-b12bfa91c25c11bf.d: crates/bench/src/bin/fig7_wsaf_relaxation.rs

/root/repo/target/release/deps/fig7_wsaf_relaxation-b12bfa91c25c11bf: crates/bench/src/bin/fig7_wsaf_relaxation.rs

crates/bench/src/bin/fig7_wsaf_relaxation.rs:
