/root/repo/target/release/deps/proptest-e6c86320892a1aa0.d: shims/proptest/src/lib.rs shims/proptest/src/arbitrary.rs shims/proptest/src/collection.rs shims/proptest/src/sample.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-e6c86320892a1aa0.rlib: shims/proptest/src/lib.rs shims/proptest/src/arbitrary.rs shims/proptest/src/collection.rs shims/proptest/src/sample.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-e6c86320892a1aa0.rmeta: shims/proptest/src/lib.rs shims/proptest/src/arbitrary.rs shims/proptest/src/collection.rs shims/proptest/src/sample.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

shims/proptest/src/lib.rs:
shims/proptest/src/arbitrary.rs:
shims/proptest/src/collection.rs:
shims/proptest/src/sample.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/test_runner.rs:
