/root/repo/target/release/deps/fig6_distributions-0721ac7e0fd08b25.d: crates/bench/src/bin/fig6_distributions.rs

/root/repo/target/release/deps/fig6_distributions-0721ac7e0fd08b25: crates/bench/src/bin/fig6_distributions.rs

crates/bench/src/bin/fig6_distributions.rs:
