/root/repo/target/release/deps/fig1_rcc_saturation-881335d32482ed18.d: crates/bench/src/bin/fig1_rcc_saturation.rs

/root/repo/target/release/deps/fig1_rcc_saturation-881335d32482ed18: crates/bench/src/bin/fig1_rcc_saturation.rs

crates/bench/src/bin/fig1_rcc_saturation.rs:
