/root/repo/target/release/deps/fig13_scatter-05ac6c0c82d691b3.d: crates/bench/src/bin/fig13_scatter.rs

/root/repo/target/release/deps/fig13_scatter-05ac6c0c82d691b3: crates/bench/src/bin/fig13_scatter.rs

crates/bench/src/bin/fig13_scatter.rs:
