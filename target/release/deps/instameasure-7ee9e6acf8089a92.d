/root/repo/target/release/deps/instameasure-7ee9e6acf8089a92.d: src/lib.rs

/root/repo/target/release/deps/libinstameasure-7ee9e6acf8089a92.rlib: src/lib.rs

/root/repo/target/release/deps/libinstameasure-7ee9e6acf8089a92.rmeta: src/lib.rs

src/lib.rs:
