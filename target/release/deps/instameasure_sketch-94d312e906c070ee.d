/root/repo/target/release/deps/instameasure_sketch-94d312e906c070ee.d: crates/sketch/src/lib.rs crates/sketch/src/analysis.rs crates/sketch/src/config.rs crates/sketch/src/decode.rs crates/sketch/src/flow_regulator.rs crates/sketch/src/multi_layer.rs crates/sketch/src/rcc.rs crates/sketch/src/regulator.rs

/root/repo/target/release/deps/libinstameasure_sketch-94d312e906c070ee.rlib: crates/sketch/src/lib.rs crates/sketch/src/analysis.rs crates/sketch/src/config.rs crates/sketch/src/decode.rs crates/sketch/src/flow_regulator.rs crates/sketch/src/multi_layer.rs crates/sketch/src/rcc.rs crates/sketch/src/regulator.rs

/root/repo/target/release/deps/libinstameasure_sketch-94d312e906c070ee.rmeta: crates/sketch/src/lib.rs crates/sketch/src/analysis.rs crates/sketch/src/config.rs crates/sketch/src/decode.rs crates/sketch/src/flow_regulator.rs crates/sketch/src/multi_layer.rs crates/sketch/src/rcc.rs crates/sketch/src/regulator.rs

crates/sketch/src/lib.rs:
crates/sketch/src/analysis.rs:
crates/sketch/src/config.rs:
crates/sketch/src/decode.rs:
crates/sketch/src/flow_regulator.rs:
crates/sketch/src/multi_layer.rs:
crates/sketch/src/rcc.rs:
crates/sketch/src/regulator.rs:
