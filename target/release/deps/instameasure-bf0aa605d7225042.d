/root/repo/target/release/deps/instameasure-bf0aa605d7225042.d: src/main.rs

/root/repo/target/release/deps/instameasure-bf0aa605d7225042: src/main.rs

src/main.rs:
