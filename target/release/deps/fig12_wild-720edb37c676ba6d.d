/root/repo/target/release/deps/fig12_wild-720edb37c676ba6d.d: crates/bench/src/bin/fig12_wild.rs

/root/repo/target/release/deps/fig12_wild-720edb37c676ba6d: crates/bench/src/bin/fig12_wild.rs

crates/bench/src/bin/fig12_wild.rs:
