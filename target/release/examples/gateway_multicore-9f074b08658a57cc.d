/root/repo/target/release/examples/gateway_multicore-9f074b08658a57cc.d: examples/gateway_multicore.rs

/root/repo/target/release/examples/gateway_multicore-9f074b08658a57cc: examples/gateway_multicore.rs

examples/gateway_multicore.rs:
