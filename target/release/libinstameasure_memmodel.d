/root/repo/target/release/libinstameasure_memmodel.rlib: /root/repo/crates/memmodel/src/lib.rs
