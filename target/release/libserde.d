/root/repo/target/release/libserde.rlib: /root/repo/shims/serde/src/lib.rs
