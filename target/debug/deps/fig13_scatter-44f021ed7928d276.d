/root/repo/target/debug/deps/fig13_scatter-44f021ed7928d276.d: crates/bench/src/bin/fig13_scatter.rs

/root/repo/target/debug/deps/fig13_scatter-44f021ed7928d276: crates/bench/src/bin/fig13_scatter.rs

crates/bench/src/bin/fig13_scatter.rs:
