/root/repo/target/debug/deps/fig10_pkt_accuracy-4c61ed1e63144880.d: crates/bench/src/bin/fig10_pkt_accuracy.rs

/root/repo/target/debug/deps/fig10_pkt_accuracy-4c61ed1e63144880: crates/bench/src/bin/fig10_pkt_accuracy.rs

crates/bench/src/bin/fig10_pkt_accuracy.rs:
