/root/repo/target/debug/deps/table_csm-9ad71fffdda6ea7d.d: crates/bench/src/bin/table_csm.rs

/root/repo/target/debug/deps/table_csm-9ad71fffdda6ea7d: crates/bench/src/bin/table_csm.rs

crates/bench/src/bin/table_csm.rs:
