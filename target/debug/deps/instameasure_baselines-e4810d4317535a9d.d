/root/repo/target/debug/deps/instameasure_baselines-e4810d4317535a9d.d: crates/baselines/src/lib.rs crates/baselines/src/count_min.rs crates/baselines/src/csm.rs crates/baselines/src/exact.rs crates/baselines/src/sampled.rs crates/baselines/src/space_saving.rs

/root/repo/target/debug/deps/instameasure_baselines-e4810d4317535a9d: crates/baselines/src/lib.rs crates/baselines/src/count_min.rs crates/baselines/src/csm.rs crates/baselines/src/exact.rs crates/baselines/src/sampled.rs crates/baselines/src/space_saving.rs

crates/baselines/src/lib.rs:
crates/baselines/src/count_min.rs:
crates/baselines/src/csm.rs:
crates/baselines/src/exact.rs:
crates/baselines/src/sampled.rs:
crates/baselines/src/space_saving.rs:
