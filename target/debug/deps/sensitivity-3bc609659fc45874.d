/root/repo/target/debug/deps/sensitivity-3bc609659fc45874.d: crates/bench/src/bin/sensitivity.rs

/root/repo/target/debug/deps/sensitivity-3bc609659fc45874: crates/bench/src/bin/sensitivity.rs

crates/bench/src/bin/sensitivity.rs:
