/root/repo/target/debug/deps/sensitivity-3bdd97feeea8cdc9.d: crates/bench/src/bin/sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libsensitivity-3bdd97feeea8cdc9.rmeta: crates/bench/src/bin/sensitivity.rs Cargo.toml

crates/bench/src/bin/sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
