/root/repo/target/debug/deps/collector_overhead-056d519b48e983cc.d: crates/bench/src/bin/collector_overhead.rs

/root/repo/target/debug/deps/collector_overhead-056d519b48e983cc: crates/bench/src/bin/collector_overhead.rs

crates/bench/src/bin/collector_overhead.rs:
