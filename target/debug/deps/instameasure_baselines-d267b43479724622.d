/root/repo/target/debug/deps/instameasure_baselines-d267b43479724622.d: crates/baselines/src/lib.rs crates/baselines/src/count_min.rs crates/baselines/src/csm.rs crates/baselines/src/exact.rs crates/baselines/src/sampled.rs crates/baselines/src/space_saving.rs Cargo.toml

/root/repo/target/debug/deps/libinstameasure_baselines-d267b43479724622.rmeta: crates/baselines/src/lib.rs crates/baselines/src/count_min.rs crates/baselines/src/csm.rs crates/baselines/src/exact.rs crates/baselines/src/sampled.rs crates/baselines/src/space_saving.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/count_min.rs:
crates/baselines/src/csm.rs:
crates/baselines/src/exact.rs:
crates/baselines/src/sampled.rs:
crates/baselines/src/space_saving.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
