/root/repo/target/debug/deps/fig8_retention-36c6783ea5de7ad4.d: crates/bench/src/bin/fig8_retention.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_retention-36c6783ea5de7ad4.rmeta: crates/bench/src/bin/fig8_retention.rs Cargo.toml

crates/bench/src/bin/fig8_retention.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
