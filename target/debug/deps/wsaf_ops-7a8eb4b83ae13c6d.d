/root/repo/target/debug/deps/wsaf_ops-7a8eb4b83ae13c6d.d: crates/bench/benches/wsaf_ops.rs Cargo.toml

/root/repo/target/debug/deps/libwsaf_ops-7a8eb4b83ae13c6d.rmeta: crates/bench/benches/wsaf_ops.rs Cargo.toml

crates/bench/benches/wsaf_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
