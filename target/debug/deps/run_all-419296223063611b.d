/root/repo/target/debug/deps/run_all-419296223063611b.d: crates/bench/src/bin/run_all.rs

/root/repo/target/debug/deps/run_all-419296223063611b: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
