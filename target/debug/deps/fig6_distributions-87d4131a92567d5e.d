/root/repo/target/debug/deps/fig6_distributions-87d4131a92567d5e.d: crates/bench/src/bin/fig6_distributions.rs

/root/repo/target/debug/deps/fig6_distributions-87d4131a92567d5e: crates/bench/src/bin/fig6_distributions.rs

crates/bench/src/bin/fig6_distributions.rs:
