/root/repo/target/debug/deps/fig1_rcc_saturation-2ac0ba4406c0dce7.d: crates/bench/src/bin/fig1_rcc_saturation.rs

/root/repo/target/debug/deps/fig1_rcc_saturation-2ac0ba4406c0dce7: crates/bench/src/bin/fig1_rcc_saturation.rs

crates/bench/src/bin/fig1_rcc_saturation.rs:
