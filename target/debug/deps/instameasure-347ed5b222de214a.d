/root/repo/target/debug/deps/instameasure-347ed5b222de214a.d: src/lib.rs

/root/repo/target/debug/deps/instameasure-347ed5b222de214a: src/lib.rs

src/lib.rs:
