/root/repo/target/debug/deps/fig11_byte_accuracy-5934363d53476538.d: crates/bench/src/bin/fig11_byte_accuracy.rs

/root/repo/target/debug/deps/fig11_byte_accuracy-5934363d53476538: crates/bench/src/bin/fig11_byte_accuracy.rs

crates/bench/src/bin/fig11_byte_accuracy.rs:
