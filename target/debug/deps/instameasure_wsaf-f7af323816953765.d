/root/repo/target/debug/deps/instameasure_wsaf-f7af323816953765.d: crates/wsaf/src/lib.rs crates/wsaf/src/config.rs crates/wsaf/src/table.rs

/root/repo/target/debug/deps/libinstameasure_wsaf-f7af323816953765.rlib: crates/wsaf/src/lib.rs crates/wsaf/src/config.rs crates/wsaf/src/table.rs

/root/repo/target/debug/deps/libinstameasure_wsaf-f7af323816953765.rmeta: crates/wsaf/src/lib.rs crates/wsaf/src/config.rs crates/wsaf/src/table.rs

crates/wsaf/src/lib.rs:
crates/wsaf/src/config.rs:
crates/wsaf/src/table.rs:
