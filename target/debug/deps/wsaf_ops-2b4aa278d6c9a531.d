/root/repo/target/debug/deps/wsaf_ops-2b4aa278d6c9a531.d: crates/bench/benches/wsaf_ops.rs

/root/repo/target/debug/deps/wsaf_ops-2b4aa278d6c9a531: crates/bench/benches/wsaf_ops.rs

crates/bench/benches/wsaf_ops.rs:
