/root/repo/target/debug/deps/fig6_distributions-32101bd4f1aa9709.d: crates/bench/src/bin/fig6_distributions.rs

/root/repo/target/debug/deps/fig6_distributions-32101bd4f1aa9709: crates/bench/src/bin/fig6_distributions.rs

crates/bench/src/bin/fig6_distributions.rs:
