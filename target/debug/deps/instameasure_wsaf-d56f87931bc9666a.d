/root/repo/target/debug/deps/instameasure_wsaf-d56f87931bc9666a.d: crates/wsaf/src/lib.rs crates/wsaf/src/config.rs crates/wsaf/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libinstameasure_wsaf-d56f87931bc9666a.rmeta: crates/wsaf/src/lib.rs crates/wsaf/src/config.rs crates/wsaf/src/table.rs Cargo.toml

crates/wsaf/src/lib.rs:
crates/wsaf/src/config.rs:
crates/wsaf/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
