/root/repo/target/debug/deps/instameasure_bench-02f70227b2a6fcff.d: crates/bench/src/lib.rs crates/bench/src/figs/mod.rs crates/bench/src/figs/ablations.rs crates/bench/src/figs/fig1.rs crates/bench/src/figs/fig10_11.rs crates/bench/src/figs/fig12.rs crates/bench/src/figs/fig13.rs crates/bench/src/figs/fig14.rs crates/bench/src/figs/fig6.rs crates/bench/src/figs/fig7.rs crates/bench/src/figs/fig8.rs crates/bench/src/figs/fig9a.rs crates/bench/src/figs/fig9b.rs crates/bench/src/figs/overhead.rs crates/bench/src/figs/sensitivity.rs crates/bench/src/figs/shootout.rs crates/bench/src/figs/table_csm.rs

/root/repo/target/debug/deps/instameasure_bench-02f70227b2a6fcff: crates/bench/src/lib.rs crates/bench/src/figs/mod.rs crates/bench/src/figs/ablations.rs crates/bench/src/figs/fig1.rs crates/bench/src/figs/fig10_11.rs crates/bench/src/figs/fig12.rs crates/bench/src/figs/fig13.rs crates/bench/src/figs/fig14.rs crates/bench/src/figs/fig6.rs crates/bench/src/figs/fig7.rs crates/bench/src/figs/fig8.rs crates/bench/src/figs/fig9a.rs crates/bench/src/figs/fig9b.rs crates/bench/src/figs/overhead.rs crates/bench/src/figs/sensitivity.rs crates/bench/src/figs/shootout.rs crates/bench/src/figs/table_csm.rs

crates/bench/src/lib.rs:
crates/bench/src/figs/mod.rs:
crates/bench/src/figs/ablations.rs:
crates/bench/src/figs/fig1.rs:
crates/bench/src/figs/fig10_11.rs:
crates/bench/src/figs/fig12.rs:
crates/bench/src/figs/fig13.rs:
crates/bench/src/figs/fig14.rs:
crates/bench/src/figs/fig6.rs:
crates/bench/src/figs/fig7.rs:
crates/bench/src/figs/fig8.rs:
crates/bench/src/figs/fig9a.rs:
crates/bench/src/figs/fig9b.rs:
crates/bench/src/figs/overhead.rs:
crates/bench/src/figs/sensitivity.rs:
crates/bench/src/figs/shootout.rs:
crates/bench/src/figs/table_csm.rs:
