/root/repo/target/debug/deps/capture_path-d03bfb7430d1373e.d: tests/capture_path.rs

/root/repo/target/debug/deps/capture_path-d03bfb7430d1373e: tests/capture_path.rs

tests/capture_path.rs:
