/root/repo/target/debug/deps/fig13_scatter-e82183cfbafc5e07.d: crates/bench/src/bin/fig13_scatter.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_scatter-e82183cfbafc5e07.rmeta: crates/bench/src/bin/fig13_scatter.rs Cargo.toml

crates/bench/src/bin/fig13_scatter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
