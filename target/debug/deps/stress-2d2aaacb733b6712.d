/root/repo/target/debug/deps/stress-2d2aaacb733b6712.d: crates/bench/src/bin/stress.rs Cargo.toml

/root/repo/target/debug/deps/libstress-2d2aaacb733b6712.rmeta: crates/bench/src/bin/stress.rs Cargo.toml

crates/bench/src/bin/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
