/root/repo/target/debug/deps/end_to_end_accuracy-74c38147f9bbcb5b.d: tests/end_to_end_accuracy.rs

/root/repo/target/debug/deps/end_to_end_accuracy-74c38147f9bbcb5b: tests/end_to_end_accuracy.rs

tests/end_to_end_accuracy.rs:
