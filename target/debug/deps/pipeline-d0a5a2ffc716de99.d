/root/repo/target/debug/deps/pipeline-d0a5a2ffc716de99.d: crates/bench/benches/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-d0a5a2ffc716de99.rmeta: crates/bench/benches/pipeline.rs Cargo.toml

crates/bench/benches/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
