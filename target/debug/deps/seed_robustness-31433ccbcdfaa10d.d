/root/repo/target/debug/deps/seed_robustness-31433ccbcdfaa10d.d: tests/seed_robustness.rs

/root/repo/target/debug/deps/seed_robustness-31433ccbcdfaa10d: tests/seed_robustness.rs

tests/seed_robustness.rs:
