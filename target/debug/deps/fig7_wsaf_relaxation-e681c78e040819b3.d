/root/repo/target/debug/deps/fig7_wsaf_relaxation-e681c78e040819b3.d: crates/bench/src/bin/fig7_wsaf_relaxation.rs

/root/repo/target/debug/deps/fig7_wsaf_relaxation-e681c78e040819b3: crates/bench/src/bin/fig7_wsaf_relaxation.rs

crates/bench/src/bin/fig7_wsaf_relaxation.rs:
