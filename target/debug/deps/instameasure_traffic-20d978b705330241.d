/root/repo/target/debug/deps/instameasure_traffic-20d978b705330241.d: crates/traffic/src/lib.rs crates/traffic/src/attack.rs crates/traffic/src/builder.rs crates/traffic/src/presets.rs crates/traffic/src/stats.rs crates/traffic/src/stream.rs crates/traffic/src/zipf.rs Cargo.toml

/root/repo/target/debug/deps/libinstameasure_traffic-20d978b705330241.rmeta: crates/traffic/src/lib.rs crates/traffic/src/attack.rs crates/traffic/src/builder.rs crates/traffic/src/presets.rs crates/traffic/src/stats.rs crates/traffic/src/stream.rs crates/traffic/src/zipf.rs Cargo.toml

crates/traffic/src/lib.rs:
crates/traffic/src/attack.rs:
crates/traffic/src/builder.rs:
crates/traffic/src/presets.rs:
crates/traffic/src/stats.rs:
crates/traffic/src/stream.rs:
crates/traffic/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
