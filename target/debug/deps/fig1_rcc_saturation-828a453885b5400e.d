/root/repo/target/debug/deps/fig1_rcc_saturation-828a453885b5400e.d: crates/bench/src/bin/fig1_rcc_saturation.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_rcc_saturation-828a453885b5400e.rmeta: crates/bench/src/bin/fig1_rcc_saturation.rs Cargo.toml

crates/bench/src/bin/fig1_rcc_saturation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
