/root/repo/target/debug/deps/instameasure_wsaf-221102b8fa51ab42.d: crates/wsaf/src/lib.rs crates/wsaf/src/config.rs crates/wsaf/src/table.rs

/root/repo/target/debug/deps/instameasure_wsaf-221102b8fa51ab42: crates/wsaf/src/lib.rs crates/wsaf/src/config.rs crates/wsaf/src/table.rs

crates/wsaf/src/lib.rs:
crates/wsaf/src/config.rs:
crates/wsaf/src/table.rs:
