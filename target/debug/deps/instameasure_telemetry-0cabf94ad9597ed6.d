/root/repo/target/debug/deps/instameasure_telemetry-0cabf94ad9597ed6.d: crates/telemetry/src/lib.rs crates/telemetry/src/cell.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs Cargo.toml

/root/repo/target/debug/deps/libinstameasure_telemetry-0cabf94ad9597ed6.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/cell.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/cell.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/snapshot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
