/root/repo/target/debug/deps/instameasure_traffic-4702b3d87f2100e0.d: crates/traffic/src/lib.rs crates/traffic/src/attack.rs crates/traffic/src/builder.rs crates/traffic/src/presets.rs crates/traffic/src/stats.rs crates/traffic/src/stream.rs crates/traffic/src/zipf.rs

/root/repo/target/debug/deps/libinstameasure_traffic-4702b3d87f2100e0.rlib: crates/traffic/src/lib.rs crates/traffic/src/attack.rs crates/traffic/src/builder.rs crates/traffic/src/presets.rs crates/traffic/src/stats.rs crates/traffic/src/stream.rs crates/traffic/src/zipf.rs

/root/repo/target/debug/deps/libinstameasure_traffic-4702b3d87f2100e0.rmeta: crates/traffic/src/lib.rs crates/traffic/src/attack.rs crates/traffic/src/builder.rs crates/traffic/src/presets.rs crates/traffic/src/stats.rs crates/traffic/src/stream.rs crates/traffic/src/zipf.rs

crates/traffic/src/lib.rs:
crates/traffic/src/attack.rs:
crates/traffic/src/builder.rs:
crates/traffic/src/presets.rs:
crates/traffic/src/stats.rs:
crates/traffic/src/stream.rs:
crates/traffic/src/zipf.rs:
