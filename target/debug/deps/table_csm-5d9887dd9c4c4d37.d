/root/repo/target/debug/deps/table_csm-5d9887dd9c4c4d37.d: crates/bench/src/bin/table_csm.rs

/root/repo/target/debug/deps/table_csm-5d9887dd9c4c4d37: crates/bench/src/bin/table_csm.rs

crates/bench/src/bin/table_csm.rs:
