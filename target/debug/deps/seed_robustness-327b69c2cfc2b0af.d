/root/repo/target/debug/deps/seed_robustness-327b69c2cfc2b0af.d: tests/seed_robustness.rs Cargo.toml

/root/repo/target/debug/deps/libseed_robustness-327b69c2cfc2b0af.rmeta: tests/seed_robustness.rs Cargo.toml

tests/seed_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
