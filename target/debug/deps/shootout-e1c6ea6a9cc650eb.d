/root/repo/target/debug/deps/shootout-e1c6ea6a9cc650eb.d: crates/bench/src/bin/shootout.rs Cargo.toml

/root/repo/target/debug/deps/libshootout-e1c6ea6a9cc650eb.rmeta: crates/bench/src/bin/shootout.rs Cargo.toml

crates/bench/src/bin/shootout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
