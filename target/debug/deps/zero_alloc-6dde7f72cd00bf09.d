/root/repo/target/debug/deps/zero_alloc-6dde7f72cd00bf09.d: crates/packet/tests/zero_alloc.rs Cargo.toml

/root/repo/target/debug/deps/libzero_alloc-6dde7f72cd00bf09.rmeta: crates/packet/tests/zero_alloc.rs Cargo.toml

crates/packet/tests/zero_alloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
