/root/repo/target/debug/deps/fig10_pkt_accuracy-2a779a47eee97257.d: crates/bench/src/bin/fig10_pkt_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_pkt_accuracy-2a779a47eee97257.rmeta: crates/bench/src/bin/fig10_pkt_accuracy.rs Cargo.toml

crates/bench/src/bin/fig10_pkt_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
