/root/repo/target/debug/deps/fig1_rcc_saturation-dbd7fef6b5d8ec7f.d: crates/bench/src/bin/fig1_rcc_saturation.rs

/root/repo/target/debug/deps/fig1_rcc_saturation-dbd7fef6b5d8ec7f: crates/bench/src/bin/fig1_rcc_saturation.rs

crates/bench/src/bin/fig1_rcc_saturation.rs:
