/root/repo/target/debug/deps/instameasure-47d9c3583f7c699f.d: src/lib.rs

/root/repo/target/debug/deps/libinstameasure-47d9c3583f7c699f.rlib: src/lib.rs

/root/repo/target/debug/deps/libinstameasure-47d9c3583f7c699f.rmeta: src/lib.rs

src/lib.rs:
