/root/repo/target/debug/deps/fig7_wsaf_relaxation-059f80f96133b165.d: crates/bench/src/bin/fig7_wsaf_relaxation.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_wsaf_relaxation-059f80f96133b165.rmeta: crates/bench/src/bin/fig7_wsaf_relaxation.rs Cargo.toml

crates/bench/src/bin/fig7_wsaf_relaxation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
