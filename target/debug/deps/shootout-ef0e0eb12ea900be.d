/root/repo/target/debug/deps/shootout-ef0e0eb12ea900be.d: crates/bench/src/bin/shootout.rs

/root/repo/target/debug/deps/shootout-ef0e0eb12ea900be: crates/bench/src/bin/shootout.rs

crates/bench/src/bin/shootout.rs:
