/root/repo/target/debug/deps/fig9b_latency-a3e55ac96c81f5bb.d: crates/bench/src/bin/fig9b_latency.rs

/root/repo/target/debug/deps/fig9b_latency-a3e55ac96c81f5bb: crates/bench/src/bin/fig9b_latency.rs

crates/bench/src/bin/fig9b_latency.rs:
