/root/repo/target/debug/deps/macros-a471195e7223fa7c.d: shims/proptest/tests/macros.rs Cargo.toml

/root/repo/target/debug/deps/libmacros-a471195e7223fa7c.rmeta: shims/proptest/tests/macros.rs Cargo.toml

shims/proptest/tests/macros.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
