/root/repo/target/debug/deps/fig14_hh_fpfn-306549f929cbfffa.d: crates/bench/src/bin/fig14_hh_fpfn.rs

/root/repo/target/debug/deps/fig14_hh_fpfn-306549f929cbfffa: crates/bench/src/bin/fig14_hh_fpfn.rs

crates/bench/src/bin/fig14_hh_fpfn.rs:
