/root/repo/target/debug/deps/instameasure_baselines-a46f6388fd00e0d1.d: crates/baselines/src/lib.rs crates/baselines/src/count_min.rs crates/baselines/src/csm.rs crates/baselines/src/exact.rs crates/baselines/src/sampled.rs crates/baselines/src/space_saving.rs

/root/repo/target/debug/deps/libinstameasure_baselines-a46f6388fd00e0d1.rlib: crates/baselines/src/lib.rs crates/baselines/src/count_min.rs crates/baselines/src/csm.rs crates/baselines/src/exact.rs crates/baselines/src/sampled.rs crates/baselines/src/space_saving.rs

/root/repo/target/debug/deps/libinstameasure_baselines-a46f6388fd00e0d1.rmeta: crates/baselines/src/lib.rs crates/baselines/src/count_min.rs crates/baselines/src/csm.rs crates/baselines/src/exact.rs crates/baselines/src/sampled.rs crates/baselines/src/space_saving.rs

crates/baselines/src/lib.rs:
crates/baselines/src/count_min.rs:
crates/baselines/src/csm.rs:
crates/baselines/src/exact.rs:
crates/baselines/src/sampled.rs:
crates/baselines/src/space_saving.rs:
