/root/repo/target/debug/deps/ablations-e4265d34a46cb192.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-e4265d34a46cb192: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
