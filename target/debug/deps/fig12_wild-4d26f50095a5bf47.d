/root/repo/target/debug/deps/fig12_wild-4d26f50095a5bf47.d: crates/bench/src/bin/fig12_wild.rs

/root/repo/target/debug/deps/fig12_wild-4d26f50095a5bf47: crates/bench/src/bin/fig12_wild.rs

crates/bench/src/bin/fig12_wild.rs:
