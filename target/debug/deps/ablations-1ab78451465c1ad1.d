/root/repo/target/debug/deps/ablations-1ab78451465c1ad1.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-1ab78451465c1ad1.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
