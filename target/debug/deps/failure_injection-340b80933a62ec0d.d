/root/repo/target/debug/deps/failure_injection-340b80933a62ec0d.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-340b80933a62ec0d: tests/failure_injection.rs

tests/failure_injection.rs:
