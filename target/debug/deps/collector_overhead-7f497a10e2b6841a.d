/root/repo/target/debug/deps/collector_overhead-7f497a10e2b6841a.d: crates/bench/src/bin/collector_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libcollector_overhead-7f497a10e2b6841a.rmeta: crates/bench/src/bin/collector_overhead.rs Cargo.toml

crates/bench/src/bin/collector_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
