/root/repo/target/debug/deps/fig9b_latency-d1f97e7c53dd2e2a.d: crates/bench/src/bin/fig9b_latency.rs Cargo.toml

/root/repo/target/debug/deps/libfig9b_latency-d1f97e7c53dd2e2a.rmeta: crates/bench/src/bin/fig9b_latency.rs Cargo.toml

crates/bench/src/bin/fig9b_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
