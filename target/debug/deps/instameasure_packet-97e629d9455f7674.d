/root/repo/target/debug/deps/instameasure_packet-97e629d9455f7674.d: crates/packet/src/lib.rs crates/packet/src/chunk.rs crates/packet/src/counter.rs crates/packet/src/error.rs crates/packet/src/fuzzing.rs crates/packet/src/hash.rs crates/packet/src/ipv6.rs crates/packet/src/key.rs crates/packet/src/mmap.rs crates/packet/src/parse.rs crates/packet/src/pcap.rs crates/packet/src/synth.rs

/root/repo/target/debug/deps/instameasure_packet-97e629d9455f7674: crates/packet/src/lib.rs crates/packet/src/chunk.rs crates/packet/src/counter.rs crates/packet/src/error.rs crates/packet/src/fuzzing.rs crates/packet/src/hash.rs crates/packet/src/ipv6.rs crates/packet/src/key.rs crates/packet/src/mmap.rs crates/packet/src/parse.rs crates/packet/src/pcap.rs crates/packet/src/synth.rs

crates/packet/src/lib.rs:
crates/packet/src/chunk.rs:
crates/packet/src/counter.rs:
crates/packet/src/error.rs:
crates/packet/src/fuzzing.rs:
crates/packet/src/hash.rs:
crates/packet/src/ipv6.rs:
crates/packet/src/key.rs:
crates/packet/src/mmap.rs:
crates/packet/src/parse.rs:
crates/packet/src/pcap.rs:
crates/packet/src/synth.rs:
