/root/repo/target/debug/deps/prop_chunk_roundtrip-03a25bf86f567ce1.d: crates/packet/tests/prop_chunk_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libprop_chunk_roundtrip-03a25bf86f567ce1.rmeta: crates/packet/tests/prop_chunk_roundtrip.rs Cargo.toml

crates/packet/tests/prop_chunk_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
