/root/repo/target/debug/deps/shootout-19bd36ef989cb292.d: crates/bench/src/bin/shootout.rs

/root/repo/target/debug/deps/shootout-19bd36ef989cb292: crates/bench/src/bin/shootout.rs

crates/bench/src/bin/shootout.rs:
