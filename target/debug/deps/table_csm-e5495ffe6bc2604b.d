/root/repo/target/debug/deps/table_csm-e5495ffe6bc2604b.d: crates/bench/src/bin/table_csm.rs

/root/repo/target/debug/deps/table_csm-e5495ffe6bc2604b: crates/bench/src/bin/table_csm.rs

crates/bench/src/bin/table_csm.rs:
