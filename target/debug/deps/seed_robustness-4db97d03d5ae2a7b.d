/root/repo/target/debug/deps/seed_robustness-4db97d03d5ae2a7b.d: tests/seed_robustness.rs

/root/repo/target/debug/deps/seed_robustness-4db97d03d5ae2a7b: tests/seed_robustness.rs

tests/seed_robustness.rs:
