/root/repo/target/debug/deps/fig9a_speed-78ca6e6c1075fe52.d: crates/bench/src/bin/fig9a_speed.rs Cargo.toml

/root/repo/target/debug/deps/libfig9a_speed-78ca6e6c1075fe52.rmeta: crates/bench/src/bin/fig9a_speed.rs Cargo.toml

crates/bench/src/bin/fig9a_speed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
