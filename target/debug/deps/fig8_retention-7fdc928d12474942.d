/root/repo/target/debug/deps/fig8_retention-7fdc928d12474942.d: crates/bench/src/bin/fig8_retention.rs

/root/repo/target/debug/deps/fig8_retention-7fdc928d12474942: crates/bench/src/bin/fig8_retention.rs

crates/bench/src/bin/fig8_retention.rs:
