/root/repo/target/debug/deps/fig14_hh_fpfn-5b5e4e59b55ab589.d: crates/bench/src/bin/fig14_hh_fpfn.rs

/root/repo/target/debug/deps/fig14_hh_fpfn-5b5e4e59b55ab589: crates/bench/src/bin/fig14_hh_fpfn.rs

crates/bench/src/bin/fig14_hh_fpfn.rs:
