/root/repo/target/debug/deps/fig9a_speed-e0b51393f3ec47fa.d: crates/bench/src/bin/fig9a_speed.rs Cargo.toml

/root/repo/target/debug/deps/libfig9a_speed-e0b51393f3ec47fa.rmeta: crates/bench/src/bin/fig9a_speed.rs Cargo.toml

crates/bench/src/bin/fig9a_speed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
