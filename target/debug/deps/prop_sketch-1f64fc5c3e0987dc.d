/root/repo/target/debug/deps/prop_sketch-1f64fc5c3e0987dc.d: crates/sketch/tests/prop_sketch.rs

/root/repo/target/debug/deps/prop_sketch-1f64fc5c3e0987dc: crates/sketch/tests/prop_sketch.rs

crates/sketch/tests/prop_sketch.rs:
