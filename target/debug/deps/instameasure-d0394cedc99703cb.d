/root/repo/target/debug/deps/instameasure-d0394cedc99703cb.d: src/main.rs

/root/repo/target/debug/deps/instameasure-d0394cedc99703cb: src/main.rs

src/main.rs:
