/root/repo/target/debug/deps/detection_and_baselines-cd9cc2659c7bfe9b.d: tests/detection_and_baselines.rs

/root/repo/target/debug/deps/detection_and_baselines-cd9cc2659c7bfe9b: tests/detection_and_baselines.rs

tests/detection_and_baselines.rs:
