/root/repo/target/debug/deps/fig9a_speed-b79ceeb9bfcf3838.d: crates/bench/src/bin/fig9a_speed.rs

/root/repo/target/debug/deps/fig9a_speed-b79ceeb9bfcf3838: crates/bench/src/bin/fig9a_speed.rs

crates/bench/src/bin/fig9a_speed.rs:
