/root/repo/target/debug/deps/instameasure-7739e65281f1b0bc.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libinstameasure-7739e65281f1b0bc.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
