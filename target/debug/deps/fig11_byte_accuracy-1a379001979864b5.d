/root/repo/target/debug/deps/fig11_byte_accuracy-1a379001979864b5.d: crates/bench/src/bin/fig11_byte_accuracy.rs

/root/repo/target/debug/deps/fig11_byte_accuracy-1a379001979864b5: crates/bench/src/bin/fig11_byte_accuracy.rs

crates/bench/src/bin/fig11_byte_accuracy.rs:
