/root/repo/target/debug/deps/fig13_scatter-0420e8ca1fcb173b.d: crates/bench/src/bin/fig13_scatter.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_scatter-0420e8ca1fcb173b.rmeta: crates/bench/src/bin/fig13_scatter.rs Cargo.toml

crates/bench/src/bin/fig13_scatter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
