/root/repo/target/debug/deps/serde-edaa59e7f5fdac60.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/serde-edaa59e7f5fdac60: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
