/root/repo/target/debug/deps/fig11_byte_accuracy-7d6985e75c2c12fe.d: crates/bench/src/bin/fig11_byte_accuracy.rs

/root/repo/target/debug/deps/fig11_byte_accuracy-7d6985e75c2c12fe: crates/bench/src/bin/fig11_byte_accuracy.rs

crates/bench/src/bin/fig11_byte_accuracy.rs:
