/root/repo/target/debug/deps/instameasure_wsaf-8d50eed38eb02fee.d: crates/wsaf/src/lib.rs crates/wsaf/src/config.rs crates/wsaf/src/table.rs

/root/repo/target/debug/deps/libinstameasure_wsaf-8d50eed38eb02fee.rlib: crates/wsaf/src/lib.rs crates/wsaf/src/config.rs crates/wsaf/src/table.rs

/root/repo/target/debug/deps/libinstameasure_wsaf-8d50eed38eb02fee.rmeta: crates/wsaf/src/lib.rs crates/wsaf/src/config.rs crates/wsaf/src/table.rs

crates/wsaf/src/lib.rs:
crates/wsaf/src/config.rs:
crates/wsaf/src/table.rs:
