/root/repo/target/debug/deps/fig14_hh_fpfn-40a8b5929659b0cb.d: crates/bench/src/bin/fig14_hh_fpfn.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_hh_fpfn-40a8b5929659b0cb.rmeta: crates/bench/src/bin/fig14_hh_fpfn.rs Cargo.toml

crates/bench/src/bin/fig14_hh_fpfn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
