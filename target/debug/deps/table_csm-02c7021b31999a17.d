/root/repo/target/debug/deps/table_csm-02c7021b31999a17.d: crates/bench/src/bin/table_csm.rs Cargo.toml

/root/repo/target/debug/deps/libtable_csm-02c7021b31999a17.rmeta: crates/bench/src/bin/table_csm.rs Cargo.toml

crates/bench/src/bin/table_csm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
