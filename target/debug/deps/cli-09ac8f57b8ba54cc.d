/root/repo/target/debug/deps/cli-09ac8f57b8ba54cc.d: tests/cli.rs

/root/repo/target/debug/deps/cli-09ac8f57b8ba54cc: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_instameasure=/root/repo/target/debug/instameasure
