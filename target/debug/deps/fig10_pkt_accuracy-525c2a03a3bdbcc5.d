/root/repo/target/debug/deps/fig10_pkt_accuracy-525c2a03a3bdbcc5.d: crates/bench/src/bin/fig10_pkt_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_pkt_accuracy-525c2a03a3bdbcc5.rmeta: crates/bench/src/bin/fig10_pkt_accuracy.rs Cargo.toml

crates/bench/src/bin/fig10_pkt_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
