/root/repo/target/debug/deps/instameasure_sketch-422d2fc4d3b23045.d: crates/sketch/src/lib.rs crates/sketch/src/analysis.rs crates/sketch/src/config.rs crates/sketch/src/decode.rs crates/sketch/src/flow_regulator.rs crates/sketch/src/multi_layer.rs crates/sketch/src/rcc.rs crates/sketch/src/regulator.rs

/root/repo/target/debug/deps/instameasure_sketch-422d2fc4d3b23045: crates/sketch/src/lib.rs crates/sketch/src/analysis.rs crates/sketch/src/config.rs crates/sketch/src/decode.rs crates/sketch/src/flow_regulator.rs crates/sketch/src/multi_layer.rs crates/sketch/src/rcc.rs crates/sketch/src/regulator.rs

crates/sketch/src/lib.rs:
crates/sketch/src/analysis.rs:
crates/sketch/src/config.rs:
crates/sketch/src/decode.rs:
crates/sketch/src/flow_regulator.rs:
crates/sketch/src/multi_layer.rs:
crates/sketch/src/rcc.rs:
crates/sketch/src/regulator.rs:
