/root/repo/target/debug/deps/sensitivity-4153cf69853eddde.d: crates/bench/src/bin/sensitivity.rs

/root/repo/target/debug/deps/sensitivity-4153cf69853eddde: crates/bench/src/bin/sensitivity.rs

crates/bench/src/bin/sensitivity.rs:
