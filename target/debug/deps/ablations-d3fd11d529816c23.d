/root/repo/target/debug/deps/ablations-d3fd11d529816c23.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-d3fd11d529816c23: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
