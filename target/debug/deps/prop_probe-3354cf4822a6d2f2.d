/root/repo/target/debug/deps/prop_probe-3354cf4822a6d2f2.d: crates/wsaf/tests/prop_probe.rs Cargo.toml

/root/repo/target/debug/deps/libprop_probe-3354cf4822a6d2f2.rmeta: crates/wsaf/tests/prop_probe.rs Cargo.toml

crates/wsaf/tests/prop_probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
