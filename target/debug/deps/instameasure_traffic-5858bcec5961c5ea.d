/root/repo/target/debug/deps/instameasure_traffic-5858bcec5961c5ea.d: crates/traffic/src/lib.rs crates/traffic/src/attack.rs crates/traffic/src/builder.rs crates/traffic/src/presets.rs crates/traffic/src/stats.rs crates/traffic/src/stream.rs crates/traffic/src/zipf.rs

/root/repo/target/debug/deps/instameasure_traffic-5858bcec5961c5ea: crates/traffic/src/lib.rs crates/traffic/src/attack.rs crates/traffic/src/builder.rs crates/traffic/src/presets.rs crates/traffic/src/stats.rs crates/traffic/src/stream.rs crates/traffic/src/zipf.rs

crates/traffic/src/lib.rs:
crates/traffic/src/attack.rs:
crates/traffic/src/builder.rs:
crates/traffic/src/presets.rs:
crates/traffic/src/stats.rs:
crates/traffic/src/stream.rs:
crates/traffic/src/zipf.rs:
