/root/repo/target/debug/deps/export_and_apps-8e1c9d1bb0513bb1.d: tests/export_and_apps.rs

/root/repo/target/debug/deps/export_and_apps-8e1c9d1bb0513bb1: tests/export_and_apps.rs

tests/export_and_apps.rs:
