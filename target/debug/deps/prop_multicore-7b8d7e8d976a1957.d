/root/repo/target/debug/deps/prop_multicore-7b8d7e8d976a1957.d: crates/core/tests/prop_multicore.rs

/root/repo/target/debug/deps/prop_multicore-7b8d7e8d976a1957: crates/core/tests/prop_multicore.rs

crates/core/tests/prop_multicore.rs:
