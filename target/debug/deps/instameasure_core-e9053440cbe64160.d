/root/repo/target/debug/deps/instameasure_core-e9053440cbe64160.d: crates/core/src/lib.rs crates/core/src/apps.rs crates/core/src/collector.rs crates/core/src/export.rs crates/core/src/heavy_hitter.rs crates/core/src/ingest.rs crates/core/src/latency.rs crates/core/src/metrics.rs crates/core/src/multicore.rs crates/core/src/planner.rs crates/core/src/shared_wsaf.rs crates/core/src/system.rs crates/core/src/windowed.rs Cargo.toml

/root/repo/target/debug/deps/libinstameasure_core-e9053440cbe64160.rmeta: crates/core/src/lib.rs crates/core/src/apps.rs crates/core/src/collector.rs crates/core/src/export.rs crates/core/src/heavy_hitter.rs crates/core/src/ingest.rs crates/core/src/latency.rs crates/core/src/metrics.rs crates/core/src/multicore.rs crates/core/src/planner.rs crates/core/src/shared_wsaf.rs crates/core/src/system.rs crates/core/src/windowed.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/apps.rs:
crates/core/src/collector.rs:
crates/core/src/export.rs:
crates/core/src/heavy_hitter.rs:
crates/core/src/ingest.rs:
crates/core/src/latency.rs:
crates/core/src/metrics.rs:
crates/core/src/multicore.rs:
crates/core/src/planner.rs:
crates/core/src/shared_wsaf.rs:
crates/core/src/system.rs:
crates/core/src/windowed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
