/root/repo/target/debug/deps/fuzz_smoke-f89924df9518682a.d: crates/packet/tests/fuzz_smoke.rs

/root/repo/target/debug/deps/fuzz_smoke-f89924df9518682a: crates/packet/tests/fuzz_smoke.rs

crates/packet/tests/fuzz_smoke.rs:
