/root/repo/target/debug/deps/macros-4f5b6f2ef1f109ff.d: shims/proptest/tests/macros.rs

/root/repo/target/debug/deps/macros-4f5b6f2ef1f109ff: shims/proptest/tests/macros.rs

shims/proptest/tests/macros.rs:
