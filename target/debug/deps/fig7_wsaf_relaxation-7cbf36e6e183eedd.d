/root/repo/target/debug/deps/fig7_wsaf_relaxation-7cbf36e6e183eedd.d: crates/bench/src/bin/fig7_wsaf_relaxation.rs

/root/repo/target/debug/deps/fig7_wsaf_relaxation-7cbf36e6e183eedd: crates/bench/src/bin/fig7_wsaf_relaxation.rs

crates/bench/src/bin/fig7_wsaf_relaxation.rs:
