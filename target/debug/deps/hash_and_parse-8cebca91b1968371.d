/root/repo/target/debug/deps/hash_and_parse-8cebca91b1968371.d: crates/bench/benches/hash_and_parse.rs

/root/repo/target/debug/deps/hash_and_parse-8cebca91b1968371: crates/bench/benches/hash_and_parse.rs

crates/bench/benches/hash_and_parse.rs:
