/root/repo/target/debug/deps/fig9b_latency-1b98760e57358849.d: crates/bench/src/bin/fig9b_latency.rs Cargo.toml

/root/repo/target/debug/deps/libfig9b_latency-1b98760e57358849.rmeta: crates/bench/src/bin/fig9b_latency.rs Cargo.toml

crates/bench/src/bin/fig9b_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
