/root/repo/target/debug/deps/serde-4f0aafdf4a34eb11.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-4f0aafdf4a34eb11.rlib: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-4f0aafdf4a34eb11.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
