/root/repo/target/debug/deps/fig7_wsaf_relaxation-7878e50b40690410.d: crates/bench/src/bin/fig7_wsaf_relaxation.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_wsaf_relaxation-7878e50b40690410.rmeta: crates/bench/src/bin/fig7_wsaf_relaxation.rs Cargo.toml

crates/bench/src/bin/fig7_wsaf_relaxation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
