/root/repo/target/debug/deps/fig9a_speed-077d355e6f74e33b.d: crates/bench/src/bin/fig9a_speed.rs

/root/repo/target/debug/deps/fig9a_speed-077d355e6f74e33b: crates/bench/src/bin/fig9a_speed.rs

crates/bench/src/bin/fig9a_speed.rs:
