/root/repo/target/debug/deps/prop_stream-b5f0fde43a99a24f.d: crates/traffic/tests/prop_stream.rs

/root/repo/target/debug/deps/prop_stream-b5f0fde43a99a24f: crates/traffic/tests/prop_stream.rs

crates/traffic/tests/prop_stream.rs:
