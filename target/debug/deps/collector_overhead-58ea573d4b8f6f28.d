/root/repo/target/debug/deps/collector_overhead-58ea573d4b8f6f28.d: crates/bench/src/bin/collector_overhead.rs

/root/repo/target/debug/deps/collector_overhead-58ea573d4b8f6f28: crates/bench/src/bin/collector_overhead.rs

crates/bench/src/bin/collector_overhead.rs:
