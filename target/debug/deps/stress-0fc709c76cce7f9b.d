/root/repo/target/debug/deps/stress-0fc709c76cce7f9b.d: crates/bench/src/bin/stress.rs

/root/repo/target/debug/deps/stress-0fc709c76cce7f9b: crates/bench/src/bin/stress.rs

crates/bench/src/bin/stress.rs:
