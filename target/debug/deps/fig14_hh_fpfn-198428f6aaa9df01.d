/root/repo/target/debug/deps/fig14_hh_fpfn-198428f6aaa9df01.d: crates/bench/src/bin/fig14_hh_fpfn.rs

/root/repo/target/debug/deps/fig14_hh_fpfn-198428f6aaa9df01: crates/bench/src/bin/fig14_hh_fpfn.rs

crates/bench/src/bin/fig14_hh_fpfn.rs:
