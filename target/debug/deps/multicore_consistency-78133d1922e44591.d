/root/repo/target/debug/deps/multicore_consistency-78133d1922e44591.d: tests/multicore_consistency.rs

/root/repo/target/debug/deps/multicore_consistency-78133d1922e44591: tests/multicore_consistency.rs

tests/multicore_consistency.rs:
