/root/repo/target/debug/deps/zero_copy_ingest-742bd4a119086279.d: tests/zero_copy_ingest.rs tests/support/mod.rs tests/support/oracle.rs

/root/repo/target/debug/deps/zero_copy_ingest-742bd4a119086279: tests/zero_copy_ingest.rs tests/support/mod.rs tests/support/oracle.rs

tests/zero_copy_ingest.rs:
tests/support/mod.rs:
tests/support/oracle.rs:
