/root/repo/target/debug/deps/stress-4f24c8ea6cccf7ab.d: crates/bench/src/bin/stress.rs

/root/repo/target/debug/deps/stress-4f24c8ea6cccf7ab: crates/bench/src/bin/stress.rs

crates/bench/src/bin/stress.rs:
