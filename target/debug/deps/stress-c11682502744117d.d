/root/repo/target/debug/deps/stress-c11682502744117d.d: crates/bench/src/bin/stress.rs

/root/repo/target/debug/deps/stress-c11682502744117d: crates/bench/src/bin/stress.rs

crates/bench/src/bin/stress.rs:
