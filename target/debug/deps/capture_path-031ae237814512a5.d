/root/repo/target/debug/deps/capture_path-031ae237814512a5.d: tests/capture_path.rs Cargo.toml

/root/repo/target/debug/deps/libcapture_path-031ae237814512a5.rmeta: tests/capture_path.rs Cargo.toml

tests/capture_path.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
