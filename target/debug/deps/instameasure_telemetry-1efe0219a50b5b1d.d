/root/repo/target/debug/deps/instameasure_telemetry-1efe0219a50b5b1d.d: crates/telemetry/src/lib.rs crates/telemetry/src/cell.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs

/root/repo/target/debug/deps/instameasure_telemetry-1efe0219a50b5b1d: crates/telemetry/src/lib.rs crates/telemetry/src/cell.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/cell.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/snapshot.rs:
