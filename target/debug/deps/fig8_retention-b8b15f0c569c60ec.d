/root/repo/target/debug/deps/fig8_retention-b8b15f0c569c60ec.d: crates/bench/src/bin/fig8_retention.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_retention-b8b15f0c569c60ec.rmeta: crates/bench/src/bin/fig8_retention.rs Cargo.toml

crates/bench/src/bin/fig8_retention.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
