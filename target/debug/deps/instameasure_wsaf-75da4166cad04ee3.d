/root/repo/target/debug/deps/instameasure_wsaf-75da4166cad04ee3.d: crates/wsaf/src/lib.rs crates/wsaf/src/config.rs crates/wsaf/src/table.rs

/root/repo/target/debug/deps/instameasure_wsaf-75da4166cad04ee3: crates/wsaf/src/lib.rs crates/wsaf/src/config.rs crates/wsaf/src/table.rs

crates/wsaf/src/lib.rs:
crates/wsaf/src/config.rs:
crates/wsaf/src/table.rs:
