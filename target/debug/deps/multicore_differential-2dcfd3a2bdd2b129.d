/root/repo/target/debug/deps/multicore_differential-2dcfd3a2bdd2b129.d: tests/multicore_differential.rs tests/support/mod.rs tests/support/oracle.rs

/root/repo/target/debug/deps/multicore_differential-2dcfd3a2bdd2b129: tests/multicore_differential.rs tests/support/mod.rs tests/support/oracle.rs

tests/multicore_differential.rs:
tests/support/mod.rs:
tests/support/oracle.rs:
