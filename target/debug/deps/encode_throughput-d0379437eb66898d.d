/root/repo/target/debug/deps/encode_throughput-d0379437eb66898d.d: crates/bench/benches/encode_throughput.rs

/root/repo/target/debug/deps/encode_throughput-d0379437eb66898d: crates/bench/benches/encode_throughput.rs

crates/bench/benches/encode_throughput.rs:
