/root/repo/target/debug/deps/run_all-bc0d710c7543d81a.d: crates/bench/src/bin/run_all.rs

/root/repo/target/debug/deps/run_all-bc0d710c7543d81a: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
