/root/repo/target/debug/deps/failure_injection-f1306856de2081a5.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-f1306856de2081a5: tests/failure_injection.rs

tests/failure_injection.rs:
