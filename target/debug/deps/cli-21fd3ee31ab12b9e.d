/root/repo/target/debug/deps/cli-21fd3ee31ab12b9e.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-21fd3ee31ab12b9e.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_instameasure=placeholder:instameasure
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
