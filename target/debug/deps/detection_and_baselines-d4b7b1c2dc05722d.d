/root/repo/target/debug/deps/detection_and_baselines-d4b7b1c2dc05722d.d: tests/detection_and_baselines.rs

/root/repo/target/debug/deps/detection_and_baselines-d4b7b1c2dc05722d: tests/detection_and_baselines.rs

tests/detection_and_baselines.rs:
