/root/repo/target/debug/deps/instameasure_sketch-1945db29f5b17863.d: crates/sketch/src/lib.rs crates/sketch/src/analysis.rs crates/sketch/src/config.rs crates/sketch/src/decode.rs crates/sketch/src/flow_regulator.rs crates/sketch/src/multi_layer.rs crates/sketch/src/rcc.rs crates/sketch/src/regulator.rs

/root/repo/target/debug/deps/instameasure_sketch-1945db29f5b17863: crates/sketch/src/lib.rs crates/sketch/src/analysis.rs crates/sketch/src/config.rs crates/sketch/src/decode.rs crates/sketch/src/flow_regulator.rs crates/sketch/src/multi_layer.rs crates/sketch/src/rcc.rs crates/sketch/src/regulator.rs

crates/sketch/src/lib.rs:
crates/sketch/src/analysis.rs:
crates/sketch/src/config.rs:
crates/sketch/src/decode.rs:
crates/sketch/src/flow_regulator.rs:
crates/sketch/src/multi_layer.rs:
crates/sketch/src/rcc.rs:
crates/sketch/src/regulator.rs:
