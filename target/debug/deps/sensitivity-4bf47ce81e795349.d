/root/repo/target/debug/deps/sensitivity-4bf47ce81e795349.d: crates/bench/src/bin/sensitivity.rs

/root/repo/target/debug/deps/sensitivity-4bf47ce81e795349: crates/bench/src/bin/sensitivity.rs

crates/bench/src/bin/sensitivity.rs:
