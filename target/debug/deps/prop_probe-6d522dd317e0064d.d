/root/repo/target/debug/deps/prop_probe-6d522dd317e0064d.d: crates/wsaf/tests/prop_probe.rs

/root/repo/target/debug/deps/prop_probe-6d522dd317e0064d: crates/wsaf/tests/prop_probe.rs

crates/wsaf/tests/prop_probe.rs:
