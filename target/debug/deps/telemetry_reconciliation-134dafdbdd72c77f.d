/root/repo/target/debug/deps/telemetry_reconciliation-134dafdbdd72c77f.d: tests/telemetry_reconciliation.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_reconciliation-134dafdbdd72c77f.rmeta: tests/telemetry_reconciliation.rs Cargo.toml

tests/telemetry_reconciliation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
