/root/repo/target/debug/deps/run_all-3fcdff3fb03609e1.d: crates/bench/src/bin/run_all.rs

/root/repo/target/debug/deps/run_all-3fcdff3fb03609e1: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
