/root/repo/target/debug/deps/fig12_wild-4acd3d792639d205.d: crates/bench/src/bin/fig12_wild.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_wild-4acd3d792639d205.rmeta: crates/bench/src/bin/fig12_wild.rs Cargo.toml

crates/bench/src/bin/fig12_wild.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
