/root/repo/target/debug/deps/instameasure_sketch-bb77027b5168209d.d: crates/sketch/src/lib.rs crates/sketch/src/analysis.rs crates/sketch/src/config.rs crates/sketch/src/decode.rs crates/sketch/src/flow_regulator.rs crates/sketch/src/multi_layer.rs crates/sketch/src/rcc.rs crates/sketch/src/regulator.rs

/root/repo/target/debug/deps/libinstameasure_sketch-bb77027b5168209d.rlib: crates/sketch/src/lib.rs crates/sketch/src/analysis.rs crates/sketch/src/config.rs crates/sketch/src/decode.rs crates/sketch/src/flow_regulator.rs crates/sketch/src/multi_layer.rs crates/sketch/src/rcc.rs crates/sketch/src/regulator.rs

/root/repo/target/debug/deps/libinstameasure_sketch-bb77027b5168209d.rmeta: crates/sketch/src/lib.rs crates/sketch/src/analysis.rs crates/sketch/src/config.rs crates/sketch/src/decode.rs crates/sketch/src/flow_regulator.rs crates/sketch/src/multi_layer.rs crates/sketch/src/rcc.rs crates/sketch/src/regulator.rs

crates/sketch/src/lib.rs:
crates/sketch/src/analysis.rs:
crates/sketch/src/config.rs:
crates/sketch/src/decode.rs:
crates/sketch/src/flow_regulator.rs:
crates/sketch/src/multi_layer.rs:
crates/sketch/src/rcc.rs:
crates/sketch/src/regulator.rs:
