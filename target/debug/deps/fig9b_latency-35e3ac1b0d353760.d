/root/repo/target/debug/deps/fig9b_latency-35e3ac1b0d353760.d: crates/bench/src/bin/fig9b_latency.rs

/root/repo/target/debug/deps/fig9b_latency-35e3ac1b0d353760: crates/bench/src/bin/fig9b_latency.rs

crates/bench/src/bin/fig9b_latency.rs:
