/root/repo/target/debug/deps/fig12_wild-92bf6659e8555671.d: crates/bench/src/bin/fig12_wild.rs

/root/repo/target/debug/deps/fig12_wild-92bf6659e8555671: crates/bench/src/bin/fig12_wild.rs

crates/bench/src/bin/fig12_wild.rs:
