/root/repo/target/debug/deps/instameasure-6264889f771b8950.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libinstameasure-6264889f771b8950.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
