/root/repo/target/debug/deps/fig1_rcc_saturation-18497099ce7c6cc6.d: crates/bench/src/bin/fig1_rcc_saturation.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_rcc_saturation-18497099ce7c6cc6.rmeta: crates/bench/src/bin/fig1_rcc_saturation.rs Cargo.toml

crates/bench/src/bin/fig1_rcc_saturation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
