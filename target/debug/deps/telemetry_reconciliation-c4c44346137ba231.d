/root/repo/target/debug/deps/telemetry_reconciliation-c4c44346137ba231.d: tests/telemetry_reconciliation.rs

/root/repo/target/debug/deps/telemetry_reconciliation-c4c44346137ba231: tests/telemetry_reconciliation.rs

tests/telemetry_reconciliation.rs:
