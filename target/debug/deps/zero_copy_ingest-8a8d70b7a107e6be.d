/root/repo/target/debug/deps/zero_copy_ingest-8a8d70b7a107e6be.d: tests/zero_copy_ingest.rs tests/support/mod.rs tests/support/oracle.rs Cargo.toml

/root/repo/target/debug/deps/libzero_copy_ingest-8a8d70b7a107e6be.rmeta: tests/zero_copy_ingest.rs tests/support/mod.rs tests/support/oracle.rs Cargo.toml

tests/zero_copy_ingest.rs:
tests/support/mod.rs:
tests/support/oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
