/root/repo/target/debug/deps/prop_sketch-a40da8e579e93747.d: crates/sketch/tests/prop_sketch.rs

/root/repo/target/debug/deps/prop_sketch-a40da8e579e93747: crates/sketch/tests/prop_sketch.rs

crates/sketch/tests/prop_sketch.rs:
