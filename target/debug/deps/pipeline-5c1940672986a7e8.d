/root/repo/target/debug/deps/pipeline-5c1940672986a7e8.d: crates/bench/benches/pipeline.rs

/root/repo/target/debug/deps/pipeline-5c1940672986a7e8: crates/bench/benches/pipeline.rs

crates/bench/benches/pipeline.rs:
