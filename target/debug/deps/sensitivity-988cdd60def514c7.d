/root/repo/target/debug/deps/sensitivity-988cdd60def514c7.d: crates/bench/src/bin/sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libsensitivity-988cdd60def514c7.rmeta: crates/bench/src/bin/sensitivity.rs Cargo.toml

crates/bench/src/bin/sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
