/root/repo/target/debug/deps/fig9a_speed-067a878e766c19a2.d: crates/bench/src/bin/fig9a_speed.rs

/root/repo/target/debug/deps/fig9a_speed-067a878e766c19a2: crates/bench/src/bin/fig9a_speed.rs

crates/bench/src/bin/fig9a_speed.rs:
