/root/repo/target/debug/deps/fig6_distributions-4e8605a92e8990de.d: crates/bench/src/bin/fig6_distributions.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_distributions-4e8605a92e8990de.rmeta: crates/bench/src/bin/fig6_distributions.rs Cargo.toml

crates/bench/src/bin/fig6_distributions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
