/root/repo/target/debug/deps/fig10_pkt_accuracy-32f8ac807f98271b.d: crates/bench/src/bin/fig10_pkt_accuracy.rs

/root/repo/target/debug/deps/fig10_pkt_accuracy-32f8ac807f98271b: crates/bench/src/bin/fig10_pkt_accuracy.rs

crates/bench/src/bin/fig10_pkt_accuracy.rs:
