/root/repo/target/debug/deps/export_and_apps-1651159b03351a51.d: tests/export_and_apps.rs Cargo.toml

/root/repo/target/debug/deps/libexport_and_apps-1651159b03351a51.rmeta: tests/export_and_apps.rs Cargo.toml

tests/export_and_apps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
