/root/repo/target/debug/deps/detection_and_baselines-f6785ceb24365de0.d: tests/detection_and_baselines.rs Cargo.toml

/root/repo/target/debug/deps/libdetection_and_baselines-f6785ceb24365de0.rmeta: tests/detection_and_baselines.rs Cargo.toml

tests/detection_and_baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
