/root/repo/target/debug/deps/prop_roundtrip-cc414082dddfad6e.d: crates/packet/tests/prop_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libprop_roundtrip-cc414082dddfad6e.rmeta: crates/packet/tests/prop_roundtrip.rs Cargo.toml

crates/packet/tests/prop_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
