/root/repo/target/debug/deps/instameasure-4ed368d3fd53c4d2.d: src/lib.rs

/root/repo/target/debug/deps/libinstameasure-4ed368d3fd53c4d2.rlib: src/lib.rs

/root/repo/target/debug/deps/libinstameasure-4ed368d3fd53c4d2.rmeta: src/lib.rs

src/lib.rs:
