/root/repo/target/debug/deps/fig13_scatter-b56eae0af17ea565.d: crates/bench/src/bin/fig13_scatter.rs

/root/repo/target/debug/deps/fig13_scatter-b56eae0af17ea565: crates/bench/src/bin/fig13_scatter.rs

crates/bench/src/bin/fig13_scatter.rs:
