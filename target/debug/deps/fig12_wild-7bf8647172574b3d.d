/root/repo/target/debug/deps/fig12_wild-7bf8647172574b3d.d: crates/bench/src/bin/fig12_wild.rs

/root/repo/target/debug/deps/fig12_wild-7bf8647172574b3d: crates/bench/src/bin/fig12_wild.rs

crates/bench/src/bin/fig12_wild.rs:
