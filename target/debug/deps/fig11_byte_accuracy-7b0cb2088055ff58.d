/root/repo/target/debug/deps/fig11_byte_accuracy-7b0cb2088055ff58.d: crates/bench/src/bin/fig11_byte_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_byte_accuracy-7b0cb2088055ff58.rmeta: crates/bench/src/bin/fig11_byte_accuracy.rs Cargo.toml

crates/bench/src/bin/fig11_byte_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
