/root/repo/target/debug/deps/ablations-343c1b03776cea11.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-343c1b03776cea11: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
