/root/repo/target/debug/deps/prop_wsaf-59cd3d5b0dde1246.d: crates/wsaf/tests/prop_wsaf.rs

/root/repo/target/debug/deps/prop_wsaf-59cd3d5b0dde1246: crates/wsaf/tests/prop_wsaf.rs

crates/wsaf/tests/prop_wsaf.rs:
