/root/repo/target/debug/deps/instameasure-c6391169a3123b37.d: src/lib.rs

/root/repo/target/debug/deps/instameasure-c6391169a3123b37: src/lib.rs

src/lib.rs:
