/root/repo/target/debug/deps/instameasure-e9a8c90bd2b7210d.d: src/main.rs

/root/repo/target/debug/deps/instameasure-e9a8c90bd2b7210d: src/main.rs

src/main.rs:
