/root/repo/target/debug/deps/instameasure_sketch-d8798662bf11f2c9.d: crates/sketch/src/lib.rs crates/sketch/src/analysis.rs crates/sketch/src/config.rs crates/sketch/src/decode.rs crates/sketch/src/flow_regulator.rs crates/sketch/src/multi_layer.rs crates/sketch/src/rcc.rs crates/sketch/src/regulator.rs

/root/repo/target/debug/deps/libinstameasure_sketch-d8798662bf11f2c9.rlib: crates/sketch/src/lib.rs crates/sketch/src/analysis.rs crates/sketch/src/config.rs crates/sketch/src/decode.rs crates/sketch/src/flow_regulator.rs crates/sketch/src/multi_layer.rs crates/sketch/src/rcc.rs crates/sketch/src/regulator.rs

/root/repo/target/debug/deps/libinstameasure_sketch-d8798662bf11f2c9.rmeta: crates/sketch/src/lib.rs crates/sketch/src/analysis.rs crates/sketch/src/config.rs crates/sketch/src/decode.rs crates/sketch/src/flow_regulator.rs crates/sketch/src/multi_layer.rs crates/sketch/src/rcc.rs crates/sketch/src/regulator.rs

crates/sketch/src/lib.rs:
crates/sketch/src/analysis.rs:
crates/sketch/src/config.rs:
crates/sketch/src/decode.rs:
crates/sketch/src/flow_regulator.rs:
crates/sketch/src/multi_layer.rs:
crates/sketch/src/rcc.rs:
crates/sketch/src/regulator.rs:
