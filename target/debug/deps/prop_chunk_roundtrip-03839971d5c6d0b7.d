/root/repo/target/debug/deps/prop_chunk_roundtrip-03839971d5c6d0b7.d: crates/packet/tests/prop_chunk_roundtrip.rs

/root/repo/target/debug/deps/prop_chunk_roundtrip-03839971d5c6d0b7: crates/packet/tests/prop_chunk_roundtrip.rs

crates/packet/tests/prop_chunk_roundtrip.rs:
