/root/repo/target/debug/deps/fig7_wsaf_relaxation-e3e14dbae6ccb400.d: crates/bench/src/bin/fig7_wsaf_relaxation.rs

/root/repo/target/debug/deps/fig7_wsaf_relaxation-e3e14dbae6ccb400: crates/bench/src/bin/fig7_wsaf_relaxation.rs

crates/bench/src/bin/fig7_wsaf_relaxation.rs:
