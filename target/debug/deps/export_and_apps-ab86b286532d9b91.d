/root/repo/target/debug/deps/export_and_apps-ab86b286532d9b91.d: tests/export_and_apps.rs

/root/repo/target/debug/deps/export_and_apps-ab86b286532d9b91: tests/export_and_apps.rs

tests/export_and_apps.rs:
