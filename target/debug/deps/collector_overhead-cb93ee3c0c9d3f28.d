/root/repo/target/debug/deps/collector_overhead-cb93ee3c0c9d3f28.d: crates/bench/src/bin/collector_overhead.rs

/root/repo/target/debug/deps/collector_overhead-cb93ee3c0c9d3f28: crates/bench/src/bin/collector_overhead.rs

crates/bench/src/bin/collector_overhead.rs:
