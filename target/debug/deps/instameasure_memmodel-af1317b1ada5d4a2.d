/root/repo/target/debug/deps/instameasure_memmodel-af1317b1ada5d4a2.d: crates/memmodel/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libinstameasure_memmodel-af1317b1ada5d4a2.rmeta: crates/memmodel/src/lib.rs Cargo.toml

crates/memmodel/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
