/root/repo/target/debug/deps/fig11_byte_accuracy-cd3497beb00a9678.d: crates/bench/src/bin/fig11_byte_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_byte_accuracy-cd3497beb00a9678.rmeta: crates/bench/src/bin/fig11_byte_accuracy.rs Cargo.toml

crates/bench/src/bin/fig11_byte_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
