/root/repo/target/debug/deps/fig8_retention-837e4266884a7237.d: crates/bench/src/bin/fig8_retention.rs

/root/repo/target/debug/deps/fig8_retention-837e4266884a7237: crates/bench/src/bin/fig8_retention.rs

crates/bench/src/bin/fig8_retention.rs:
