/root/repo/target/debug/deps/instameasure-e1361e7047939376.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libinstameasure-e1361e7047939376.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
