/root/repo/target/debug/deps/encode_throughput-40c409500f5a09a7.d: crates/bench/benches/encode_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libencode_throughput-40c409500f5a09a7.rmeta: crates/bench/benches/encode_throughput.rs Cargo.toml

crates/bench/benches/encode_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
