/root/repo/target/debug/deps/prop_wsaf-b8963f82a49c260c.d: crates/wsaf/tests/prop_wsaf.rs

/root/repo/target/debug/deps/prop_wsaf-b8963f82a49c260c: crates/wsaf/tests/prop_wsaf.rs

crates/wsaf/tests/prop_wsaf.rs:
