/root/repo/target/debug/deps/instameasure_core-a48ba82725dc78a2.d: crates/core/src/lib.rs crates/core/src/apps.rs crates/core/src/collector.rs crates/core/src/export.rs crates/core/src/heavy_hitter.rs crates/core/src/ingest.rs crates/core/src/latency.rs crates/core/src/metrics.rs crates/core/src/multicore.rs crates/core/src/planner.rs crates/core/src/shared_wsaf.rs crates/core/src/system.rs crates/core/src/windowed.rs

/root/repo/target/debug/deps/libinstameasure_core-a48ba82725dc78a2.rlib: crates/core/src/lib.rs crates/core/src/apps.rs crates/core/src/collector.rs crates/core/src/export.rs crates/core/src/heavy_hitter.rs crates/core/src/ingest.rs crates/core/src/latency.rs crates/core/src/metrics.rs crates/core/src/multicore.rs crates/core/src/planner.rs crates/core/src/shared_wsaf.rs crates/core/src/system.rs crates/core/src/windowed.rs

/root/repo/target/debug/deps/libinstameasure_core-a48ba82725dc78a2.rmeta: crates/core/src/lib.rs crates/core/src/apps.rs crates/core/src/collector.rs crates/core/src/export.rs crates/core/src/heavy_hitter.rs crates/core/src/ingest.rs crates/core/src/latency.rs crates/core/src/metrics.rs crates/core/src/multicore.rs crates/core/src/planner.rs crates/core/src/shared_wsaf.rs crates/core/src/system.rs crates/core/src/windowed.rs

crates/core/src/lib.rs:
crates/core/src/apps.rs:
crates/core/src/collector.rs:
crates/core/src/export.rs:
crates/core/src/heavy_hitter.rs:
crates/core/src/ingest.rs:
crates/core/src/latency.rs:
crates/core/src/metrics.rs:
crates/core/src/multicore.rs:
crates/core/src/planner.rs:
crates/core/src/shared_wsaf.rs:
crates/core/src/system.rs:
crates/core/src/windowed.rs:
