/root/repo/target/debug/deps/prop_roundtrip-277b6e95a6e7a833.d: crates/packet/tests/prop_roundtrip.rs

/root/repo/target/debug/deps/prop_roundtrip-277b6e95a6e7a833: crates/packet/tests/prop_roundtrip.rs

crates/packet/tests/prop_roundtrip.rs:
