/root/repo/target/debug/deps/instameasure-8208b31e45073fe7.d: src/main.rs

/root/repo/target/debug/deps/instameasure-8208b31e45073fe7: src/main.rs

src/main.rs:
