/root/repo/target/debug/deps/fig8_retention-a0def9ef2ec587c4.d: crates/bench/src/bin/fig8_retention.rs

/root/repo/target/debug/deps/fig8_retention-a0def9ef2ec587c4: crates/bench/src/bin/fig8_retention.rs

crates/bench/src/bin/fig8_retention.rs:
