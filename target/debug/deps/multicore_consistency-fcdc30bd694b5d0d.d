/root/repo/target/debug/deps/multicore_consistency-fcdc30bd694b5d0d.d: tests/multicore_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libmulticore_consistency-fcdc30bd694b5d0d.rmeta: tests/multicore_consistency.rs Cargo.toml

tests/multicore_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
