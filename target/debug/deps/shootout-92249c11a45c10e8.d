/root/repo/target/debug/deps/shootout-92249c11a45c10e8.d: crates/bench/src/bin/shootout.rs Cargo.toml

/root/repo/target/debug/deps/libshootout-92249c11a45c10e8.rmeta: crates/bench/src/bin/shootout.rs Cargo.toml

crates/bench/src/bin/shootout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
