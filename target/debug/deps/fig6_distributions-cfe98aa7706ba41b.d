/root/repo/target/debug/deps/fig6_distributions-cfe98aa7706ba41b.d: crates/bench/src/bin/fig6_distributions.rs

/root/repo/target/debug/deps/fig6_distributions-cfe98aa7706ba41b: crates/bench/src/bin/fig6_distributions.rs

crates/bench/src/bin/fig6_distributions.rs:
