/root/repo/target/debug/deps/fig10_pkt_accuracy-a351bfc7d4db1f45.d: crates/bench/src/bin/fig10_pkt_accuracy.rs

/root/repo/target/debug/deps/fig10_pkt_accuracy-a351bfc7d4db1f45: crates/bench/src/bin/fig10_pkt_accuracy.rs

crates/bench/src/bin/fig10_pkt_accuracy.rs:
