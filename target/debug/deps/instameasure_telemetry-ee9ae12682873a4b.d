/root/repo/target/debug/deps/instameasure_telemetry-ee9ae12682873a4b.d: crates/telemetry/src/lib.rs crates/telemetry/src/cell.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs

/root/repo/target/debug/deps/libinstameasure_telemetry-ee9ae12682873a4b.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/cell.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs

/root/repo/target/debug/deps/libinstameasure_telemetry-ee9ae12682873a4b.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/cell.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/cell.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/snapshot.rs:
