/root/repo/target/debug/deps/prop_stream-d3472fe97100250c.d: crates/traffic/tests/prop_stream.rs Cargo.toml

/root/repo/target/debug/deps/libprop_stream-d3472fe97100250c.rmeta: crates/traffic/tests/prop_stream.rs Cargo.toml

crates/traffic/tests/prop_stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
