/root/repo/target/debug/deps/instameasure_memmodel-44f0155bcc87d053.d: crates/memmodel/src/lib.rs

/root/repo/target/debug/deps/instameasure_memmodel-44f0155bcc87d053: crates/memmodel/src/lib.rs

crates/memmodel/src/lib.rs:
