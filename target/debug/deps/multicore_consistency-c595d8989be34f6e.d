/root/repo/target/debug/deps/multicore_consistency-c595d8989be34f6e.d: tests/multicore_consistency.rs

/root/repo/target/debug/deps/multicore_consistency-c595d8989be34f6e: tests/multicore_consistency.rs

tests/multicore_consistency.rs:
