/root/repo/target/debug/deps/prop_wsaf-14c3964c171d1715.d: crates/wsaf/tests/prop_wsaf.rs Cargo.toml

/root/repo/target/debug/deps/libprop_wsaf-14c3964c171d1715.rmeta: crates/wsaf/tests/prop_wsaf.rs Cargo.toml

crates/wsaf/tests/prop_wsaf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
