/root/repo/target/debug/deps/prop_sketch-895d87313d66a9bc.d: crates/sketch/tests/prop_sketch.rs Cargo.toml

/root/repo/target/debug/deps/libprop_sketch-895d87313d66a9bc.rmeta: crates/sketch/tests/prop_sketch.rs Cargo.toml

crates/sketch/tests/prop_sketch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
