/root/repo/target/debug/deps/instameasure_core-4545238dbc5210cd.d: crates/core/src/lib.rs crates/core/src/apps.rs crates/core/src/collector.rs crates/core/src/export.rs crates/core/src/heavy_hitter.rs crates/core/src/ingest.rs crates/core/src/latency.rs crates/core/src/metrics.rs crates/core/src/multicore.rs crates/core/src/planner.rs crates/core/src/shared_wsaf.rs crates/core/src/system.rs crates/core/src/windowed.rs

/root/repo/target/debug/deps/instameasure_core-4545238dbc5210cd: crates/core/src/lib.rs crates/core/src/apps.rs crates/core/src/collector.rs crates/core/src/export.rs crates/core/src/heavy_hitter.rs crates/core/src/ingest.rs crates/core/src/latency.rs crates/core/src/metrics.rs crates/core/src/multicore.rs crates/core/src/planner.rs crates/core/src/shared_wsaf.rs crates/core/src/system.rs crates/core/src/windowed.rs

crates/core/src/lib.rs:
crates/core/src/apps.rs:
crates/core/src/collector.rs:
crates/core/src/export.rs:
crates/core/src/heavy_hitter.rs:
crates/core/src/ingest.rs:
crates/core/src/latency.rs:
crates/core/src/metrics.rs:
crates/core/src/multicore.rs:
crates/core/src/planner.rs:
crates/core/src/shared_wsaf.rs:
crates/core/src/system.rs:
crates/core/src/windowed.rs:
