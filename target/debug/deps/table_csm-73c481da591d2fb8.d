/root/repo/target/debug/deps/table_csm-73c481da591d2fb8.d: crates/bench/src/bin/table_csm.rs Cargo.toml

/root/repo/target/debug/deps/libtable_csm-73c481da591d2fb8.rmeta: crates/bench/src/bin/table_csm.rs Cargo.toml

crates/bench/src/bin/table_csm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
