/root/repo/target/debug/deps/capture_path-7007ae78854b0a56.d: tests/capture_path.rs

/root/repo/target/debug/deps/capture_path-7007ae78854b0a56: tests/capture_path.rs

tests/capture_path.rs:
