/root/repo/target/debug/deps/fig1_rcc_saturation-190ca5ccabc01a41.d: crates/bench/src/bin/fig1_rcc_saturation.rs

/root/repo/target/debug/deps/fig1_rcc_saturation-190ca5ccabc01a41: crates/bench/src/bin/fig1_rcc_saturation.rs

crates/bench/src/bin/fig1_rcc_saturation.rs:
