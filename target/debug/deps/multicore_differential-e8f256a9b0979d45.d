/root/repo/target/debug/deps/multicore_differential-e8f256a9b0979d45.d: tests/multicore_differential.rs tests/support/mod.rs tests/support/oracle.rs Cargo.toml

/root/repo/target/debug/deps/libmulticore_differential-e8f256a9b0979d45.rmeta: tests/multicore_differential.rs tests/support/mod.rs tests/support/oracle.rs Cargo.toml

tests/multicore_differential.rs:
tests/support/mod.rs:
tests/support/oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
