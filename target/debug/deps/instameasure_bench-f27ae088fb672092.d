/root/repo/target/debug/deps/instameasure_bench-f27ae088fb672092.d: crates/bench/src/lib.rs crates/bench/src/figs/mod.rs crates/bench/src/figs/ablations.rs crates/bench/src/figs/fig1.rs crates/bench/src/figs/fig10_11.rs crates/bench/src/figs/fig12.rs crates/bench/src/figs/fig13.rs crates/bench/src/figs/fig14.rs crates/bench/src/figs/fig6.rs crates/bench/src/figs/fig7.rs crates/bench/src/figs/fig8.rs crates/bench/src/figs/fig9a.rs crates/bench/src/figs/fig9b.rs crates/bench/src/figs/overhead.rs crates/bench/src/figs/sensitivity.rs crates/bench/src/figs/shootout.rs crates/bench/src/figs/table_csm.rs Cargo.toml

/root/repo/target/debug/deps/libinstameasure_bench-f27ae088fb672092.rmeta: crates/bench/src/lib.rs crates/bench/src/figs/mod.rs crates/bench/src/figs/ablations.rs crates/bench/src/figs/fig1.rs crates/bench/src/figs/fig10_11.rs crates/bench/src/figs/fig12.rs crates/bench/src/figs/fig13.rs crates/bench/src/figs/fig14.rs crates/bench/src/figs/fig6.rs crates/bench/src/figs/fig7.rs crates/bench/src/figs/fig8.rs crates/bench/src/figs/fig9a.rs crates/bench/src/figs/fig9b.rs crates/bench/src/figs/overhead.rs crates/bench/src/figs/sensitivity.rs crates/bench/src/figs/shootout.rs crates/bench/src/figs/table_csm.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figs/mod.rs:
crates/bench/src/figs/ablations.rs:
crates/bench/src/figs/fig1.rs:
crates/bench/src/figs/fig10_11.rs:
crates/bench/src/figs/fig12.rs:
crates/bench/src/figs/fig13.rs:
crates/bench/src/figs/fig14.rs:
crates/bench/src/figs/fig6.rs:
crates/bench/src/figs/fig7.rs:
crates/bench/src/figs/fig8.rs:
crates/bench/src/figs/fig9a.rs:
crates/bench/src/figs/fig9b.rs:
crates/bench/src/figs/overhead.rs:
crates/bench/src/figs/sensitivity.rs:
crates/bench/src/figs/shootout.rs:
crates/bench/src/figs/table_csm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
