/root/repo/target/debug/deps/instameasure-8cba2761545d0aeb.d: src/main.rs

/root/repo/target/debug/deps/instameasure-8cba2761545d0aeb: src/main.rs

src/main.rs:
