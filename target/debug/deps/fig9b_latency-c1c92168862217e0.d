/root/repo/target/debug/deps/fig9b_latency-c1c92168862217e0.d: crates/bench/src/bin/fig9b_latency.rs

/root/repo/target/debug/deps/fig9b_latency-c1c92168862217e0: crates/bench/src/bin/fig9b_latency.rs

crates/bench/src/bin/fig9b_latency.rs:
