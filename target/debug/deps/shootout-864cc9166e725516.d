/root/repo/target/debug/deps/shootout-864cc9166e725516.d: crates/bench/src/bin/shootout.rs

/root/repo/target/debug/deps/shootout-864cc9166e725516: crates/bench/src/bin/shootout.rs

crates/bench/src/bin/shootout.rs:
