/root/repo/target/debug/deps/instameasure_sketch-5744c11b9973fa2d.d: crates/sketch/src/lib.rs crates/sketch/src/analysis.rs crates/sketch/src/config.rs crates/sketch/src/decode.rs crates/sketch/src/flow_regulator.rs crates/sketch/src/multi_layer.rs crates/sketch/src/rcc.rs crates/sketch/src/regulator.rs Cargo.toml

/root/repo/target/debug/deps/libinstameasure_sketch-5744c11b9973fa2d.rmeta: crates/sketch/src/lib.rs crates/sketch/src/analysis.rs crates/sketch/src/config.rs crates/sketch/src/decode.rs crates/sketch/src/flow_regulator.rs crates/sketch/src/multi_layer.rs crates/sketch/src/rcc.rs crates/sketch/src/regulator.rs Cargo.toml

crates/sketch/src/lib.rs:
crates/sketch/src/analysis.rs:
crates/sketch/src/config.rs:
crates/sketch/src/decode.rs:
crates/sketch/src/flow_regulator.rs:
crates/sketch/src/multi_layer.rs:
crates/sketch/src/rcc.rs:
crates/sketch/src/regulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
