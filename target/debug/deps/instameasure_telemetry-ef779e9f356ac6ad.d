/root/repo/target/debug/deps/instameasure_telemetry-ef779e9f356ac6ad.d: crates/telemetry/src/lib.rs crates/telemetry/src/cell.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs Cargo.toml

/root/repo/target/debug/deps/libinstameasure_telemetry-ef779e9f356ac6ad.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/cell.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/cell.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/snapshot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
