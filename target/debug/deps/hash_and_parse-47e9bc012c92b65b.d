/root/repo/target/debug/deps/hash_and_parse-47e9bc012c92b65b.d: crates/bench/benches/hash_and_parse.rs Cargo.toml

/root/repo/target/debug/deps/libhash_and_parse-47e9bc012c92b65b.rmeta: crates/bench/benches/hash_and_parse.rs Cargo.toml

crates/bench/benches/hash_and_parse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
