/root/repo/target/debug/deps/prop_multicore-8304fdb4d515482f.d: crates/core/tests/prop_multicore.rs Cargo.toml

/root/repo/target/debug/deps/libprop_multicore-8304fdb4d515482f.rmeta: crates/core/tests/prop_multicore.rs Cargo.toml

crates/core/tests/prop_multicore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
