/root/repo/target/debug/deps/end_to_end_accuracy-5f15fd886f19bcec.d: tests/end_to_end_accuracy.rs

/root/repo/target/debug/deps/end_to_end_accuracy-5f15fd886f19bcec: tests/end_to_end_accuracy.rs

tests/end_to_end_accuracy.rs:
