/root/repo/target/debug/deps/zero_alloc-0574cef8204e022d.d: crates/packet/tests/zero_alloc.rs

/root/repo/target/debug/deps/zero_alloc-0574cef8204e022d: crates/packet/tests/zero_alloc.rs

crates/packet/tests/zero_alloc.rs:
