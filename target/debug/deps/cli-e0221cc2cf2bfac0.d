/root/repo/target/debug/deps/cli-e0221cc2cf2bfac0.d: tests/cli.rs

/root/repo/target/debug/deps/cli-e0221cc2cf2bfac0: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_instameasure=/root/repo/target/debug/instameasure
