/root/repo/target/debug/deps/instameasure_packet-3ebdfbff7b42bd0c.d: crates/packet/src/lib.rs crates/packet/src/chunk.rs crates/packet/src/counter.rs crates/packet/src/error.rs crates/packet/src/fuzzing.rs crates/packet/src/hash.rs crates/packet/src/ipv6.rs crates/packet/src/key.rs crates/packet/src/mmap.rs crates/packet/src/parse.rs crates/packet/src/pcap.rs crates/packet/src/synth.rs

/root/repo/target/debug/deps/libinstameasure_packet-3ebdfbff7b42bd0c.rlib: crates/packet/src/lib.rs crates/packet/src/chunk.rs crates/packet/src/counter.rs crates/packet/src/error.rs crates/packet/src/fuzzing.rs crates/packet/src/hash.rs crates/packet/src/ipv6.rs crates/packet/src/key.rs crates/packet/src/mmap.rs crates/packet/src/parse.rs crates/packet/src/pcap.rs crates/packet/src/synth.rs

/root/repo/target/debug/deps/libinstameasure_packet-3ebdfbff7b42bd0c.rmeta: crates/packet/src/lib.rs crates/packet/src/chunk.rs crates/packet/src/counter.rs crates/packet/src/error.rs crates/packet/src/fuzzing.rs crates/packet/src/hash.rs crates/packet/src/ipv6.rs crates/packet/src/key.rs crates/packet/src/mmap.rs crates/packet/src/parse.rs crates/packet/src/pcap.rs crates/packet/src/synth.rs

crates/packet/src/lib.rs:
crates/packet/src/chunk.rs:
crates/packet/src/counter.rs:
crates/packet/src/error.rs:
crates/packet/src/fuzzing.rs:
crates/packet/src/hash.rs:
crates/packet/src/ipv6.rs:
crates/packet/src/key.rs:
crates/packet/src/mmap.rs:
crates/packet/src/parse.rs:
crates/packet/src/pcap.rs:
crates/packet/src/synth.rs:
