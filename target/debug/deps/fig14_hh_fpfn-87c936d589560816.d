/root/repo/target/debug/deps/fig14_hh_fpfn-87c936d589560816.d: crates/bench/src/bin/fig14_hh_fpfn.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_hh_fpfn-87c936d589560816.rmeta: crates/bench/src/bin/fig14_hh_fpfn.rs Cargo.toml

crates/bench/src/bin/fig14_hh_fpfn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
