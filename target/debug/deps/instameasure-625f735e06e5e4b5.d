/root/repo/target/debug/deps/instameasure-625f735e06e5e4b5.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libinstameasure-625f735e06e5e4b5.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
