/root/repo/target/debug/deps/instameasure_packet-e8c2ca0007474ce9.d: crates/packet/src/lib.rs crates/packet/src/chunk.rs crates/packet/src/counter.rs crates/packet/src/error.rs crates/packet/src/fuzzing.rs crates/packet/src/hash.rs crates/packet/src/ipv6.rs crates/packet/src/key.rs crates/packet/src/mmap.rs crates/packet/src/parse.rs crates/packet/src/pcap.rs crates/packet/src/synth.rs Cargo.toml

/root/repo/target/debug/deps/libinstameasure_packet-e8c2ca0007474ce9.rmeta: crates/packet/src/lib.rs crates/packet/src/chunk.rs crates/packet/src/counter.rs crates/packet/src/error.rs crates/packet/src/fuzzing.rs crates/packet/src/hash.rs crates/packet/src/ipv6.rs crates/packet/src/key.rs crates/packet/src/mmap.rs crates/packet/src/parse.rs crates/packet/src/pcap.rs crates/packet/src/synth.rs Cargo.toml

crates/packet/src/lib.rs:
crates/packet/src/chunk.rs:
crates/packet/src/counter.rs:
crates/packet/src/error.rs:
crates/packet/src/fuzzing.rs:
crates/packet/src/hash.rs:
crates/packet/src/ipv6.rs:
crates/packet/src/key.rs:
crates/packet/src/mmap.rs:
crates/packet/src/parse.rs:
crates/packet/src/pcap.rs:
crates/packet/src/synth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
