/root/repo/target/debug/deps/fuzz_smoke-ba941642229d981c.d: crates/packet/tests/fuzz_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libfuzz_smoke-ba941642229d981c.rmeta: crates/packet/tests/fuzz_smoke.rs Cargo.toml

crates/packet/tests/fuzz_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
