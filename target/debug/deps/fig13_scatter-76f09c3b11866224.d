/root/repo/target/debug/deps/fig13_scatter-76f09c3b11866224.d: crates/bench/src/bin/fig13_scatter.rs

/root/repo/target/debug/deps/fig13_scatter-76f09c3b11866224: crates/bench/src/bin/fig13_scatter.rs

crates/bench/src/bin/fig13_scatter.rs:
