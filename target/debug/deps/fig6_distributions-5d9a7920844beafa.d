/root/repo/target/debug/deps/fig6_distributions-5d9a7920844beafa.d: crates/bench/src/bin/fig6_distributions.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_distributions-5d9a7920844beafa.rmeta: crates/bench/src/bin/fig6_distributions.rs Cargo.toml

crates/bench/src/bin/fig6_distributions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
