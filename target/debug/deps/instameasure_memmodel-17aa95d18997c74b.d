/root/repo/target/debug/deps/instameasure_memmodel-17aa95d18997c74b.d: crates/memmodel/src/lib.rs

/root/repo/target/debug/deps/libinstameasure_memmodel-17aa95d18997c74b.rlib: crates/memmodel/src/lib.rs

/root/repo/target/debug/deps/libinstameasure_memmodel-17aa95d18997c74b.rmeta: crates/memmodel/src/lib.rs

crates/memmodel/src/lib.rs:
