/root/repo/target/debug/deps/fig12_wild-5c88a5b8aeb3ef92.d: crates/bench/src/bin/fig12_wild.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_wild-5c88a5b8aeb3ef92.rmeta: crates/bench/src/bin/fig12_wild.rs Cargo.toml

crates/bench/src/bin/fig12_wild.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
