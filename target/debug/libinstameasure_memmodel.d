/root/repo/target/debug/libinstameasure_memmodel.rlib: /root/repo/crates/memmodel/src/lib.rs
