/root/repo/target/debug/examples/anomaly_scan-ba9f664859951092.d: examples/anomaly_scan.rs Cargo.toml

/root/repo/target/debug/examples/libanomaly_scan-ba9f664859951092.rmeta: examples/anomaly_scan.rs Cargo.toml

examples/anomaly_scan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
