/root/repo/target/debug/examples/gateway_multicore-b65e2da781161a37.d: examples/gateway_multicore.rs

/root/repo/target/debug/examples/gateway_multicore-b65e2da781161a37: examples/gateway_multicore.rs

examples/gateway_multicore.rs:
