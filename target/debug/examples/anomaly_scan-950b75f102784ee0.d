/root/repo/target/debug/examples/anomaly_scan-950b75f102784ee0.d: examples/anomaly_scan.rs

/root/repo/target/debug/examples/anomaly_scan-950b75f102784ee0: examples/anomaly_scan.rs

examples/anomaly_scan.rs:
