/root/repo/target/debug/examples/pcap_roundtrip-1c6f3da3406cf507.d: examples/pcap_roundtrip.rs Cargo.toml

/root/repo/target/debug/examples/libpcap_roundtrip-1c6f3da3406cf507.rmeta: examples/pcap_roundtrip.rs Cargo.toml

examples/pcap_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
