/root/repo/target/debug/examples/anomaly_scan-0859ee90bee007a9.d: examples/anomaly_scan.rs

/root/repo/target/debug/examples/anomaly_scan-0859ee90bee007a9: examples/anomaly_scan.rs

examples/anomaly_scan.rs:
