/root/repo/target/debug/examples/ddos_detection-8193c17e2ae3975c.d: examples/ddos_detection.rs

/root/repo/target/debug/examples/ddos_detection-8193c17e2ae3975c: examples/ddos_detection.rs

examples/ddos_detection.rs:
