/root/repo/target/debug/examples/pcap_roundtrip-2c56f24425b56b6c.d: examples/pcap_roundtrip.rs

/root/repo/target/debug/examples/pcap_roundtrip-2c56f24425b56b6c: examples/pcap_roundtrip.rs

examples/pcap_roundtrip.rs:
