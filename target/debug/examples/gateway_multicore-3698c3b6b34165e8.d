/root/repo/target/debug/examples/gateway_multicore-3698c3b6b34165e8.d: examples/gateway_multicore.rs Cargo.toml

/root/repo/target/debug/examples/libgateway_multicore-3698c3b6b34165e8.rmeta: examples/gateway_multicore.rs Cargo.toml

examples/gateway_multicore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
