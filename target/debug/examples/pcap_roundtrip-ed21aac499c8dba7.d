/root/repo/target/debug/examples/pcap_roundtrip-ed21aac499c8dba7.d: examples/pcap_roundtrip.rs

/root/repo/target/debug/examples/pcap_roundtrip-ed21aac499c8dba7: examples/pcap_roundtrip.rs

examples/pcap_roundtrip.rs:
