/root/repo/target/debug/examples/quickstart-55885343da075e52.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-55885343da075e52: examples/quickstart.rs

examples/quickstart.rs:
