/root/repo/target/debug/examples/deployment_planner-5ff793c8f17e899b.d: examples/deployment_planner.rs

/root/repo/target/debug/examples/deployment_planner-5ff793c8f17e899b: examples/deployment_planner.rs

examples/deployment_planner.rs:
