/root/repo/target/debug/examples/quickstart-3d71ae4485902248.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-3d71ae4485902248: examples/quickstart.rs

examples/quickstart.rs:
