/root/repo/target/debug/examples/deployment_planner-55e9924f2f3c8aba.d: examples/deployment_planner.rs Cargo.toml

/root/repo/target/debug/examples/libdeployment_planner-55e9924f2f3c8aba.rmeta: examples/deployment_planner.rs Cargo.toml

examples/deployment_planner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
