/root/repo/target/debug/examples/ddos_detection-6710d35c4e48cd5e.d: examples/ddos_detection.rs

/root/repo/target/debug/examples/ddos_detection-6710d35c4e48cd5e: examples/ddos_detection.rs

examples/ddos_detection.rs:
