/root/repo/target/debug/examples/ddos_detection-dd2a13673eecaa3b.d: examples/ddos_detection.rs Cargo.toml

/root/repo/target/debug/examples/libddos_detection-dd2a13673eecaa3b.rmeta: examples/ddos_detection.rs Cargo.toml

examples/ddos_detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
