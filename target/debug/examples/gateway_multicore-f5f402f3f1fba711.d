/root/repo/target/debug/examples/gateway_multicore-f5f402f3f1fba711.d: examples/gateway_multicore.rs

/root/repo/target/debug/examples/gateway_multicore-f5f402f3f1fba711: examples/gateway_multicore.rs

examples/gateway_multicore.rs:
