/root/repo/target/debug/examples/deployment_planner-99ecf5034f5eb2a0.d: examples/deployment_planner.rs

/root/repo/target/debug/examples/deployment_planner-99ecf5034f5eb2a0: examples/deployment_planner.rs

examples/deployment_planner.rs:
