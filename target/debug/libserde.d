/root/repo/target/debug/libserde.rlib: /root/repo/shims/serde/src/lib.rs
