//! Integration and property tests for flow-record export and the WSAF
//! applications.

use instameasure::core::apps::normalized_entropy;
use instameasure::core::export::{
    decode_records, encode_records, snapshot, ExportError, FlowRecord,
};
use instameasure::core::{InstaMeasure, InstaMeasureConfig};
use instameasure::packet::FlowKey;
use instameasure::sketch::SketchConfig;
use instameasure::traffic::presets::caida_like;
use instameasure::wsaf::WsafConfig;
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = FlowRecord> {
    (any::<[u8; 13]>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
        |(kb, packets, bytes, a, b)| FlowRecord {
            key: FlowKey::from_bytes(kb),
            packets,
            bytes,
            first_ts: a.min(b),
            last_ts: a.max(b),
        },
    )
}

proptest! {
    #[test]
    fn codec_roundtrips_arbitrary_batches(records in prop::collection::vec(arb_record(), 0..200)) {
        let bytes = encode_records(&records);
        prop_assert_eq!(decode_records(&bytes).unwrap(), records);
    }

    #[test]
    fn decoder_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_records(&data);
    }

    #[test]
    fn truncation_is_always_detected(
        records in prop::collection::vec(arb_record(), 1..20),
        cut in 1usize..30,
    ) {
        let bytes = encode_records(&records);
        let cut = cut.min(bytes.len() - 1);
        let short = &bytes[..bytes.len() - cut];
        let truncated = matches!(decode_records(short), Err(ExportError::Truncated { .. }));
        prop_assert!(truncated, "cut {} bytes undetected", cut);
    }
}

#[test]
fn long_run_with_periodic_drain_keeps_history_complete() {
    // Simulate a long deployment: periodically drain expired flows to an
    // export log; at the end, exported history + live table must cover
    // every elephant the trace contained.
    let trace = caida_like(0.01, 77);
    let virtual_epoch = 1_000_000_000u64;
    let cfg = InstaMeasureConfig::default()
        .with_sketch(SketchConfig::builder().memory_bytes(8 * 1024).build().unwrap())
        .with_wsaf(
            WsafConfig::builder().entries_log2(12).expiry_nanos(virtual_epoch).build().unwrap(),
        );
    let mut im = InstaMeasure::new(cfg);
    let mut history = Vec::new();
    let mut next_drain = virtual_epoch;
    for r in &trace.records {
        if r.ts_nanos >= next_drain {
            history.extend(im.drain_expired(r.ts_nanos));
            next_drain += virtual_epoch;
        }
        im.process(r);
    }
    history.extend(snapshot(im.wsaf()));

    // Every elephant (well above retention) appears in the history with a
    // sane total.
    let min_size = 500u64;
    let mut by_key = std::collections::HashMap::new();
    for rec in &history {
        *by_key.entry(rec.key).or_insert(0u64) += rec.packets;
    }
    for (key, truth) in trace.stats.truth.flows_at_least(min_size) {
        let exported = by_key.get(&key).copied().unwrap_or(0);
        let rel = (exported as f64 - truth as f64).abs() / truth as f64;
        assert!(rel < 0.30, "flow {key}: exported {exported} vs {truth}");
    }

    // The export log round-trips through the codec.
    let encoded = encode_records(&history);
    assert_eq!(decode_records(&encoded).unwrap().len(), history.len());
}

#[test]
fn entropy_is_stable_across_seeds() {
    // The same workload shape must give similar entropy regardless of
    // hashing seeds — entropy is a traffic property, not a sketch one.
    let mut values = Vec::new();
    for seed in [1u64, 2, 3] {
        let trace = caida_like(0.01, 99); // same trace
        let cfg = InstaMeasureConfig::default()
            .with_sketch(SketchConfig::builder().memory_bytes(8 * 1024).seed(seed).build().unwrap())
            .with_wsaf(WsafConfig::builder().entries_log2(12).seed(seed).build().unwrap());
        let mut im = InstaMeasure::new(cfg);
        for r in &trace.records {
            im.process(r);
        }
        values.push(normalized_entropy(im.wsaf()));
    }
    let spread = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - values.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(spread < 0.1, "entropy spread {spread} across seeds: {values:?}");
}
