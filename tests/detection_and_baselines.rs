//! Detection behaviour and baseline comparisons across crates.

use std::collections::HashMap;

use instameasure::baselines::{CsmConfig, CsmSketch, PerFlowCounter, SampledNetflow};
use instameasure::core::heavy_hitter::{HeavyHitterDetector, HhMetric};
use instameasure::core::latency::{compare_detection_latency, DelegationParams};
use instameasure::core::{InstaMeasure, InstaMeasureConfig};
use instameasure::traffic::attack::{attacker_key, constant_rate_flow};
use instameasure::traffic::presets::caida_like;
use instameasure::traffic::{merge_records, SyntheticTraceBuilder};

#[test]
fn decoding_disciplines_are_strictly_ordered() {
    let background = SyntheticTraceBuilder::new()
        .num_flows(1_000)
        .max_flow_size(500)
        .duration_secs(1.0)
        .seed(31)
        .build()
        .records;
    let attack = constant_rate_flow(attacker_key(4), 80_000, 64, 0, 1_000_000_000);
    let records = merge_records(vec![background, attack]);
    let cmp = compare_detection_latency(
        &records,
        &attacker_key(4),
        500.0,
        InstaMeasureConfig::default().small_for_tests(),
        DelegationParams::default(),
    );
    let truth = cmp.truth_crossing.unwrap();
    let pa = cmp.packet_arrival.unwrap();
    let sat = cmp.saturation.unwrap();
    let del = cmp.delegation.unwrap();
    assert_eq!(pa, truth, "packet-arrival baseline counts exactly");
    // Estimator overshoot can fire the saturation check marginally early;
    // it must never lag the ideal by more than one retention cycle.
    assert!(sat + 1_000_000 >= pa, "sat {sat} far before pa {pa}");
    assert!(sat < del, "delegation pays the collector round-trip");
    // The paper's bound: saturation lag under 10 ms at this rate.
    let lag = cmp.saturation_delay_nanos().unwrap();
    assert!(lag < 10_000_000, "saturation lag {lag} ns");
}

#[test]
fn heavy_hitter_detection_has_low_fp_fn_on_zipf_traffic() {
    let trace = caida_like(0.01, 37);
    // The threshold must sit well above the FlowRegulator's retention
    // capacity (~100 packets): below it, flows legitimately live only in
    // the sketch and never reach the WSAF detector. The paper's
    // thresholds (0.05% of link capacity over the window) are orders of
    // magnitude above retention.
    let threshold = (trace.stats.packets as f64 * 0.01).max(400.0);
    let mut det = HeavyHitterDetector::new(
        InstaMeasureConfig::default().small_for_tests(),
        HhMetric::Packets,
        threshold,
    );
    for r in &trace.records {
        det.process(r);
    }
    det.finalize();
    let truth: HashMap<_, _> =
        trace.stats.truth.packets.iter().map(|(k, &v)| (*k, v as f64)).collect();
    // Borderline band: threshold-straddling flows are classified by
    // estimator noise, not design. At this scaled-down threshold (~1200
    // packets) the estimator's relative error is a few percent, so the
    // band is wider than at paper scale (where thresholds are ~100x).
    let rates = det.evaluate_with_margin(&truth, trace.stats.flows, 0.20);
    assert!(rates.false_negative < 0.05, "fn {}", rates.false_negative);
    assert!(rates.false_positive < 0.005, "fp {}", rates.false_positive);
    assert!(rates.positives > 0, "threshold must select some heavy hitters");
}

#[test]
fn instameasure_beats_sampled_netflow_on_elephants_with_less_state() {
    let trace = caida_like(0.01, 41);
    let mut im = InstaMeasure::new(InstaMeasureConfig::default().small_for_tests());
    let mut nf = SampledNetflow::new(100);
    for r in &trace.records {
        im.process(r);
        nf.record(r);
    }
    let top = trace.stats.truth.top_k(100, false);
    let err = |est: f64, t: u64| (est - t as f64).abs() / t as f64;
    let im_err: f64 =
        top.iter().map(|(k, t)| err(im.estimate_packets(k), *t)).sum::<f64>() / top.len() as f64;
    let nf_err: f64 =
        top.iter().map(|(k, t)| err(nf.estimate_packets(k), *t)).sum::<f64>() / top.len() as f64;
    assert!(
        im_err < nf_err,
        "InstaMeasure {im_err} must beat 1:100 sampling {nf_err} on the top-100"
    );
}

#[test]
fn instameasure_beats_csm_at_top_1000() {
    let trace = caida_like(0.01, 43);
    let mut im = InstaMeasure::new(InstaMeasureConfig::default().small_for_tests());
    let mut csm = CsmSketch::new(CsmConfig { num_counters: 1 << 18, vector_len: 500, seed: 43 });
    for r in &trace.records {
        im.process(r);
        csm.record(r);
    }
    let top = trace.stats.truth.top_k(1000, false);
    let err = |est: f64, t: u64| (est - t as f64).abs() / t as f64;
    let im_err: f64 =
        top.iter().map(|(k, t)| err(im.estimate_packets(k), *t)).sum::<f64>() / top.len() as f64;
    let csm_err: f64 =
        top.iter().map(|(k, t)| err(csm.estimate_packets(k), *t)).sum::<f64>() / top.len() as f64;
    assert!(
        im_err < csm_err,
        "InstaMeasure {im_err} must beat CSM {csm_err} at top-1000 (paper SS V-C)"
    );
}
