//! Trait-conformance differential suite for the pluggable filter front
//! end.
//!
//! The redesign moved [`InstaMeasure`] from a hard-wired `FlowRegulator`
//! field to the [`FlowFilter`] trait behind [`FilterKind`]. These tests
//! pin down the contract that made the change safe:
//!
//! 1. the default kind ([`FilterKind::Regulator`]) is **bit-identical**
//!    to the pre-refactor pipeline — reconstructed here by hand-composing
//!    a `FlowRegulator` with a `WsafTable` exactly the way the old
//!    `InstaMeasure::process`/`process_batch` did;
//! 2. every kind's batched path is bit-identical to its scalar path at
//!    any batch size, through the whole system;
//! 3. every kind survives the multi-core dispatch differential: each
//!    shard of `run_multicore` matches a single-core replay of that
//!    shard's sub-stream.

mod support;

use instameasure::core::export::{encode_records, snapshot};
use instameasure::core::multicore::{run_multicore, MultiCoreConfig};
use instameasure::core::{InstaMeasure, InstaMeasureConfig};
use instameasure::packet::{FlowDigest, FlowKey, PacketRecord, Protocol};
use instameasure::sketch::{FilterKind, FilterStats, FlowFilter, FlowRegulator, ALL_FILTER_KINDS};
use instameasure::traffic::presets::caida_like;
use instameasure::wsaf::{WsafDeposit, WsafTable};
use support::oracle::{
    assert_identical_measurement, decode_output, replay, replay_batched, shard_records,
    test_worker_counts,
};

fn cfg(kind: FilterKind) -> InstaMeasureConfig {
    InstaMeasureConfig::default().small_for_tests().with_filter(kind)
}

/// The pipeline exactly as it was before the front end became pluggable:
/// a concrete [`FlowRegulator`] wired straight to a [`WsafTable`], with
/// the same accumulate / batch-deposit / residual-query arithmetic the
/// old `InstaMeasure` methods used.
struct LegacyPipeline {
    regulator: FlowRegulator,
    wsaf: WsafTable,
}

impl LegacyPipeline {
    fn new(cfg: InstaMeasureConfig) -> Self {
        LegacyPipeline { regulator: FlowRegulator::new(cfg.sketch), wsaf: WsafTable::new(cfg.wsaf) }
    }

    fn process(&mut self, pkt: &PacketRecord) {
        if let Some(u) = self.regulator.process(pkt) {
            self.wsaf.accumulate_hashed(
                &u.key,
                self.wsaf.hash_digest(u.digest),
                u.est_pkts,
                u.est_bytes,
                u.ts_nanos,
            );
        }
    }

    fn process_batch(&mut self, pkts: &[PacketRecord]) {
        let mut updates = Vec::new();
        self.regulator.process_batch(pkts, &mut updates);
        let deposits: Vec<WsafDeposit> = updates
            .iter()
            .map(|u| WsafDeposit {
                key: u.key,
                digest: u.digest,
                est_pkts: u.est_pkts,
                est_bytes: u.est_bytes,
                ts: u.ts_nanos,
            })
            .collect();
        self.wsaf.accumulate_batch(&deposits);
    }

    fn estimate_packets(&self, key: &FlowKey) -> f64 {
        let digest = FlowDigest::of(key);
        let table =
            self.wsaf.get_hashed(key, self.wsaf.hash_digest(digest)).map_or(0.0, |e| e.packets);
        table + self.regulator.residual_packets(key)
    }

    fn estimate_bytes(&self, key: &FlowKey) -> f64 {
        let digest = FlowDigest::of(key);
        match self.wsaf.get_hashed(key, self.wsaf.hash_digest(digest)) {
            Some(e) => {
                let mean_len = if e.packets > 0.0 { e.bytes / e.packets } else { 0.0 };
                e.bytes + self.regulator.residual_packets(key) * mean_len
            }
            None => 0.0,
        }
    }

    fn stats(&self) -> FilterStats {
        self.regulator.stats()
    }
}

/// Asserts the trait-routed system is observably identical to the legacy
/// hand-wired pipeline: WSAF decode output, work counters and bitwise
/// per-flow estimates.
fn assert_matches_legacy(im: &InstaMeasure, legacy: &LegacyPipeline, ctx: &str) {
    let a = decode_output(im);
    let mut b = snapshot(&legacy.wsaf);
    b.sort_by_key(|r| r.key);
    assert_eq!(a, b, "{ctx}: WSAF decode output diverged");
    assert_eq!(encode_records(&a), encode_records(&b), "{ctx}: encoded bytes diverged");
    assert_eq!(im.filter_stats(), legacy.stats(), "{ctx}: work counters diverged");
    for r in &b {
        let (lp, lb) = (legacy.estimate_packets(&r.key), legacy.estimate_bytes(&r.key));
        assert_eq!(
            im.estimate_packets(&r.key).to_bits(),
            lp.to_bits(),
            "{ctx}: packet estimate for {} diverged",
            r.key
        );
        assert_eq!(
            im.estimate_bytes(&r.key).to_bits(),
            lb.to_bits(),
            "{ctx}: byte estimate for {} diverged",
            r.key
        );
    }
    // A key neither pipeline ever saw agrees too (pure residual path).
    let absent = FlowKey::new([250, 1, 2, 3], [250, 4, 5, 6], 7777, 8888, Protocol::Icmp);
    assert_eq!(
        im.estimate_packets(&absent).to_bits(),
        legacy.estimate_packets(&absent).to_bits(),
        "{ctx}: absent-flow residual diverged"
    );
}

#[test]
fn regulator_kind_scalar_is_bit_identical_to_prerefactor_pipeline() {
    let trace = caida_like(0.01, 21);
    let im = replay(&trace.records, cfg(FilterKind::Regulator));
    let mut legacy = LegacyPipeline::new(cfg(FilterKind::Regulator));
    for r in &trace.records {
        legacy.process(r);
    }
    assert_matches_legacy(&im, &legacy, "scalar");
}

#[test]
fn regulator_kind_batched_is_bit_identical_to_prerefactor_pipeline() {
    let trace = caida_like(0.01, 22);
    for batch in [1usize, 7, 64, 256, 1000] {
        let im = replay_batched(&trace.records, cfg(FilterKind::Regulator), batch);
        let mut legacy = LegacyPipeline::new(cfg(FilterKind::Regulator));
        for chunk in trace.records.chunks(batch) {
            legacy.process_batch(chunk);
        }
        assert_matches_legacy(&im, &legacy, &format!("batch={batch}"));
    }
}

#[test]
fn every_kind_batched_matches_scalar_through_the_system() {
    let trace = caida_like(0.01, 23);
    for kind in ALL_FILTER_KINDS {
        let scalar = replay(&trace.records, cfg(kind));
        for batch in [1usize, 13, 256, 999] {
            let batched = replay_batched(&trace.records, cfg(kind), batch);
            assert_identical_measurement(&batched, &scalar, &format!("{kind} batch={batch}"));
        }
    }
}

#[test]
fn every_kind_survives_the_multicore_differential() {
    let trace = caida_like(0.01, 24);
    for kind in ALL_FILTER_KINDS {
        for workers in test_worker_counts() {
            let mc_cfg = MultiCoreConfig::builder()
                .workers(workers)
                .per_worker(cfg(kind))
                .build()
                .expect("valid config");
            let (sys, report) = run_multicore(&trace.records, &mc_cfg);
            assert_eq!(report.packets, trace.records.len() as u64, "{kind} w={workers}");
            for (w, shard) in shard_records(&trace.records, workers).iter().enumerate() {
                let reference = replay(shard, cfg(kind));
                assert_identical_measurement(
                    sys.shard(w),
                    &reference,
                    &format!("{kind} worker {w}/{workers}"),
                );
            }
        }
    }
}

#[test]
fn every_kind_reports_its_own_kind_and_budget() {
    for kind in ALL_FILTER_KINDS {
        let config = cfg(kind);
        let im = InstaMeasure::new(config);
        assert_eq!(im.filter_kind(), kind);
        let budget = config.sketch.memory_bytes() * (1 + config.sketch.noise_classes() as usize);
        let mem = im.filter().memory_bytes();
        assert!(mem <= budget, "{kind}: {mem} bytes over the {budget}-byte budget");
        assert!(mem * 8 >= budget * 7, "{kind}: {mem} bytes leaves >1/8 of {budget} unused");
    }
}
