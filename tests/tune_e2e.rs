//! End-to-end acceptance of the auto-tuner: a solved plan must deliver
//! its stated accuracy on a real replay, an auto-tuned daemon must
//! serve its plan over the wire (and re-solve it at rotation), and the
//! `tune --apply` → `analyze --config` CLI path must boot from a plan
//! file.

use std::process::Command;
use std::sync::Arc;
use std::time::Duration;

use instameasure::autotune::{measured_epsilon, solve, zipf_sizes, MachineProfile, TuneRequest};
use instameasure::core::InstaMeasureConfig;
use instameasure::packet::{FlowKey, PacketRecord, Protocol};
use instameasure::service::server::{Server, ServiceConfig};
use instameasure::service::tune::TuneState;
use instameasure::service::{ClientError, DetectionConfig, ServiceClient};

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("im_tune_e2e_{}_{name}", std::process::id()));
    p
}

/// The headline acceptance check: solve an accuracy target on the
/// golden machine, replay a 400k-flow synthetic trace through the
/// materialized pipeline, and require the delivered packet-weighted
/// relative error to stay inside the stated epsilon.
#[test]
fn solved_plan_meets_its_stated_epsilon_on_a_400k_flow_trace() {
    let profile = MachineProfile::paper();
    let epsilon = 0.1;
    let req = TuneRequest::accuracy(1.0e6, epsilon, 0.05);
    // 400k concurrent flows, Zipf sizes with a 10k-packet elephant —
    // small enough per flow that the replay stays test-sized, large
    // enough that the WSAF sizing rule is genuinely exercised.
    let sizes = zipf_sizes(400_000, 10_000);
    let plan = solve(&profile, &req, &sizes).expect("0.1 epsilon at 1 Mpps is feasible");
    assert!(plan.predicted_epsilon <= epsilon, "{plan}");

    let measured = measured_epsilon(&plan, &sizes, 50, 0xE2E);
    assert!(
        measured <= epsilon,
        "plan delivered {measured:.4} relative error against the stated {epsilon} target: {plan}"
    );
}

/// The infeasible direction must fail loudly, not return a plan that
/// silently misses the target.
#[test]
fn impossible_targets_are_refused_not_approximated() {
    let profile = MachineProfile::paper();
    let req = TuneRequest::accuracy(1.0e6, 0.001, 0.01);
    assert!(solve(&profile, &req, &zipf_sizes(50_000, 100_000)).is_none());
}

#[test]
fn auto_tuned_daemon_serves_and_retunes_the_plan_over_the_wire() {
    let profile = MachineProfile::paper();
    let request = TuneRequest::accuracy(0.5e6, 0.2, 0.1);
    let sizes = zipf_sizes(10_000, 50_000);
    let plan = solve(&profile, &request, &sizes).expect("loose target solves");
    let per_worker = plan.to_config(7).expect("plan materializes");

    let cfg = ServiceConfig::builder()
        .workers(1)
        .per_worker(per_worker)
        .read_timeout(Duration::from_secs(5))
        .detect(DetectionConfig::default())
        .auto_tune(TuneState { profile, request, plan, shards: 1 })
        .build()
        .expect("valid service config");
    let server = Server::start(cfg).expect("server starts");
    let addr = server.local_addr();

    // The handshake: the served report is the boot plan, verbatim.
    let mut ops = ServiceClient::connect(addr).expect("client connects");
    let report = ops.query_plan().expect("auto-tuned daemon answers QueryPlan");
    assert_eq!(report.l1_memory_bytes, plan.l1_memory_bytes);
    assert_eq!(report.vector_bits, plan.vector_bits);
    assert_eq!(report.layers, plan.layers);
    assert_eq!(report.wsaf_entries_log2, plan.wsaf_entries_log2);
    assert!((report.predicted_epsilon - plan.predicted_epsilon).abs() < 1e-12);

    // Push one epoch of traffic and rotate: the rotation drives the
    // epoch re-tuner, and the served plan must still be a live reply
    // (same geometry here — the traffic is tiny, so the re-solve lands
    // on the smallest feasible candidate again or is simply recorded).
    let records: Vec<PacketRecord> = (0..200u32)
        .flat_map(|f| {
            let key = FlowKey::new(
                f.to_be_bytes(),
                (f ^ 0xABCD).to_be_bytes(),
                (f % 65_535) as u16,
                443,
                Protocol::Udp,
            );
            (0..40u64).map(move |t| PacketRecord::new(key, 120, t * 1000 + u64::from(f)))
        })
        .collect();
    let mut tap = ServiceClient::connect(addr).expect("tap connects");
    assert_eq!(tap.push_records(&records).expect("push succeeds"), records.len() as u64);
    let (epoch, _retired) = ops.rotate().expect("rotate succeeds");
    assert_eq!(epoch, 1);

    let retuned = ops.query_plan().expect("plan still served after rotation");
    assert!(retuned.vector_bits > 0 && retuned.wsaf_entries_log2 >= 14);

    // The tuner saw the epoch: its telemetry recorded the re-solve.
    let telemetry = ops.telemetry_json().expect("telemetry");
    assert!(
        telemetry.contains("tune.resolves") || telemetry.contains("tune.infeasible"),
        "tune.* instruments missing from telemetry: {telemetry}"
    );

    ops.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn a_daemon_without_auto_tune_rejects_plan_queries_as_unsupported() {
    let cfg = ServiceConfig::builder()
        .workers(1)
        .per_worker(InstaMeasureConfig::default().small_for_tests())
        .read_timeout(Duration::from_secs(5))
        .build()
        .expect("valid service config");
    let server = Server::start(cfg).expect("server starts");
    let server = Arc::new(server);

    let mut ops = ServiceClient::connect(server.local_addr()).expect("client connects");
    match ops.query_plan() {
        Err(ClientError::Remote { class, .. }) => assert_eq!(class, "unsupported"),
        other => panic!("expected an unsupported rejection, got {other:?}"),
    }

    server.request_stop();
    match Arc::try_unwrap(server) {
        Ok(s) => {
            s.join();
        }
        Err(_) => panic!("server handle still shared"),
    }
}

/// The CLI loop: `tune --apply` writes a plan file from a cached
/// profile, and `analyze --config` boots the offline pipeline from it.
#[test]
fn tune_apply_then_analyze_config_runs_the_planned_pipeline() {
    let bin = env!("CARGO_BIN_EXE_instameasure");
    let profile_path = tmp("profile.txt");
    let plan_path = tmp("plan.txt");
    let pcap = tmp("trace.pcap");

    // Deterministic: pre-seed the profile cache with the golden fixture
    // so the test never depends on this host's actual latencies.
    MachineProfile::paper().save(&profile_path).expect("profile cache written");

    let out = Command::new(bin)
        .args([
            "tune",
            "--pps",
            "1e6",
            "--epsilon",
            "0.1",
            "--profile",
            profile_path.to_str().unwrap(),
            "--apply",
            plan_path.to_str().unwrap(),
        ])
        .output()
        .expect("tune runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("(cached)"), "tune recalibrated despite the cache: {stdout}");
    assert!(stdout.contains("plan:"), "{stdout}");
    assert!(plan_path.exists(), "tune --apply did not write the plan file");

    let out = Command::new(bin)
        .args(["generate", pcap.to_str().unwrap(), "--scale", "0.004", "--seed", "11"])
        .output()
        .expect("generate runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = Command::new(bin)
        .args([
            "analyze",
            pcap.to_str().unwrap(),
            "--config",
            plan_path.to_str().unwrap(),
            "--top",
            "3",
        ])
        .output()
        .expect("analyze runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("configured from"), "{stdout}");
    assert!(stdout.contains("top 3 flows by packets"), "{stdout}");

    std::fs::remove_file(&profile_path).ok();
    std::fs::remove_file(&plan_path).ok();
    std::fs::remove_file(&pcap).ok();
}
