//! Telemetry reconciliation: every number the unified telemetry layer
//! reports must agree exactly with the legacy stats structs and with
//! ground truth about the trace that produced it.

use instameasure::core::multicore::{run_multicore, BackpressurePolicy, MultiCoreConfig};
use instameasure::core::{InstaMeasure, InstaMeasureConfig};
use instameasure::sketch::{FlowFilter, FlowRegulator, SketchConfig};
use instameasure::telemetry::Instrumented;
use instameasure::traffic::presets::caida_like;
use instameasure::wsaf::WsafConfig;

fn paper_cfg(seed: u64) -> InstaMeasureConfig {
    InstaMeasureConfig::default()
        .with_sketch(
            SketchConfig::builder()
                .memory_bytes(32 * 1024)
                .vector_bits(8)
                .seed(seed)
                .build()
                .unwrap(),
        )
        .with_wsaf(WsafConfig::builder().entries_log2(18).build().unwrap())
}

#[test]
fn regulator_saturation_counters_match_stats() {
    let trace = caida_like(0.02, 11);
    let mut fr = FlowRegulator::new(
        SketchConfig::builder().memory_bytes(16 * 1024).vector_bits(8).seed(11).build().unwrap(),
    );
    for r in &trace.records {
        fr.process(r);
    }
    let stats = fr.stats();
    let snap = fr.telemetry();

    assert_eq!(snap.counter("regulator.packets"), Some(stats.packets));
    assert_eq!(snap.counter("regulator.updates"), Some(stats.updates));
    assert_eq!(snap.counter("regulator.hashes"), Some(stats.hashes));
    assert_eq!(snap.counter("regulator.mem_accesses"), Some(stats.mem_accesses));
    // Per-class L1 saturation counters partition the total L1 saturations.
    let per_class = snap.counter_sum("regulator.l1.saturations");
    assert_eq!(per_class, snap.counter("regulator.recycles").unwrap());
    // Every L2 saturation released an update.
    let l2_sats = snap.counter_sum("regulator.l2");
    assert_eq!(l2_sats, stats.updates, "each L2 saturation is one WSAF update");
}

#[test]
fn wsaf_outcome_tallies_sum_to_accumulates() {
    let trace = caida_like(0.02, 11);
    let mut im = InstaMeasure::new(paper_cfg(11));
    for r in &trace.records {
        im.process(r);
    }
    let wstats = im.wsaf_stats();
    let snap = im.telemetry();

    // AccumulateOutcome partition: every accumulate either updated an
    // existing entry or inserted a fresh one (possibly after GC/eviction).
    let updates = snap.counter("wsaf.updates").unwrap();
    let inserts = snap.counter("wsaf.inserts").unwrap();
    assert_eq!(updates + inserts, wstats.accumulates);
    assert_eq!(snap.counter("wsaf.accumulates"), Some(wstats.accumulates));
    // The probe-length histogram observed exactly one length per accumulate.
    let hist = snap.histogram("wsaf.probe_len").unwrap();
    assert_eq!(hist.count, wstats.accumulates);
    // And the regulator's released updates are what the WSAF accumulated.
    assert_eq!(snap.counter("regulator.updates"), Some(wstats.accumulates));
}

#[test]
fn regulation_ratio_near_one_percent_on_caida_like() {
    let trace = caida_like(0.1, 42);
    let mut im = InstaMeasure::new(paper_cfg(42));
    for r in &trace.records {
        im.process(r);
    }
    let snap = im.telemetry();
    let ratio = snap.gauge("regulator.regulation_rate").unwrap();
    let by_hand = snap.counter("regulator.updates").unwrap() as f64
        / snap.counter("regulator.packets").unwrap() as f64;
    assert!((ratio - by_hand).abs() < 1e-12, "gauge {ratio} vs counters {by_hand}");
    // The paper's headline: ~1% of packets reach the WSAF (Fig. 7).
    assert!(
        (0.005..=0.02).contains(&ratio),
        "regulation ratio {ratio:.4} outside the paper's ~1% band"
    );
}

#[test]
fn multicore_worker_counters_sum_to_trace_packets() {
    let trace = caida_like(0.02, 7);
    for workers in [1usize, 3] {
        let cfg = MultiCoreConfig::builder()
            .workers(workers)
            .queue_capacity(4096)
            .per_worker(InstaMeasureConfig::default().small_for_tests())
            .backpressure(BackpressurePolicy::Block)
            .build()
            .unwrap();
        let (sys, report) = run_multicore(&trace.records, &cfg);
        let snap = &report.telemetry;
        let mut worker_sum = 0;
        for w in 0..workers {
            let n = snap.counter(&format!("multicore.worker{w}.packets")).unwrap();
            assert_eq!(n, report.per_worker_packets[w]);
            worker_sum += n;
        }
        assert_eq!(worker_sum, trace.records.len() as u64);
        assert_eq!(snap.counter("multicore.dropped"), Some(0));
        // The merged shard view saw every packet exactly once too.
        let merged = sys.telemetry();
        assert_eq!(merged.counter("regulator.packets"), Some(trace.records.len() as u64));
    }
}

#[test]
fn drop_counters_exact_under_tiny_queue() {
    let trace = caida_like(0.02, 3);
    let cfg = MultiCoreConfig::builder()
        .workers(2)
        .queue_capacity(1) // force backpressure
        .batch_size(1)
        .per_worker(InstaMeasureConfig::default().small_for_tests())
        .backpressure(BackpressurePolicy::Drop)
        .build()
        .unwrap();
    let (sys, report) = run_multicore(&trace.records, &cfg);
    let snap = &report.telemetry;
    let dropped = snap.counter("multicore.dropped").unwrap();
    assert_eq!(dropped, report.dropped);
    assert!(dropped > 0, "a 1-slot queue must drop under a {}-packet burst", trace.records.len());
    // Conservation: processed + dropped == offered, both in the report and
    // in the merged worker telemetry.
    let processed: u64 =
        (0..2).map(|w| snap.counter(&format!("multicore.worker{w}.packets")).unwrap()).sum();
    assert_eq!(processed + dropped, trace.records.len() as u64);
    assert_eq!(
        sys.telemetry().counter("regulator.packets"),
        Some(trace.records.len() as u64 - dropped)
    );
}
