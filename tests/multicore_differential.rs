//! Differential tests: the batched multi-core pipeline must be *exactly*
//! — bit for bit — the same measurement as a single-core replay of each
//! worker's shard, for every seed, worker count and batch size. This is
//! what lets the dispatch hot path be optimized freely: any change that
//! alters results fails here before it can hide behind sketch error bars.

mod support;

use instameasure::core::multicore::{run_multicore, BackpressurePolicy, MultiCoreConfig};
use instameasure::core::InstaMeasureConfig;
use instameasure::traffic::presets::caida_like;
use support::oracle::{
    assert_identical_measurement, replay, shard_records, test_worker_counts, ExactOracle,
};

fn config(workers: usize, batch_size: usize) -> MultiCoreConfig {
    MultiCoreConfig::builder()
        .workers(workers)
        .queue_capacity(4096)
        .batch_size(batch_size)
        .per_worker(InstaMeasureConfig::default().small_for_tests())
        .backpressure(BackpressurePolicy::Block)
        .build()
        .expect("test config is valid")
}

#[test]
fn batched_pipeline_is_bit_identical_to_single_core_replay() {
    for seed in [3u64, 17] {
        let trace = caida_like(0.004, seed);
        let oracle = ExactOracle::from_records(&trace.records);
        for workers in test_worker_counts() {
            let shards = shard_records(&trace.records, workers);
            let truth = oracle.shard_totals(workers);
            // One single-core reference per shard, shared across batch
            // sizes — the replayed stream does not depend on batching.
            let references: Vec<_> = shards
                .iter()
                .map(|s| replay(s, InstaMeasureConfig::default().small_for_tests()))
                .collect();
            for batch_size in [1usize, 7, 256, 1024] {
                let (sys, report) = run_multicore(&trace.records, &config(workers, batch_size));
                let ctx = format!("seed {seed} workers {workers} batch {batch_size}");
                assert_eq!(report.dropped, 0, "{ctx}: Block mode must not drop");
                assert_eq!(report.packets, oracle.packets, "{ctx}: all packets processed");
                for w in 0..workers {
                    // Per-worker packet totals match the exact oracle...
                    assert_eq!(
                        report.per_worker_packets[w], truth[w].0,
                        "{ctx}: worker {w} packet total != oracle shard total"
                    );
                    assert_eq!(
                        report.telemetry.counter(&format!("multicore.worker{w}.packets")),
                        Some(truth[w].0),
                        "{ctx}: worker {w} live counter != oracle shard total"
                    );
                    // ...and the worker's entire measurement state equals a
                    // single-core replay of its shard: same WSAF decode
                    // output, same regulator counters, bitwise-equal
                    // estimates.
                    assert_identical_measurement(
                        sys.shard(w),
                        &references[w],
                        &format!("{ctx} worker {w}"),
                    );
                }
            }
        }
    }
}

#[test]
fn per_worker_byte_totals_match_the_oracle() {
    let trace = caida_like(0.004, 29);
    let oracle = ExactOracle::from_records(&trace.records);
    for workers in test_worker_counts() {
        let shards = shard_records(&trace.records, workers);
        let truth = oracle.shard_totals(workers);
        for (w, shard) in shards.iter().enumerate() {
            // The shard split itself conserves packets and bytes exactly.
            let shard_oracle = ExactOracle::from_records(shard);
            assert_eq!((shard_oracle.packets, shard_oracle.bytes), truth[w]);
        }
        assert_eq!(truth.iter().map(|t| t.0).sum::<u64>(), oracle.packets);
        assert_eq!(truth.iter().map(|t| t.1).sum::<u64>(), oracle.bytes);
    }
}

#[test]
fn oracle_grounds_the_top_flows() {
    // The oracle is also the accuracy reference: the pipeline's estimates
    // for the true heaviest flows stay within the paper's error band.
    let trace = caida_like(0.004, 11);
    let oracle = ExactOracle::from_records(&trace.records);
    let (sys, _) = run_multicore(&trace.records, &config(2, 256));
    for (key, truth) in oracle.top_k(10) {
        let est = sys.estimate_packets(&key);
        let rel = (est - truth as f64).abs() / truth as f64;
        assert!(rel < 0.30, "flow {key}: est {est} vs exact {truth} (rel {rel})");
    }
}
