//! End-to-end tests of the `instameasure` CLI binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_instameasure"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("im_cli_test_{}_{name}", std::process::id()));
    p
}

#[test]
fn generate_analyze_report_pipeline() {
    let pcap = tmp("a.pcap");
    let imfr = tmp("a.imfr");

    let out = bin()
        .args(["generate", pcap.to_str().unwrap(), "--scale", "0.005", "--seed", "9"])
        .output()
        .expect("generate runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("wrote"));

    let out = bin()
        .args([
            "analyze",
            pcap.to_str().unwrap(),
            "--top",
            "3",
            "--hh-threshold",
            "200",
            "--export",
            imfr.to_str().unwrap(),
        ])
        .output()
        .expect("analyze runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("top 3 flows by packets"));
    assert!(stdout.contains("heavy hitters"));
    assert!(stdout.contains("normalized flow-size entropy"));
    assert!(stdout.contains("exported"));

    let out = bin().args(["report", imfr.to_str().unwrap()]).output().expect("report runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("flow records"));

    std::fs::remove_file(&pcap).ok();
    std::fs::remove_file(&imfr).ok();
}

#[test]
fn windowed_analysis_reports_per_epoch() {
    let pcap = tmp("w.pcap");
    let out = bin()
        .args(["generate", pcap.to_str().unwrap(), "--scale", "0.003", "--seed", "4"])
        .output()
        .expect("generate runs");
    assert!(out.status.success());
    let out = bin()
        .args(["analyze", pcap.to_str().unwrap(), "--window-ms", "2500", "--top", "2"])
        .output()
        .expect("analyze runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let windows = stdout.matches("window ").count();
    assert!(windows >= 4, "10s capture at 2.5s windows: got {windows}\n{stdout}");
    assert!(stdout.contains("entropy"));
    std::fs::remove_file(&pcap).ok();
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = bin().output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    let out = bin().args(["analyze", "/nonexistent/file.pcap"]).output().expect("runs");
    assert!(!out.status.success());

    let out = bin()
        .args(["generate", tmp("x.pcap").to_str().unwrap(), "--preset", "bogus"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown preset"));
}

#[test]
fn report_rejects_corrupt_records() {
    let bad = tmp("bad.imfr");
    std::fs::write(&bad, b"not a record file").unwrap();
    let out = bin().args(["report", bad.to_str().unwrap()]).output().expect("runs");
    assert!(!out.status.success());
    std::fs::remove_file(&bad).ok();
}
