//! End-to-end tests of the `instameasure` CLI binary.

use std::io::BufRead;
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_instameasure"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("im_cli_test_{}_{name}", std::process::id()));
    p
}

#[test]
fn generate_analyze_report_pipeline() {
    let pcap = tmp("a.pcap");
    let imfr = tmp("a.imfr");

    let out = bin()
        .args(["generate", pcap.to_str().unwrap(), "--scale", "0.005", "--seed", "9"])
        .output()
        .expect("generate runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("wrote"));

    let out = bin()
        .args([
            "analyze",
            pcap.to_str().unwrap(),
            "--top",
            "3",
            "--hh-threshold",
            "200",
            "--export",
            imfr.to_str().unwrap(),
        ])
        .output()
        .expect("analyze runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("top 3 flows by packets"));
    assert!(stdout.contains("heavy hitters"));
    assert!(stdout.contains("normalized flow-size entropy"));
    assert!(stdout.contains("exported"));

    let out = bin().args(["report", imfr.to_str().unwrap()]).output().expect("report runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("flow records"));

    std::fs::remove_file(&pcap).ok();
    std::fs::remove_file(&imfr).ok();
}

#[test]
fn windowed_analysis_reports_per_epoch() {
    let pcap = tmp("w.pcap");
    let out = bin()
        .args(["generate", pcap.to_str().unwrap(), "--scale", "0.003", "--seed", "4"])
        .output()
        .expect("generate runs");
    assert!(out.status.success());
    let out = bin()
        .args(["analyze", pcap.to_str().unwrap(), "--window-ms", "2500", "--top", "2"])
        .output()
        .expect("analyze runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let windows = stdout.matches("window ").count();
    assert!(windows >= 4, "10s capture at 2.5s windows: got {windows}\n{stdout}");
    assert!(stdout.contains("entropy"));
    std::fs::remove_file(&pcap).ok();
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = bin().output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));

    let out = bin().args(["analyze", "/nonexistent/file.pcap"]).output().expect("runs");
    assert!(!out.status.success());

    let out = bin()
        .args(["generate", tmp("x.pcap").to_str().unwrap(), "--preset", "bogus"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown preset"));
}

#[test]
fn analyze_accepts_every_filter_kind() {
    let pcap = tmp("f.pcap");
    let out = bin()
        .args(["generate", pcap.to_str().unwrap(), "--scale", "0.003", "--seed", "6"])
        .output()
        .expect("generate runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    for kind in ["regulator", "rcc", "swing", "hashflow", "HashFlow"] {
        let out = bin()
            .args(["analyze", pcap.to_str().unwrap(), "--top", "3", "--filter", kind])
            .output()
            .expect("analyze runs");
        assert!(out.status.success(), "--filter {kind}: {}", String::from_utf8_lossy(&out.stderr));
        assert!(String::from_utf8_lossy(&out.stdout).contains("top 3 flows by packets"));
    }
    std::fs::remove_file(&pcap).ok();
}

#[test]
fn unknown_filter_kind_is_a_classified_error_not_a_panic() {
    // The capture is never opened: the flag is validated first, and the
    // failure is a clean classified error on stderr, not a panic.
    for cmd in [
        vec!["analyze", "/nonexistent/file.pcap", "--filter", "bogus"],
        vec!["serve", "--listen", "127.0.0.1:0", "--filter", "bogus"],
    ] {
        let out = bin().args(&cmd).output().expect("runs");
        assert!(!out.status.success(), "{cmd:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("filter") && stderr.contains("bogus"),
            "{cmd:?} stderr must name the bad filter: {stderr}"
        );
        assert!(
            stderr.contains("regulator") && stderr.contains("hashflow"),
            "{cmd:?} stderr must list the valid kinds: {stderr}"
        );
        assert!(!stderr.contains("panicked"), "{cmd:?} panicked: {stderr}");
    }
}

#[test]
fn help_enumerates_every_subcommand_and_flag() {
    let out = bin().arg("--help").output().expect("runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for cmd in ["generate", "analyze", "report", "serve", "push", "query"] {
        assert!(stdout.contains(cmd), "--help must list `{cmd}`:\n{stdout}");
    }
    for flag in [
        "--mmap",
        "--workers",
        "--batch-size",
        "--listen",
        "--addr",
        "--top",
        "--window-ms",
        "--filter",
    ] {
        assert!(stdout.contains(flag), "--help must list `{flag}`:\n{stdout}");
    }
    for sub in ["flow", "top-k", "status", "telemetry", "rotate", "shutdown"] {
        assert!(stdout.contains(sub), "--help must list query `{sub}`:\n{stdout}");
    }
    // -h anywhere works too.
    let out = bin().args(["analyze", "-h"]).output().expect("runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

/// Extracts the flow lines of a "top K flows by packets" section, as a
/// sorted set so live-vs-offline comparison is tie-order-insensitive.
fn top_by_packets_lines(stdout: &str) -> Vec<String> {
    let mut lines: Vec<String> = stdout
        .lines()
        .skip_while(|l| !l.contains("flows by packets"))
        .skip(1)
        .take_while(|l| l.contains(" pkts"))
        .map(str::trim_end)
        .map(str::to_string)
        .collect();
    lines.sort();
    lines
}

#[test]
fn live_serve_push_query_matches_offline_analyze() {
    let pcap = tmp("live.pcap");
    let out = bin()
        .args(["generate", pcap.to_str().unwrap(), "--scale", "0.01", "--seed", "3"])
        .output()
        .expect("generate runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Boot the daemon on an ephemeral port; its first stdout line names
    // the bound address.
    let mut daemon = bin()
        .args(["serve", "--listen", "127.0.0.1:0", "--workers", "1"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("serve boots");
    let mut daemon_out = std::io::BufReader::new(daemon.stdout.take().unwrap());
    let mut banner = String::new();
    daemon_out.read_line(&mut banner).expect("daemon banner");
    let addr = banner
        .split("listening on ")
        .nth(1)
        .and_then(|r| r.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner: {banner}"))
        .to_string();

    let out =
        bin().args(["push", pcap.to_str().unwrap(), "--addr", &addr]).output().expect("push runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("accepted"));

    // The push ack confirms acceptance into the pipeline; wait until the
    // worker has processed everything before comparing estimates.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    loop {
        let out = bin().args(["query", "status", "--addr", &addr]).output().expect("status runs");
        assert!(out.status.success());
        let stdout = String::from_utf8_lossy(&out.stdout).to_string();
        assert!(stdout.contains("packets submitted"), "{stdout}");
        let nums: Vec<u64> = stdout
            .split(|c: char| !c.is_ascii_digit())
            .filter(|s| !s.is_empty())
            .map(|s| s.parse().unwrap())
            .collect();
        if nums.len() >= 2 && nums[0] == nums[1] && nums[0] > 0 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "daemon never caught up: {stdout}");
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    let out =
        bin().args(["query", "top-k", "--k", "10", "--addr", &addr]).output().expect("query runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let live = top_by_packets_lines(&String::from_utf8_lossy(&out.stdout));
    assert!(!live.is_empty(), "live top-k must report flows");

    let out = bin().args(["query", "shutdown", "--addr", &addr]).output().expect("shutdown runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let status = daemon.wait().expect("daemon exits");
    assert!(status.success(), "daemon must drain cleanly");

    // Offline oracle over the same capture: the single-worker daemon saw
    // the records in file order, so the heavy-hitter sets must be equal.
    let out = bin()
        .args(["analyze", pcap.to_str().unwrap(), "--top", "10"])
        .output()
        .expect("analyze runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let offline = top_by_packets_lines(&String::from_utf8_lossy(&out.stdout));
    assert_eq!(live, offline, "live top-k diverged from offline analyze");

    std::fs::remove_file(&pcap).ok();
}

#[test]
fn report_rejects_corrupt_records() {
    let bad = tmp("bad.imfr");
    std::fs::write(&bad, b"not a record file").unwrap();
    let out = bin().args(["report", bad.to_str().unwrap()]).output().expect("runs");
    assert!(!out.status.success());
    std::fs::remove_file(&bad).ok();
}
