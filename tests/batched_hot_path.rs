//! Differential tests for the single-hash batched hot path: driving
//! [`InstaMeasure::process_batch`] at *any* batch size — including 1 and
//! ragged tails — must leave the system bit-identical to the per-packet
//! scalar path. The scalar path is the oracle; the batched path is only
//! allowed to be faster, never different.

mod support;

use instameasure::core::multicore::{run_multicore, BackpressurePolicy, MultiCoreConfig};
use instameasure::core::{InstaMeasure, InstaMeasureConfig};
use instameasure::packet::{prefetch, simd};
use instameasure::telemetry::Instrumented;
use instameasure::traffic::presets::{caida_like, campus_like};
use support::oracle::{
    assert_identical_measurement, replay, replay_batched, test_worker_counts, ExactOracle,
};

fn small() -> InstaMeasureConfig {
    InstaMeasureConfig::default().small_for_tests()
}

#[test]
fn batched_replay_is_bit_identical_at_every_batch_size() {
    for (name, trace) in [("caida", caida_like(0.004, 7)), ("campus", campus_like(0.004, 7))] {
        let reference = replay(&trace.records, small());
        // 1 degenerates to the scalar path; primes and non-divisors force
        // ragged tail chunks; the largest sizes cross prefetch distance
        // many times over.
        for batch_size in [1usize, 2, 3, 7, 13, 64, 256, 1000] {
            let batched = replay_batched(&trace.records, small(), batch_size);
            assert_identical_measurement(
                &batched,
                &reference,
                &format!("{name} batch {batch_size}"),
            );
        }
    }
}

#[test]
fn ragged_tail_and_tiny_batches_are_exact() {
    let trace = caida_like(0.002, 21);
    let n = trace.records.len();
    let reference = replay(&trace.records, small());
    // Batch sizes engineered so the final chunk is 1 packet or nearly
    // empty relative to the batch — the flush-edge cases.
    for batch_size in [n - 1, n / 2 + 1, n + 100] {
        let batched = replay_batched(&trace.records, small(), batch_size);
        assert_identical_measurement(&batched, &reference, &format!("tail batch {batch_size}"));
    }
    // Empty batches are a no-op.
    let mut im = replay_batched(&trace.records, small(), 64);
    im.process_batch(&[]);
    assert_identical_measurement(&im, &reference, "empty batch after replay");
}

#[test]
fn batched_telemetry_accounts_for_every_packet() {
    let trace = caida_like(0.004, 31);
    let oracle = ExactOracle::from_records(&trace.records);
    for workers in test_worker_counts() {
        for batch_size in [1usize, 7, 256] {
            let cfg = MultiCoreConfig::builder()
                .workers(workers)
                .queue_capacity(4096)
                .batch_size(batch_size)
                .per_worker(small())
                .backpressure(BackpressurePolicy::Block)
                .build()
                .expect("test config is valid");
            let (sys, report) = run_multicore(&trace.records, &cfg);
            let ctx = format!("workers {workers} batch {batch_size}");
            // Every packet the manager shipped was drained through the
            // batched hot path exactly once.
            let fill = report.telemetry.histogram("ingest.batch_fill").unwrap();
            assert_eq!(fill.sum, oracle.packets, "{ctx}: batch_fill packet total");
            assert_eq!(fill.count, report.batches_sent, "{ctx}: batch_fill batch count");
            // ...and the regulator saw the same total.
            let merged = sys.telemetry();
            assert_eq!(
                merged.counter("regulator.packets"),
                Some(oracle.packets),
                "{ctx}: regulator packet total"
            );
            // The prefetch gauge states what this build compiled in.
            let expected = if prefetch::prefetch_enabled() { 1.0 } else { 0.0 };
            assert_eq!(
                report.telemetry.gauge("hotpath.prefetch_enabled"),
                Some(expected),
                "{ctx}: prefetch gauge"
            );
            // ...and the SIMD gauges state which kernel tier ran.
            let expected_simd = if simd::simd_enabled() { 1.0 } else { 0.0 };
            assert_eq!(
                report.telemetry.gauge("hotpath.simd_enabled"),
                Some(expected_simd),
                "{ctx}: simd gauge"
            );
            assert_eq!(
                report.telemetry.gauge("hotpath.prefetch_distance"),
                Some(prefetch::prefetch_distance() as f64),
                "{ctx}: prefetch distance gauge"
            );
        }
    }
}

#[test]
fn single_hash_estimates_agree_between_combined_and_split_queries() {
    // InstaMeasure::estimate (one digest for both answers) must be
    // bitwise the pair (estimate_packets, estimate_bytes).
    let trace = caida_like(0.004, 13);
    let im = {
        let mut im = InstaMeasure::new(small());
        im.process_batch(&trace.records);
        im
    };
    let oracle = ExactOracle::from_records(&trace.records);
    for (key, _) in oracle.sorted_flows() {
        let (p, b) = im.estimate(&key);
        assert_eq!(p.to_bits(), im.estimate_packets(&key).to_bits(), "packets for {key}");
        assert_eq!(b.to_bits(), im.estimate_bytes(&key).to_bits(), "bytes for {key}");
    }
}
