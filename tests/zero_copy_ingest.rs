//! Differential suite for the zero-copy pcap ingest path.
//!
//! Two claims, both exact:
//!
//! 1. Every reader path — owned `read_records`, whole-file mmap, and the
//!    chunked streaming reader at adversarial chunk sizes — produces the
//!    bit-identical record sequence from the same capture file.
//! 2. Feeding a capture through [`run_multicore_pcap`] (both mmap and
//!    buffered modes) yields per-worker measurement state that is
//!    bit-identical to a single-core replay of the owned-buffer shards,
//!    for every test worker count: same WSAF decode output, same encoded
//!    bytes, same regulator counters, bitwise-equal estimates.
//!
//! Together these pin the tentpole guarantee: the zero-copy path may be
//! optimised freely, but any observable divergence from the owned-buffer
//! path fails here, not in an accuracy error bar.

mod support;

use std::fs::File;
use std::io::BufReader;

use instameasure::core::ingest::{run_multicore_pcap, IngestMode};
use instameasure::core::multicore::{BackpressurePolicy, MultiCoreConfig};
use instameasure::core::InstaMeasureConfig;
use instameasure::packet::chunk::{read_records_mmap, PcapChunkReader, RecordStream};
use instameasure::packet::pcap::{read_records, PcapWriter, TsResolution};
use instameasure::packet::synth::synthesize_frame;
use instameasure::packet::PacketRecord;
use instameasure::traffic::presets::caida_like;
use support::oracle::{assert_identical_measurement, replay, shard_records, test_worker_counts};

/// Writes the trace to a temp pcap and returns its path (caller removes).
fn write_trace(records: &[PacketRecord], name: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir()
        .join(format!("instameasure_zc_ingest_{}_{name}.pcap", std::process::id()));
    let mut file = Vec::new();
    let mut w = PcapWriter::new(&mut file, TsResolution::Nano).unwrap();
    for r in records {
        w.write_packet(r.ts_nanos, &synthesize_frame(r)).unwrap();
    }
    w.into_inner().unwrap();
    std::fs::write(&path, file).unwrap();
    path
}

fn config(workers: usize) -> MultiCoreConfig {
    MultiCoreConfig::builder()
        .workers(workers)
        .queue_capacity(4096)
        .batch_size(64)
        .per_worker(InstaMeasureConfig::default().small_for_tests())
        .backpressure(BackpressurePolicy::Block)
        .build()
        .expect("test config is valid")
}

#[test]
fn every_reader_path_yields_identical_records() {
    let trace = caida_like(0.004, 29);
    let path = write_trace(&trace.records, "readers");

    let (owned, owned_skipped) = read_records(BufReader::new(File::open(&path).unwrap())).unwrap();
    assert!(!owned.is_empty());

    let (mapped, mapped_skipped) = read_records_mmap(&path).unwrap();
    assert_eq!(mapped, owned, "mmap path diverged from owned reader");
    assert_eq!(mapped_skipped, owned_skipped);

    let bytes = std::fs::read(&path).unwrap();
    for chunk_size in [1usize, 7, 4096, 1 << 20] {
        let mut stream =
            RecordStream::new(PcapChunkReader::with_chunk_size(&bytes[..], chunk_size).unwrap());
        let streamed: Vec<PacketRecord> = stream.by_ref().collect();
        let (skipped, stats) = stream.finish().unwrap();
        assert_eq!(streamed, owned, "chunk_size={chunk_size} diverged from owned reader");
        assert_eq!(skipped, owned_skipped);
        assert_eq!(stats.records, owned.len() as u64 + skipped);
        assert_eq!(stats.bytes_mapped, bytes.len() as u64, "chunk_size={chunk_size}");
    }

    std::fs::remove_file(&path).ok();
}

#[test]
fn zero_copy_multicore_is_bit_identical_to_owned_shard_replay() {
    for seed in [5u64, 31] {
        let trace = caida_like(0.004, seed);
        let path = write_trace(&trace.records, &format!("mc_{seed}"));
        // The owned-buffer decode is the reference stream; the pipeline's
        // input must be exactly this sequence, so a single-core replay of
        // its shards is the exact truth for every worker.
        let (owned, owned_skipped) =
            read_records(BufReader::new(File::open(&path).unwrap())).unwrap();

        for workers in test_worker_counts() {
            let cfg = config(workers);
            let shards = shard_records(&owned, workers);
            let references: Vec<_> = shards
                .iter()
                .map(|s| replay(s, InstaMeasureConfig::default().small_for_tests()))
                .collect();

            for mode in [IngestMode::Mmap, IngestMode::Buffered] {
                let ctx = format!("seed {seed} workers {workers} mode {mode:?}");
                let (system, report, ingest) = run_multicore_pcap(&path, mode, &cfg).unwrap();
                assert_eq!(report.dropped, 0, "{ctx}: Block mode must not drop");
                assert_eq!(report.packets, owned.len() as u64, "{ctx}: packet count");
                assert_eq!(ingest.skipped_frames, owned_skipped, "{ctx}: skipped frames");
                assert_eq!(
                    ingest.last_ts_nanos,
                    owned.last().unwrap().ts_nanos,
                    "{ctx}: trace span"
                );
                for (w, reference) in references.iter().enumerate() {
                    assert_identical_measurement(
                        system.shard(w),
                        reference,
                        &format!("{ctx} worker {w}"),
                    );
                }
                // The ingest counters ride along in the run telemetry.
                for counter in [
                    "ingest.chunk_fills",
                    "ingest.chunk_bytes_mapped",
                    "ingest.chunk_copy_fallbacks",
                ] {
                    assert!(
                        report.telemetry.counter(counter).is_some(),
                        "{ctx}: missing telemetry counter {counter}"
                    );
                }
                assert_eq!(
                    report.telemetry.counter("ingest.chunk_bytes_mapped"),
                    Some(std::fs::metadata(&path).unwrap().len()),
                    "{ctx}: every byte of the file must be accounted for"
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }
}
