//! Concurrency battery for the lock-free thread-per-shard engine.
//!
//! The engine replaced per-batch mutexes with shard-owning worker
//! threads fed by SPSC rings and queried through epoch-stamped
//! snapshots. That buys throughput only if it costs *nothing* in
//! accuracy, so this suite proves the strongest property available:
//! under N concurrent pushers and M concurrent queriers, the final
//! per-shard measurement is **bit-identical** to a single-threaded
//! offline replay of the same per-shard packet stream — for every
//! filter front end, every worker count, and ragged final batches.
//!
//! Determinism argument: the popcount dispatch rule sends all packets
//! of a flow to one shard, and the battery partitions whole *shards*
//! among pushers, so each shard's ring sequence is a fixed FIFO stream
//! regardless of thread interleaving. Any divergence is therefore a
//! bug in the ring, the drain handshake, or the snapshot protocol —
//! not scheduling noise.

mod support;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use instameasure::core::InstaMeasureConfig;
use instameasure::packet::{FlowKey, PacketRecord, Protocol};
use instameasure::service::engine::{Engine, EngineConfig};
use instameasure::sketch::{FilterKind, ALL_FILTER_KINDS};
use instameasure::telemetry::SharedRegistry;
use instameasure::traffic::presets::caida_like;
use support::oracle::{assert_identical_measurement, replay, shard_records, test_worker_counts};

fn cfg(kind: FilterKind) -> InstaMeasureConfig {
    InstaMeasureConfig::default().small_for_tests().with_filter(kind)
}

fn start_engine(
    workers: usize,
    per_worker: InstaMeasureConfig,
    batch_size: usize,
) -> (Engine, Arc<SharedRegistry>) {
    let registry = Arc::new(SharedRegistry::new());
    let config = EngineConfig { workers, batch_size, queue_batches: 8, pin: false, per_worker };
    (Engine::start(&config, Arc::clone(&registry)), registry)
}

/// Pushes `shards[w]` for every shard index in `mine` through one lane,
/// in odd-sized submit slices so ship points never align with batch
/// boundaries and the final flush is ragged.
fn push_shards(engine: &Engine, shards: &[Vec<PacketRecord>], mine: &[usize]) {
    let mut lane = engine.lane().expect("engine is open");
    for &w in mine {
        for slice in shards[w].chunks(997) {
            lane.submit(slice).expect("engine is open while pushers run");
        }
    }
    lane.flush().expect("engine is open while pushers run");
}

/// Hammers the query surface until `stop` is raised; returns how many
/// queries completed. Every call internally validates an epoch-stamped
/// snapshot, so this is the reader side of the seqlock under load.
fn hammer_queries(engine: &Engine, probe: FlowKey, stop: &AtomicBool) -> u64 {
    let mut queries = 0u64;
    while !stop.load(Ordering::Acquire) {
        let (p, b) = engine.estimate(&probe);
        assert!(p.is_finite() && b.is_finite(), "estimates from a snapshot are always finite");
        let top = engine.top_k(8);
        assert!(top.len() <= 8);
        let _ = engine.flows();
        queries += 3;
    }
    queries
}

#[test]
fn concurrent_pushers_are_bit_identical_to_offline_replay_for_every_filter() {
    let trace = caida_like(0.004, 23);
    let probe = trace.records[0].key;
    for kind in ALL_FILTER_KINDS {
        for workers in test_worker_counts() {
            let shards = shard_records(&trace.records, workers);
            let (engine, _registry) = start_engine(workers, cfg(kind), 64);

            // Partition whole shards round-robin among up to 3 pushers:
            // each shard's stream comes from exactly one lane, in order.
            let pushers = workers.min(3);
            let stop = AtomicBool::new(false);
            thread::scope(|s| {
                for p in 0..pushers {
                    let mine: Vec<usize> = (p..workers).step_by(pushers).collect();
                    let (engine, shards) = (&engine, &shards);
                    s.spawn(move || push_shards(engine, shards, &mine));
                }
                for _ in 0..2 {
                    let (engine, stop) = (&engine, &stop);
                    s.spawn(move || hammer_queries(engine, probe, stop));
                }
                // Scope join order: pushers finish, then we release the
                // queriers. Spawned closures own their handles; raising
                // the flag after a short live window is enough.
                thread::sleep(Duration::from_millis(10));
                stop.store(true, Ordering::Release);
            });

            let report = engine.drain();
            assert_eq!(report.submitted, trace.records.len() as u64, "{kind:?}/{workers}");
            assert_eq!(
                report.processed, report.submitted,
                "{kind:?}/{workers}: drain lost packets"
            );

            for (w, shard) in shards.iter().enumerate() {
                let offline = replay(shard, cfg(kind));
                let live = engine.debug_shard_measurement(w);
                assert_identical_measurement(
                    &live,
                    &offline,
                    &format!("{kind:?}, {workers} workers, shard {w}"),
                );
            }
        }
    }
}

#[test]
fn mid_stream_rotation_is_bit_identical_to_offline_replay_of_the_new_epoch() {
    let trace = caida_like(0.004, 41);
    let half = trace.records.len() / 2;
    let (phase1, phase2) = trace.records.split_at(half);
    for workers in test_worker_counts() {
        let (engine, _registry) = start_engine(workers, cfg(FilterKind::Regulator), 64);

        // Phase 1, then quiesce so the rotation lands at a point where
        // the offline reference is well-defined (no packets in flight).
        push_shards(&engine, &shard_records(phase1, workers), &(0..workers).collect::<Vec<_>>());
        let deadline = Instant::now() + Duration::from_secs(10);
        while engine.packets_processed() < phase1.len() as u64 {
            assert!(Instant::now() < deadline, "workers never caught up before rotate");
            thread::yield_now();
        }

        let before = engine.epoch();
        let (epoch, _retired) = engine.rotate();
        assert_eq!(epoch, before + 1, "rotate bumps the epoch exactly once");

        // Phase 2 lands entirely in the new epoch; the final state must
        // equal an offline replay of phase 2 alone.
        let shards2 = shard_records(phase2, workers);
        push_shards(&engine, &shards2, &(0..workers).collect::<Vec<_>>());
        let report = engine.drain();
        assert_eq!(report.submitted, trace.records.len() as u64);
        assert_eq!(report.processed, report.submitted);

        for (w, shard) in shards2.iter().enumerate() {
            let offline = replay(shard, cfg(FilterKind::Regulator));
            let live = engine.debug_shard_measurement(w);
            assert_identical_measurement(
                &live,
                &offline,
                &format!("post-rotate, {workers} workers, shard {w}"),
            );
        }
    }
}

#[test]
fn queries_after_drain_match_offline_replay() {
    // Post-drain the workers are gone; queries must serve the final
    // exact publication, not a stale or torn view.
    let trace = caida_like(0.004, 57);
    let workers = 2;
    let shards = shard_records(&trace.records, workers);
    let (engine, _registry) = start_engine(workers, cfg(FilterKind::Regulator), 128);
    push_shards(&engine, &shards, &[0, 1]);
    engine.drain();
    for (w, shard) in shards.iter().enumerate() {
        let offline = replay(shard, cfg(FilterKind::Regulator));
        let live = engine.debug_shard_measurement(w);
        assert_identical_measurement(&live, &offline, &format!("post-drain shard {w}"));
    }
}

#[test]
fn snapshot_readers_never_observe_torn_or_regressing_views() {
    // Torn-read regression: publication is artificially slowed so the
    // odd seqlock window is wide open, then readers hammer validated
    // snapshot reads. Every validated view must carry an even stamp,
    // and within one reader both the stamp and the shard version must
    // be monotone non-decreasing — a torn read (new stamp paired with
    // an old view, or vice versa) breaks one of those immediately.
    let trace = caida_like(0.004, 71);
    let probe = trace.records[0].key;
    let (engine, registry) = start_engine(1, cfg(FilterKind::Regulator), 64);
    engine.debug_set_publish_stall(300_000); // 300 µs inside the odd window

    let stop = AtomicBool::new(false);
    thread::scope(|s| {
        let (engine, stop) = (&engine, &stop);
        s.spawn(move || {
            // Keep the worker publishing: steady ingest plus queriers
            // requesting freshness below.
            let mut lane = engine.lane().expect("engine is open");
            for slice in trace.records.chunks(256) {
                lane.submit(slice).expect("open during the hammer phase");
                lane.flush().expect("open during the hammer phase");
                thread::sleep(Duration::from_micros(50));
            }
            stop.store(true, Ordering::Release);
        });
        for _ in 0..3 {
            s.spawn(move || {
                let (mut last_stamp, mut last_ver) = (0u64, 0u64);
                let mut reads = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let (stamp, ver) = engine.debug_shard_view_meta(0);
                    assert_eq!(stamp % 2, 0, "validated read returned an in-progress stamp");
                    assert!(stamp >= last_stamp, "seqlock stamp went backwards");
                    assert!(ver >= last_ver, "shard version went backwards: torn pairing");
                    // Fresh queries force actual publications under the
                    // widened window, so retries really happen.
                    let _ = engine.estimate(&probe);
                    (last_stamp, last_ver) = (stamp, ver);
                    reads += 1;
                }
                reads
            });
        }
    });

    let report = engine.drain();
    assert_eq!(report.submitted, report.processed);
    let retries = registry.counter("service.snapshot.retries").get();
    assert!(
        retries > 0,
        "publish stall was armed but no reader ever retried — the torn-read \
         guard is not actually being exercised (retries = {retries})"
    );
}

#[test]
fn engine_shutdown_is_idempotent_from_many_threads() {
    // Satellite fix regression: shutdown must be callable any number of
    // times from any thread, with every later call returning the first
    // call's exact accounting. Rings are deliberately left non-empty by
    // stalling the workers before the racing drains.
    let records: Vec<PacketRecord> = (0..30_000u64)
        .map(|t| {
            let k = FlowKey::new(
                ((t % 257) as u32).to_be_bytes(),
                [10, 0, 0, 1],
                4242,
                443,
                Protocol::Udp,
            );
            PacketRecord::new(k, 100, t)
        })
        .collect();
    let (engine, registry) = start_engine(3, cfg(FilterKind::Regulator), 64);
    engine.debug_set_worker_stall(100_000); // hold batches in the rings
    let mut lane = engine.lane().expect("engine is open");
    lane.submit(&records).expect("engine is open");
    drop(lane); // flush-on-drop ships the ragged tail

    let reports: Vec<_> = thread::scope(|s| {
        let handles: Vec<_> = (0..4).map(|_| s.spawn(|| engine.drain())).collect();
        handles.into_iter().map(|h| h.join().expect("drain must not panic")).collect()
    });
    for r in &reports {
        assert_eq!(r, &reports[0], "every racing drain sees the first report");
    }
    assert_eq!(reports[0].submitted, 30_000);
    assert_eq!(reports[0].processed, 30_000, "drain left packets in the rings");
    assert_eq!(
        registry.counter("service.ingest.rejected_packets").get(),
        0,
        "nothing was rejected, so nothing may be counted as rejected"
    );
    // And once more after the races settled.
    assert_eq!(engine.drain(), reports[0]);
}

#[test]
fn racing_rotations_never_expose_mixed_epoch_merged_views() {
    // Regression for the rotation snapshot race: workers used to reset
    // their shard *before* publishing the post-rotation view, so a
    // reader merging shards mid-rotation could pair one shard's new
    // epoch with another's retiring state — and the detection capture
    // could lose retired flows. Under continuous ingest plus racing
    // rotations, every consistent merged view must carry one epoch, and
    // every snapshot rotation must account for exactly the flows it
    // retired.
    let trace = caida_like(0.008, 97);
    let workers = 4;
    let shards = shard_records(&trace.records, workers);
    let (engine, _registry) = start_engine(workers, cfg(FilterKind::Regulator), 64);

    let stop = AtomicBool::new(false);
    thread::scope(|s| {
        for p in 0..2 {
            let mine: Vec<usize> = (p..workers).step_by(2).collect();
            let (engine, shards) = (&engine, &shards);
            s.spawn(move || push_shards(engine, shards, &mine));
        }
        let (engine, stop) = (&engine, &stop);
        s.spawn(move || {
            // The rotator: each snapshot capture must be a complete
            // decomposition of what the rotation retired.
            let mut rotations = 0u64;
            while !stop.load(Ordering::Acquire) {
                let outcome = engine.rotate_with_snapshots();
                assert_eq!(outcome.snapshots.len(), workers);
                let captured: u64 = outcome.snapshots.iter().map(|im| im.wsaf().len() as u64).sum();
                assert_eq!(
                    captured, outcome.retired,
                    "rotation {rotations}: snapshots lost retired flows"
                );
                rotations += 1;
            }
            assert!(rotations > 0, "the rotator never ran");
        });
        for _ in 0..2 {
            s.spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let views = engine.debug_consistent_view();
                    let epoch0 = views[0].0;
                    assert!(
                        views.iter().all(|(e, _)| *e == epoch0),
                        "merged view mixes epochs: {views:?}"
                    );
                    let _ = engine.top_k(16);
                }
            });
        }
        // Pushers finish first (scope join order); give the rotator and
        // readers a live window over steady ingest, then release them.
        thread::sleep(Duration::from_millis(50));
        stop.store(true, Ordering::Release);
    });

    let report = engine.drain();
    assert_eq!(report.submitted, trace.records.len() as u64);
    assert_eq!(report.processed, report.submitted, "drain lost packets");
}
