//! An exact differential oracle for integration tests.
//!
//! [`ExactOracle`] is ground truth: a deterministic exact per-flow counter
//! with no sketch, no eviction and no sampling. Any system under test can
//! be replayed against it — feed both the same records, then compare.
//! Because the multi-core dispatch rule (`worker_for`, popcount of the
//! source address) is deterministic, the oracle can also split the truth
//! shard-by-shard, which is what lets the differential suite prove the
//! batched pipeline bit-identical to a single-core replay.

use std::collections::HashMap;

use instameasure::core::export::{encode_records, snapshot, FlowRecord};
use instameasure::core::multicore::worker_for;
use instameasure::core::{InstaMeasure, InstaMeasureConfig};
use instameasure::packet::{FlowKey, PacketRecord};

/// Exact totals of one flow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowTruth {
    /// Exact packet count.
    pub packets: u64,
    /// Exact byte count (sum of wire lengths).
    pub bytes: u64,
}

/// A deterministic exact per-flow counter: the reference every approximate
/// pipeline is measured against.
#[derive(Debug, Clone, Default)]
pub struct ExactOracle {
    flows: HashMap<FlowKey, FlowTruth>,
    /// Total packets recorded.
    pub packets: u64,
    /// Total bytes recorded.
    pub bytes: u64,
}

impl ExactOracle {
    /// An empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replays a whole trace into a fresh oracle.
    pub fn from_records(records: &[PacketRecord]) -> Self {
        let mut o = Self::new();
        for r in records {
            o.record(r);
        }
        o
    }

    /// Counts one packet, exactly.
    pub fn record(&mut self, pkt: &PacketRecord) {
        let t = self.flows.entry(pkt.key).or_default();
        t.packets += 1;
        t.bytes += u64::from(pkt.wire_len);
        self.packets += 1;
        self.bytes += u64::from(pkt.wire_len);
    }

    /// Exact packet count of a flow (0 if never seen).
    pub fn packets_of(&self, key: &FlowKey) -> u64 {
        self.flows.get(key).map_or(0, |t| t.packets)
    }

    /// Exact byte count of a flow (0 if never seen).
    pub fn bytes_of(&self, key: &FlowKey) -> u64 {
        self.flows.get(key).map_or(0, |t| t.bytes)
    }

    /// Number of distinct flows.
    pub fn flows(&self) -> usize {
        self.flows.len()
    }

    /// Every flow with its exact totals, sorted by key for stable output.
    pub fn sorted_flows(&self) -> Vec<(FlowKey, FlowTruth)> {
        let mut v: Vec<_> = self.flows.iter().map(|(k, t)| (*k, *t)).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    /// Top-`k` flows by exact packet count.
    pub fn top_k(&self, k: usize) -> Vec<(FlowKey, u64)> {
        let mut v: Vec<_> = self.flows.iter().map(|(k, t)| (*k, t.packets)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Exact `(packets, bytes)` totals each worker would receive under the
    /// popcount dispatch rule.
    pub fn shard_totals(&self, workers: usize) -> Vec<(u64, u64)> {
        let mut totals = vec![(0u64, 0u64); workers];
        for (key, t) in &self.flows {
            let w = worker_for(key, workers);
            totals[w].0 += t.packets;
            totals[w].1 += t.bytes;
        }
        totals
    }
}

/// Splits a trace into per-worker sub-traces under the popcount dispatch
/// rule, preserving arrival order within each shard — exactly the stream
/// each multicore worker must observe.
pub fn shard_records(records: &[PacketRecord], workers: usize) -> Vec<Vec<PacketRecord>> {
    let mut shards = vec![Vec::new(); workers];
    for r in records {
        shards[worker_for(&r.key, workers)].push(*r);
    }
    shards
}

/// Replays records through a fresh single-core [`InstaMeasure`] — the
/// reference run the batched pipeline is diffed against.
pub fn replay(records: &[PacketRecord], cfg: InstaMeasureConfig) -> InstaMeasure {
    let mut im = InstaMeasure::new(cfg);
    for r in records {
        im.process(r);
    }
    im
}

/// Replays records through a fresh single-core [`InstaMeasure`] using the
/// batched hot path, `batch_size` packets at a time (the tail chunk may be
/// ragged). Must be bit-identical to [`replay`] at every batch size — the
/// differential suite pins this down.
pub fn replay_batched(
    records: &[PacketRecord],
    cfg: InstaMeasureConfig,
    batch_size: usize,
) -> InstaMeasure {
    assert!(batch_size > 0, "batch size must be positive");
    let mut im = InstaMeasure::new(cfg);
    for chunk in records.chunks(batch_size) {
        im.process_batch(chunk);
    }
    im
}

/// The system's WSAF decode output: every table entry as an export record,
/// sorted by key. Two runs that processed identical per-shard streams with
/// identical configs must produce byte-identical decode output.
pub fn decode_output(im: &InstaMeasure) -> Vec<FlowRecord> {
    let mut records = snapshot(im.wsaf());
    records.sort_by_key(|r| r.key);
    records
}

/// Asserts two systems are observably identical: same WSAF decode output
/// (down to the encoded bytes), same regulator work counters, and bitwise
/// equal estimates for every flow either side knows about.
pub fn assert_identical_measurement(actual: &InstaMeasure, reference: &InstaMeasure, ctx: &str) {
    let a = decode_output(actual);
    let b = decode_output(reference);
    assert_eq!(a.len(), b.len(), "{ctx}: WSAF population diverged");
    assert_eq!(a, b, "{ctx}: WSAF decode output diverged");
    assert_eq!(encode_records(&a), encode_records(&b), "{ctx}: encoded flow-record bytes diverged");
    assert_eq!(
        actual.filter_stats(),
        reference.filter_stats(),
        "{ctx}: regulator work counters diverged"
    );
    for r in &b {
        let ap = actual.estimate_packets(&r.key);
        let bp = reference.estimate_packets(&r.key);
        assert_eq!(ap.to_bits(), bp.to_bits(), "{ctx}: packet estimate for {} diverged", r.key);
        let ab = actual.estimate_bytes(&r.key);
        let bb = reference.estimate_bytes(&r.key);
        assert_eq!(ab.to_bits(), bb.to_bits(), "{ctx}: byte estimate for {} diverged", r.key);
    }
}

/// Worker counts the differential suites run with: the comma-separated
/// `INSTAMEASURE_TEST_WORKERS` list (how CI sweeps routing shapes), or
/// `[1, 2, 4]` when unset.
pub fn test_worker_counts() -> Vec<usize> {
    match std::env::var("INSTAMEASURE_TEST_WORKERS") {
        Ok(v) => {
            let parsed: Vec<usize> =
                v.split(',').filter_map(|s| s.trim().parse().ok()).filter(|&w| w > 0).collect();
            assert!(!parsed.is_empty(), "INSTAMEASURE_TEST_WORKERS='{v}' has no worker counts");
            parsed
        }
        Err(_) => vec![1, 2, 4],
    }
}
