//! Shared helpers for the integration test suites.
//!
//! Each file under `tests/` is its own crate; pull these in with
//! `mod support;`. Not every suite uses every helper, hence the
//! crate-level allow.
#![allow(dead_code)]

pub mod oracle;
