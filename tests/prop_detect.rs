//! Determinism battery for the streaming detectors: the per-shard
//! feature capture must be an *exact* decomposition of the epoch.
//!
//! The popcount dispatch rule keys every flow of one source to one
//! shard, so per-shard [`EpochFeatures`] partition the epoch's flow set
//! and fan sets. This suite pins the consequences:
//!
//! * merging per-shard features is order-invariant, bit-for-bit;
//! * detector verdicts over the merged features are identical for every
//!   batch size and merge order, for every filter front end;
//! * the verdict *set* (kind + subject) matches the single-shard run at
//!   every worker count — sketch collision patterns shift with
//!   sharding, so estimates may wiggle in low bits, but who gets
//!   flagged for what may not change;
//! * the live engine's rotation snapshots yield features bit-identical
//!   to an offline replay of the same per-shard streams.

mod support;

use std::collections::BTreeSet;

use instameasure::core::detect::{
    Anomaly, AnomalyKind, DetectorConfig, DetectorSuite, EpochFeatures, Subject,
};
use instameasure::core::{InstaMeasure, InstaMeasureConfig};
use instameasure::packet::{FlowKey, PacketRecord, Protocol};
use instameasure::service::engine::{Engine, EngineConfig};
use instameasure::sketch::{FilterKind, ALL_FILTER_KINDS};
use instameasure::telemetry::SharedRegistry;
use instameasure::traffic::adversarial::{horizontal_scan, syn_flood};
use instameasure::traffic::{merge_records, SyntheticTraceBuilder};
use support::oracle::{replay, replay_batched, shard_records, test_worker_counts};

fn cfg(kind: FilterKind) -> InstaMeasureConfig {
    InstaMeasureConfig::default().small_for_tests().with_filter(kind)
}

fn features_of(im: &InstaMeasure) -> EpochFeatures {
    let mut f = EpochFeatures::default();
    f.absorb(im.wsaf());
    f
}

/// Benign background plus a scan, a flood and one elephant — every
/// detector has something to say about this epoch.
fn attack_mix() -> Vec<PacketRecord> {
    let benign = SyntheticTraceBuilder::new().num_flows(800).seed(13).build().records;
    let (flood, _) = syn_flood(120, 300, 0);
    let (scan, _) = horizontal_scan(150, 300, 0);
    let elephant_key = FlowKey::new([198, 51, 100, 9], [203, 0, 113, 7], 40_009, 80, Protocol::Udp);
    let elephant = (0..20_000u64).map(|t| PacketRecord::new(elephant_key, 1400, t)).collect();
    merge_records(vec![benign, flood, scan, elephant])
}

/// The stable projection of a verdict list: who was flagged for what.
fn flagged(verdicts: &[Anomaly]) -> BTreeSet<(AnomalyKind, Subject)> {
    verdicts.iter().map(|a| (a.kind, a.subject)).collect()
}

fn bits(f: &EpochFeatures) -> (usize, u64, u64) {
    (f.flows(), f.total_packets().to_bits(), f.normalized_entropy().to_bits())
}

#[test]
fn shard_merged_verdicts_are_deterministic_for_every_filter() {
    let records = attack_mix();
    let suite = DetectorSuite::standard(DetectorConfig::default());
    for kind in ALL_FILTER_KINDS {
        // Pressure-fed front ends (swing, hashflow) release flows to the
        // WSAF on eviction, so *which* flows surface shifts with shard
        // pressure — only admission-local filters promise the same
        // flagged set at every worker count.
        let shard_invariant = matches!(kind, FilterKind::Regulator | FilterKind::Rcc);
        let single = features_of(&replay(&records, cfg(kind)));
        let single_verdicts = suite.evaluate(1, None, &single);
        if shard_invariant {
            assert!(
                flagged(&single_verdicts).iter().any(|(k, _)| *k == AnomalyKind::SuperSpreader),
                "{kind:?}: the scan must flag in the reference run"
            );
            assert!(
                flagged(&single_verdicts).iter().any(|(k, _)| *k == AnomalyKind::DdosVictim),
                "{kind:?}: the flood must flag in the reference run"
            );
        }

        for workers in test_worker_counts() {
            let shards = shard_records(&records, workers);
            let mut reference: Option<Vec<Anomaly>> = None;
            for batch in [1usize, 7, 256] {
                let per_shard: Vec<EpochFeatures> = shards
                    .iter()
                    .map(|s| features_of(&replay_batched(s, cfg(kind), batch)))
                    .collect();

                // Merge order must not matter, down to the bit.
                let mut fwd = EpochFeatures::default();
                for f in &per_shard {
                    fwd.merge(f);
                }
                let mut rev = EpochFeatures::default();
                for f in per_shard.iter().rev() {
                    rev.merge(f);
                }
                assert_eq!(bits(&fwd), bits(&rev), "{kind:?}/{workers}w/b{batch}: merge order");
                let fwd_verdicts = suite.evaluate(1, None, &fwd);
                assert_eq!(
                    fwd_verdicts,
                    suite.evaluate(1, None, &rev),
                    "{kind:?}/{workers}w/b{batch}: verdicts depend on merge order"
                );

                // Batch size must not matter at all.
                match &reference {
                    None => reference = Some(fwd_verdicts),
                    Some(r) => assert_eq!(
                        r, &fwd_verdicts,
                        "{kind:?}/{workers}w/b{batch}: verdicts depend on batch size"
                    ),
                }
            }

            // Across worker counts, sketch collision sets shift, so
            // scores may wiggle — but the flagged set is the verdict.
            let sharded = reference.expect("at least one batch size ran");
            if shard_invariant {
                assert_eq!(
                    flagged(&sharded),
                    flagged(&single_verdicts),
                    "{kind:?}/{workers}w: sharding changed who was flagged"
                );
            }
        }
    }
}

#[test]
fn two_epoch_windows_are_deterministic_across_batch_and_merge_order() {
    // Differential detectors (entropy shift, heavy change) read a
    // (prev, cur) window; both sides come from merged shard captures,
    // so the window verdict must be as deterministic as each side.
    let benign = SyntheticTraceBuilder::new().num_flows(800).seed(13).build().records;
    let attack = attack_mix();
    let suite = DetectorSuite::standard(DetectorConfig::default());
    let kind = FilterKind::Regulator;

    let prev_single = features_of(&replay(&benign, cfg(kind)));
    let cur_single = features_of(&replay(&attack, cfg(kind)));
    let single = suite.evaluate(2, Some(&prev_single), &cur_single);
    assert!(
        flagged(&single).iter().any(|(k, _)| *k == AnomalyKind::HeavyChange),
        "the elephant must register as a heavy change in the reference window"
    );

    for workers in test_worker_counts() {
        let mut reference: Option<Vec<Anomaly>> = None;
        for batch in [1usize, 7, 256] {
            let merged = |records: &[PacketRecord]| {
                let mut out = EpochFeatures::default();
                for s in &shard_records(records, workers) {
                    out.merge(&features_of(&replay_batched(s, cfg(kind), batch)));
                }
                out
            };
            let verdicts = suite.evaluate(2, Some(&merged(&benign)), &merged(&attack));
            match &reference {
                None => reference = Some(verdicts),
                Some(r) => {
                    assert_eq!(r, &verdicts, "{workers}w/b{batch}: window verdicts diverged");
                }
            }
        }
        let sharded = reference.expect("at least one batch size ran");
        assert_eq!(
            flagged(&sharded),
            flagged(&single),
            "{workers}w: sharding changed the window's flagged set"
        );
    }
}

#[test]
fn live_rotation_snapshots_match_offline_shard_replay_features() {
    // The detection runtime reads rotation snapshots; those must carry
    // exactly the state an offline replay of each shard's stream would
    // — otherwise the batteries above prove nothing about the daemon.
    let records = attack_mix();
    for workers in test_worker_counts() {
        let registry = std::sync::Arc::new(SharedRegistry::new());
        let config = EngineConfig {
            workers,
            batch_size: 64,
            queue_batches: 8,
            pin: false,
            per_worker: cfg(FilterKind::Regulator),
        };
        let engine = Engine::start(&config, std::sync::Arc::clone(&registry));
        let mut lane = engine.lane().expect("engine is open");
        for slice in records.chunks(997) {
            lane.submit(slice).expect("engine is open");
        }
        drop(lane); // flush-on-drop ships the ragged tail
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while engine.packets_processed() < records.len() as u64 {
            assert!(std::time::Instant::now() < deadline, "workers never caught up");
            std::thread::yield_now();
        }

        let outcome = engine.rotate_with_snapshots();
        assert_eq!(outcome.snapshots.len(), workers);
        let mut live = EpochFeatures::default();
        for im in &outcome.snapshots {
            live.merge(&features_of(im));
        }
        let mut offline = EpochFeatures::default();
        for s in &shard_records(&records, workers) {
            offline.merge(&features_of(&replay(s, cfg(FilterKind::Regulator))));
        }
        assert_eq!(bits(&live), bits(&offline), "{workers}w: live capture != offline replay");
        let suite = DetectorSuite::standard(DetectorConfig::default());
        assert_eq!(
            suite.evaluate(1, None, &live),
            suite.evaluate(1, None, &offline),
            "{workers}w: live verdicts != offline verdicts"
        );
        engine.drain();
    }
}
