//! Multi-core pipeline consistency: sharded measurement must agree with
//! the flow-level truth regardless of worker count.

use instameasure::core::multicore::{run_multicore, worker_for, MultiCoreConfig};
use instameasure::core::InstaMeasureConfig;
use instameasure::traffic::presets::caida_like;

fn config(workers: usize) -> MultiCoreConfig {
    MultiCoreConfig {
        workers,
        queue_capacity: 4096,
        per_worker: InstaMeasureConfig::default().small_for_tests(),
        backpressure: Default::default(),
    }
}

#[test]
fn worker_counts_all_measure_the_same_elephants() {
    let trace = caida_like(0.01, 9);
    let top = trace.stats.truth.top_k(10, false);
    for workers in [1usize, 2, 4] {
        let (sys, report) = run_multicore(&trace.records, &config(workers));
        assert_eq!(report.packets, trace.records.len() as u64);
        assert_eq!(
            report.per_worker_packets.iter().sum::<u64>(),
            report.packets,
            "no packet lost in dispatch"
        );
        for (key, truth) in &top {
            let est = sys.estimate_packets(key);
            let rel = (est - *truth as f64).abs() / *truth as f64;
            assert!(rel < 0.30, "workers={workers} flow {key}: est {est} vs {truth} (rel {rel})");
        }
    }
}

#[test]
fn sharding_respects_dispatch_function() {
    let trace = caida_like(0.003, 11);
    let workers = 3;
    let (sys, _) = run_multicore(&trace.records, &config(workers));
    // Every measured flow lives in the shard the dispatcher routes it
    // to; other shards see at most residual sketch noise (a loaded sketch
    // answers a few phantom packets for any key, by design).
    for (key, truth) in trace.stats.truth.top_k(5, false) {
        let home = worker_for(&key, workers);
        for w in 0..workers {
            let est = sys.shard(w).estimate_packets(&key);
            if w == home {
                assert!(
                    est > 0.5 * truth as f64,
                    "home shard {w} must know {key}: {est} vs {truth}"
                );
            } else {
                assert!(
                    est < (0.05 * truth as f64).max(6.0),
                    "shard {w} must only see noise for {key}: {est} vs {truth}"
                );
            }
        }
    }
}

#[test]
fn merged_top_k_matches_truth_head() {
    let trace = caida_like(0.005, 13);
    let (sys, _) = run_multicore(&trace.records, &config(4));
    let measured: Vec<_> = sys.top_k_by_packets(20).into_iter().map(|(k, _)| k).collect();
    let truth: Vec<_> = trace.stats.truth.top_k(10, false).into_iter().map(|(k, _)| k).collect();
    let hits = truth.iter().filter(|k| measured.contains(k)).count();
    assert!(hits >= 8, "top-10 true flows found in merged top-20: {hits}/10");
}
