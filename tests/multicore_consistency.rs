//! Multi-core pipeline consistency: sharded measurement must agree with
//! the flow-level truth regardless of worker count.

use instameasure::core::multicore::{
    run_multicore, worker_for, BackpressurePolicy, MultiCoreConfig,
};
use instameasure::core::InstaMeasureConfig;
use instameasure::traffic::presets::caida_like;

fn config(workers: usize) -> MultiCoreConfig {
    MultiCoreConfig::builder()
        .workers(workers)
        .queue_capacity(4096)
        .per_worker(InstaMeasureConfig::default().small_for_tests())
        .build()
        .expect("test config is valid")
}

#[test]
fn worker_counts_all_measure_the_same_elephants() {
    let trace = caida_like(0.01, 9);
    let top = trace.stats.truth.top_k(10, false);
    for workers in [1usize, 2, 4] {
        let (sys, report) = run_multicore(&trace.records, &config(workers));
        assert_eq!(report.packets, trace.records.len() as u64);
        assert_eq!(
            report.per_worker_packets.iter().sum::<u64>(),
            report.packets,
            "no packet lost in dispatch"
        );
        for (key, truth) in &top {
            let est = sys.estimate_packets(key);
            let rel = (est - *truth as f64).abs() / *truth as f64;
            assert!(rel < 0.30, "workers={workers} flow {key}: est {est} vs {truth} (rel {rel})");
        }
    }
}

#[test]
fn sharding_respects_dispatch_function() {
    let trace = caida_like(0.003, 11);
    let workers = 3;
    let (sys, _) = run_multicore(&trace.records, &config(workers));
    // Every measured flow lives in the shard the dispatcher routes it
    // to; other shards see at most residual sketch noise (a loaded sketch
    // answers a few phantom packets for any key, by design).
    for (key, truth) in trace.stats.truth.top_k(5, false) {
        let home = worker_for(&key, workers);
        for w in 0..workers {
            let est = sys.shard(w).estimate_packets(&key);
            if w == home {
                assert!(
                    est > 0.5 * truth as f64,
                    "home shard {w} must know {key}: {est} vs {truth}"
                );
            } else {
                assert!(
                    est < (0.05 * truth as f64).max(6.0),
                    "shard {w} must only see noise for {key}: {est} vs {truth}"
                );
            }
        }
    }
}

#[test]
fn drop_mode_accuracy_is_judged_against_delivered_not_offered() {
    // Drop-mode drops used to be invisible to the accuracy metrics: shard
    // regulator counters were compared against the *offered* ground truth,
    // so a lossy run looked inaccurate instead of lossy. The contract is
    // that each worker's dropped packets are subtracted from its ground
    // truth — a shard is judged only on what was delivered to it.
    let trace = caida_like(0.01, 21);
    let cfg = MultiCoreConfig::builder()
        .workers(2)
        .queue_capacity(8)
        .batch_size(8)
        .per_worker(InstaMeasureConfig::default().small_for_tests())
        .backpressure(BackpressurePolicy::Drop)
        .build()
        .expect("test config is valid");
    let (sys, report) = run_multicore(&trace.records, &cfg);
    let offered = trace.records.len() as u64;
    assert_eq!(report.packets + report.dropped, offered, "conservation across the drop split");
    assert!(report.dropped > 0, "an 8-packet queue must overrun on a {offered}-packet burst");
    for w in 0..2 {
        // Delivered ground truth for this worker = dispatched to it; the
        // per-worker drop counters make that computable exactly.
        let delivered = report.per_worker_packets[w];
        let stats = sys.shard(w).filter_stats();
        assert_eq!(
            stats.packets, delivered,
            "worker {w}: regulator saw exactly the delivered packets (offered minus {} dropped)",
            report.per_worker_dropped[w]
        );
        // With truth corrected for drops, the paper's regulation-rate band
        // still holds on the packets that did arrive.
        let rate = stats.regulation_rate();
        assert!(
            rate < 0.05,
            "worker {w}: regulation rate {rate:.4} outside the band on delivered traffic"
        );
    }
}

#[test]
fn merged_top_k_matches_truth_head() {
    let trace = caida_like(0.005, 13);
    let (sys, _) = run_multicore(&trace.records, &config(4));
    let measured: Vec<_> = sys.top_k_by_packets(20).into_iter().map(|(k, _)| k).collect();
    let truth: Vec<_> = trace.stats.truth.top_k(10, false).into_iter().map(|(k, _)| k).collect();
    let hits = truth.iter().filter(|k| measured.contains(k)).count();
    assert!(hits >= 8, "top-10 true flows found in merged top-20: {hits}/10");
}
