//! Adversarial traffic + alert-latency battery for the streaming
//! detection suite in the live daemon.
//!
//! Each scenario pushes a labeled attack trace from
//! `instameasure_traffic::adversarial` over loopback TCP, closes the
//! epoch, and asserts the *right* alert reaches a subscribed client —
//! right kind, right subject (the ground-truth attacker or victim), and
//! within the paper's detection budget: onset→alert is client-timed
//! from the rotate request to the alert frame's arrival and gated at
//! [`alert_budget`] (10 ms unless `INSTAMEASURE_DETECT_BUDGET_MS`
//! overrides it — CI machines differ, the default is the paper's
//! number). The benign baseline proves the other half: replaying the
//! same unremarkable trace across epochs raises **zero** alerts.

use std::time::{Duration, Instant};

use instameasure::core::detect::{Anomaly, AnomalyKind, DetectorConfig, Subject};
use instameasure::core::InstaMeasureConfig;
use instameasure::packet::{FlowKey, PacketRecord, Protocol};
use instameasure::service::server::{Server, ServiceConfig};
use instameasure::service::{DetectionConfig, ServiceClient};
use instameasure::traffic::adversarial::{collision_flood, horizontal_scan, pulse_wave, syn_flood};
use instameasure::traffic::{merge_records, SyntheticTraceBuilder};

/// The onset→alert budget: the paper's ~10 ms instant-detection claim,
/// overridable for slow CI via `INSTAMEASURE_DETECT_BUDGET_MS`.
fn alert_budget() -> Duration {
    let ms = std::env::var("INSTAMEASURE_DETECT_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    Duration::from_millis(ms)
}

fn start_detect_with(
    workers: usize,
    interval: Option<Duration>,
    detectors: DetectorConfig,
) -> Server {
    let cfg = ServiceConfig::builder()
        .addr("127.0.0.1:0")
        .workers(workers)
        .batch_size(256)
        .read_timeout(Duration::from_secs(5))
        .per_worker(InstaMeasureConfig::default().small_for_tests())
        .detect(DetectionConfig { interval, detectors })
        .build()
        .expect("static test config is valid");
    Server::start(cfg).expect("loopback bind")
}

fn start_detect(workers: usize) -> Server {
    start_detect_with(workers, None, DetectorConfig::default())
}

/// A subscriber connection with a short read timeout, so "no alert"
/// checks return quickly instead of hanging for the default 10 s.
fn subscriber(server: &Server, kinds: u8) -> ServiceClient {
    let mut sub = ServiceClient::connect_with_timeout(server.local_addr(), Duration::from_secs(1))
        .expect("loopback connect");
    let (_epoch, mask) = sub.subscribe(kinds).expect("detection is enabled");
    assert_ne!(mask, 0, "effective mask is never empty");
    sub
}

/// Pushes a trace and waits until the shards have processed every
/// packet, so the following rotate closes an epoch that contains the
/// whole scenario.
fn push_and_settle(tap: &mut ServiceClient, ops: &mut ServiceClient, records: &[PacketRecord]) {
    // The fin ack reports the connection's cumulative accepted packets.
    let accepted = tap.push_records(records).expect("push over loopback");
    assert!(accepted >= records.len() as u64, "fin ack covers this push");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s = ops.status().expect("status query");
        if s.packets_processed == s.packets_submitted {
            return;
        }
        assert!(Instant::now() < deadline, "shards never caught up");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Drains every buffered/incoming alert until the read timeout lapses.
fn drain_alerts(sub: &mut ServiceClient) -> Vec<(u64, Anomaly)> {
    let mut out = Vec::new();
    while let Some(hit) = sub.next_alert().expect("alert stream stays classified") {
        out.push(hit);
    }
    out
}

fn stop(server: Server, clients: Vec<ServiceClient>) {
    drop(clients); // closed sockets let handler threads exit immediately
    server.request_stop();
    server.join();
}

#[test]
fn benign_baseline_raises_zero_alerts_across_epochs() {
    let server = start_detect(2);
    let mut tap = ServiceClient::connect(server.local_addr()).unwrap();
    let mut sub = subscriber(&server, 0);

    // The same unremarkable Zipf trace in two consecutive epochs: the
    // absolute detectors see no fan anomaly, and the differential
    // detectors see a bit-identical window — nothing may fire.
    let trace = SyntheticTraceBuilder::new().num_flows(2_000).seed(7).build();
    push_and_settle(&mut tap, &mut sub, &trace.records);
    let (epoch, retired) = sub.rotate().unwrap();
    assert_eq!(epoch, 1);
    assert!(retired > 0, "the benign epoch was not empty");
    push_and_settle(&mut tap, &mut sub, &trace.records);
    sub.rotate().unwrap();

    let alerts = drain_alerts(&mut sub);
    assert!(alerts.is_empty(), "benign baseline must stay silent, got {alerts:?}");
    stop(server, vec![tap, sub]);
}

#[test]
fn syn_flood_raises_a_ddos_victim_alert_within_budget() {
    let server = start_detect(2);
    let mut tap = ServiceClient::connect(server.local_addr()).unwrap();
    let mut sub = subscriber(&server, 0);

    let (records, truth) = syn_flood(200, 300, 0);
    let victim = truth.victim.expect("syn flood has a victim");
    let budget = alert_budget();

    // Best-of-N: the budget gates the detection path itself, not one
    // unlucky scheduler hiccup on a loaded CI machine.
    let mut best = Duration::MAX;
    for round in 0..5u32 {
        push_and_settle(&mut tap, &mut sub, &records);
        let t0 = Instant::now();
        let (epoch, _) = sub.rotate().unwrap();
        // The daemon writes alert frames before the Rotated ack, so the
        // verdict is already buffered client-side here.
        let hit = loop {
            match sub.next_alert().unwrap() {
                Some((alert_epoch, a)) if a.kind == AnomalyKind::DdosVictim => {
                    break (alert_epoch, a);
                }
                Some(_) => continue,
                None => panic!("round {round}: flood epoch closed but no victim alert arrived"),
            }
        };
        best = best.min(t0.elapsed());

        let (alert_epoch, alert) = hit;
        assert_eq!(alert_epoch, epoch - 1, "the alert names the closed epoch");
        assert_eq!(
            alert.subject,
            Subject::Host(victim),
            "the alert must name the ground-truth victim"
        );
        assert!(alert.score >= alert.threshold, "score clears the threshold: {alert:?}");
    }
    assert!(
        best <= budget,
        "onset->alert latency {best:?} exceeds the {budget:?} detection budget"
    );
    stop(server, vec![tap, sub]);
}

#[test]
fn horizontal_scan_raises_a_super_spreader_alert_on_the_scanner() {
    let server = start_detect(2);
    let mut tap = ServiceClient::connect(server.local_addr()).unwrap();
    let mut sub = subscriber(&server, 0);

    let (records, truth) = horizontal_scan(200, 300, 0);
    let scanner = truth.attacker.expect("scan has a scanner");
    push_and_settle(&mut tap, &mut sub, &records);
    sub.rotate().unwrap();

    let alerts = drain_alerts(&mut sub);
    assert!(
        alerts
            .iter()
            .any(|(_, a)| a.kind == AnomalyKind::SuperSpreader
                && a.subject == Subject::Host(scanner)),
        "scan must be pinned on the scanner: {alerts:?}"
    );
    assert!(
        !alerts.iter().any(|(_, a)| a.kind == AnomalyKind::DdosVictim),
        "every scanned destination has fan-in 1; no victim alert is justified: {alerts:?}"
    );
    stop(server, vec![tap, sub]);
}

#[test]
fn collision_flood_is_detected_despite_probe_chain_stress() {
    // The WSAF-collision flood caps its own resident fan-out at the
    // table's probe window (16 under the test config), so this daemon
    // runs a tuned spreader threshold below that — the scenario proves
    // detection keeps working while the table's probe chains are
    // maximally stressed, not that default thresholds cover it.
    let detectors = DetectorConfig { spreader_fanout: 12, ..DetectorConfig::default() };
    let server = start_detect_with(2, None, detectors);
    let mut tap = ServiceClient::connect(server.local_addr()).unwrap();
    let mut sub = subscriber(&server, 0);

    let wsaf_cfg = InstaMeasureConfig::default().small_for_tests().wsaf;
    let (records, truth) = collision_flood(&wsaf_cfg, 96, 300, 0);
    let attacker = truth.attacker.expect("collision flood has an attacker");
    push_and_settle(&mut tap, &mut sub, &records);
    sub.rotate().unwrap();

    let alerts = drain_alerts(&mut sub);
    assert!(
        alerts
            .iter()
            .any(|(_, a)| a.kind == AnomalyKind::SuperSpreader
                && a.subject == Subject::Host(attacker)),
        "collision flood must surface as a spreader on the attacker: {alerts:?}"
    );
    stop(server, vec![tap, sub]);
}

#[test]
fn pulse_wave_alerts_fire_at_pulse_epochs_and_clear_at_quiet_ones() {
    let server = start_detect(2);
    let mut tap = ServiceClient::connect(server.local_addr()).unwrap();
    let mut sub = subscriber(&server, 0);

    let (bursts, truth) = pulse_wave(2, 150, 300, 1_000_000);
    let victim = truth.victim.expect("pulse wave has a victim");
    let is_victim_alert = |(_, a): &(u64, Anomaly)| {
        a.kind == AnomalyKind::DdosVictim && a.subject == Subject::Host(victim)
    };

    // Pulse 1 → alert.
    push_and_settle(&mut tap, &mut sub, &bursts[0]);
    sub.rotate().unwrap();
    let alerts = drain_alerts(&mut sub);
    assert!(alerts.iter().any(is_victim_alert), "pulse epoch must alert: {alerts:?}");

    // Quiet epoch → the alert clears (nothing resident, nothing fires).
    sub.rotate().unwrap();
    let alerts = drain_alerts(&mut sub);
    assert!(alerts.is_empty(), "quiet epoch must stay silent: {alerts:?}");

    // Pulse 2 → the alert returns.
    push_and_settle(&mut tap, &mut sub, &bursts[1]);
    sub.rotate().unwrap();
    let alerts = drain_alerts(&mut sub);
    assert!(alerts.iter().any(is_victim_alert), "second pulse must re-alert: {alerts:?}");
    stop(server, vec![tap, sub]);
}

#[test]
fn elephant_swing_raises_heavy_change_and_entropy_shift() {
    let server = start_detect(2);
    let mut tap = ServiceClient::connect(server.local_addr()).unwrap();
    let mut sub = subscriber(&server, 0);

    // Epoch 1: forty uniform flows (distinct endpoints, equal sizes) —
    // normalized entropy is ~1 and nothing is anomalous.
    let uniform: Vec<PacketRecord> = (0..40u16)
        .flat_map(|f| {
            let key = FlowKey::new(
                [20, 0, (f >> 8) as u8, f as u8],
                [30, 0, (f >> 8) as u8, f as u8],
                5000,
                5001,
                Protocol::Udp,
            );
            (0..300u64).map(move |t| PacketRecord::new(key, 200, u64::from(f) * 300 + t))
        })
        .collect();
    push_and_settle(&mut tap, &mut sub, &uniform);
    sub.rotate().unwrap();
    let alerts = drain_alerts(&mut sub);
    assert!(alerts.is_empty(), "the uniform epoch is unremarkable: {alerts:?}");

    // Epoch 2: the same mix plus one overwhelming elephant — packet
    // mass concentrates, entropy collapses, and the elephant itself is
    // a heavy change against the empty baseline.
    let elephant_key = FlowKey::new([198, 51, 100, 9], [203, 0, 113, 7], 40_009, 80, Protocol::Udp);
    let elephant: Vec<PacketRecord> =
        (0..300_000u64).map(|t| PacketRecord::new(elephant_key, 1400, t)).collect();
    let swung = merge_records(vec![uniform.clone(), elephant]);
    push_and_settle(&mut tap, &mut sub, &swung);
    sub.rotate().unwrap();

    let alerts = drain_alerts(&mut sub);
    let heavy = alerts
        .iter()
        .find(|(_, a)| a.kind == AnomalyKind::HeavyChange)
        .unwrap_or_else(|| panic!("the elephant must register as a heavy change: {alerts:?}"));
    assert_eq!(heavy.1.subject, Subject::Flow(elephant_key), "heavy change names the elephant");
    assert!(heavy.1.score > 0.0, "the swing was upward");
    let entropy = alerts
        .iter()
        .find(|(_, a)| a.kind == AnomalyKind::EntropyShift)
        .unwrap_or_else(|| panic!("entropy collapse must raise a shift alert: {alerts:?}"));
    assert_eq!(
        entropy.1.subject,
        Subject::Flow(elephant_key),
        "the shift's lead subject is the dominant flow"
    );
    assert!(entropy.1.score < 0.0, "mass concentration lowers entropy");
    stop(server, vec![tap, sub]);
}

#[test]
fn subscription_mask_filters_delivery_without_silencing_detection() {
    let server = start_detect(2);
    let mut tap = ServiceClient::connect(server.local_addr()).unwrap();
    // Subscribed to DDoS-victim alerts only; the scenario is a scan.
    let mut sub = subscriber(&server, AnomalyKind::DdosVictim.bit());

    let (records, _) = horizontal_scan(200, 300, 0);
    push_and_settle(&mut tap, &mut sub, &records);
    sub.rotate().unwrap();

    assert!(
        drain_alerts(&mut sub).is_empty(),
        "a victim-only subscriber must not receive spreader alerts"
    );
    // …but the daemon still detected and counted the spreader.
    let snap = server.registry().snapshot();
    assert!(
        snap.counter("detect.alerts.super_spreader").unwrap_or(0) >= 1,
        "the verdict itself must still be produced and counted"
    );
    stop(server, vec![tap, sub]);
}

#[test]
fn subscribe_is_rejected_when_detection_is_disabled() {
    let cfg = ServiceConfig::builder()
        .addr("127.0.0.1:0")
        .workers(1)
        .read_timeout(Duration::from_secs(2))
        .per_worker(InstaMeasureConfig::default().small_for_tests())
        .build()
        .unwrap();
    let server = Server::start(cfg).unwrap();
    let mut client = ServiceClient::connect(server.local_addr()).unwrap();
    match client.subscribe(0) {
        Err(instameasure::service::ClientError::Remote { class, .. }) => {
            assert_eq!(class, "unsupported");
        }
        other => panic!("subscribe without detection must be classified, got {other:?}"),
    }
    stop(server, vec![client]);
}

#[test]
fn periodic_interval_delivers_alerts_without_protocol_rotates() {
    // The daemon's own epoch clock closes epochs; nobody sends Rotate.
    // A rotation may land mid-push and split the scan across epochs, so
    // the push retries until an epoch holds the whole scan.
    let server = start_detect_with(2, Some(Duration::from_millis(200)), DetectorConfig::default());
    let mut sub = subscriber(&server, 0);
    let mut tap = ServiceClient::connect(server.local_addr()).unwrap();

    let (records, truth) = horizontal_scan(300, 300, 0);
    let scanner = truth.attacker.expect("scan has a scanner");
    let mut found = None;
    'attempts: for _ in 0..5 {
        tap.push_records(&records).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        while Instant::now() < deadline {
            if let Some((epoch, a)) = sub.next_alert().unwrap() {
                if a.kind == AnomalyKind::SuperSpreader && a.subject == Subject::Host(scanner) {
                    found = Some((epoch, a));
                    break 'attempts;
                }
            }
        }
    }
    let (_, alert) = found.expect("the periodic clock never surfaced the scan");
    assert!(alert.score >= alert.threshold);
    stop(server, vec![tap, sub]);
}
