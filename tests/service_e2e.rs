//! End-to-end test of the live service against the offline pipeline: the
//! daemon fed a trace over loopback TCP must be *bit-identical* to a
//! single-core `InstaMeasure` fed the same records in the same order —
//! the paper's instant online queries cannot cost accuracy.

use std::collections::BTreeSet;
use std::time::Duration;

use instameasure::core::{InstaMeasure, InstaMeasureConfig};
use instameasure::service::server::{Server, ServiceConfig};
use instameasure::service::ServiceClient;
use instameasure::traffic::SyntheticTraceBuilder;

fn start(workers: usize) -> Server {
    let cfg = ServiceConfig::builder()
        .addr("127.0.0.1:0")
        .workers(workers)
        .batch_size(512)
        .read_timeout(Duration::from_secs(5))
        .per_worker(InstaMeasureConfig::default().small_for_tests())
        .build()
        .expect("static test config is valid");
    Server::start(cfg).expect("loopback bind")
}

/// Polls status until the shards have processed everything submitted;
/// the fin-ack only confirms acceptance into the pipeline.
fn wait_drained(ops: &mut ServiceClient) -> instameasure::service::StatusReport {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let s = ops.status().unwrap();
        if s.packets_processed == s.packets_submitted {
            return s;
        }
        assert!(std::time::Instant::now() < deadline, "shards never caught up");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A flow set with exact counter bits, for drop-aware set equality.
fn flow_set(
    flows: impl Iterator<Item = (instameasure::packet::FlowKey, f64, f64)>,
) -> BTreeSet<(String, u64, u64)> {
    flows.map(|(k, p, b)| (k.to_string(), p.to_bits(), b.to_bits())).collect()
}

#[test]
fn live_heavy_hitters_match_offline_analyze_exactly() {
    let trace = SyntheticTraceBuilder::new().num_flows(3_000).seed(11).build();

    // Offline oracle: the plain single-core pipeline.
    let mut offline = InstaMeasure::new(InstaMeasureConfig::default().small_for_tests());
    for r in &trace.records {
        offline.process(r);
    }

    // Live: one worker shard sees the same records in the same order, so
    // every estimate must be bit-identical, not just close.
    let server = start(1);
    let mut tap = ServiceClient::connect(server.local_addr()).unwrap();
    let accepted = tap.push_records(&trace.records).unwrap();
    assert_eq!(accepted, trace.records.len() as u64, "push must be packet-exact");

    let mut ops = ServiceClient::connect(server.local_addr()).unwrap();
    wait_drained(&mut ops);

    // The full resident flow set, exact-set-equal (drop-aware: nothing
    // was dropped, so nothing may differ).
    let offline_all = offline.wsaf().len();
    let live = ops.top_k(offline_all as u32).unwrap();
    assert_eq!(live.len(), offline_all, "same number of WSAF-resident flows");
    let live_set = flow_set(live.iter().map(|f| (f.key, f.packets, f.bytes)));
    let offline_set = flow_set(offline.wsaf().iter().map(|e| (e.key, e.packets, e.bytes)));
    assert_eq!(live_set, offline_set, "live and offline flow sets diverged");

    // Per-flow point queries, including the sketch residual, on the ten
    // true heaviest flows.
    for (key, _) in trace.stats.truth.top_k(10, false) {
        let (pkts, bytes) = ops.query_flow(&key).unwrap();
        assert_eq!(pkts.to_bits(), offline.estimate_packets(&key).to_bits(), "{key}");
        assert_eq!(bytes.to_bits(), offline.estimate_bytes(&key).to_bits(), "{key}");
    }

    // Graceful shutdown: every pushed packet accounted for.
    let report = ops.shutdown().unwrap();
    assert_eq!(report.packets_submitted, trace.records.len() as u64);
    assert_eq!(report.packets_processed, trace.records.len() as u64);
    let joined = server.join();
    assert_eq!(joined, report, "join must return the drained report");
}

#[test]
fn multiworker_daemon_accounts_for_concurrent_pushers() {
    let server = start(4);
    let addr = server.local_addr();
    let per_pusher = 40_000usize;
    let pushers: Vec<_> = (0..3)
        .map(|p| {
            std::thread::spawn(move || {
                let trace = SyntheticTraceBuilder::new().num_flows(500).seed(100 + p).build();
                let records = &trace.records[..per_pusher.min(trace.records.len())];
                let mut tap = ServiceClient::connect(addr).unwrap();
                tap.push_records(records).unwrap()
            })
        })
        .collect();
    let mut total = 0u64;
    for p in pushers {
        total += p.join().unwrap();
    }

    let mut ops = ServiceClient::connect(addr).unwrap();
    let report = ops.shutdown().unwrap();
    assert_eq!(report.packets_submitted, total, "no pushed packet may vanish");
    assert_eq!(report.packets_processed, total, "drain must finish the pipeline");
    assert_eq!(report.workers, 4);
    server.join();
}

#[test]
fn rotate_starts_a_fresh_epoch_without_stopping_service() {
    let server = start(2);
    let trace = SyntheticTraceBuilder::new().num_flows(800).seed(5).build();
    let mut tap = ServiceClient::connect(server.local_addr()).unwrap();
    tap.push_records(&trace.records).unwrap();

    let mut ops = ServiceClient::connect(server.local_addr()).unwrap();
    let before = wait_drained(&mut ops);
    assert!(before.flows > 0, "trace must leave resident flows");
    let (epoch, retired) = ops.rotate().unwrap();
    assert_eq!(epoch, 1);
    assert_eq!(retired, before.flows);
    let after = ops.status().unwrap();
    assert_eq!(after.flows, 0, "rotation must retire the working set");
    assert_eq!(after.epoch, 1);

    // The daemon keeps measuring into the new epoch.
    let accepted = tap.push_records(&trace.records[..1000]).unwrap();
    assert_eq!(accepted, trace.records.len() as u64 + 1000);
    ops.shutdown().unwrap();
    server.join();
}
