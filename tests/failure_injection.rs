//! Failure injection: the system must degrade gracefully, never corrupt
//! state or panic, when its resources are exhausted or inputs are hostile.

use instameasure::core::multicore::{run_multicore, MultiCoreConfig};
use instameasure::core::{InstaMeasure, InstaMeasureConfig};
use instameasure::packet::pcap::{PcapError, PcapReader};
use instameasure::packet::{parse, FlowKey, PacketRecord, Protocol};
use instameasure::sketch::SketchConfig;
use instameasure::traffic::presets::caida_like;
use instameasure::wsaf::WsafConfig;

fn key(i: u32) -> FlowKey {
    FlowKey::new(i.to_be_bytes(), [7, 7, 7, 7], 1, 2, Protocol::Udp)
}

#[test]
fn wsaf_overflow_keeps_elephants() {
    // A WSAF far too small for the flow population: evictions churn mice,
    // but the repeatedly-updated elephant must survive.
    let cfg = InstaMeasureConfig::default()
        .with_sketch(SketchConfig::builder().memory_bytes(1024).vector_bits(8).build().unwrap())
        .with_wsaf(
            WsafConfig::builder()
                .entries_log2(6) // 64 entries only
                .probe_limit(8)
                .expiry_nanos(u64::MAX / 2)
                .build()
                .unwrap(),
        );
    let mut im = InstaMeasure::new(cfg);
    for round in 0..2_000u64 {
        // Elephant traffic interleaved with a storm of mice flows.
        for _ in 0..10 {
            im.process(&PacketRecord::new(key(0), 64, round));
        }
        im.process(&PacketRecord::new(key(1 + round as u32), 64, round));
    }
    assert!(im.wsaf().len() <= 64);
    let est = im.estimate_packets(&key(0));
    assert!(
        (est - 20_000.0).abs() / 20_000.0 < 0.25,
        "elephant survived churn with estimate {est}"
    );
}

#[test]
fn sketch_overload_stays_sane() {
    // A 64-byte sketch (8 words) carrying 50k flows: accuracy is gone, but
    // no panics, NaNs or negative estimates are allowed.
    let cfg = InstaMeasureConfig::default()
        .with_sketch(SketchConfig::builder().memory_bytes(64).vector_bits(8).build().unwrap())
        .with_wsaf(WsafConfig::builder().entries_log2(10).build().unwrap());
    let mut im = InstaMeasure::new(cfg);
    for i in 0..50_000u32 {
        im.process(&PacketRecord::new(key(i), 64, u64::from(i)));
    }
    for i in (0..50_000u32).step_by(997) {
        let est = im.estimate_packets(&key(i));
        assert!(est.is_finite() && est >= 0.0, "flow {i}: {est}");
    }
}

#[test]
fn tiny_queues_do_not_deadlock_or_drop() {
    let trace = caida_like(0.002, 51);
    let cfg = MultiCoreConfig::builder()
        .workers(4)
        .queue_capacity(2) // brutal backpressure: one 2-packet batch in flight
        .batch_size(2)
        .per_worker(InstaMeasureConfig::default().small_for_tests())
        .build()
        .unwrap();
    let (_, report) = run_multicore(&trace.records, &cfg);
    assert_eq!(report.packets, trace.records.len() as u64, "backpressure must not lose packets");
}

#[test]
fn malformed_pcap_and_frames_are_rejected_not_panicked() {
    // Garbage pcap header.
    assert!(matches!(PcapReader::new(&[0u8; 24][..]), Err(PcapError::Format(_))));
    // Too-short pcap.
    assert!(PcapReader::new(&[0u8; 3][..]).is_err());
    // Fuzzish frames through the parser.
    for len in 0..64usize {
        let buf: Vec<u8> = (0..len).map(|i| (i * 37) as u8).collect();
        let _ = parse::parse_ethernet(&buf);
        let _ = parse::parse_ipv4(&buf);
    }
}

#[test]
fn zero_and_max_length_packets() {
    let mut im = InstaMeasure::new(InstaMeasureConfig::default().small_for_tests());
    for t in 0..10_000u64 {
        im.process(&PacketRecord::new(key(1), 0, t));
        im.process(&PacketRecord::new(key(2), u16::MAX, t));
    }
    assert!(im.estimate_packets(&key(1)) > 0.0);
    let b = im.estimate_bytes(&key(2));
    assert!(b.is_finite() && b > 0.0);
    assert_eq!(im.estimate_bytes(&key(1)), 0.0, "zero-length flow has zero bytes");
}

#[test]
fn timestamps_may_go_backwards_without_breaking_expiry() {
    // Out-of-order timestamps (mirror-port reordering) must not underflow
    // the expiry arithmetic.
    let cfg = InstaMeasureConfig::default()
        .with_sketch(SketchConfig::builder().memory_bytes(1024).vector_bits(8).build().unwrap())
        .with_wsaf(
            WsafConfig::builder().entries_log2(6).probe_limit(8).expiry_nanos(10).build().unwrap(),
        );
    let mut im = InstaMeasure::new(cfg);
    for i in 0..5_000u32 {
        let ts = if i % 2 == 0 { 1_000_000 } else { 0 };
        im.process(&PacketRecord::new(key(i % 100), 64, ts));
    }
    for i in 0..100 {
        assert!(im.estimate_packets(&key(i)).is_finite());
    }
}
