//! Seed sweeps: the headline invariants must hold across many independent
//! hash/workload seeds, not just the one the figures happen to use.

use instameasure::core::metrics::standard_error;
use instameasure::core::{InstaMeasure, InstaMeasureConfig};
use instameasure::sketch::{analysis, FlowFilter, FlowRegulator, SingleLayerRcc, SketchConfig};
use instameasure::traffic::presets::caida_like;
use instameasure::wsaf::WsafConfig;

fn sketch(seed: u64) -> SketchConfig {
    SketchConfig::builder().memory_bytes(16 * 1024).vector_bits(8).seed(seed).build().unwrap()
}

#[test]
fn regulation_rates_stable_across_seeds() {
    // FR ~1-3%, RCC ~11-16%, ratio > 4x — for every seed.
    for seed in 0..8u64 {
        let trace = caida_like(0.02, seed);
        let mut fr = FlowRegulator::new(sketch(seed));
        let mut rcc = SingleLayerRcc::new(sketch(seed ^ 0xFF));
        for r in &trace.records {
            fr.process(r);
            rcc.process(r);
        }
        let fr_rate = fr.stats().regulation_rate();
        let rcc_rate = rcc.stats().regulation_rate();
        assert!((0.005..0.05).contains(&fr_rate), "seed {seed}: FR {fr_rate}");
        assert!((0.08..0.20).contains(&rcc_rate), "seed {seed}: RCC {rcc_rate}");
        assert!(rcc_rate / fr_rate > 4.0, "seed {seed}: ratio {}", rcc_rate / fr_rate);
    }
}

#[test]
fn elephant_standard_error_bounded_across_seeds() {
    for seed in 0..6u64 {
        let trace = caida_like(0.02, seed);
        let cfg = InstaMeasureConfig::default()
            .with_sketch(sketch(seed))
            .with_wsaf(WsafConfig::builder().entries_log2(16).seed(seed).build().unwrap());
        let mut im = InstaMeasure::new(cfg);
        for r in &trace.records {
            im.process(r);
        }
        let pairs: Vec<(f64, f64)> = trace
            .stats
            .truth
            .flows_at_least(500)
            .iter()
            .map(|(k, t)| (im.estimate_packets(k), *t as f64))
            .collect();
        assert!(pairs.len() >= 10, "seed {seed}: too few elephants");
        let se = standard_error(&pairs).unwrap();
        assert!(se < 0.12, "seed {seed}: SE {se}");
        // And the estimator is roughly unbiased (mean signed error ~0).
        let bias: f64 = pairs.iter().map(|(e, t)| (e - t) / t).sum::<f64>() / pairs.len() as f64;
        assert!(bias.abs() < 0.06, "seed {seed}: bias {bias}");
    }
}

#[test]
fn analytic_model_tracks_simulation_across_seeds() {
    // The chain model is seed-free; simulations with different hash seeds
    // must all land near it.
    let trace = caida_like(0.02, 123);
    let sizes: Vec<u64> = trace.stats.truth.packets.values().copied().collect();
    let analytic = analysis::expected_regulation_rate(&sketch(0), &sizes, 2);
    for seed in 0..6u64 {
        let mut fr = FlowRegulator::new(sketch(seed));
        for r in &trace.records {
            fr.process(r);
        }
        let rate = fr.stats().regulation_rate();
        let rel = (rate - analytic).abs() / analytic;
        assert!(rel < 0.35, "seed {seed}: simulated {rate} vs analytic {analytic}");
    }
}
