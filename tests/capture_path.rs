//! The full capture path: synthetic trace → pcap bytes → parser →
//! measurement must agree with measuring the original records.

use instameasure::core::{InstaMeasure, InstaMeasureConfig};
use instameasure::packet::pcap::{read_records, PcapWriter, TsResolution};
use instameasure::packet::synth::synthesize_frame;
use instameasure::traffic::SyntheticTraceBuilder;

#[test]
fn pcap_roundtrip_preserves_measurement() {
    let trace = SyntheticTraceBuilder::new()
        .num_flows(2_000)
        .max_flow_size(10_000)
        .duration_secs(1.0)
        .seed(17)
        .build();

    // Write to an in-memory pcap "file".
    let mut file = Vec::new();
    let mut w = PcapWriter::new(&mut file, TsResolution::Nano).unwrap();
    for pkt in &trace.records {
        w.write_packet(pkt.ts_nanos, &synthesize_frame(pkt)).unwrap();
    }
    w.into_inner().unwrap();

    // Read back and re-measure.
    let (records, skipped) = read_records(&file[..]).unwrap();
    assert_eq!(skipped, 0, "all synthesized frames must parse");
    assert_eq!(records.len(), trace.records.len());

    let cfg = InstaMeasureConfig::default().small_for_tests();
    let mut from_capture = InstaMeasure::new(cfg);
    for r in &records {
        from_capture.process(r);
    }
    let mut from_memory = InstaMeasure::new(cfg);
    for r in &trace.records {
        from_memory.process(r);
    }

    // Identical flows and order => identical estimates for the heavy
    // flows (packet counting ignores wire_len differences due to padding).
    for (key, truth) in trace.stats.truth.top_k(20, false) {
        let a = from_capture.estimate_packets(&key);
        let b = from_memory.estimate_packets(&key);
        assert_eq!(a, b, "flow {key} truth {truth}: capture {a} vs memory {b}");
    }
}

#[test]
fn capture_keys_match_ground_truth() {
    let trace = SyntheticTraceBuilder::new().num_flows(500).seed(23).build();
    let mut file = Vec::new();
    let mut w = PcapWriter::new(&mut file, TsResolution::Micro).unwrap();
    for pkt in &trace.records {
        w.write_packet(pkt.ts_nanos, &synthesize_frame(pkt)).unwrap();
    }
    w.into_inner().unwrap();
    let (records, _) = read_records(&file[..]).unwrap();
    let recovered = instameasure::traffic::ground_truth(&records);
    assert_eq!(recovered.packets.len(), trace.stats.truth.packets.len());
    for (k, v) in &trace.stats.truth.packets {
        assert_eq!(recovered.packets.get(k), Some(v), "flow {k}");
    }
}
