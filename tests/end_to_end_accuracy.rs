//! End-to-end accuracy: the full system on CAIDA-like traffic must land in
//! the paper's error regime (low single-digit percent for elephants,
//! improving with memory and flow size).

use instameasure::core::metrics::{
    error_by_bucket, paper_packet_buckets, standard_error, top_k_recall,
};
use instameasure::core::{InstaMeasure, InstaMeasureConfig};
use instameasure::sketch::SketchConfig;
use instameasure::traffic::presets::caida_like;
use instameasure::wsaf::WsafConfig;

fn measure_scaled(
    l1_bytes: usize,
    seed: u64,
    scale: f64,
) -> (InstaMeasure, instameasure::traffic::Trace) {
    let trace = caida_like(scale, seed);
    let cfg = InstaMeasureConfig::default()
        .with_sketch(
            SketchConfig::builder()
                .memory_bytes(l1_bytes)
                .vector_bits(8)
                .seed(seed)
                .build()
                .unwrap(),
        )
        .with_wsaf(WsafConfig::builder().entries_log2(18).build().unwrap());
    let mut im = InstaMeasure::new(cfg);
    for r in &trace.records {
        im.process(r);
    }
    (im, trace)
}

fn measure(l1_bytes: usize, seed: u64) -> (InstaMeasure, instameasure::traffic::Trace) {
    measure_scaled(l1_bytes, seed, 0.02)
}

#[test]
fn elephant_errors_in_paper_regime() {
    let (im, trace) = measure(32 * 1024, 1);
    // Buckets anchored on the head of the Zipf curve, like the figures.
    let max_flow = trace.stats.truth.packets.values().max().copied().unwrap() as f64;
    let bucket_scale = max_flow / 1.2e6;
    let buckets = paper_packet_buckets(bucket_scale);
    let flows: Vec<_> = trace.stats.truth.packets.iter().map(|(k, &v)| (*k, v)).collect();
    let errs = error_by_bucket(&flows, &buckets, |k| im.estimate_packets(k));
    // Largest bucket must be the most accurate and within a loose paper
    // band (paper: 0.56%; scaled traces are noisier — accept < 10%).
    let big = errs[2].expect("largest bucket populated");
    assert!(big < 0.10, "1000K+-equivalent bucket error {big}");
    let small = errs[0].expect("small bucket populated");
    assert!(small < 0.30, "10K+-equivalent bucket error {small}");
    assert!(big <= small + 0.02, "errors shrink with flow size: {big} vs {small}");
}

#[test]
fn more_memory_is_more_accurate() {
    // Memory buys lower cross-flow noise; the effect shows on flows big
    // enough to run many saturation cycles (>= ~10 cycles, i.e. >= 500
    // packets), like the paper's 10K+ buckets.
    let mut errs = Vec::new();
    for l1 in [1024usize, 64 * 1024] {
        let (im, trace) = measure_scaled(l1, 2, 0.1);
        let min_size = 500u64;
        let pairs: Vec<(f64, f64)> = trace
            .stats
            .truth
            .flows_at_least(min_size)
            .iter()
            .map(|(k, t)| (im.estimate_packets(k), *t as f64))
            .collect();
        errs.push(standard_error(&pairs).unwrap());
    }
    assert!(errs[1] < errs[0], "64KB ({}) must beat 1KB ({})", errs[1], errs[0]);
}

#[test]
fn byte_counter_tracks_packet_counter() {
    let (im, trace) = measure(32 * 1024, 3);
    // Byte accuracy needs enough saturation samples per flow; use flows
    // with >= ~10 cycles like the paper's 10MB+ bucket.
    let min_size = 500u64;
    let mut pkt_pairs = Vec::new();
    let mut byte_pairs = Vec::new();
    for (k, t) in trace.stats.truth.flows_at_least(min_size) {
        pkt_pairs.push((im.estimate_packets(&k), t as f64));
        let tb = trace.stats.truth.bytes[&k] as f64;
        byte_pairs.push((im.estimate_bytes(&k), tb));
    }
    let se_p = standard_error(&pkt_pairs).unwrap();
    let se_b = standard_error(&byte_pairs).unwrap();
    // Paper §III-C: byte estimation via saturation sampling is nearly as
    // accurate as packet estimation (within a small factor).
    assert!(se_b < 3.0 * se_p + 0.05, "byte SE {se_b} vs packet SE {se_p}");
}

#[test]
fn top_k_recall_above_90_percent() {
    let (im, trace) = measure(32 * 1024, 4);
    // K as a fraction of the population: the paper's deepest list
    // (top-1M of 78M flows) is its top 1.3%; our trace has ~3000 flows,
    // so the comparable depths are K=10..40.
    for k in [10usize, 40] {
        let truth: Vec<_> =
            trace.stats.truth.top_k(k, false).into_iter().map(|(key, _)| key).collect();
        // Small rank flips at the list boundary are estimator noise, not
        // misses; give the measured list a few slots of slack.
        let measured: Vec<_> =
            im.wsaf().top_k_by_packets(k + 5).into_iter().map(|e| e.key).collect();
        let r = top_k_recall(&measured, &truth);
        assert!(r > 0.90, "top-{k} recall {r}");
    }
}

#[test]
fn regulation_rate_near_one_percent_on_zipf_traffic() {
    let (im, _) = measure(32 * 1024, 5);
    let rate = im.filter_stats().regulation_rate();
    // Paper: 1.02%. Mice-dominated Zipf traffic keeps it very low.
    assert!(rate < 0.05, "regulation rate {rate}");
}
