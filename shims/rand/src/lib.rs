//! Offline shim for `rand` 0.8 — only the surface this workspace uses.
//!
//! `StdRng` is a SplitMix64 generator: 64-bit state, full-period, passes
//! BigCrush, and more than adequate for synthetic trace generation. The
//! streams it produces differ from upstream `rand`'s ChaCha-based `StdRng`,
//! which is fine: the workspace only relies on determinism per seed, not on
//! any specific stream.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface. Upstream has an associated `Seed` type; the workspace
/// only ever seeds from a `u64`, so that is all the shim offers.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling interface, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly over their whole domain (upstream's
/// `Standard` distribution, folded into a trait on the value type).
pub trait Standard {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let w = rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
        out
    }
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

// Unbiased integer sampling in [0, span) via Lemire's multiply-shift with
// rejection.
fn uniform_u64<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64).wrapping_add(1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let f: f64 = Standard::sample(rng);
        self.start + f * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let f: f64 = Standard::sample(rng);
        lo + f * (hi - lo)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64. Not upstream's ChaCha12, but deterministic, fast, and
    /// statistically solid for workload synthesis.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(1024..=u16::MAX);
            assert!(v >= 1024);
            let w = rng.gen_range(0..5usize);
            assert!(w < 5);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            let x = rng.gen_range(10u64..=10);
            assert_eq!(x, 10);
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[rng.gen_range(0..5usize)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}
