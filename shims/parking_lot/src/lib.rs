//! Offline shim for `parking_lot` 0.12: std-backed locks with the
//! parking_lot calling convention (no poisoning, `lock()` returns the guard
//! directly). Slower than the real thing but semantically equivalent for
//! correct programs.

use std::sync::PoisonError;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
