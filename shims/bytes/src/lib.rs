//! Offline shim for `bytes` 1.x: `BytesMut` as a thin `Vec<u8>` wrapper plus
//! the `Buf`/`BufMut` methods the workspace calls.

use std::ops::{Deref, DerefMut};

/// Read cursor over a byte source.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, cnt: usize);
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Append-only byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Growable byte buffer; derefs to `[u8]` like the upstream type.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { inner: Vec::with_capacity(capacity) }
    }

    pub fn clear(&mut self) {
        self.inner.clear();
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, BytesMut};

    #[test]
    fn put_and_advance_roundtrip() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u32_le(0xA1B2_C3D4);
        b.put_u16_le(2);
        assert_eq!(&b[..], &[0xD4, 0xC3, 0xB2, 0xA1, 0x02, 0x00]);
        let mut view: &[u8] = &b;
        view.advance(4);
        assert_eq!(view, &[0x02, 0x00]);
        assert_eq!(view.remaining(), 2);
        b.clear();
        assert!(b.is_empty());
    }
}
