//! Offline shim for the `loom` model checker.
//!
//! The real loom runs a closure under every feasible thread interleaving
//! (bounded DPOR over a modeled memory system). This shim keeps the same
//! API surface — `loom::model`, `loom::thread`, `loom::sync::atomic`,
//! `loom::sync::{Arc, Mutex, RwLock}`, `loom::cell::UnsafeCell` — but
//! explores interleavings *stochastically*: the closure is executed many
//! times on real OS threads, and every modeled operation (atomic access,
//! cell access, lock acquisition) may inject a preemption point chosen by
//! a deterministic per-iteration RNG. That trades exhaustiveness for an
//! offline, dependency-free implementation; because call sites are
//! source-compatible, swapping the `[workspace.dependencies]` entry back
//! to crates.io `loom` upgrades the same tests to exhaustive checking.
//!
//! Knobs (environment variables):
//!
//! * `LOOM_MAX_ITER` — iterations per `model()` call (default 64).
//! * `LOOM_SEED` — base seed for the preemption RNG (default 0x1157).
//!
//! Only the surface the workspace uses exists; extend as needed.

use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};

/// Global iteration seed: each `model()` iteration re-derives the
/// preemption stream from this, so failures replay with `LOOM_SEED`.
static ITER_SEED: AtomicU64 = AtomicU64::new(0);

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

thread_local! {
    static RNG: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

fn rng_next() -> u64 {
    RNG.with(|c| {
        let mut s = c.get();
        if s == 0 {
            // First modeled op on this thread: fold the global iteration
            // seed with a per-thread salt so sibling threads diverge.
            let salt = std::thread::current().id();
            let salt = format!("{salt:?}");
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in salt.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
            }
            s = ITER_SEED.load(StdOrdering::Relaxed) ^ h | 1;
        }
        // xorshift64*
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        c.set(s);
        s.wrapping_mul(0x2545_f491_4f6c_dd1d)
    })
}

/// A modeled synchronization point: possibly yield the processor so a
/// concurrently running model thread gets to interleave here.
pub(crate) fn preempt() {
    // Yield at roughly 1-in-4 modeled operations; occasionally sleep to
    // force a reschedule even on a single hardware thread.
    let r = rng_next();
    if r & 3 == 0 {
        if r & 0x3f == 0 {
            std::thread::sleep(std::time::Duration::from_micros(r >> 60));
        } else {
            std::thread::yield_now();
        }
    }
}

/// Runs `f` repeatedly under randomized preemption (see crate docs).
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iters = env_u64("LOOM_MAX_ITER", 64);
    let base = env_u64("LOOM_SEED", 0x1157);
    for i in 0..iters {
        ITER_SEED.store(
            base.wrapping_add(i).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1,
            StdOrdering::Relaxed,
        );
        RNG.with(|c| c.set(0));
        f();
    }
}

/// Modeled threads: real OS threads with a preemption point on spawn.
pub mod thread {
    pub use std::thread::{yield_now, JoinHandle};

    /// Spawns a modeled thread.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        super::preempt();
        std::thread::spawn(move || {
            super::RNG.with(|c| c.set(0));
            super::preempt();
            f()
        })
    }
}

/// Modeled `core::hint` subset.
pub mod hint {
    /// A spin-loop hint that is also a modeled preemption point.
    pub fn spin_loop() {
        super::preempt();
        std::hint::spin_loop();
    }
}

/// Modeled synchronization primitives.
pub mod sync {
    pub use std::sync::Arc;

    /// Modeled atomics: std atomics with a preemption point around every
    /// access, so interleavings land between (not just at) operations.
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        /// Modeled memory fence.
        pub fn fence(order: Ordering) {
            super::super::preempt();
            std::sync::atomic::fence(order);
        }

        macro_rules! modeled_atomic {
            ($name:ident, $std:ty, $val:ty) => {
                /// Modeled atomic (std-backed, preemption-injecting).
                #[derive(Debug, Default)]
                pub struct $name(pub(crate) $std);

                impl $name {
                    /// Creates the atomic.
                    pub const fn new(v: $val) -> Self {
                        Self(<$std>::new(v))
                    }
                    /// Atomic load.
                    pub fn load(&self, order: Ordering) -> $val {
                        super::super::preempt();
                        self.0.load(order)
                    }
                    /// Atomic store.
                    pub fn store(&self, v: $val, order: Ordering) {
                        super::super::preempt();
                        self.0.store(v, order);
                        super::super::preempt();
                    }
                    /// Atomic swap.
                    pub fn swap(&self, v: $val, order: Ordering) -> $val {
                        super::super::preempt();
                        self.0.swap(v, order)
                    }
                    /// Atomic compare-exchange.
                    pub fn compare_exchange(
                        &self,
                        current: $val,
                        new: $val,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$val, $val> {
                        super::super::preempt();
                        self.0.compare_exchange(current, new, success, failure)
                    }
                }
            };
        }

        modeled_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
        modeled_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
        modeled_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        modeled_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);

        impl AtomicUsize {
            /// Atomic add, returning the previous value.
            pub fn fetch_add(&self, v: usize, order: Ordering) -> usize {
                super::super::preempt();
                self.0.fetch_add(v, order)
            }
        }

        impl AtomicU64 {
            /// Atomic add, returning the previous value.
            pub fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
                super::super::preempt();
                self.0.fetch_add(v, order)
            }
        }
    }

    /// Modeled mutex: std-backed, no poisoning, preemption on acquire.
    #[derive(Debug, Default)]
    pub struct Mutex<T>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        /// Creates the mutex.
        pub fn new(v: T) -> Self {
            Self(std::sync::Mutex::new(v))
        }
        /// Acquires the lock.
        pub fn lock(&self) -> std::sync::LockResult<std::sync::MutexGuard<'_, T>> {
            super::preempt();
            self.0.lock()
        }
    }

    /// Modeled rwlock: std-backed, no poisoning, preemption on acquire.
    #[derive(Debug, Default)]
    pub struct RwLock<T>(std::sync::RwLock<T>);

    impl<T> RwLock<T> {
        /// Creates the lock.
        pub fn new(v: T) -> Self {
            Self(std::sync::RwLock::new(v))
        }
        /// Acquires a shared read guard.
        pub fn read(&self) -> std::sync::LockResult<std::sync::RwLockReadGuard<'_, T>> {
            super::preempt();
            self.0.read()
        }
        /// Acquires an exclusive write guard.
        pub fn write(&self) -> std::sync::LockResult<std::sync::RwLockWriteGuard<'_, T>> {
            super::preempt();
            self.0.write()
        }
    }
}

/// Modeled interior-mutability cell with loom's closure-based access API.
pub mod cell {
    /// `UnsafeCell` whose accesses are modeled preemption points. Unlike
    /// the real loom cell this performs no concurrent-access detection;
    /// it exists so code written against loom's `with`/`with_mut` API
    /// compiles and randomly interleaves.
    #[derive(Debug)]
    pub struct UnsafeCell<T>(core::cell::UnsafeCell<T>);

    // Mirrors core::cell::UnsafeCell: Sync-ness is asserted by the data
    // structure built on top (the SPSC ring), not by the cell.
    unsafe impl<T: Send> Send for UnsafeCell<T> {}
    unsafe impl<T: Send> Sync for UnsafeCell<T> {}

    impl<T> UnsafeCell<T> {
        /// Creates the cell.
        pub fn new(v: T) -> Self {
            Self(core::cell::UnsafeCell::new(v))
        }

        /// Immutable access through a raw pointer.
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            super::preempt();
            f(self.0.get())
        }

        /// Mutable access through a raw pointer.
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            super::preempt();
            f(self.0.get())
        }
    }
}
