//! Offline shim for `serde`: exists so the optional `serde` feature of
//! `instameasure-packet` resolves without network access. The workspace
//! never enables that feature in-tree; enabling it requires the real serde
//! (the shim has no derive macros). The `derive` feature is a no-op marker.
