//! Exercises every macro surface the workspace's property tests rely on.

use proptest::prelude::*;

fn double(x: u32) -> u64 {
    u64::from(x) * 2
}

prop_compose! {
    fn arb_pair()(a in 0u32..100, b in 0u32..100) -> (u32, u32) {
        (a.min(b), a.max(b))
    }
}

proptest! {
    #[test]
    fn ranges_and_tuples(x in 0u32..500, (lo, hi) in arb_pair(), f in 0.25f64..0.75) {
        prop_assert!(x < 500);
        prop_assert!(lo <= hi);
        prop_assert!((0.25..0.75).contains(&f));
    }

    #[test]
    fn vec_and_select(
        v in prop::collection::vec((0u8..10, prop::bool::ANY), 1..50),
        pick in prop::sample::select(vec![4u32, 8, 16]),
    ) {
        prop_assert!(!v.is_empty() && v.len() < 50);
        prop_assert!(matches!(pick, 4 | 8 | 16));
    }

    #[test]
    fn oneof_and_map(y in prop_oneof![Just(1u64), (2u32..9).prop_map(double)]) {
        prop_assert!(y == 1 || (4..18).contains(&y));
        prop_assert_eq!(y, y);
        prop_assert_ne!(y, y + 1);
    }

    #[test]
    fn assume_rejects_without_failing(z in 0u32..10) {
        prop_assume!(z % 2 == 0);
        prop_assert_eq!(z % 2, 0, "only even values reach the body");
    }
}

mod configured {
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn honours_explicit_case_count(bytes in any::<[u8; 16]>(), n in any::<u64>()) {
            prop_assert_eq!(bytes.len(), 16);
            let _ = n;
        }
    }
}

#[test]
fn same_name_same_stream() {
    use proptest::test_runner::TestRng;
    let mut a = TestRng::from_name("x");
    let mut b = TestRng::from_name("x");
    let mut c = TestRng::from_name("y");
    assert_eq!(a.next_u64(), b.next_u64());
    assert_ne!(a.next_u64(), c.next_u64());
}
