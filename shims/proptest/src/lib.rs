//! Offline shim for `proptest` 1.x — deterministic random testing without
//! crates.io access. Supports the macros and strategies this workspace uses:
//! `proptest!` (with optional `#![proptest_config]`), `prop_compose!`,
//! `prop_oneof!`, `prop_assert*`, `prop_assume!`, `any::<T>()`, ranges,
//! tuples, `collection::vec`, `sample::select`, and `bool::ANY`.
//!
//! Differences from upstream, by design: no shrinking (failures report the
//! assertion message only), no persisted failure seeds, and each test's RNG
//! is seeded from its module path + name (override case count with
//! `PROPTEST_CASES`).

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// `prop::bool::ANY` — a uniform boolean strategy.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `left == right`\n  left: {left:?}\n right: {right:?}"),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "{}\n  left: {left:?}\n right: {right:?}",
                    format!($($fmt)+),
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `left != right`\n  both: {left:?}"
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($argname:ident: $argty:ty),* $(,)?)
        ($($pat:pat in $strat:expr),+ $(,)?) -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($argname: $argty),*) -> impl $crate::strategy::Strategy<Value = $out> {
            $crate::strategy::FnStrategy::new(move |rng: &mut $crate::test_runner::TestRng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), rng);)+
                $body
            })
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(10).max(10);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = (move || -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(message),
                        ) => {
                            panic!("proptest case {attempts} failed: {message}");
                        }
                    }
                }
            }
        )*
    };
}
