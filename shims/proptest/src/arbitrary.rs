//! `any::<T>()` over the primitive types the workspace generates.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T> {
    _marker: PhantomData<T>,
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated text debuggable.
        (0x20 + rng.below(0x5F) as u8) as char
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let w = rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
        out
    }
}
