//! `prop::sample::select` — uniform choice from a fixed list.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub struct Select<T: Clone> {
    options: Vec<T>,
}

pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].clone()
    }
}
