//! `prop::collection::vec` and the size-range conversions it accepts.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Half-open length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { start: r.start, end: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { start: *r.start(), end: r.end().saturating_add(1) }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { start: n, end: n + 1 }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
