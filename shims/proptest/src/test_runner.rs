//! Config, case-level errors, and the deterministic RNG driving generation.

/// Subset of upstream's `ProptestConfig`: only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the inputs out; the runner draws a new case.
    Reject(String),
    /// A `prop_assert*` failed; the runner panics with the message.
    Fail(String),
}

impl TestCaseError {
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

/// SplitMix64 seeded from the test's module path + name, so every test has a
/// stable, independent stream. There is no shrinking: a failure report shows
/// the values via the assertion message only.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a well-spread seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Unbiased uniform draw in `[0, bound)` (Lemire multiply-shift).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform in `[0, 1)` with 53 mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
