//! The `Strategy` trait and combinators: `Just`, `prop_map`, unions, ranges,
//! tuples, and function-backed strategies for `prop_compose!`.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values. Unlike upstream there is no value tree or
/// shrinking: `generate` draws one value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Backs `prop_compose!`-built strategies.
pub struct FnStrategy<F> {
    f: F,
}

impl<F> FnStrategy<F> {
    pub fn new(f: F) -> Self {
        FnStrategy { f }
    }
}

impl<T, F> Strategy for FnStrategy<F>
where
    F: Fn(&mut TestRng) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i64).wrapping_sub(lo as i64).wrapping_add(1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
