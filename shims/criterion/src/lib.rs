//! Offline shim for `criterion` 0.5: runs each benchmark closure for a small
//! fixed number of timed samples and prints best/mean wall-clock per sample
//! (plus throughput when declared). No warm-up modelling, outlier analysis,
//! or HTML reports — just enough to keep `cargo bench` runnable offline.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: 10, throughput: None }
    }
}

pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { text: format!("{function}/{parameter}") }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed pass to touch caches/allocations.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        let best = b.samples.iter().min().copied().unwrap_or_default();
        let mean = if b.samples.is_empty() {
            Duration::ZERO
        } else {
            b.samples.iter().sum::<Duration>() / b.samples.len() as u32
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if best > Duration::ZERO => {
                format!("  {:>10.1} Melem/s", n as f64 / best.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) if best > Duration::ZERO => {
                format!("  {:>10.1} MiB/s", n as f64 / best.as_secs_f64() / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!("{}/{:<40} best {:>12?}  mean {:>12?}{}", self.name, id, best, mean, rate);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
