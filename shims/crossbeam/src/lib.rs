//! Offline shim for `crossbeam` 0.8: a bounded MPSC channel built on
//! `Mutex<VecDeque>` + condvars. Not lock-free like upstream, but the
//! blocking/disconnect semantics match what the workspace relies on.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        sender_count: usize,
        receiver_alive: bool,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        capacity: usize,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Creates a bounded channel with room for `capacity` in-flight messages.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        assert!(capacity > 0, "shim channel requires capacity >= 1");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(capacity),
                sender_count: 1,
                receiver_alive: true,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T> Sender<T> {
        /// Blocks until there is room (or the receiver is gone).
        ///
        /// # Errors
        ///
        /// Returns the message if the receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if !state.receiver_alive {
                    return Err(SendError(msg));
                }
                if state.queue.len() < self.shared.capacity {
                    state.queue.push_back(msg);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                state = self.shared.not_full.wait(state).unwrap();
            }
        }

        /// Non-blocking send.
        ///
        /// # Errors
        ///
        /// `Full` if the queue is at capacity, `Disconnected` if the
        /// receiver has been dropped; both return the message.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.state.lock().unwrap();
            if !state.receiver_alive {
                return Err(TrySendError::Disconnected(msg));
            }
            if state.queue.len() >= self.shared.capacity {
                return Err(TrySendError::Full(msg));
            }
            state.queue.push_back(msg);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().sender_count += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.sender_count -= 1;
            if state.sender_count == 0 {
                // Wake a receiver blocked on an empty queue so it can
                // observe the disconnect.
                drop(state);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives (or all senders are gone).
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once the queue is empty and every sender
        /// has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if state.sender_count == 0 {
                    return Err(RecvError);
                }
                state = self.shared.not_empty.wait(state).unwrap();
            }
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// `Empty` if no message is queued, `Disconnected` once the queue
        /// is empty and every sender has been dropped.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().unwrap();
            if let Some(msg) = state.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.sender_count == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.state.lock().unwrap().receiver_alive = false;
            self.shared.not_full.notify_all();
        }
    }

    #[cfg(test)]
    mod tests {
        use super::{bounded, TrySendError};

        #[test]
        fn fifo_across_threads() {
            let (tx, rx) = bounded::<u64>(4);
            let producer = std::thread::spawn(move || {
                for i in 0..1000 {
                    tx.send(i).unwrap();
                }
            });
            for i in 0..1000 {
                assert_eq!(rx.recv().unwrap(), i);
            }
            producer.join().unwrap();
            assert!(rx.recv().is_err(), "disconnect after all senders drop");
        }

        #[test]
        fn try_send_reports_full_then_drains() {
            let (tx, rx) = bounded::<u8>(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert_eq!(tx.len(), 2);
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert_eq!(rx.recv().unwrap(), 1);
            tx.try_send(3).unwrap();
            drop(rx);
            assert!(matches!(tx.try_send(4), Err(TrySendError::Disconnected(4))));
        }
    }
}
