//! Arbitrary bytes as flow keys: SIMD digest/lane kernels must agree
//! bit for bit with the scalar hash functions at every prefix length.

#![no_main]

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| {
    instameasure_packet::fuzzing::fuzz_simd_kernels(data);
});
