//! Differential: the borrow-based view parser must agree byte-for-byte
//! with the owned-buffer parser on arbitrary input.

#![no_main]

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| {
    instameasure_packet::fuzzing::fuzz_parse_packet_view(data);
});
