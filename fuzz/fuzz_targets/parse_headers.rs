//! Arbitrary bytes through every header parser: must error, never panic.

#![no_main]

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| {
    instameasure_packet::fuzzing::fuzz_headers(data);
});
