//! Differential: the owned-buffer pcap reader and the zero-copy chunk
//! reader (at several adversarial chunk sizes) must produce identical
//! packet sequences and terminal states on arbitrary input.

#![no_main]

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| {
    instameasure_packet::fuzzing::fuzz_pcap_stream(data);
});
