//! `instameasure` — command-line per-flow measurement.
//!
//! Run `instameasure --help` for the full usage text. Offline commands
//! (`generate`, `analyze`, `report`) work on pcap files and flow-record
//! exports; live commands (`serve`, `push`, `query`) run and talk to the
//! streaming measurement daemon in `instameasure-service`.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::process::ExitCode;
use std::time::Duration;

use instameasure::autotune::{
    calibrate, solve, zipf_sizes, CalibrationOptions, MachineProfile, TunePlan, TuneRequest,
};
use instameasure::core::apps::{normalized_entropy, top_fanin_destinations, top_fanout_sources};
use instameasure::core::detect::{DetectorConfig, Subject, ALL_ANOMALY_KINDS};
use instameasure::core::export::{decode_records, encode_records, snapshot};
use instameasure::core::ingest::{run_multicore_pcap, IngestMode};
use instameasure::core::multicore::{run_multicore, MultiCoreConfig};
use instameasure::core::windowed::WindowedMeasurement;
use instameasure::core::{InstaMeasure, InstaMeasureConfig, InstaMeasureConfigError};
use instameasure::packet::pcap::{read_records, PcapWriter, TsResolution};
use instameasure::packet::synth::synthesize_frame;
use instameasure::packet::{FlowKey, Protocol};
use instameasure::service::server::{Server, ServiceConfig};
use instameasure::service::tune::TuneState;
use instameasure::service::wire::{PlanReport, StatusReport};
use instameasure::service::{ClientError, DetectionConfig, ServiceClient};
use instameasure::sketch::FilterKind;
use instameasure::telemetry::Instrumented;
use instameasure::traffic::presets::{caida_like, campus_like};

/// Where `push` and `query` look for a daemon when `--addr` is absent,
/// and where `serve` binds when `--listen` is absent.
const DEFAULT_ADDR: &str = "127.0.0.1:9901";

const USAGE: &str = "\
instameasure — instant per-flow measurement (InstaMeasure, ICDCS 2019)

USAGE:
    instameasure <COMMAND> [ARGS] [FLAGS]
    instameasure --help

OFFLINE COMMANDS:
    generate <out.pcap>     synthesize a Zipf trace as a standard pcap file
        --preset caida|campus   traffic mix preset               [caida]
        --scale F               trace scale factor               [0.02]
        --seed N                deterministic RNG seed           [42]

    analyze <in.pcap>       run the full pipeline over a capture, offline
        --top K                 flows to print per ranking       [10]
        --hh-threshold PKTS     also list flows >= PKTS packets  [off]
        --window-ms MS          per-epoch windowed reports       [off]
        --export FILE           write flow records (.imfr)       [off]
        --workers N             batched multi-core replay        [off]
        --batch-size B          packets per dispatch batch       [256]
        --mmap                  zero-copy mmap ingest path       [off]
        --filter KIND           front-end filter: regulator,
                                rcc, swing or hashflow           [regulator]
        --config FILE           boot from a `tune --apply` plan
                                file (overrides --filter)        [off]
        --metrics-json FILE     write telemetry snapshot JSON    [off]
        --no-simd               force the scalar hot path (also
                                INSTAMEASURE_NO_SIMD=1)          [off]

    report <flows.imfr>     summarize a flow-record export from analyze
        --top K                 flows to print                   [10]

    tune                    calibrate this host and solve a configuration
        --pps N                 offered load, packets/second     [1e6]
        --epsilon E             relative-error target            [0.05]
        --delta D               allowed violation probability    [0.05]
        --throughput            pps budget only (drops the
                                accuracy target)                 [off]
        --margin M              required capacity margin         [2.0]
        --flows N               synthetic workload: active flows [100000]
        --heaviest N            synthetic workload: top flow pkts[1000000]
        --trace FILE            derive the workload from a pcap  [off]
        --profile FILE          machine-profile cache path       [temp dir]
        --recalibrate           re-run the microbenchmarks even
                                if a cached profile exists       [off]
        --apply FILE            write the plan file for
                                `analyze --config` / review      [off]

LIVE COMMANDS (instameasure-service):
    serve                   run the streaming measurement daemon
        --listen ADDR           bind address                     [127.0.0.1:9901]
        --shards N              shard-owning worker threads      [4]
        --workers N             alias for --shards
        --pin                   pin each shard worker to a CPU   [off]
        --batch-size B          packets per dispatch batch       [256]
        --queue-batches Q       in-flight batches per shard ring [16]
        --max-frame-bytes N     reject larger wire frames        [1048576]
        --read-timeout-secs S   per-connection idle timeout      [30]
        --max-connections N     concurrent connection cap        [64]
        --filter KIND           front-end filter: regulator,
                                rcc, swing or hashflow           [regulator]
        --no-simd               force the scalar hot path (also
                                INSTAMEASURE_NO_SIMD=1)          [off]
        --detect                streaming anomaly detection      [off]
        --detect-epoch-ms MS    self-clocked epoch close; without
                                it epochs close on `query rotate`
                                (implies --detect)               [off]
        --auto-tune             size the shards from this host's
                                machine profile and the tune
                                flags above (--pps, --epsilon,
                                --delta, --margin, --flows,
                                --heaviest, --profile,
                                --recalibrate); serves the plan
                                to `query plan` and re-solves it
                                every epoch (implies --detect)   [off]

    push <in.pcap>          stream a capture into a running daemon
        --addr ADDR             daemon address                   [127.0.0.1:9901]
        --mmap                  zero-copy mmap pcap reader       [off]

    query <SUBCOMMAND>      ask a running daemon (online; never stops ingest)
        flow <SRC:SPORT> <DST:DPORT> <tcp|udp|icmp|NUM>
                                one flow's estimated packets and bytes
        top-k [--k K]           heaviest flows by packets        [k=10]
        status                  live packet-exact accounting summary
        telemetry               full telemetry snapshot as JSON
        plan                    the auto-tuned configuration plan
                                (daemon must run --auto-tune)
        rotate                  start a new measurement epoch
        shutdown                drain the pipeline and stop the daemon
        --addr ADDR             daemon address                   [127.0.0.1:9901]

    watch                   subscribe to streaming anomaly alerts
        --addr ADDR             daemon address                   [127.0.0.1:9901]
        --kinds LIST            comma list of entropy_shift,
                                super_spreader, ddos_victim,
                                heavy_change                     [all]

The wire protocol, frame layout and deployment examples are documented in
DESIGN.md; `examples/live_gateway.rs` is a runnable serve+push+query demo.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().skip(1).any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let result = match args.get(1).map(String::as_str) {
        Some("generate") => generate(&args[2..]),
        Some("analyze") => analyze(&args[2..]),
        Some("report") => report(&args[2..]),
        Some("tune") => tune(&args[2..]),
        Some("serve") => serve(&args[2..]),
        Some("push") => push(&args[2..]),
        Some("query") => query(&args[2..]),
        Some("watch") => watch(&args[2..]),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("instameasure: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Fetches the value following `--name`, parsed, or `default`.
fn flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn flag_str<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

/// Stamps the hot-path dispatch facts (SIMD tier, prefetch distance,
/// detected CPU features) into a telemetry snapshot so `--metrics-json`
/// output records which kernel actually ran, whichever pipeline
/// produced the snapshot.
fn stamp_hotpath_gauges(snap: &mut instameasure::telemetry::Snapshot) {
    use instameasure::packet::{prefetch, simd};
    snap.set_gauge(
        "hotpath.prefetch_enabled",
        if prefetch::prefetch_enabled() { 1.0 } else { 0.0 },
    );
    snap.set_gauge("hotpath.prefetch_distance", prefetch::prefetch_distance() as f64);
    snap.set_gauge("hotpath.simd_enabled", if simd::simd_enabled() { 1.0 } else { 0.0 });
    for feature in simd::cpu_features() {
        snap.set_gauge(format!("hotpath.cpu.{feature}"), 1.0);
    }
}

/// Parses `--filter KIND` into a [`FilterKind`], surfacing unknown names
/// as a classified [`InstaMeasureConfigError`] rather than a panic.
fn filter_flag(args: &[String]) -> Result<FilterKind, InstaMeasureConfigError> {
    match flag_str(args, "--filter") {
        None => Ok(FilterKind::default()),
        Some(name) => name.parse().map_err(InstaMeasureConfigError::from),
    }
}

fn generate(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.first().ok_or("generate: missing output path")?;
    let preset = flag_str(args, "--preset").unwrap_or("caida");
    let scale = flag(args, "--scale", 0.02f64);
    let seed = flag(args, "--seed", 42u64);
    let trace = match preset {
        "caida" => caida_like(scale, seed),
        "campus" => campus_like(scale, seed),
        other => return Err(format!("unknown preset '{other}' (caida|campus)").into()),
    };
    let mut w = PcapWriter::new(BufWriter::new(File::create(path)?), TsResolution::Nano)?;
    for pkt in &trace.records {
        w.write_packet(pkt.ts_nanos, &synthesize_frame(pkt))?;
    }
    w.into_inner()?;
    println!(
        "wrote {} packets / {} flows ({} preset, scale {scale}, seed {seed}) to {path}",
        trace.stats.packets, trace.stats.flows, preset
    );
    Ok(())
}

fn analyze(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    if args.iter().any(|a| a == "--no-simd") {
        instameasure::packet::simd::set_simd_disabled(true);
    }
    let path = args.first().ok_or("analyze: missing pcap path")?;
    let top = flag(args, "--top", 10usize);
    let hh_threshold = flag(args, "--hh-threshold", 0.0f64);
    let metrics_json = flag_str(args, "--metrics-json");
    let write_metrics = |snap: &instameasure::telemetry::Snapshot| -> std::io::Result<()> {
        if let Some(p) = metrics_json {
            let mut snap = snap.clone();
            stamp_hotpath_gauges(&mut snap);
            std::fs::write(p, snap.to_json())?;
            println!("\nmetrics JSON written to {p}");
        }
        Ok(())
    };

    let use_mmap = args.iter().any(|a| a == "--mmap");
    let window_ms = flag(args, "--window-ms", 0u64);
    let workers = flag(args, "--workers", 0usize);
    // `--config` boots the pipeline from a `tune --apply` plan file
    // (which fixes the filter too); `--filter` covers the default
    // geometry.
    let measure_cfg = match flag_str(args, "--config") {
        Some(path) => {
            let plan = TunePlan::load(std::path::Path::new(path))?;
            println!(
                "configured from {path}: {} KB L1, b={}, 2^{} WSAF entries, {} front end",
                plan.l1_memory_bytes / 1024,
                plan.vector_bits,
                plan.wsaf_entries_log2,
                plan.filter_kind()
            );
            plan.to_config(flag(args, "--seed", 42u64))?
        }
        None => InstaMeasureConfig::default().with_filter(filter_flag(args)?),
    };

    // Zero-copy multi-core mode: stream the capture straight from the
    // mapped file into the recycled dispatch batches, never materialising
    // the record vector in between.
    if use_mmap && workers > 0 && window_ms == 0 {
        let batch_size = flag(args, "--batch-size", 256usize);
        let cfg = MultiCoreConfig::builder()
            .workers(workers)
            .batch_size(batch_size)
            .per_worker(measure_cfg)
            .build()?;
        let (sys, mc, ingest) = run_multicore_pcap(path, IngestMode::Mmap, &cfg)?;
        if mc.packets == 0 {
            return Err("no parseable IPv4 packets in capture".into());
        }
        let span = ingest.last_ts_nanos as f64 / 1e9;
        println!(
            "capture: {} packets ({} skipped), {span:.2}s span [zero-copy ingest: \
             {} chunk fills, {} bytes mapped, {} copy fallbacks]",
            ingest.records,
            ingest.skipped_frames,
            ingest.stats.chunk_fills,
            ingest.stats.bytes_mapped,
            ingest.stats.copy_fallbacks
        );
        println!(
            "multicore: {workers} workers, batch size {batch_size}, {} batches sent \
             ({} partial flushes), {:.2} Mpps replay",
            mc.batches_sent,
            mc.batch_flushes,
            mc.throughput_pps / 1e6
        );
        println!("\ntop {top} flows by packets (merged across shards):");
        for (key, pkts) in sys.top_k_by_packets(top) {
            println!("  {:<46} {:>12.0} pkts", key.to_string(), pkts);
        }
        let mut snap = mc.telemetry.clone();
        snap.merge(&sys.telemetry());
        write_metrics(&snap)?;
        return Ok(());
    }

    let (records, skipped) = if use_mmap {
        instameasure::packet::chunk::read_records_mmap(path)?
    } else {
        read_records(BufReader::new(File::open(path)?))?
    };
    if records.is_empty() {
        return Err("no parseable IPv4 packets in capture".into());
    }

    // Optional windowed mode: per-epoch Top-K reports instead of one
    // whole-capture summary.
    if window_ms > 0 {
        let mut wm = WindowedMeasurement::new(measure_cfg, window_ms * 1_000_000, top);
        let print_window = |r: &instameasure::core::windowed::WindowReport| {
            println!(
                "window {:.3}s..{:.3}s: {} pkts, {} WSAF updates, entropy {:.3}",
                r.start_nanos as f64 / 1e9,
                r.end_nanos as f64 / 1e9,
                r.packets,
                r.wsaf_updates,
                r.entropy
            );
            for (key, pkts) in &r.top_by_packets {
                println!("    {key}  {pkts:.0} pkts");
            }
        };
        for pkt in &records {
            if let Some(report) = wm.process(pkt) {
                print_window(&report);
            }
        }
        print_window(&wm.finish());
        write_metrics(&wm.telemetry())?;
        return Ok(());
    }

    // Optional multi-core mode: replay through the batched manager/worker
    // pipeline and report the merged shard view.
    if workers > 0 {
        let batch_size = flag(args, "--batch-size", 256usize);
        let cfg = MultiCoreConfig::builder()
            .workers(workers)
            .batch_size(batch_size)
            .per_worker(measure_cfg)
            .build()?;
        let (sys, mc) = run_multicore(&records, &cfg);
        let span = records.last().map_or(0, |r| r.ts_nanos) as f64 / 1e9;
        println!("capture: {} packets ({skipped} skipped), {span:.2}s span", records.len());
        println!(
            "multicore: {workers} workers, batch size {batch_size}, {} batches sent \
             ({} partial flushes), {:.2} Mpps replay",
            mc.batches_sent,
            mc.batch_flushes,
            mc.throughput_pps / 1e6
        );
        for w in 0..workers {
            let stats = sys.shard(w).filter_stats();
            println!(
                "  worker {w}: {} pkts ({} dropped), {} WSAF updates ({:.2}% regulated)",
                mc.per_worker_packets[w],
                mc.per_worker_dropped[w],
                stats.updates,
                stats.regulation_rate() * 100.0
            );
        }
        println!("\ntop {top} flows by packets (merged across shards):");
        for (key, pkts) in sys.top_k_by_packets(top) {
            println!("  {:<46} {:>12.0} pkts", key.to_string(), pkts);
        }
        let mut snap = mc.telemetry.clone();
        snap.merge(&sys.telemetry());
        write_metrics(&snap)?;
        return Ok(());
    }

    let mut im = InstaMeasure::new(measure_cfg);
    for r in &records {
        im.process(r);
    }

    let span = records.last().map_or(0, |r| r.ts_nanos) as f64 / 1e9;
    let stats = im.filter_stats();
    println!("capture: {} packets ({skipped} skipped), {span:.2}s span", records.len());
    println!(
        "pipeline: {} WSAF updates ({:.2}% of packets), {} table entries",
        stats.updates,
        stats.regulation_rate() * 100.0,
        im.wsaf().len()
    );

    println!("\ntop {top} flows by packets:");
    for e in im.wsaf().top_k_by_packets(top) {
        println!("  {:<46} {:>12.0} pkts {:>14.0} B", e.key.to_string(), e.packets, e.bytes);
    }
    println!("\ntop {top} flows by bytes:");
    for e in im.wsaf().top_k_by_bytes(top) {
        println!("  {:<46} {:>12.0} pkts {:>14.0} B", e.key.to_string(), e.packets, e.bytes);
    }

    if hh_threshold > 0.0 {
        let hh: Vec<_> = im.wsaf().iter().filter(|e| e.packets >= hh_threshold).collect();
        println!("\nheavy hitters (>= {hh_threshold} pkts): {}", hh.len());
        for e in hh.iter().take(top) {
            println!("  {:<46} {:>12.0} pkts", e.key.to_string(), e.packets);
        }
    }

    println!("\nanomaly signals:");
    println!("  normalized flow-size entropy: {:.3}", normalized_entropy(im.wsaf()));
    if let Some(f) = top_fanout_sources(im.wsaf(), 1).first() {
        println!(
            "  widest fan-out source: {}.{}.{}.{} -> {} peers",
            f.host[0], f.host[1], f.host[2], f.host[3], f.distinct_peers
        );
    }
    if let Some(f) = top_fanin_destinations(im.wsaf(), 1).first() {
        println!(
            "  widest fan-in destination: {}.{}.{}.{} <- {} peers",
            f.host[0], f.host[1], f.host[2], f.host[3], f.distinct_peers
        );
    }

    if let Some(export_path) = flag_str(args, "--export") {
        let recs = snapshot(im.wsaf());
        let bytes = encode_records(&recs);
        File::create(export_path)?.write_all(&bytes)?;
        println!("\nexported {} flow records to {export_path}", recs.len());
    }
    write_metrics(&im.telemetry())?;
    Ok(())
}

/// Loads the cached machine profile, calibrating (and caching) when the
/// cache is absent or `--recalibrate` is given.
fn obtain_profile(args: &[String]) -> Result<MachineProfile, Box<dyn std::error::Error>> {
    let path = match flag_str(args, "--profile") {
        Some(p) => std::path::PathBuf::from(p),
        None => MachineProfile::default_cache_path(),
    };
    if !args.iter().any(|a| a == "--recalibrate") {
        if let Ok(profile) = MachineProfile::load(&path) {
            println!("machine profile: {} (cached)", path.display());
            return Ok(profile);
        }
    }
    println!("calibrating this host's memory hierarchy (one-time, cached to {})", path.display());
    let profile = calibrate(&CalibrationOptions::from_env());
    match profile.save(&path) {
        Ok(()) => println!(
            "calibration took {:.1} s; profile cached",
            profile.calibration_nanos() as f64 / 1e9
        ),
        Err(e) => eprintln!("warning: could not cache the profile: {e}"),
    }
    Ok(profile)
}

/// Builds the operator's tuning target from the shared `tune` flags.
fn tune_request(args: &[String]) -> TuneRequest {
    let pps = flag(args, "--pps", 1.0e6f64);
    let mut req = if args.iter().any(|a| a == "--throughput") {
        TuneRequest::throughput(pps, 2.0)
    } else {
        TuneRequest::accuracy(pps, flag(args, "--epsilon", 0.05f64), flag(args, "--delta", 0.05f64))
    };
    req.min_margin = flag(args, "--margin", req.min_margin);
    req
}

/// The flow-size sample the solver tunes against: per-flow packet counts
/// of `--trace`, else the synthetic Zipf shape of `--flows`/`--heaviest`.
fn tune_workload(args: &[String]) -> Result<Vec<u64>, Box<dyn std::error::Error>> {
    match flag_str(args, "--trace") {
        Some(path) => {
            let (records, _skipped) = read_records(BufReader::new(File::open(path)?))?;
            if records.is_empty() {
                return Err("no parseable IPv4 packets in capture".into());
            }
            let mut counts = std::collections::HashMap::new();
            for r in &records {
                *counts.entry(r.key).or_insert(0u64) += 1;
            }
            let mut sizes: Vec<u64> = counts.into_values().collect();
            sizes.sort_unstable_by(|a, b| b.cmp(a));
            println!("workload from {path}: {} flows, {} packets", sizes.len(), records.len());
            Ok(sizes)
        }
        None => Ok(zipf_sizes(
            flag(args, "--flows", 100_000u64),
            flag(args, "--heaviest", 1_000_000u64),
        )),
    }
}

fn tune(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let profile = obtain_profile(args)?;
    println!(
        "  latency ladder: {:.1} ns cache-resident .. {:.1} ns DRAM, hash {:.1} ns{}",
        profile.sram_ns(),
        profile.dram_ns(),
        profile.hash_ns(),
        if profile.smoke() { " (smoke sweep)" } else { "" }
    );
    let req = tune_request(args);
    let sizes = tune_workload(args)?;
    let plan = solve(&profile, &req, &sizes).ok_or_else(|| {
        format!(
            "no feasible configuration: {:?} at {:.2} Mpps cannot be met on this host \
             (loosen --epsilon, lower --pps, or reduce --margin)",
            req.target,
            req.pps / 1e6
        )
    })?;
    println!("{plan}");
    if let Some(out) = flag_str(args, "--apply") {
        plan.save(std::path::Path::new(out))?;
        println!("plan written to {out} (boot it with `analyze --config {out}` or review it)");
    }
    Ok(())
}

fn print_plan_report(p: &PlanReport) {
    println!(
        "plan: {} KB L1, b={}, {} layer(s), 2^{} WSAF entries",
        p.l1_memory_bytes / 1024,
        p.vector_bits,
        p.layers,
        p.wsaf_entries_log2
    );
    println!(
        "  predicted regulation {:.4}% ({:.1} probes/insert), margin {:.1}x at {:.1} ns",
        p.predicted_regulation * 100.0,
        p.probes_per_insert,
        p.margin,
        p.access_nanos
    );
    println!("  predicted epsilon {:.4}, hash {:.1} ns", p.predicted_epsilon, p.hash_ns);
}

fn serve(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    if args.iter().any(|a| a == "--no-simd") {
        instameasure::packet::simd::set_simd_disabled(true);
    }
    let listen = flag_str(args, "--listen").unwrap_or(DEFAULT_ADDR);
    // `--shards` names the thread-per-shard model; `--workers` stays as
    // the historical alias.
    let workers = flag(args, "--shards", flag(args, "--workers", 4usize));
    let batch_size = flag(args, "--batch-size", 256usize);
    let pin = args.iter().any(|a| a == "--pin");
    let filter = filter_flag(args)?;
    let detect_epoch_ms = flag(args, "--detect-epoch-ms", 0u64);
    let auto_tune = args.iter().any(|a| a == "--auto-tune");
    // Auto-tune implies detection: the epoch re-tuner runs off the same
    // rotation clock the detectors do.
    let detect = args.iter().any(|a| a == "--detect") || detect_epoch_ms > 0 || auto_tune;

    let mut per_worker = InstaMeasureConfig::default().with_filter(filter);
    let mut tune_state = None;
    if auto_tune {
        let profile = obtain_profile(args)?;
        let mut req = tune_request(args);
        let sizes = tune_workload(args)?;
        // Each popcount-routed shard owns its own sketch and WSAF, so
        // the solve runs per shard: the offered load divides evenly and
        // every `workers`-th flow size approximates one shard's share
        // of the distribution.
        req.pps /= workers as f64;
        let shard_sizes: Vec<u64> = sizes.iter().step_by(workers.max(1)).copied().collect();
        let plan = solve(&profile, &req, &shard_sizes).ok_or_else(|| {
            format!(
                "auto-tune: no feasible per-shard configuration for {:?} at {:.2} Mpps/shard \
                 (loosen --epsilon, lower --pps, or add --shards)",
                req.target,
                req.pps / 1e6
            )
        })?;
        println!("auto-tuned per-shard configuration ({:.2} Mpps per shard):", req.pps / 1e6);
        println!("{plan}");
        per_worker = plan.to_config(flag(args, "--seed", 42u64))?;
        tune_state = Some(TuneState { profile, request: req, plan, shards: workers });
    }

    let mut builder = ServiceConfig::builder()
        .addr(listen)
        .workers(workers)
        .batch_size(batch_size)
        .queue_batches(flag(args, "--queue-batches", 16usize))
        .pin(pin)
        .max_frame_bytes(flag(args, "--max-frame-bytes", 1u32 << 20))
        .read_timeout(Duration::from_secs(flag(args, "--read-timeout-secs", 30u64)))
        .max_connections(flag(args, "--max-connections", 64usize))
        .per_worker(per_worker);
    if let Some(state) = tune_state {
        builder = builder.auto_tune(state);
    }
    if detect {
        builder = builder.detect(DetectionConfig {
            interval: (detect_epoch_ms > 0).then(|| Duration::from_millis(detect_epoch_ms)),
            detectors: DetectorConfig::default(),
        });
    }
    let cfg = builder.build()?;
    let server = Server::start(cfg)?;
    println!(
        "instameasure daemon listening on {} ({workers} shard workers{}, batch size {batch_size})",
        server.local_addr(),
        if pin { ", pinned" } else { "" }
    );
    println!(
        "hot path: {} dispatch (cpu: {}), prefetch distance {}",
        instameasure::packet::simd::dispatch_tier().label(),
        instameasure::packet::simd::cpu_features_label(),
        instameasure::packet::prefetch::prefetch_distance()
    );
    if detect {
        match detect_epoch_ms {
            0 => println!("detection: on, epochs close on `instameasure query rotate`"),
            ms => println!("detection: on, self-clocked epochs every {ms} ms"),
        }
        println!("follow alerts with `instameasure watch --addr {}`", server.local_addr());
    }
    if auto_tune {
        println!("inspect the plan with `instameasure query plan --addr {}`", server.local_addr());
    }
    println!("stop with `instameasure query shutdown --addr {}`", server.local_addr());
    let report = server.join();
    print_status(&report);
    if report.packets_submitted != report.packets_processed {
        return Err(format!(
            "drain lost packets: {} submitted vs {} processed",
            report.packets_submitted, report.packets_processed
        )
        .into());
    }
    Ok(())
}

fn push(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.first().ok_or("push: missing pcap path")?;
    let addr = flag_str(args, "--addr").unwrap_or(DEFAULT_ADDR);
    let (records, skipped) = if args.iter().any(|a| a == "--mmap") {
        instameasure::packet::chunk::read_records_mmap(path)?
    } else {
        read_records(BufReader::new(File::open(path)?))?
    };
    if records.is_empty() {
        return Err("no parseable IPv4 packets in capture".into());
    }
    let mut client = ServiceClient::connect(addr)?;
    let accepted = client.push_records(&records)?;
    println!(
        "pushed {} packets ({skipped} skipped) from {path} to {addr}: {accepted} accepted",
        records.len()
    );
    if accepted != records.len() as u64 {
        return Err(format!("daemon accepted {accepted} of {} packets", records.len()).into());
    }
    Ok(())
}

fn query(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let sub = args
        .first()
        .map(String::as_str)
        .ok_or("query: missing subcommand (flow|top-k|status|telemetry|plan|rotate|shutdown)")?;
    let addr = flag_str(args, "--addr").unwrap_or(DEFAULT_ADDR);
    let mut client = ServiceClient::connect(addr)?;
    match sub {
        "flow" => {
            let (src, sport) =
                parse_endpoint(args.get(1).ok_or("query flow: missing <SRC:SPORT>")?)?;
            let (dst, dport) =
                parse_endpoint(args.get(2).ok_or("query flow: missing <DST:DPORT>")?)?;
            let proto = parse_protocol(args.get(3).ok_or("query flow: missing protocol")?)?;
            let key = FlowKey::new(src, dst, sport, dport, proto);
            let (pkts, bytes) = client.query_flow(&key)?;
            println!("  {:<46} {pkts:>12.0} pkts {bytes:>14.0} B", key.to_string());
        }
        "top-k" => {
            let k = flag(args, "--k", 10u32);
            let flows = client.top_k(k)?;
            println!("top {k} flows by packets:");
            for f in &flows {
                println!(
                    "  {:<46} {:>12.0} pkts {:>14.0} B",
                    f.key.to_string(),
                    f.packets,
                    f.bytes
                );
            }
        }
        "status" => print_status(&client.status()?),
        "telemetry" => println!("{}", client.telemetry_json()?),
        "plan" => print_plan_report(&client.query_plan()?),
        "rotate" => {
            let (epoch, retired) = client.rotate()?;
            println!("rotated to epoch {epoch} ({retired} flows retired)");
        }
        "shutdown" => {
            let report = client.shutdown()?;
            println!("daemon drained and stopped");
            print_status(&report);
        }
        other => {
            return Err(format!(
                "query: unknown subcommand '{other}' \
                 (flow|top-k|status|telemetry|plan|rotate|shutdown)"
            )
            .into())
        }
    }
    Ok(())
}

/// `instameasure watch`: subscribe to the daemon's alert stream and
/// print verdicts as they arrive, one line per anomaly.
fn watch(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let addr = flag_str(args, "--addr").unwrap_or(DEFAULT_ADDR);
    let mask = match flag_str(args, "--kinds") {
        None => 0, // the daemon expands 0 to "all kinds"
        Some(list) => {
            let mut mask = 0u8;
            for name in list.split(',') {
                let kind = ALL_ANOMALY_KINDS
                    .iter()
                    .find(|k| k.label() == name.trim())
                    .ok_or_else(|| format!("watch: unknown anomaly kind '{name}'"))?;
                mask |= kind.bit();
            }
            mask
        }
    };
    let mut client = ServiceClient::connect_with_timeout(addr, Duration::from_secs(1))?;
    let (epoch, kinds) = client.subscribe(mask)?;
    let labels: Vec<&str> =
        ALL_ANOMALY_KINDS.iter().filter(|k| k.bit() & kinds != 0).map(|k| k.label()).collect();
    println!("watching {addr} from epoch {epoch} for: {}", labels.join(", "));
    loop {
        match client.next_alert() {
            Ok(Some((epoch, a))) => {
                let subject = match a.subject {
                    Subject::Host(ip) => format!("host {}.{}.{}.{}", ip[0], ip[1], ip[2], ip[3]),
                    Subject::Flow(key) => format!("flow {key}"),
                };
                println!(
                    "epoch {epoch}: {} on {subject} (score {:.3}, threshold {:.3})",
                    a.kind.label(),
                    a.score,
                    a.threshold
                );
            }
            Ok(None) => {} // timeout tick: keep listening
            Err(ClientError::Disconnected) => {
                println!("daemon closed the connection");
                return Ok(());
            }
            Err(e) => return Err(e.into()),
        }
    }
}

fn print_status(s: &StatusReport) {
    println!(
        "status: {} packets submitted, {} processed, {} ingest frames, \
         {} connections, {} resident flows, epoch {}, {} workers",
        s.packets_submitted,
        s.packets_processed,
        s.ingest_frames,
        s.connections,
        s.flows,
        s.epoch,
        s.workers
    );
}

/// Parses `A.B.C.D:PORT` into octets and port.
fn parse_endpoint(s: &str) -> Result<([u8; 4], u16), Box<dyn std::error::Error>> {
    let (ip, port) =
        s.rsplit_once(':').ok_or_else(|| format!("bad endpoint '{s}' (want A.B.C.D:PORT)"))?;
    let mut octets = [0u8; 4];
    let mut parts = ip.split('.');
    for o in &mut octets {
        *o = parts
            .next()
            .ok_or_else(|| format!("bad IPv4 address '{ip}'"))?
            .parse()
            .map_err(|_| format!("bad IPv4 address '{ip}'"))?;
    }
    if parts.next().is_some() {
        return Err(format!("bad IPv4 address '{ip}'").into());
    }
    Ok((octets, port.parse().map_err(|_| format!("bad port '{port}'"))?))
}

fn parse_protocol(s: &str) -> Result<Protocol, Box<dyn std::error::Error>> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "tcp" => Protocol::Tcp,
        "udp" => Protocol::Udp,
        "icmp" => Protocol::Icmp,
        num => Protocol::from_number(
            num.parse().map_err(|_| format!("bad protocol '{s}' (tcp|udp|icmp|NUM)"))?,
        ),
    })
}

fn report(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.first().ok_or("report: missing records path")?;
    let top = flag(args, "--top", 10usize);
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    let mut records = decode_records(&buf)?;
    let pkts: u64 = records.iter().map(|r| r.packets).sum();
    let bytes: u64 = records.iter().map(|r| r.bytes).sum();
    println!("{}: {} flow records, {pkts} packets, {bytes} bytes", path, records.len());
    records.sort_by_key(|r| std::cmp::Reverse(r.packets));
    println!("\ntop {top} flows:");
    for r in records.iter().take(top) {
        println!(
            "  {:<46} {:>10} pkts {:>14} B  active {:.2}s",
            r.key.to_string(),
            r.packets,
            r.bytes,
            r.duration_nanos() as f64 / 1e9
        );
    }
    Ok(())
}
