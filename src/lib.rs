//! # InstaMeasure
//!
//! A from-scratch Rust reproduction of *"InstaMeasure: Instant Per-flow
//! Detection Using Large In-DRAM Working Set of Active Flows"* (ICDCS
//! 2019).
//!
//! InstaMeasure measures every L4 flow on a high-speed link — packets and
//! bytes — and detects heavy hitters within milliseconds, using only
//! commodity DRAM. The trick is the **FlowRegulator**, a two-layer
//! probabilistic counter that retains mice flows inside a tiny sketch and
//! releases accumulated counts of elephant flows to a large in-DRAM hash
//! table (the **WSAF**, working set of active flows) only on sketch
//! saturation, reducing the table's insertion rate to ~1% of the packet
//! rate.
//!
//! This meta crate re-exports the workspace's public API:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`packet`] | `instameasure-packet` | 5-tuples, parsers, pcap I/O |
//! | [`sketch`] | `instameasure-sketch` | RCC and the FlowRegulator |
//! | [`wsaf`] | `instameasure-wsaf` | the in-DRAM flow table |
//! | [`memmodel`] | `instameasure-memmodel` | DRAM/SRAM/TCAM margins |
//! | [`traffic`] | `instameasure-traffic` | synthetic trace generation |
//! | [`baselines`] | `instameasure-baselines` | CSM, sampled NetFlow, exact |
//! | [`core`] | `instameasure-core` | the full system, multi-core, detection |
//! | [`autotune`] | `instameasure-autotune` | machine profiling + config solver |
//! | [`telemetry`] | `instameasure-telemetry` | counters, histograms, snapshots |
//! | [`service`] | `instameasure-service` | live ingest/query daemon + client |
//!
//! # Quickstart
//!
//! ```
//! use instameasure::core::{InstaMeasure, InstaMeasureConfig};
//! use instameasure::traffic::SyntheticTraceBuilder;
//!
//! // Generate a small Zipf trace and measure it.
//! let trace = SyntheticTraceBuilder::new().num_flows(2_000).seed(1).build();
//! let mut im = InstaMeasure::new(InstaMeasureConfig::default().small_for_tests());
//! for pkt in &trace.records {
//!     im.process(pkt);
//! }
//! // Query the biggest flow.
//! let (big, truth) = trace.stats.truth.top_k(1, false)[0];
//! let est = im.estimate_packets(&big);
//! assert!((est - truth as f64).abs() / (truth as f64) < 0.3);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! binaries that regenerate every figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use instameasure_autotune as autotune;
pub use instameasure_baselines as baselines;
pub use instameasure_core as core;
pub use instameasure_memmodel as memmodel;
pub use instameasure_packet as packet;
pub use instameasure_service as service;
pub use instameasure_sketch as sketch;
pub use instameasure_telemetry as telemetry;
pub use instameasure_traffic as traffic;
pub use instameasure_wsaf as wsaf;

/// The shared per-flow counter query interface (also available as
/// [`baselines::PerFlowCounter`], its historical home).
pub use instameasure_packet::PerFlowCounter;
