//! Property tests: the WSAF table behaves like a map as long as nothing is
//! evicted, and never corrupts state under arbitrary workloads.

use instameasure_packet::{FlowKey, Protocol};
use instameasure_wsaf::{AccumulateOutcome, WsafConfig, WsafTable};
use proptest::prelude::*;
use std::collections::HashMap;

fn key(i: u32) -> FlowKey {
    FlowKey::new(i.to_be_bytes(), (i.rotate_left(13)).to_be_bytes(), 1, 2, Protocol::Udp)
}

proptest! {
    #[test]
    fn matches_model_hashmap_without_eviction(
        ops in prop::collection::vec((0u32..500, 0.1f64..100.0, 0.1f64..10_000.0), 1..800),
    ) {
        // Roomy table + distinct flows well below capacity: no eviction
        // can occur, so the table must agree exactly with a HashMap.
        let mut table = WsafTable::new(
            WsafConfig::builder()
                .entries_log2(14)
                .probe_limit(32)
                .expiry_nanos(u64::MAX / 2)
                .build()
                .unwrap(),
        );
        let mut model: HashMap<u32, (f64, f64)> = HashMap::new();
        for (t, (i, pkts, bytes)) in ops.iter().enumerate() {
            let out = table.accumulate(&key(*i), *pkts, *bytes, t as u64);
            prop_assert!(matches!(
                out,
                AccumulateOutcome::Inserted | AccumulateOutcome::Updated
            ));
            let e = model.entry(*i).or_insert((0.0, 0.0));
            e.0 += pkts;
            e.1 += bytes;
        }
        prop_assert_eq!(table.len(), model.len());
        for (i, (pkts, bytes)) in &model {
            let entry = table.get(&key(*i)).unwrap();
            prop_assert!((entry.packets - pkts).abs() < 1e-6);
            prop_assert!((entry.bytes - bytes).abs() < 1e-6);
        }
    }

    #[test]
    fn len_is_always_consistent_under_churn(
        ops in prop::collection::vec((0u32..5000, prop::bool::ANY), 1..1500),
    ) {
        // Tiny table forces constant eviction; the live count must always
        // equal the number of occupied slots and never exceed capacity.
        let mut table = WsafTable::new(
            WsafConfig::builder()
                .entries_log2(4)
                .probe_limit(8)
                .expiry_nanos(100)
                .build()
                .unwrap(),
        );
        for (t, (i, remove)) in ops.iter().enumerate() {
            if *remove {
                table.remove(&key(*i));
            } else {
                table.accumulate(&key(*i), 1.0, 64.0, t as u64);
            }
            prop_assert!(table.len() <= 16);
            prop_assert_eq!(table.len(), table.iter().count());
        }
    }

    #[test]
    fn eviction_conserves_or_shrinks_population(
        flows in prop::collection::vec(0u32..100_000, 50..300),
    ) {
        let mut table = WsafTable::new(
            WsafConfig::builder()
                .entries_log2(5)
                .probe_limit(16)
                .expiry_nanos(u64::MAX / 2)
                .build()
                .unwrap(),
        );
        let mut inserted = 0usize;
        let mut re_evictions = 0usize;
        for (t, i) in flows.iter().enumerate() {
            if matches!(
                table.accumulate(&key(*i), 1.0, 1.0, t as u64),
                AccumulateOutcome::Inserted | AccumulateOutcome::InsertedAfterEviction { .. }
            ) {
                inserted += 1;
            }
            // Re-accumulating a key that was just inserted must be an
            // update, never an eviction.
            if matches!(
                table.accumulate(&key(*i), 0.0, 0.0, t as u64),
                AccumulateOutcome::InsertedAfterEviction { .. }
            ) {
                re_evictions += 1;
            }
        }
        prop_assert_eq!(re_evictions, 0);
        prop_assert!(table.len() <= 32);
        prop_assert!(inserted >= table.len());
    }

    #[test]
    fn top_k_is_sorted_and_bounded(
        entries in prop::collection::vec((0u32..1000, 1.0f64..1e6), 1..200),
        k in 1usize..50,
    ) {
        let mut table = WsafTable::new(
            WsafConfig::builder().entries_log2(12).probe_limit(32).build().unwrap(),
        );
        for (i, p) in &entries {
            table.accumulate(&key(*i), *p, *p * 100.0, 0);
        }
        let top = table.top_k_by_packets(k);
        prop_assert!(top.len() <= k);
        for pair in top.windows(2) {
            prop_assert!(pair[0].packets >= pair[1].packets);
        }
        // The head of the list is the true maximum over the table.
        if let Some(head) = top.first() {
            let max = table.iter().map(|e| e.packets).fold(0.0, f64::max);
            prop_assert_eq!(head.packets, max);
        }
    }
}
