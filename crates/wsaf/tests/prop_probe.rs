//! Property tests for the probe geometry and the insert/expire lifecycle.
//!
//! The triangular quadratic sequence is only collision-free because the
//! table size is a power of two — these tests pin that invariant down for
//! every size, plus the map-like round-trip of insert-then-lookup under
//! arbitrary interleavings with expiry sweeps.

use std::collections::HashMap;

use instameasure_packet::{FlowKey, Protocol};
use instameasure_wsaf::{triangular_probe_slot, WsafConfig, WsafTable};
use proptest::prelude::*;

fn key(i: u32) -> FlowKey {
    FlowKey::new(i.to_be_bytes(), (i.rotate_left(9)).to_be_bytes(), 7, 53, Protocol::Udp)
}

proptest! {
    #[test]
    fn triangular_probe_visits_all_slots_before_wrapping(
        n in 0u32..=12,
        base in any::<u64>(),
    ) {
        // Over a 2^n-slot table the first 2^n probes are a permutation of
        // the slots: no index repeats, every index appears.
        let capacity = 1usize << n;
        let mut seen = vec![false; capacity];
        for i in 0..capacity as u64 {
            let slot = triangular_probe_slot(base, i, capacity);
            prop_assert!(slot < capacity, "slot {slot} out of range for capacity {capacity}");
            prop_assert!(
                !seen[slot],
                "probe {i} revisited slot {slot} before the sequence wrapped (capacity {capacity})"
            );
            seen[slot] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "some slot was never visited");
        // The cycle then wraps: probe 2^n lands where probe 0 did... only
        // for the full 2^64 period, so instead check determinism.
        prop_assert_eq!(
            triangular_probe_slot(base, 3, capacity),
            triangular_probe_slot(base, 3, capacity)
        );
    }

    #[test]
    fn insert_then_lookup_round_trips_under_expiry_interleavings(
        ops in prop::collection::vec((0u32..400, 1.0f64..50.0, 64.0f64..9000.0, prop::bool::ANY), 1..600),
    ) {
        // Roomy table (2^14 slots, probe window 32) with ≤400 distinct
        // flows: no eviction pressure, so after any interleaving of
        // accumulates and expiry sweeps the table must agree exactly with
        // a HashMap model that applies the same expiry rule.
        let expiry = 50u64;
        let mut table = WsafTable::new(
            WsafConfig::builder()
                .entries_log2(14)
                .probe_limit(32)
                .expiry_nanos(expiry)
                .build()
                .unwrap(),
        );
        // Model: flow -> (packets, bytes, last_ts).
        let mut model: HashMap<u32, (f64, f64, u64)> = HashMap::new();
        for (t, (i, pkts, bytes, sweep)) in ops.iter().enumerate() {
            let now = (t as u64) * 7; // advancing clock
            if *sweep {
                table.sweep_expired(now);
                model.retain(|_, (_, _, last)| now.saturating_sub(*last) <= expiry);
            } else {
                table.accumulate(&key(*i), *pkts, *bytes, now);
                let e = model.entry(*i).or_insert((0.0, 0.0, now));
                e.0 += pkts;
                e.1 += bytes;
                e.2 = now;
            }
            // Round-trip check on the flow just touched.
            if !*sweep {
                let entry = table.get(&key(*i)).expect("just-inserted flow must be found");
                let m = model[i];
                prop_assert!((entry.packets - m.0).abs() < 1e-9);
                prop_assert!((entry.bytes - m.1).abs() < 1e-9);
                prop_assert_eq!(entry.last_ts, m.2);
            }
        }
        // Full final agreement, both directions.
        prop_assert_eq!(table.len(), model.len());
        for (i, (pkts, bytes, last)) in &model {
            let entry = table.get(&key(*i)).expect("live flow must round-trip");
            prop_assert!((entry.packets - pkts).abs() < 1e-9);
            prop_assert!((entry.bytes - bytes).abs() < 1e-9);
            prop_assert_eq!(entry.last_ts, *last);
        }
    }
}
