//! The probe-limited, second-chance WSAF hash table.

use instameasure_packet::{prefetch, FlowDigest, FlowKey};
use instameasure_telemetry::{Instrumented, LogHistogram, Snapshot};

use crate::config::WsafConfig;

/// One pending WSAF accumulation, carrying the flow's hash-once digest so
/// the table can derive its probe hash without rehashing the key bytes —
/// the unit of [`WsafTable::accumulate_batch`].
///
/// Mirrors the sketch crate's `FlowUpdate` (this crate sits below it in
/// the dependency order, so it declares its own type).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WsafDeposit {
    /// The flow being credited.
    pub key: FlowKey,
    /// The flow's hash-once digest.
    pub digest: FlowDigest,
    /// Estimated packets to accumulate.
    pub est_pkts: f64,
    /// Estimated bytes to accumulate.
    pub est_bytes: f64,
    /// Timestamp of the triggering packet (nanoseconds).
    pub ts: u64,
}

/// One WSAF record: the paper's 33-byte entry (flow id, packet counter,
/// byte counter, timestamp, 5-tuple) plus the second-chance reference bit.
///
/// Counters are `f64` because the FlowRegulator releases fractional
/// estimates; the paper stores rounded 32-bit values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowEntry {
    /// 32-bit hash of the 5-tuple, the fast comparison key.
    pub flow_id: u32,
    /// The full 5-tuple.
    pub key: FlowKey,
    /// Accumulated packet estimate.
    pub packets: f64,
    /// Accumulated byte estimate.
    pub bytes: f64,
    /// Timestamp of the last accumulation (nanoseconds).
    pub last_ts: u64,
    /// Timestamp of the first accumulation (nanoseconds) — lets queries
    /// compute flow age and rates.
    pub first_ts: u64,
    /// Second-chance reference bit.
    pub referenced: bool,
}

/// What [`WsafTable::accumulate`] did with an update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccumulateOutcome {
    /// The flow already had an entry; counters were increased.
    Updated,
    /// A fresh entry was created in an empty slot.
    Inserted,
    /// An expired entry was garbage-collected to make room.
    InsertedAfterGc {
        /// The reclaimed flow.
        evicted: FlowKey,
    },
    /// A live entry lost its second chance and was replaced.
    InsertedAfterEviction {
        /// The evicted flow.
        evicted: FlowKey,
        /// The packet count the evicted flow had accumulated.
        evicted_packets: f64,
    },
}

/// Operation counters for the table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WsafStats {
    /// Calls to [`WsafTable::accumulate`].
    pub accumulates: u64,
    /// Updates of existing entries.
    pub updates: u64,
    /// Insertions into empty slots.
    pub inserts: u64,
    /// Expired entries reclaimed by garbage collection.
    pub gc_reclaims: u64,
    /// Live entries evicted by second-chance replacement.
    pub evictions: u64,
    /// Total slots probed.
    pub probes: u64,
    /// Lookups via [`WsafTable::get`].
    pub lookups: u64,
}

impl WsafStats {
    /// Average slots probed per accumulate/lookup — the DRAM-cost proxy.
    #[must_use]
    pub fn probes_per_op(&self) -> f64 {
        let ops = self.accumulates + self.lookups;
        if ops == 0 {
            0.0
        } else {
            self.probes as f64 / ops as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    occupied: bool,
    entry: FlowEntry,
}

const EMPTY_ENTRY: FlowEntry = FlowEntry {
    flow_id: 0,
    key: FlowKey {
        src_ip: [0; 4],
        dst_ip: [0; 4],
        src_port: 0,
        dst_port: 0,
        protocol: instameasure_packet::Protocol::Other(0),
    },
    packets: 0.0,
    bytes: 0.0,
    last_ts: 0,
    first_ts: 0,
    referenced: false,
};

/// The `i`-th slot of the triangular quadratic probe sequence starting at
/// `base`: `(base + (i + i²)/2) mod capacity`.
///
/// `capacity` must be a power of two; then the first `capacity` probes
/// visit all `capacity` distinct slots (triangular numbers are a complete
/// residue cycle mod 2ⁿ), so the probe window never revisits a slot — a
/// property the wsaf test suite checks for every table size.
///
/// # Panics
///
/// Debug-asserts that `capacity` is a power of two.
#[inline]
#[must_use]
pub fn triangular_probe_slot(base: u64, i: u64, capacity: usize) -> usize {
    debug_assert!(capacity.is_power_of_two(), "probe arithmetic requires a power-of-two table");
    let offset = i.wrapping_mul(i).wrapping_add(i) / 2;
    ((base.wrapping_add(offset)) & (capacity as u64 - 1)) as usize
}

/// The working set of active flows (see crate docs).
#[derive(Debug, Clone)]
pub struct WsafTable {
    cfg: WsafConfig,
    slots: Vec<Slot>,
    live: usize,
    stats: WsafStats,
    /// Distribution of slots probed per [`WsafTable::accumulate`] — the
    /// paper's DRAM-cost metric, resolved beyond the average in `stats`.
    probe_hist: LogHistogram,
}

impl WsafTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new(cfg: WsafConfig) -> Self {
        WsafTable {
            cfg,
            slots: vec![Slot { occupied: false, entry: EMPTY_ENTRY }; cfg.num_entries()],
            live: 0,
            stats: WsafStats::default(),
            probe_hist: LogHistogram::new(),
        }
    }

    /// The table's configuration.
    #[must_use]
    pub fn config(&self) -> &WsafConfig {
        &self.cfg
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the table holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Live entries divided by capacity.
    #[must_use]
    pub fn load_factor(&self) -> f64 {
        self.live as f64 / self.slots.len() as f64
    }

    /// Operation counters.
    #[must_use]
    pub fn stats(&self) -> WsafStats {
        self.stats
    }

    /// The table's probe hash of a flow key: one [`FlowDigest`] of the key
    /// bytes, then the table's seed-derived lane. Query layers that
    /// already hold the hash can pass it to the `*_hashed` variants below
    /// instead of rehashing.
    #[inline]
    #[must_use]
    pub fn hash_key(&self, key: &FlowKey) -> u64 {
        self.hash_digest(FlowDigest::of(key))
    }

    /// Derives the table's probe hash from a precomputed digest — the
    /// hash-once hot path (no key bytes touched).
    #[inline]
    #[must_use]
    pub fn hash_digest(&self, digest: FlowDigest) -> u64 {
        digest.lane(self.cfg.seed())
    }

    /// Hints the CPU to pull the first probe slot of hash `h` toward L1
    /// cache. Purely advisory; the batched accumulate loop issues this for
    /// deposit `i + K` while finishing deposit `i`.
    #[inline]
    pub fn prefetch_hashed(&self, h: u64) {
        let idx = triangular_probe_slot(h, 0, self.slots.len());
        prefetch::prefetch_read_index(&self.slots, idx);
    }

    /// The probe sequence: triangular quadratic `base + (i + i²)/2 mod m`.
    /// With `m` a power of two this visits every slot over a full cycle.
    #[inline]
    fn probe_index(&self, base: u64, i: usize) -> usize {
        triangular_probe_slot(base, i as u64, self.slots.len())
    }

    /// Accumulates `(est_pkts, est_bytes)` into the flow's entry, creating
    /// one if needed — the `ACC_WSAF` step of the paper's Algorithm 1.
    ///
    /// The probe window is scanned once; on a full window the replacement
    /// policy runs (expired-first garbage collection, then second-chance
    /// eviction of the smallest unreferenced entry).
    pub fn accumulate(
        &mut self,
        key: &FlowKey,
        est_pkts: f64,
        est_bytes: f64,
        ts: u64,
    ) -> AccumulateOutcome {
        self.accumulate_hashed(key, self.hash_key(key), est_pkts, est_bytes, ts)
    }

    /// [`WsafTable::accumulate`] with the probe hash already computed
    /// (`h` must equal `self.hash_key(key)`).
    #[inline]
    pub fn accumulate_hashed(
        &mut self,
        key: &FlowKey,
        h: u64,
        est_pkts: f64,
        est_bytes: f64,
        ts: u64,
    ) -> AccumulateOutcome {
        self.stats.accumulates += 1;
        let flow_id = (h >> 32) as u32;

        let mut first_empty: Option<usize> = None;
        let mut expired: Option<usize> = None;
        let mut probed = [0usize; 64];
        let window = self.cfg.probe_limit(); // validated to be <= 64

        for (i, probed_slot) in probed.iter_mut().enumerate().take(window) {
            let idx = self.probe_index(h, i);
            *probed_slot = idx;
            self.stats.probes += 1;
            let slot = &mut self.slots[idx];
            if !slot.occupied {
                if first_empty.is_none() {
                    first_empty = Some(idx);
                }
                continue;
            }
            if slot.entry.flow_id == flow_id && slot.entry.key == *key {
                slot.entry.packets += est_pkts;
                slot.entry.bytes += est_bytes;
                slot.entry.last_ts = ts;
                slot.entry.referenced = true;
                self.stats.updates += 1;
                self.probe_hist.observe(i as u64 + 1);
                return AccumulateOutcome::Updated;
            }
            if expired.is_none() && ts.saturating_sub(slot.entry.last_ts) > self.cfg.expiry_nanos()
            {
                expired = Some(idx);
            }
        }

        self.probe_hist.observe(window as u64);

        let fresh = FlowEntry {
            flow_id,
            key: *key,
            packets: est_pkts,
            bytes: est_bytes,
            last_ts: ts,
            first_ts: ts,
            referenced: true,
        };

        if let Some(idx) = first_empty {
            self.slots[idx] = Slot { occupied: true, entry: fresh };
            self.live += 1;
            self.stats.inserts += 1;
            return AccumulateOutcome::Inserted;
        }

        // Garbage collection: reclaim an expired entry if the window holds
        // one (paper: GC piggybacks on the insertion probe).
        if let Some(idx) = expired {
            let evicted = self.slots[idx].entry.key;
            self.slots[idx].entry = fresh;
            self.stats.gc_reclaims += 1;
            self.stats.inserts += 1;
            return AccumulateOutcome::InsertedAfterGc { evicted };
        }

        let idx = match self.cfg.eviction() {
            crate::EvictionPolicy::SecondChance => {
                // Paper's policy: among unreferenced entries pick the
                // least significant (fewest packets); clear reference bits
                // so the window's entries must re-earn their stay.
                let mut victim: Option<(usize, f64)> = None;
                for &idx in &probed[..window] {
                    let entry = &mut self.slots[idx].entry;
                    if entry.referenced {
                        entry.referenced = false; // second chance spent
                    } else if victim.is_none_or(|(_, p)| entry.packets < p) {
                        victim = Some((idx, entry.packets));
                    }
                }
                // Everyone was referenced: fall back to the minimum of the
                // (now unreferenced) window.
                victim.unwrap_or_else(|| self.window_min(&probed[..window], |e| e.packets)).0
            }
            crate::EvictionPolicy::MinPackets => {
                self.window_min(&probed[..window], |e| e.packets).0
            }
            crate::EvictionPolicy::Oldest => {
                self.window_min(&probed[..window], |e| e.last_ts as f64).0
            }
        };
        let old = self.slots[idx].entry;
        self.slots[idx].entry = fresh;
        self.stats.evictions += 1;
        self.stats.inserts += 1;
        AccumulateOutcome::InsertedAfterEviction { evicted: old.key, evicted_packets: old.packets }
    }

    /// Index (and metric value) of the window entry minimizing `metric`.
    fn window_min(&self, window: &[usize], metric: impl Fn(&FlowEntry) -> f64) -> (usize, f64) {
        let mut best = (window[0], f64::INFINITY);
        for &idx in window {
            let m = metric(&self.slots[idx].entry);
            if m < best.1 {
                best = (idx, m);
            }
        }
        best
    }

    /// Accumulates a batch of deposits in order, prefetching the first
    /// probe slot of deposit `i + K` while finishing deposit `i` (K =
    /// [`prefetch::prefetch_distance`]). Bit-identical to calling
    /// [`WsafTable::accumulate`] on each deposit in order.
    pub fn accumulate_batch(&mut self, deposits: &[WsafDeposit]) {
        let k = prefetch::prefetch_distance();
        for d in deposits.iter().take(k) {
            self.prefetch_hashed(self.hash_digest(d.digest));
        }
        for (i, d) in deposits.iter().enumerate() {
            if let Some(ahead) = deposits.get(i + k) {
                self.prefetch_hashed(self.hash_digest(ahead.digest));
            }
            let h = self.hash_digest(d.digest);
            self.accumulate_hashed(&d.key, h, d.est_pkts, d.est_bytes, d.ts);
        }
    }

    /// Looks up a flow's entry (does not touch the reference bit).
    #[must_use]
    pub fn get(&self, key: &FlowKey) -> Option<&FlowEntry> {
        self.get_hashed(key, self.hash_key(key))
    }

    /// [`WsafTable::get`] with the probe hash already computed (`h` must
    /// equal `self.hash_key(key)`) — spares query layers that hash once
    /// for several structures a rehash of the key bytes.
    #[inline]
    #[must_use]
    pub fn get_hashed(&self, key: &FlowKey, h: u64) -> Option<&FlowEntry> {
        let flow_id = (h >> 32) as u32;
        for i in 0..self.cfg.probe_limit() {
            let idx = self.probe_index(h, i);
            let slot = &self.slots[idx];
            if slot.occupied && slot.entry.flow_id == flow_id && slot.entry.key == *key {
                return Some(&slot.entry);
            }
        }
        None
    }

    /// Removes a flow's entry, returning it if present.
    pub fn remove(&mut self, key: &FlowKey) -> Option<FlowEntry> {
        self.remove_hashed(key, self.hash_key(key))
    }

    /// [`WsafTable::remove`] with the probe hash already computed (`h`
    /// must equal `self.hash_key(key)`).
    pub fn remove_hashed(&mut self, key: &FlowKey, h: u64) -> Option<FlowEntry> {
        let flow_id = (h >> 32) as u32;
        for i in 0..self.cfg.probe_limit() {
            let idx = self.probe_index(h, i);
            let slot = &mut self.slots[idx];
            if slot.occupied && slot.entry.flow_id == flow_id && slot.entry.key == *key {
                slot.occupied = false;
                self.live -= 1;
                return Some(slot.entry);
            }
        }
        None
    }

    /// Iterates over all live entries in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &FlowEntry> {
        self.slots.iter().filter(|s| s.occupied).map(|s| &s.entry)
    }

    /// The `k` largest flows by packet count, descending.
    #[must_use]
    pub fn top_k_by_packets(&self, k: usize) -> Vec<FlowEntry> {
        self.top_k_by(k, |e| e.packets)
    }

    /// The `k` largest flows by byte count, descending.
    #[must_use]
    pub fn top_k_by_bytes(&self, k: usize) -> Vec<FlowEntry> {
        self.top_k_by(k, |e| e.bytes)
    }

    fn top_k_by(&self, k: usize, metric: impl Fn(&FlowEntry) -> f64) -> Vec<FlowEntry> {
        let mut all: Vec<FlowEntry> = self.iter().copied().collect();
        all.sort_by(|a, b| metric(b).total_cmp(&metric(a)));
        all.truncate(k);
        all
    }

    /// Removes every entry idle longer than the expiry at time `now`
    /// (a full sweep, for tests and explicit maintenance; normal operation
    /// relies on the lazy GC inside [`WsafTable::accumulate`]).
    pub fn sweep_expired(&mut self, now: u64) -> usize {
        let mut removed = 0;
        for slot in &mut self.slots {
            if slot.occupied && now.saturating_sub(slot.entry.last_ts) > self.cfg.expiry_nanos() {
                slot.occupied = false;
                removed += 1;
            }
        }
        self.live -= removed;
        self.stats.gc_reclaims += removed as u64;
        removed
    }

    /// Clears all entries and statistics.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            slot.occupied = false;
        }
        self.live = 0;
        self.stats = WsafStats::default();
        self.probe_hist.reset();
    }
}

impl Instrumented for WsafTable {
    /// Exports the table's counters under the `wsaf.` prefix.
    ///
    /// Counters: `accumulates`, `updates`, `inserts`, `gc_reclaims`,
    /// `evictions`, `probes`, `lookups`, `live_entries`. Histogram:
    /// `probe_len` (slots probed per accumulate). Gauges: `load_factor`,
    /// `probes_per_op`.
    fn telemetry(&self) -> Snapshot {
        let mut snap = Snapshot::new();
        snap.set_counter("wsaf.accumulates", self.stats.accumulates);
        snap.set_counter("wsaf.updates", self.stats.updates);
        snap.set_counter("wsaf.inserts", self.stats.inserts);
        snap.set_counter("wsaf.gc_reclaims", self.stats.gc_reclaims);
        snap.set_counter("wsaf.evictions", self.stats.evictions);
        snap.set_counter("wsaf.probes", self.stats.probes);
        snap.set_counter("wsaf.lookups", self.stats.lookups);
        snap.set_counter("wsaf.live_entries", self.live as u64);
        snap.set_histogram("wsaf.probe_len", self.probe_hist.snapshot());
        snap.set_gauge("wsaf.load_factor", self.load_factor());
        snap.set_gauge("wsaf.probes_per_op", self.stats.probes_per_op());
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WsafConfig;
    use instameasure_packet::Protocol;

    fn key(i: u32) -> FlowKey {
        FlowKey::new(i.to_be_bytes(), (i ^ 0xABCD).to_be_bytes(), 80, 443, Protocol::Tcp)
    }

    fn small(log2: u32, probe: usize) -> WsafTable {
        WsafTable::new(
            WsafConfig::builder()
                .entries_log2(log2)
                .probe_limit(probe)
                .expiry_nanos(1_000)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn probe_sequence_visits_all_slots() {
        // Triangular probing over a power-of-two table is a permutation.
        for log2 in [4u32, 6, 8] {
            let t = small(log2, 1);
            let m = t.slots.len();
            let mut seen = vec![false; m];
            for i in 0..m {
                seen[t.probe_index(12345, i)] = true;
            }
            assert!(seen.iter().all(|&s| s), "m={m}: probe sequence misses slots");
        }
    }

    #[test]
    fn insert_update_get_roundtrip() {
        let mut t = small(8, 8);
        assert!(matches!(t.accumulate(&key(1), 5.0, 500.0, 10), AccumulateOutcome::Inserted));
        assert!(matches!(t.accumulate(&key(1), 2.0, 200.0, 20), AccumulateOutcome::Updated));
        let e = t.get(&key(1)).unwrap();
        assert_eq!(e.packets, 7.0);
        assert_eq!(e.bytes, 700.0);
        assert_eq!(e.first_ts, 10);
        assert_eq!(e.last_ts, 20);
        assert_eq!(t.len(), 1);
        assert!(t.get(&key(2)).is_none());
    }

    #[test]
    fn remove_frees_slot() {
        let mut t = small(8, 8);
        t.accumulate(&key(1), 1.0, 10.0, 0);
        assert_eq!(t.remove(&key(1)).unwrap().packets, 1.0);
        assert!(t.get(&key(1)).is_none());
        assert!(t.is_empty());
        assert!(t.remove(&key(1)).is_none());
    }

    #[test]
    fn distinct_flows_coexist() {
        let mut t = small(12, 16);
        for i in 0..1000 {
            t.accumulate(&key(i), f64::from(i), 0.0, 0);
        }
        assert_eq!(t.len(), 1000);
        for i in 0..1000 {
            assert_eq!(t.get(&key(i)).unwrap().packets, f64::from(i), "flow {i}");
        }
    }

    #[test]
    fn gc_reclaims_expired_entries_first() {
        // Tiny table (4 slots, probe covers all): fill with old entries,
        // then insert at a time past expiry — GC must reclaim, not evict.
        let mut t = small(2, 4);
        for i in 0..10 {
            t.accumulate(&key(i), 100.0, 0.0, 0);
        }
        assert_eq!(t.len(), 4);
        let out = t.accumulate(&key(99), 1.0, 0.0, 10_000);
        assert!(
            matches!(out, AccumulateOutcome::InsertedAfterGc { .. }),
            "expected GC, got {out:?}"
        );
        assert!(t.stats().gc_reclaims >= 1);
    }

    #[test]
    fn second_chance_evicts_smallest_unreferenced() {
        let mut t = small(2, 4);
        // Fill all four slots within the expiry window.
        let mut inserted = Vec::new();
        for i in 0..100 {
            if matches!(
                t.accumulate(&key(i), f64::from(i + 1), 0.0, 0),
                AccumulateOutcome::Inserted
            ) {
                inserted.push(i);
                if inserted.len() == 4 {
                    break;
                }
            }
        }
        assert_eq!(inserted.len(), 4);
        // First overflowing insert only strips reference bits...
        let out1 = t.accumulate(&key(1000), 50.0, 0.0, 500);
        // ...but must still insert somewhere (fallback eviction).
        assert!(matches!(out1, AccumulateOutcome::InsertedAfterEviction { .. }));
        // Now reference bits of survivors are cleared; the next eviction
        // takes the minimum-packet victim.
        let before: Vec<(u32, f64)> = t.iter().map(|e| (e.flow_id, e.packets)).collect();
        let min_pkts = before.iter().map(|&(_, p)| p).fold(f64::INFINITY, f64::min);
        let out2 = t.accumulate(&key(2000), 60.0, 0.0, 600);
        match out2 {
            AccumulateOutcome::InsertedAfterEviction { evicted_packets, .. } => {
                assert_eq!(evicted_packets, min_pkts, "evicts least significant entry");
            }
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn update_sets_reference_bit_protecting_elephants() {
        let mut t = small(2, 4);
        // Fill table; keep flow A hot by updating it.
        let mut filled = Vec::new();
        for i in 0..100 {
            if matches!(t.accumulate(&key(i), 10.0, 0.0, 0), AccumulateOutcome::Inserted) {
                filled.push(i);
                if filled.len() == 4 {
                    break;
                }
            }
        }
        let hot = filled[0];
        for round in 0..20u32 {
            t.accumulate(&key(hot), 10.0, 0.0, u64::from(round));
            t.accumulate(&key(500 + round), 1.0, 0.0, u64::from(round));
        }
        assert!(t.get(&key(hot)).is_some(), "hot elephant must survive churn");
    }

    #[test]
    fn stats_track_operations() {
        let mut t = small(8, 4);
        t.accumulate(&key(1), 1.0, 1.0, 0);
        t.accumulate(&key(1), 1.0, 1.0, 1);
        let _ = t.get(&key(1));
        let _ = t.get(&key(2));
        let s = t.stats();
        assert_eq!(s.accumulates, 2);
        assert_eq!(s.inserts, 1);
        assert_eq!(s.updates, 1);
        assert!(s.probes > 0);
        assert!(s.probes_per_op() >= 1.0);
    }

    #[test]
    fn top_k_orders_by_metric() {
        let mut t = small(8, 8);
        for i in 0..10 {
            // Packet order ascending, byte order descending.
            t.accumulate(&key(i), f64::from(i), f64::from(100 - i), 0);
        }
        let by_pkts = t.top_k_by_packets(3);
        assert_eq!(by_pkts.iter().map(|e| e.packets as u32).collect::<Vec<_>>(), vec![9, 8, 7]);
        let by_bytes = t.top_k_by_bytes(3);
        assert_eq!(by_bytes.iter().map(|e| e.bytes as u32).collect::<Vec<_>>(), vec![100, 99, 98]);
        assert_eq!(t.top_k_by_packets(100).len(), 10, "k larger than table");
    }

    #[test]
    fn sweep_expired_removes_idle_flows() {
        let mut t = small(8, 8);
        t.accumulate(&key(1), 1.0, 0.0, 0);
        t.accumulate(&key(2), 1.0, 0.0, 5_000);
        assert_eq!(t.sweep_expired(5_500), 1);
        assert!(t.get(&key(1)).is_none());
        assert!(t.get(&key(2)).is_some());
    }

    #[test]
    fn clear_resets() {
        let mut t = small(8, 8);
        t.accumulate(&key(1), 1.0, 0.0, 0);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.stats(), WsafStats::default());
        assert_eq!(t.load_factor(), 0.0);
    }

    #[test]
    fn telemetry_reconciles_with_stats() {
        let mut t = small(8, 8);
        for i in 0..200 {
            t.accumulate(&key(i % 50), 1.0, 10.0, u64::from(i));
        }
        let _ = t.get(&key(0));
        let snap = t.telemetry();
        let s = t.stats();
        assert_eq!(snap.counter("wsaf.accumulates"), Some(s.accumulates));
        // Outcome tallies partition the accumulates.
        assert_eq!(
            s.updates + s.inserts,
            s.accumulates,
            "every accumulate is an update or an insert"
        );
        assert_eq!(
            snap.counter("wsaf.updates").unwrap() + snap.counter("wsaf.inserts").unwrap(),
            snap.counter("wsaf.accumulates").unwrap()
        );
        let hist = snap.histogram("wsaf.probe_len").unwrap();
        assert_eq!(hist.count, s.accumulates, "one probe-length sample per accumulate");
        assert!(hist.max <= 8, "probe length bounded by the window");
        let lf = snap.gauge("wsaf.load_factor").unwrap();
        assert!((lf - t.load_factor()).abs() < 1e-12);
        assert_eq!(snap.counter("wsaf.live_entries"), Some(t.len() as u64));

        t.clear();
        let cleared = t.telemetry();
        assert_eq!(cleared.histogram("wsaf.probe_len").unwrap().count, 0);
    }

    #[test]
    fn hashed_variants_match_keyed_ones() {
        let mut t = small(8, 8);
        for i in 0..100 {
            t.accumulate(&key(i), f64::from(i), 1.0, 0);
        }
        for i in 0..120 {
            let k = key(i);
            let d = instameasure_packet::FlowDigest::of(&k);
            let h = t.hash_key(&k);
            assert_eq!(h, t.hash_digest(d), "flow {i}");
            assert_eq!(t.get(&k), t.get_hashed(&k, h), "flow {i}");
        }
        let h = t.hash_key(&key(7));
        let removed = t.remove_hashed(&key(7), h).expect("flow 7 present");
        assert_eq!(removed.packets, 7.0);
        assert!(t.get(&key(7)).is_none());
        assert!(t.remove_hashed(&key(7), h).is_none());
    }

    #[test]
    fn accumulate_batch_is_bit_identical_to_scalar() {
        use instameasure_packet::FlowDigest;
        for n in [0usize, 1, 5, 64, 500] {
            // Tiny table with short expiry: the batch crosses inserts,
            // updates, GC reclaims and evictions.
            let mut scalar = small(4, 8);
            let mut batched = small(4, 8);
            let deposits: Vec<WsafDeposit> = (0..n as u32)
                .map(|i| {
                    let k = key(i % 37);
                    WsafDeposit {
                        key: k,
                        digest: FlowDigest::of(&k),
                        est_pkts: f64::from(i % 7) + 0.5,
                        est_bytes: f64::from(i) * 3.25,
                        ts: u64::from(i) * 100,
                    }
                })
                .collect();

            for d in &deposits {
                scalar.accumulate(&d.key, d.est_pkts, d.est_bytes, d.ts);
            }
            batched.accumulate_batch(&deposits);

            assert_eq!(scalar.stats(), batched.stats(), "n={n}");
            assert_eq!(scalar.len(), batched.len(), "n={n}");
            let collect = |t: &WsafTable| {
                let mut v: Vec<FlowEntry> = t.iter().copied().collect();
                v.sort_by_key(|e| e.key.to_bytes());
                v
            };
            assert_eq!(collect(&scalar), collect(&batched), "n={n}");
        }
    }

    #[test]
    fn prefetch_does_not_change_state() {
        let mut t = small(8, 8);
        for i in 0..50 {
            t.accumulate(&key(i), 1.0, 1.0, 0);
        }
        let stats = t.stats();
        let entries: Vec<FlowEntry> = t.iter().copied().collect();
        for i in 0..100 {
            t.prefetch_hashed(t.hash_key(&key(i)));
        }
        assert_eq!(t.stats(), stats);
        assert_eq!(t.iter().copied().collect::<Vec<_>>(), entries);
    }

    #[test]
    fn high_load_factor_is_reachable() {
        // Paper motivation for the probing parameters: a high load factor.
        let mut t = WsafTable::new(
            WsafConfig::builder()
                .entries_log2(12)
                .probe_limit(32)
                .expiry_nanos(u64::MAX / 2)
                .build()
                .unwrap(),
        );
        let n = (4096.0 * 0.95) as u32;
        for i in 0..n {
            t.accumulate(&key(i), 1.0, 0.0, 0);
        }
        assert!(t.load_factor() > 0.90, "load factor {}", t.load_factor());
    }
}

#[cfg(test)]
mod eviction_policy_tests {
    use super::*;
    use crate::{EvictionPolicy, WsafConfig};
    use instameasure_packet::Protocol;

    fn key(i: u32) -> FlowKey {
        FlowKey::new(i.to_be_bytes(), (i ^ 0x1234).to_be_bytes(), 80, 443, Protocol::Tcp)
    }

    fn table(policy: EvictionPolicy) -> WsafTable {
        WsafTable::new(
            WsafConfig::builder()
                .entries_log2(2)
                .probe_limit(4)
                .expiry_nanos(u64::MAX / 2)
                .eviction(policy)
                .build()
                .unwrap(),
        )
    }

    fn fill(t: &mut WsafTable, counts: &[f64], ts: &[u64]) -> Vec<u32> {
        let mut inserted = Vec::new();
        let mut i = 0u32;
        while inserted.len() < counts.len() {
            let n = inserted.len();
            if matches!(t.accumulate(&key(i), counts[n], 0.0, ts[n]), AccumulateOutcome::Inserted) {
                inserted.push(i);
            }
            i += 1;
        }
        inserted
    }

    #[test]
    fn min_packets_policy_ignores_reference_bits() {
        let mut t = table(EvictionPolicy::MinPackets);
        let ids = fill(&mut t, &[100.0, 1.0, 50.0, 70.0], &[0, 0, 0, 0]);
        // Keep the tiny flow hot — MinPackets evicts it anyway.
        t.accumulate(&key(ids[1]), 0.0, 0.0, 5);
        let out = t.accumulate(&key(9999), 10.0, 0.0, 10);
        match out {
            AccumulateOutcome::InsertedAfterEviction { evicted_packets, .. } => {
                assert_eq!(evicted_packets, 1.0, "minimum-packet entry evicted");
            }
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn oldest_policy_evicts_stalest() {
        let mut t = table(EvictionPolicy::Oldest);
        let ids = fill(&mut t, &[100.0, 90.0, 80.0, 70.0], &[40, 10, 30, 20]);
        let out = t.accumulate(&key(8888), 5.0, 0.0, 100);
        match out {
            AccumulateOutcome::InsertedAfterEviction { evicted, .. } => {
                assert_eq!(evicted, key(ids[1]), "entry with ts=10 is stalest");
            }
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn second_chance_protects_referenced_elephants_where_min_packets_does_not() {
        // Scenario: a hot elephant (always referenced) plus churn. Under
        // SecondChance the elephant survives; under MinPackets it can be
        // evicted right after its counter is reset by... (it cannot be
        // reset, so instead verify the tiny-but-hot flow outcome differs).
        let run = |policy: EvictionPolicy| -> bool {
            let mut t = table(policy);
            let ids = fill(&mut t, &[2.0, 500.0, 400.0, 300.0], &[0, 0, 0, 0]);
            let hot_mouse = ids[0];
            // Round of churn: keep touching the mouse (reference it),
            // insert new flows that force evictions.
            for round in 0..6u32 {
                t.accumulate(&key(hot_mouse), 0.5, 0.0, u64::from(round));
                t.accumulate(&key(10_000 + round), 1.0, 0.0, u64::from(round));
            }
            t.get(&key(hot_mouse)).is_some()
        };
        assert!(!run(EvictionPolicy::MinPackets), "MinPackets churns the hot mouse out");
        assert!(run(EvictionPolicy::SecondChance), "SecondChance honors the reference bit");
    }
}
