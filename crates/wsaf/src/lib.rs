//! The WSAF table — InstaMeasure's in-DRAM *working set of active flows*.
//!
//! A [`WsafTable`] is an open-addressing hash table sized for millions of
//! entries (the paper uses 2²⁰ ≈ 33 MB of DRAM). It differs from a
//! general-purpose map in three paper-specific ways (§III-B, Fig. 2b):
//!
//! * **Probe-limited** — every operation touches at most `probe_limit`
//!   slots, bounding the per-update DRAM cost; a flow either lives inside
//!   its probe window or not at all.
//! * **Triangular quadratic probing** — `h(k,i) = h(k) + (i + i²)/2 mod m`
//!   with `m = 2ⁿ` visits *every* slot over a full cycle (the paper's
//!   "specific parameters for probing all table positions"), so high load
//!   factors stay reachable.
//! * **Second-chance replacement with garbage collection** — when a probe
//!   window is full, expired entries are reclaimed first; otherwise
//!   reference bits are cleared as the window is scanned and the
//!   least-significant (fewest packets) unreferenced entry is evicted —
//!   mice flows that leaked through the FlowRegulator are pushed out,
//!   elephants stay.
//!
//! # Example
//!
//! ```
//! use instameasure_packet::{FlowKey, Protocol};
//! use instameasure_wsaf::{WsafConfig, WsafTable};
//!
//! let mut table = WsafTable::new(WsafConfig::builder().entries_log2(10).build()?);
//! let key = FlowKey::new([1, 2, 3, 4], [5, 6, 7, 8], 80, 443, Protocol::Tcp);
//! table.accumulate(&key, 7.0, 7.0 * 1500.0, 1_000);
//! table.accumulate(&key, 9.5, 9.5 * 64.0, 2_000);
//! let entry = table.get(&key).unwrap();
//! assert!((entry.packets - 16.5).abs() < 1e-9);
//! # Ok::<(), instameasure_wsaf::WsafConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod table;

pub use config::{EvictionPolicy, WsafConfig, WsafConfigBuilder, WsafConfigError};
pub use table::{
    triangular_probe_slot, AccumulateOutcome, FlowEntry, WsafDeposit, WsafStats, WsafTable,
};
