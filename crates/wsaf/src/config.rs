//! WSAF table configuration.

use core::fmt;

/// Size of one WSAF entry in the paper's layout: 32-bit flow id, 32-bit
/// packet counter, 32-bit byte counter, 64-bit timestamp and the 104-bit
/// 5-tuple — 33 bytes (§IV-D). Used for DRAM accounting in the figures;
/// the in-memory Rust layout is larger.
pub const PAPER_ENTRY_BYTES: usize = 33;

/// Replacement policy used when a probe window is full (after expired
/// entries have been reclaimed). The paper's design is
/// [`EvictionPolicy::SecondChance`]; the others exist for ablation
/// studies (`cargo run -rp instameasure-bench --bin ablations`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Paper §III-B: clear reference bits as the window is scanned and
    /// evict the least-significant (fewest packets) unreferenced entry.
    #[default]
    SecondChance,
    /// Always evict the window's minimum-packet entry (no reference
    /// bits — recently-updated elephants can be evicted).
    MinPackets,
    /// Evict the entry idle the longest (pure LRU approximation).
    Oldest,
}

/// Errors returned for invalid [`WsafConfig`] parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WsafConfigError {
    /// `entries_log2` must be in `1..=30`.
    BadEntriesLog2(u32),
    /// `probe_limit` must be in `1..=64` and no larger than the table.
    BadProbeLimit(usize),
}

impl fmt::Display for WsafConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WsafConfigError::BadEntriesLog2(n) => {
                write!(f, "entries_log2 {n} out of range 1..=30")
            }
            WsafConfigError::BadProbeLimit(p) => {
                write!(f, "probe_limit {p} must be in 1..=table size")
            }
        }
    }
}

impl std::error::Error for WsafConfigError {}

/// Geometry and policy of a [`crate::WsafTable`].
///
/// Paper defaults: 2²⁰ entries for all experiments; flows expire after a
/// configurable idle period so garbage collection can reclaim them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct WsafConfig {
    entries_log2: u32,
    probe_limit: usize,
    expiry_nanos: u64,
    seed: u64,
    eviction: EvictionPolicy,
}

impl WsafConfig {
    /// Starts building a config. Defaults: 2²⁰ entries, probe limit 16,
    /// 60 s expiry, seed 0xW5AF.
    #[must_use]
    pub fn builder() -> WsafConfigBuilder {
        WsafConfigBuilder::default()
    }

    /// Number of slots (always a power of two).
    #[must_use]
    pub fn num_entries(&self) -> usize {
        1usize << self.entries_log2
    }

    /// log₂ of the slot count.
    #[must_use]
    pub fn entries_log2(&self) -> u32 {
        self.entries_log2
    }

    /// Maximum slots probed per operation.
    #[must_use]
    pub fn probe_limit(&self) -> usize {
        self.probe_limit
    }

    /// Idle time after which an entry is considered expired and reclaimable.
    #[must_use]
    pub fn expiry_nanos(&self) -> u64 {
        self.expiry_nanos
    }

    /// Hash seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Replacement policy for full probe windows.
    #[must_use]
    pub fn eviction(&self) -> EvictionPolicy {
        self.eviction
    }

    /// DRAM the table would occupy with the paper's 33-byte entries.
    #[must_use]
    pub fn paper_dram_bytes(&self) -> usize {
        self.num_entries() * PAPER_ENTRY_BYTES
    }
}

impl Default for WsafConfig {
    fn default() -> Self {
        WsafConfig {
            entries_log2: 20,
            probe_limit: 16,
            expiry_nanos: 60_000_000_000,
            seed: 0x57AF,
            eviction: EvictionPolicy::SecondChance,
        }
    }
}

/// Builder for [`WsafConfig`].
///
/// # Example
///
/// ```
/// use instameasure_wsaf::WsafConfig;
/// let cfg = WsafConfig::builder().entries_log2(20).probe_limit(16).build()?;
/// assert_eq!(cfg.num_entries(), 1 << 20);
/// // Paper §IV-D: “the total DRAM space required for the hash table is only 33MB”.
/// assert_eq!(cfg.paper_dram_bytes(), 33 * (1 << 20));
/// # Ok::<(), instameasure_wsaf::WsafConfigError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct WsafConfigBuilder {
    cfg: WsafConfig,
}

impl WsafConfigBuilder {
    /// Sets log₂ of the slot count (default 20, the paper's 2²⁰).
    #[must_use]
    pub fn entries_log2(mut self, n: u32) -> Self {
        self.cfg.entries_log2 = n;
        self
    }

    /// Sets the probe limit (default 16).
    #[must_use]
    pub fn probe_limit(mut self, p: usize) -> Self {
        self.cfg.probe_limit = p;
        self
    }

    /// Sets the idle expiry in nanoseconds (default 60 s).
    #[must_use]
    pub fn expiry_nanos(mut self, t: u64) -> Self {
        self.cfg.expiry_nanos = t;
        self
    }

    /// Sets the hash seed (default 0x57AF).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets the replacement policy (default second-chance; the
    /// alternatives exist for ablations).
    #[must_use]
    pub fn eviction(mut self, policy: EvictionPolicy) -> Self {
        self.cfg.eviction = policy;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`WsafConfigError`] if the size or probe limit is out of
    /// range.
    pub fn build(self) -> Result<WsafConfig, WsafConfigError> {
        if !(1..=30).contains(&self.cfg.entries_log2) {
            return Err(WsafConfigError::BadEntriesLog2(self.cfg.entries_log2));
        }
        if self.cfg.probe_limit == 0
            || self.cfg.probe_limit > 64
            || self.cfg.probe_limit > self.cfg.num_entries()
        {
            return Err(WsafConfigError::BadProbeLimit(self.cfg.probe_limit));
        }
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dram_budget() {
        let cfg = WsafConfig::default();
        assert_eq!(cfg.num_entries(), 1 << 20);
        // ~33 MB, the number the paper quotes.
        assert_eq!(cfg.paper_dram_bytes(), 34_603_008);
    }

    #[test]
    fn rejects_invalid_sizes() {
        assert_eq!(
            WsafConfig::builder().entries_log2(0).build().unwrap_err(),
            WsafConfigError::BadEntriesLog2(0)
        );
        assert_eq!(
            WsafConfig::builder().entries_log2(31).build().unwrap_err(),
            WsafConfigError::BadEntriesLog2(31)
        );
        assert_eq!(
            WsafConfig::builder().probe_limit(0).build().unwrap_err(),
            WsafConfigError::BadProbeLimit(0)
        );
        assert_eq!(
            WsafConfig::builder().entries_log2(2).probe_limit(5).build().unwrap_err(),
            WsafConfigError::BadProbeLimit(5)
        );
    }

    #[test]
    fn error_display() {
        assert!(WsafConfigError::BadEntriesLog2(31).to_string().contains("31"));
        assert!(WsafConfigError::BadProbeLimit(0).to_string().contains('0'));
    }
}
