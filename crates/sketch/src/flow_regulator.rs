//! The two-layer FlowRegulator (paper §III, Algorithm 1).

use instameasure_packet::{prefetch, simd as packet_simd, FlowDigest, PacketRecord};
use instameasure_telemetry::{Instrumented, Snapshot};

use crate::config::SketchConfig;
use crate::decode;
use crate::filter::{FilterStats, FlowFilter, FlowUpdate};
use crate::rcc::Rcc;

/// Design-choice switches of the FlowRegulator, exposed for ablation
/// studies (`cargo run -rp instameasure-bench --bin ablations`). The
/// defaults are the paper's design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowRegulatorOptions {
    /// Collapse the per-noise-class L2 counters into a single shared L2
    /// (ablates the paper's three-case design of §III-A: saturations of
    /// different classes then share one vector, blurring the decode unit).
    pub shared_l2: bool,
    /// Give L2 an independent hash function instead of reusing L1's word
    /// index and bit positions (ablates the paper's "hash function reuse";
    /// costs a second hash per L1 saturation).
    pub independent_l2_hash: bool,
}

/// The paper's two-layer probabilistic counter.
///
/// Layer 1 is a plain [`Rcc`]. Layer 2 is one RCC *per L1 noise class*
/// (three for 8-bit vectors): when L1 saturates with noise class `z`, a
/// single bit is encoded into `L2[z]` — so one L2 bit stands for a whole
/// L1 cycle (~7 packets for `b = 8`). When `L2[z]` itself saturates, the
/// released count is the product of the two decodes:
///
/// ```text
/// est_pkt  = RCC_Decode(Noise_L1) × RCC_Decode(Noise_L2)
/// est_byte = est_pkt × len(trigger packet)
/// ```
///
/// All layers share the flow's hash (word index and bit positions — the
/// paper's "hash function reuse"), so a packet costs **one hash and at most
/// two word accesses**.
///
/// Total memory is `(1 + noise_classes) × memory_bytes` — 4× for the
/// default 8-bit vectors, matching the paper's 32 KB → 128 KB accounting.
#[derive(Debug, Clone)]
pub struct FlowRegulator {
    l1: Rcc,
    l2: Vec<Rcc>,
    opts: FlowRegulatorOptions,
    stats: FilterStats,
    /// L1 saturations (= recycles) broken down by the noise class of the
    /// finished cycle, `1..=noise_max`.
    l1_sats_by_class: Vec<u64>,
    /// L2 saturations (= estimates released to the WSAF) per L2 layer.
    l2_sats_by_layer: Vec<u64>,
    /// Recycled per-batch scratch: the packets' digests (SoA, feeds the
    /// AVX2 digest kernel) ...
    digest_scratch: Vec<FlowDigest>,
    /// ... and their L1 lane hashes.
    lane_scratch: Vec<u64>,
}

impl FlowRegulator {
    /// Creates a FlowRegulator whose L1 layer uses `cfg`; L2 layers are
    /// allocated with identical geometry, one per noise class.
    ///
    /// # Example
    ///
    /// ```
    /// use instameasure_sketch::{FlowRegulator, SketchConfig};
    /// let cfg = SketchConfig::builder().memory_bytes(32 * 1024).build()?;
    /// let fr = FlowRegulator::new(cfg);
    /// assert_eq!(fr.num_l2_layers(), 3);
    /// # Ok::<(), instameasure_sketch::ConfigError>(())
    /// ```
    #[must_use]
    pub fn new(cfg: SketchConfig) -> Self {
        Self::with_options(cfg, FlowRegulatorOptions::default())
    }

    /// Creates a FlowRegulator with explicit design switches (ablations).
    #[must_use]
    pub fn with_options(cfg: SketchConfig, opts: FlowRegulatorOptions) -> Self {
        let classes = if opts.shared_l2 { 1 } else { cfg.noise_classes() as usize };
        let l2_cfg =
            if opts.independent_l2_hash { cfg.with_seed(cfg.seed() ^ 0x10E2_5EED) } else { cfg };
        FlowRegulator {
            l1: Rcc::new(cfg),
            l2: (0..classes).map(|_| Rcc::new(l2_cfg)).collect(),
            opts,
            stats: FilterStats::default(),
            l1_sats_by_class: vec![0; cfg.noise_classes() as usize],
            l2_sats_by_layer: vec![0; classes],
            digest_scratch: Vec::new(),
            lane_scratch: Vec::new(),
        }
    }

    /// The active design switches.
    #[must_use]
    pub fn options(&self) -> FlowRegulatorOptions {
        self.opts
    }

    /// Number of L2 layers (= noise classes of the L1 geometry).
    #[must_use]
    pub fn num_l2_layers(&self) -> usize {
        self.l2.len()
    }

    /// The L1 layer (read-only, for diagnostics).
    #[must_use]
    pub fn l1(&self) -> &Rcc {
        &self.l1
    }

    /// The configured geometry (shared by all layers).
    #[must_use]
    pub fn config(&self) -> &SketchConfig {
        self.l1.config()
    }

    /// The decode *unit* for noise class `class` given the current local
    /// noise estimate: the packets one class-`class` L1 saturation stands
    /// for.
    fn class_unit(&self, class: u32) -> f64 {
        decode::estimate_own_packets(self.config().vector_bits(), class, 0.0).max(1.0)
    }

    /// Algorithm 1 with the hashing already done: encode into L1; on L1
    /// saturation encode one bit into the class's L2; on L2 saturation
    /// release the multiplicative estimate. `h1` must be
    /// `self.l1().hash_digest(digest)` — the scalar and batched entry
    /// points both funnel through here, which is what keeps them
    /// bit-identical.
    #[inline]
    fn process_prepared(
        &mut self,
        pkt: &PacketRecord,
        digest: FlowDigest,
        h1: u64,
    ) -> Option<FlowUpdate> {
        self.stats.packets += 1;
        self.stats.hashes += 1; // the digest: reused by both layers unless ablated

        self.stats.mem_accesses += 1;
        let sat1 = self.l1.encode_hashed(h1)?;
        self.finish_l1_saturation(pkt, digest, h1, sat1)
    }

    /// The batched twin of [`FlowRegulator::process_prepared`]: L1's
    /// placement comes from the prepared batch scratch (packet `i` of the
    /// current [`crate::Rcc::prepare_batch`]) instead of being derived
    /// inline. Identical outcome — `Rcc::encode_prepared` is bit-identical
    /// to `Rcc::encode_hashed` — and the L1-saturation tail is literally
    /// shared code.
    #[inline]
    fn process_prepared_idx(
        &mut self,
        pkt: &PacketRecord,
        digest: FlowDigest,
        h1: u64,
        i: usize,
    ) -> Option<FlowUpdate> {
        self.stats.packets += 1;
        self.stats.hashes += 1;

        self.stats.mem_accesses += 1;
        let sat1 = self.l1.encode_prepared(i)?;
        self.finish_l1_saturation(pkt, digest, h1, sat1)
    }

    /// Everything after an L1 saturation: bump the class counter, encode
    /// one bit into the class's L2 (rare, data-dependent — stays scalar),
    /// and on L2 saturation release the multiplicative estimate.
    #[inline]
    fn finish_l1_saturation(
        &mut self,
        pkt: &PacketRecord,
        digest: FlowDigest,
        h1: u64,
        sat1: crate::SaturationEvent,
    ) -> Option<FlowUpdate> {
        self.l1_sats_by_class[(sat1.noise_class - 1) as usize] += 1;

        let class_idx = if self.opts.shared_l2 { 0 } else { (sat1.noise_class - 1) as usize };
        let layer = &mut self.l2[class_idx];
        let h2 = if self.opts.independent_l2_hash {
            self.stats.hashes += 1;
            layer.hash_digest(digest)
        } else {
            h1
        };
        self.stats.mem_accesses += 1;
        let sat2 = layer.encode_hashed(h2)?;
        self.l2_sats_by_layer[class_idx] += 1;

        // Both layers saturated: release unit × count.
        let est_pkts = sat1.estimate * sat2.estimate;
        self.stats.updates += 1;
        Some(FlowUpdate {
            key: pkt.key,
            digest,
            est_pkts,
            est_bytes: est_pkts * f64::from(pkt.wire_len),
            ts_nanos: pkt.ts_nanos,
        })
    }

    /// [`FlowFilter::estimate_packets`] with the residual framing: the
    /// computed: L1's running cycle plus, per class, the L2 cycle decoded
    /// and scaled by that class's unit. Query layers that hash once for
    /// several structures use this to skip the key-byte rehash.
    #[must_use]
    pub fn residual_packets_digest(&self, digest: FlowDigest) -> f64 {
        let h = self.l1.hash_digest(digest);
        let mut total = self.l1.residual_hashed(h);
        for (idx, layer) in self.l2.iter().enumerate() {
            // Under the shared-L2 ablation the class is unknowable; use
            // the top class as the unit (slightly optimistic, like the
            // design itself).
            let class =
                if self.opts.shared_l2 { self.config().noise_max() } else { idx as u32 + 1 };
            let h2 = if self.opts.independent_l2_hash { layer.hash_digest(digest) } else { h };
            let sat_count = layer.residual_hashed(h2);
            if sat_count > 0.0 {
                total += sat_count * self.class_unit(class);
            }
        }
        total
    }
}

impl FlowFilter for FlowRegulator {
    /// Algorithm 1 of the paper: one digest of the key bytes, then
    /// [`FlowRegulator::process_prepared`].
    fn process(&mut self, pkt: &PacketRecord) -> Option<FlowUpdate> {
        let digest = FlowDigest::of(&pkt.key);
        let h1 = self.l1.hash_digest(digest);
        self.process_prepared(pkt, digest, h1)
    }

    /// Batched hot path, three passes: (1) the AVX2 digest kernel mixes
    /// four keys per step into digests + L1 lanes (SoA scratch); (2) L1
    /// derives every packet's placement — word index, vector mask, drawn
    /// position — four packets per step ([`crate::Rcc::prepare_batch`]);
    /// (3) the memory-touching encode runs in packet order with the L1
    /// counter word of packet `i + K` prefetched by its precomputed index
    /// (K = [`prefetch::prefetch_distance`]). L2 words are not prefetched
    /// and L2 encodes stay scalar — which L2 layer (if any) a packet
    /// touches depends on L1's saturation outcome, so their addresses are
    /// unknowable ahead of the encode.
    fn process_batch(&mut self, pkts: &[PacketRecord], out: &mut Vec<FlowUpdate>) {
        let mut digests = core::mem::take(&mut self.digest_scratch);
        let mut lanes = core::mem::take(&mut self.lane_scratch);
        packet_simd::digest_lanes_into(pkts, self.l1.config().seed(), &mut digests, &mut lanes);
        self.l1.prepare_batch(&lanes);

        let k = prefetch::prefetch_distance();
        for i in 0..pkts.len().min(k) {
            self.l1.prefetch_prepared(i);
        }
        for (i, pkt) in pkts.iter().enumerate() {
            self.l1.prefetch_prepared(i + k);
            if let Some(u) = self.process_prepared_idx(pkt, digests[i], lanes[i], i) {
                out.push(u);
            }
        }

        self.digest_scratch = digests;
        self.lane_scratch = lanes;
    }

    /// The residual: [`FlowRegulator::residual_packets_digest`].
    fn estimate_packets(&self, digest: FlowDigest) -> f64 {
        self.residual_packets_digest(digest)
    }

    fn stats(&self) -> FilterStats {
        self.stats
    }

    fn memory_bytes(&self) -> usize {
        self.config().memory_bytes() * (1 + self.l2.len())
    }

    fn reset(&mut self) {
        self.l1.reset();
        for layer in &mut self.l2 {
            layer.reset();
        }
        self.stats = FilterStats::default();
        self.l1_sats_by_class.fill(0);
        self.l2_sats_by_layer.fill(0);
    }
}

impl Instrumented for FlowRegulator {
    /// Exports the regulator's counters under the `regulator.` prefix.
    ///
    /// Counters: `packets`, `updates` (= `leak_throughs`, estimates
    /// released to the WSAF), `hashes`, `mem_accesses`, `recycles`
    /// (L1 saturations), plus `l1.saturations.class{z}` per noise class
    /// and `l2.layer{i}.saturations` per L2 layer. Gauges:
    /// `regulation_rate`, `l1.fill_ratio`, `l2.layer{i}.fill_ratio`.
    fn telemetry(&self) -> Snapshot {
        let mut snap = Snapshot::new();
        snap.set_counter("regulator.packets", self.stats.packets);
        snap.set_counter("regulator.updates", self.stats.updates);
        snap.set_counter("regulator.leak_throughs", self.stats.updates);
        snap.set_counter("regulator.hashes", self.stats.hashes);
        snap.set_counter("regulator.mem_accesses", self.stats.mem_accesses);
        snap.set_counter("regulator.recycles", self.l1.saturations());
        for (idx, &n) in self.l1_sats_by_class.iter().enumerate() {
            snap.set_counter(format!("regulator.l1.saturations.class{}", idx + 1), n);
        }
        for (idx, (layer, &n)) in self.l2.iter().zip(&self.l2_sats_by_layer).enumerate() {
            snap.set_counter(format!("regulator.l2.layer{idx}.saturations"), n);
            snap.set_gauge(format!("regulator.l2.layer{idx}.fill_ratio"), layer.fill_ratio());
        }
        snap.set_gauge("regulator.regulation_rate", self.stats.regulation_rate());
        snap.set_gauge("regulator.l1.fill_ratio", self.l1.fill_ratio());
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instameasure_packet::{FlowKey, Protocol};

    fn key(i: u32) -> FlowKey {
        FlowKey::new(i.to_be_bytes(), [8, 8, 8, 8], 53, 53, Protocol::Udp)
    }

    fn pkt(i: u32, t: u64) -> PacketRecord {
        PacketRecord::new(key(i), 1000, t)
    }

    fn cfg(bytes: usize) -> SketchConfig {
        SketchConfig::builder().memory_bytes(bytes).vector_bits(8).seed(3).build().unwrap()
    }

    #[test]
    fn allocates_one_l2_per_noise_class() {
        assert_eq!(FlowRegulator::new(cfg(1024)).num_l2_layers(), 3);
        let cfg16 = SketchConfig::builder().memory_bytes(1024).vector_bits(16).build().unwrap();
        assert_eq!(FlowRegulator::new(cfg16).num_l2_layers(), 6);
    }

    #[test]
    fn memory_accounting_matches_paper() {
        // 32 KB L1 -> 128 KB total (paper §IV-D).
        let fr = FlowRegulator::new(cfg(32 * 1024));
        assert_eq!(fr.memory_bytes(), 128 * 1024);
    }

    #[test]
    fn regulation_rate_is_multiplicatively_lower_than_rcc() {
        // Paper Fig. 7: FR ≈ 1%, RCC ≈ 12–19%. For a single elephant the
        // FR rate is ~1/(decode_L1 × decode_L2) ≈ 1.5–2.5%.
        let mut fr = FlowRegulator::new(cfg(4096));
        for t in 0..200_000u64 {
            fr.process(&pkt(1, t));
        }
        let rate = fr.stats().regulation_rate();
        assert!((0.005..0.04).contains(&rate), "FR regulation rate {rate}");
    }

    #[test]
    fn at_most_two_accesses_one_hash_per_packet() {
        let mut fr = FlowRegulator::new(cfg(4096));
        let n = 50_000u64;
        for t in 0..n {
            fr.process(&pkt((t % 7) as u32, t));
        }
        let s = fr.stats();
        assert_eq!(s.hashes, n, "exactly one hash per packet");
        let apx = s.accesses_per_packet();
        assert!((1.0..=2.0).contains(&apx), "accesses/packet {apx}");
        // Mostly mice cycles: the second access is rare (~1/7 of packets).
        assert!(apx < 1.35, "accesses/packet {apx} should stay near 1");
    }

    #[test]
    fn elephant_estimate_within_bounds() {
        let mut fr = FlowRegulator::new(cfg(32 * 1024));
        let truth = 300_000u64;
        let mut est = 0.0;
        for t in 0..truth {
            if let Some(u) = fr.process(&pkt(1, t)) {
                est += u.est_pkts;
            }
        }
        est += fr.residual_packets(&key(1));
        let rel = (est - truth as f64).abs() / truth as f64;
        assert!(rel < 0.15, "estimate {est} vs {truth}: rel err {rel}");
    }

    #[test]
    fn mice_are_retained_not_forwarded() {
        // 10k distinct 3-packet mice in a roomy sketch: essentially no
        // updates should reach the WSAF.
        let mut fr = FlowRegulator::new(cfg(256 * 1024));
        for i in 0..10_000u32 {
            for p in 0..3u64 {
                fr.process(&pkt(i, p));
            }
        }
        let rate = fr.stats().regulation_rate();
        assert!(rate < 0.001, "mice regulation rate {rate}");
    }

    #[test]
    fn residual_accounts_for_l2_retention() {
        // Feed enough packets to saturate L1 several times but (very
        // likely) not release an L2 saturation; residual must then exceed
        // a single L1 cycle's worth.
        let mut fr = FlowRegulator::new(cfg(64 * 1024));
        let mut released = 0.0;
        for t in 0..60u64 {
            if let Some(u) = fr.process(&pkt(2, t)) {
                released += u.est_pkts;
            }
        }
        let residual = fr.residual_packets(&key(2));
        assert!(
            released + residual > 30.0,
            "released {released} + residual {residual} must track ~60 packets"
        );
    }

    #[test]
    fn byte_estimates_use_trigger_packet_length() {
        let mut fr = FlowRegulator::new(cfg(1024));
        let mut checked = false;
        for t in 0..500_000u64 {
            let len = if t % 2 == 0 { 64 } else { 1500 };
            if let Some(u) = fr.process(&PacketRecord::new(key(4), len, t)) {
                let expected = u.est_pkts * f64::from(len);
                assert!((u.est_bytes - expected).abs() < 1e-6);
                checked = true;
                break;
            }
        }
        assert!(checked, "expected at least one update");
    }

    #[test]
    fn telemetry_reconciles_with_stats() {
        let mut fr = FlowRegulator::new(cfg(4096));
        for t in 0..50_000u64 {
            fr.process(&pkt((t % 5) as u32, t));
        }
        let snap = fr.telemetry();
        let s = fr.stats();
        assert_eq!(snap.counter("regulator.packets"), Some(s.packets));
        assert_eq!(snap.counter("regulator.updates"), Some(s.updates));
        assert_eq!(snap.counter("regulator.leak_throughs"), Some(s.updates));
        // Per-class L1 saturations partition the total recycle count.
        assert_eq!(
            snap.counter_sum("regulator.l1.saturations."),
            snap.counter("regulator.recycles").unwrap()
        );
        // Each released update is exactly one L2 saturation.
        let l2_sats: u64 = (0..fr.num_l2_layers())
            .map(|i| snap.counter(&format!("regulator.l2.layer{i}.saturations")).unwrap())
            .sum();
        assert_eq!(l2_sats, s.updates);
        let rate = snap.gauge("regulator.regulation_rate").unwrap();
        assert!((rate - s.regulation_rate()).abs() < 1e-12);

        fr.reset();
        let cleared = fr.telemetry();
        assert_eq!(cleared.counter("regulator.packets"), Some(0));
        assert_eq!(cleared.counter_sum("regulator.l1.saturations."), 0);
    }

    #[test]
    fn batch_is_bit_identical_to_scalar_under_all_options() {
        let trace: Vec<PacketRecord> = (0..8_000u64)
            .map(|t| PacketRecord::new(key((t % 13) as u32), 100 + (t % 1400) as u16, t))
            .collect();
        for (shared, indep) in [(false, false), (true, false), (false, true), (true, true)] {
            let opts = FlowRegulatorOptions { shared_l2: shared, independent_l2_hash: indep };
            for chunk in [1usize, 9, 256, 8_000] {
                let mut scalar = FlowRegulator::with_options(cfg(2048), opts);
                let mut batched = FlowRegulator::with_options(cfg(2048), opts);

                let mut scalar_out = Vec::new();
                for pkt in &trace {
                    if let Some(u) = scalar.process(pkt) {
                        scalar_out.push(u);
                    }
                }
                let mut batch_out = Vec::new();
                for pkts in trace.chunks(chunk) {
                    batched.process_batch(pkts, &mut batch_out);
                }

                let ctx = format!("shared={shared} indep={indep} chunk={chunk}");
                assert_eq!(scalar_out, batch_out, "{ctx}");
                assert_eq!(scalar.stats(), batched.stats(), "{ctx}");
                for i in 0..13 {
                    let a = scalar.residual_packets(&key(i));
                    let b = batched.residual_packets(&key(i));
                    assert_eq!(a.to_bits(), b.to_bits(), "{ctx} flow={i}");
                }
            }
        }
    }

    #[test]
    fn reset_clears_all_layers() {
        let mut fr = FlowRegulator::new(cfg(1024));
        for t in 0..10_000u64 {
            fr.process(&pkt(1, t));
        }
        fr.reset();
        assert_eq!(fr.stats(), FilterStats::default());
        assert_eq!(fr.residual_packets(&key(1)), 0.0);
        assert_eq!(fr.l1().fill_ratio(), 0.0);
    }
}

#[cfg(test)]
mod option_tests {
    use super::*;
    use instameasure_packet::{FlowKey, Protocol};

    fn key(i: u32) -> FlowKey {
        FlowKey::new(i.to_be_bytes(), [4, 4, 4, 4], 1, 1, Protocol::Tcp)
    }

    fn cfg() -> SketchConfig {
        SketchConfig::builder().memory_bytes(8 * 1024).vector_bits(8).seed(11).build().unwrap()
    }

    fn run(opts: FlowRegulatorOptions, flows: u32, pkts: u64) -> (FlowRegulator, f64) {
        let mut fr = FlowRegulator::with_options(cfg(), opts);
        let mut released = vec![0.0f64; flows as usize];
        for t in 0..pkts {
            for i in 0..flows {
                if let Some(u) = fr.process(&PacketRecord::new(key(i), 500, t)) {
                    released[i as usize] += u.est_pkts;
                }
            }
        }
        let mut err = 0.0;
        for i in 0..flows {
            let est = released[i as usize] + fr.residual_packets(&key(i));
            err += (est - pkts as f64).abs() / pkts as f64;
        }
        (fr, err / f64::from(flows))
    }

    #[test]
    fn shared_l2_uses_one_layer_and_less_memory() {
        let fr = FlowRegulator::with_options(
            cfg(),
            FlowRegulatorOptions { shared_l2: true, ..Default::default() },
        );
        assert_eq!(fr.num_l2_layers(), 1);
        assert_eq!(fr.memory_bytes(), 2 * cfg().memory_bytes());
    }

    #[test]
    fn independent_hash_costs_extra_hashes() {
        let (reuse, _) = run(FlowRegulatorOptions::default(), 4, 20_000);
        let (indep, _) = run(
            FlowRegulatorOptions { independent_l2_hash: true, ..Default::default() },
            4,
            20_000,
        );
        assert_eq!(reuse.stats().hashes, reuse.stats().packets, "hash reuse: 1 per packet");
        assert!(
            indep.stats().hashes > indep.stats().packets,
            "independent hashing pays a second hash on L1 saturations"
        );
    }

    #[test]
    fn all_option_combinations_stay_accurate_for_elephants() {
        // The ablated designs still count; the default should be at least
        // competitive. (Exact ordering is workload-dependent; the
        // ablations binary reports it on a realistic trace.)
        for (shared, indep) in [(false, false), (true, false), (false, true), (true, true)] {
            let (_, err) = run(
                FlowRegulatorOptions { shared_l2: shared, independent_l2_hash: indep },
                4,
                50_000,
            );
            assert!(err < 0.2, "shared={shared} indep={indep}: err {err}");
        }
    }
}
