//! Front-end flow filters for InstaMeasure.
//!
//! The pipeline's front end is pluggable behind the [`FlowFilter`] trait:
//! feed packets in, get occasional [`FlowUpdate`]s out, and query the
//! *residual* (packets still retained in the filter) at any time. Four
//! designs live here, named by [`FilterKind`] and all sized against one
//! shared memory budget (see [`FilterKind::build`]):
//!
//! * [`Rcc`] — the *Recyclable Counter with Confinement* of Nyang & Shin
//!   (IEEE/ACM ToN 2016), the building block and single-layer baseline. A
//!   flow owns a *virtual vector* of `b` bit positions confined inside one
//!   machine word; each packet sets one randomly chosen position; when few
//!   enough zeros remain the vector **saturates**: its contents are decoded
//!   online (noise-corrected) and the vector is cleared for reuse.
//!   [`SingleLayerRcc`] wraps it as a filter.
//! * [`FlowRegulator`] — the paper's contribution: a two-layer arrangement
//!   in which each bit of a layer-2 RCC encodes one *saturation* of the
//!   layer-1 RCC. Retention capacity therefore grows multiplicatively
//!   (`decode(L1) × decode(L2)`), which is what lets the regulator shrink
//!   the WSAF insertion rate to ~1% of the packet rate (paper Fig. 7)
//!   while still counting accurately. [`MultiLayerRegulator`] generalizes
//!   it to `L` layers.
//! * [`SwingFilter`] — an exact-counting alternate: a fingerprint stage in
//!   front of a keyed store, split 1/3 filter – 2/3 store.
//! * [`HashFlowFilter`] — HashFlow's multi-way main table plus ancillary
//!   table with promotion, exporting evicted records as updates.
//!
//! # Example
//!
//! ```
//! use instameasure_packet::{FlowKey, PacketRecord, Protocol};
//! use instameasure_sketch::{FlowFilter, FlowRegulator, SketchConfig};
//!
//! let cfg = SketchConfig::builder().memory_bytes(32 * 1024).vector_bits(8).build()?;
//! let mut fr = FlowRegulator::new(cfg);
//! let key = FlowKey::new([10, 0, 0, 1], [10, 0, 0, 2], 1234, 80, Protocol::Tcp);
//!
//! let mut accumulated = 0.0;
//! for i in 0..100_000u64 {
//!     if let Some(update) = fr.process(&PacketRecord::new(key, 1000, i)) {
//!         accumulated += update.est_pkts;
//!     }
//! }
//! let total = accumulated + fr.residual_packets(&key);
//! let err = (total - 100_000.0).abs() / 100_000.0;
//! assert!(err < 0.15, "estimate {total} too far from 100000");
//! # Ok::<(), instameasure_sketch::ConfigError>(())
//! ```

// `deny` rather than `forbid`: the simd module's AVX2 placement kernel
// (`target_feature` functions, no raw pointers) carries the crate's only
// `#[allow(unsafe_code)]`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod config;
pub mod decode;
mod filter;
mod flow_regulator;
mod hashflow;
mod multi_layer;
mod rcc;
mod regulator;
#[allow(unsafe_code)]
mod simd;
mod swing;

pub use config::{ConfigError, SketchConfig, SketchConfigBuilder};
pub use filter::{
    AnyFilter, FilterKind, FilterStats, FlowFilter, FlowUpdate, UnknownFilterError,
    ALL_FILTER_KINDS,
};
pub use flow_regulator::{FlowRegulator, FlowRegulatorOptions};
pub use hashflow::HashFlowFilter;
pub use multi_layer::MultiLayerRegulator;
pub use rcc::{Rcc, SaturationEvent};
pub use swing::SwingFilter;

pub use regulator::SingleLayerRcc;
#[allow(deprecated)]
pub use regulator::{Regulator, RegulatorStats};
