//! Online decoding math for RCC-style virtual vectors.
//!
//! A flow's virtual vector has `b` bit positions. Each of the flow's own
//! packets sets one uniformly random position; in addition, *noise* —
//! overlapping virtual vectors of other flows confined in the same word —
//! independently sets positions. After `n` own packets with per-bit noise
//! probability `f`, a position is still zero with probability
//! `(1 - 1/b)^n · (1 - f)`, so the expected zero count is
//!
//! ```text
//! E[z] = b · (1 - f) · (1 - 1/b)^n
//! ```
//!
//! Inverting gives the noise-corrected maximum-likelihood estimate
//! [`estimate_own_packets`]. The confinement trick makes `f` observable
//! locally: the word bits *outside* the flow's vector are set only by other
//! flows, so their occupancy is an unbiased noise sample — this is what
//! makes the decode *online* (no remote collector, no global statistics).

/// Expected number of own packets needed to drive a noise-free `b`-bit
/// vector from `b` zeros down to `z` zeros (coupon-collector partial sum
/// `Σ_{i=z+1}^{b} b/i`).
///
/// This is the *retention capacity* of a vector for saturation threshold
/// `z` and the decode unit used when no noise sample is available.
///
/// # Panics
///
/// Panics if `z >= b` or `b == 0`.
///
/// # Example
///
/// ```
/// // An 8-bit vector saturating at 3 zeros retains ~7 packets.
/// let c = instameasure_sketch::decode::coupon_expected(8, 3);
/// assert!((7.0..7.2).contains(&c));
/// ```
#[must_use]
pub fn coupon_expected(b: u32, z: u32) -> f64 {
    assert!(b > 0 && z < b, "need 0 <= z < b");
    (z + 1..=b).map(|i| f64::from(b) / f64::from(i)).sum()
}

/// Euler–Mascheroni constant.
const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// Continuous extension of the harmonic number `H(x)` (via the digamma
/// asymptotic expansion, with the recurrence `H(x) = H(x+1) - 1/(x+1)`
/// applied to push small arguments into the accurate regime).
///
/// `harmonic_cont(n)` equals `Σ_{i=1}^{n} 1/i` to ~1e-10 for integer `n`.
#[must_use]
pub fn harmonic_cont(mut x: f64) -> f64 {
    assert!(x > 0.0, "harmonic_cont needs x > 0");
    let mut shift = 0.0;
    while x < 16.0 {
        x += 1.0;
        shift -= 1.0 / x;
    }
    // H(x) = ln x + γ + 1/(2x) − 1/(12x²) + 1/(120x⁴) − …
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    x.ln() + EULER_GAMMA + 0.5 * inv - inv2 / 12.0 + inv2 * inv2 / 120.0 + shift
}

/// Noise-corrected estimate of the number of own packets encoded in a
/// vector with `z` of `b` positions still zero, given a local noise
/// estimate `f` (fraction of non-vector word bits that are set).
///
/// The estimator is the coupon-collector stopping-time expectation
/// `b·(H(b) − H(z_own))` evaluated at the *noise-equivalent* zero count
/// `z_own = z / (1 - f)`: a bit stays zero only if our own draws missed it
/// **and** noise missed it, so dividing out `(1-f)` recovers the zero count
/// our own traffic alone would have left.
///
/// Boundary behaviour: `z == 0` uses a half-bit continuity correction, `f`
/// is clamped away from 1, and `z_own` is clamped to `[0.5, b]` (a vector
/// beyond full carries no more information).
///
/// # Panics
///
/// Panics if `b < 2` or `z > b`.
///
/// # Example
///
/// ```
/// use instameasure_sketch::decode::estimate_own_packets;
/// // No noise, 3 zeros left of 8: exactly the coupon-collector value.
/// let e = estimate_own_packets(8, 3, 0.0);
/// assert!((7.0..7.2).contains(&e), "{e}");
/// // With noise, part of the fill is attributed to other flows.
/// assert!(estimate_own_packets(8, 3, 0.3) < e);
/// ```
#[must_use]
pub fn estimate_own_packets(b: u32, z: u32, f: f64) -> f64 {
    assert!(b >= 2 && z <= b, "need 2 <= b and z <= b");
    let bf = f64::from(b);
    let z_obs = if z == 0 { 0.5 } else { f64::from(z) };
    let f = f.clamp(0.0, 0.999);
    let z_own = (z_obs / (1.0 - f)).clamp(0.5, bf);
    (bf * (harmonic_cont(bf) - harmonic_cont(z_own))).max(0.0)
}

/// Expected number of *draws* (own packets plus noise hits on vector
/// positions) for one saturation cycle of a `b`-bit vector with threshold
/// `noise_max`, i.e. how often a single flow saturates: once every
/// `coupon_expected(b, noise_max)` packets in the noise-free case.
///
/// Used by the analytical saturation-frequency model of Fig. 8(b).
#[must_use]
pub fn saturation_period(b: u32, noise_max: u32) -> f64 {
    coupon_expected(b, noise_max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coupon_matches_hand_computation() {
        // b=8, z=3: 8/4 + 8/5 + 8/6 + 8/7 + 8/8 = 7.0761904…
        let c = coupon_expected(8, 3);
        assert!((c - 7.076190476).abs() < 1e-9, "{c}");
        // Full collection for b=4: 4/1+4/2+4/3+4/4 = 8.333…
        let full = coupon_expected(4, 0);
        assert!((full - 8.3333333).abs() < 1e-6);
    }

    #[test]
    fn coupon_monotone_in_threshold() {
        for b in [4u32, 8, 16, 32, 64] {
            let mut prev = f64::INFINITY;
            for z in 0..b {
                let c = coupon_expected(b, z);
                assert!(c < prev, "coupon must decrease as allowed zeros grow");
                prev = c;
            }
        }
    }

    #[test]
    #[should_panic(expected = "need 0 <= z < b")]
    fn coupon_rejects_z_equal_b() {
        let _ = coupon_expected(8, 8);
    }

    #[test]
    fn estimate_matches_coupon_without_noise() {
        for b in [8u32, 16, 32] {
            for z in 1..=(3 * b / 8) {
                let mle = estimate_own_packets(b, z, 0.0);
                let coupon = coupon_expected(b, z);
                let rel = (mle - coupon).abs() / coupon;
                assert!(rel < 1e-6, "b={b} z={z}: mle {mle} vs coupon {coupon}");
            }
        }
    }

    #[test]
    fn estimate_decreases_with_noise() {
        let mut prev = f64::INFINITY;
        for f in [0.0, 0.1, 0.3, 0.5, 0.7] {
            let e = estimate_own_packets(8, 2, f);
            assert!(e <= prev, "estimate must fall as more fill is noise");
            prev = e;
        }
    }

    #[test]
    fn estimate_decreases_with_more_zeros() {
        let mut prev = f64::INFINITY;
        for z in 1..8 {
            let e = estimate_own_packets(8, z, 0.0);
            assert!(e < prev, "more zeros = fewer packets");
            prev = e;
        }
    }

    #[test]
    fn estimate_handles_boundaries() {
        // Fully set vector decodes to a large but finite value.
        let full = estimate_own_packets(8, 0, 0.0);
        assert!(full.is_finite() && full > coupon_expected(8, 1));
        // Empty vector decodes to ~0.
        assert!(estimate_own_packets(8, 8, 0.0).abs() < 1e-9);
        // Extreme noise is clamped, never NaN/negative.
        let e = estimate_own_packets(8, 1, 1.0);
        assert!(e.is_finite() && e >= 0.0);
    }

    #[test]
    fn retention_capacity_multiplicative_story() {
        // Paper §III-A: an 8-bit RCC retains ~7-9 packets; a two-layer
        // 8+8-bit FlowRegulator retains ~decode(L1)*capacity(L2) ≈ 100.
        let l1 = coupon_expected(8, 3);
        let l2_full = coupon_expected(8, 1); // L2 can absorb this many saturations
        assert!(l1 * l2_full > 90.0, "two-layer retention {}", l1 * l2_full);
        // versus single-layer 16-bit RCC:
        let rcc16 = coupon_expected(16, 6);
        assert!(rcc16 < 20.0, "single layer grows only additively: {rcc16}");
    }

    #[test]
    fn saturation_period_is_coupon() {
        assert_eq!(saturation_period(8, 3), coupon_expected(8, 3));
    }
}
