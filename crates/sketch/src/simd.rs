//! Vectorized placement derivation for the batched RCC encode.
//!
//! Encoding a packet needs three values derived from its hash lane `h`:
//! the confinement word index (`h % num_words`), the flow's `b`-bit
//! vector mask (a rejection-sampled subset of the word's 64 bit
//! positions) and the position draw for this packet (the `nth` set bit of
//! the mask under a counter-keyed mix). All three are pure functions of
//! `(h, draw_counter)` — no sketch memory is read — so a batch's worth
//! can be derived up front into a structure-of-arrays scratch
//! ([`PlacementScratch`]) and the memory-touching encode loop then runs
//! with every address already known, feeding the software-prefetch
//! pipeline without recomputing a modulo per hint.
//!
//! The AVX2 kernel derives four placements per step: the rejection loop
//! for the mask keeps four `SplitMix64` states in one register and gates
//! per-lane acceptance with compare masks (a finished lane's extra draws
//! are discarded, exactly like the scalar loop simply not drawing), and
//! the position draw is the same counter mix with the batch's counter
//! values laid out linearly. The `nth`-set-bit selection uses BMI2
//! `pdep`, which is definitionally the same bit the scalar scan picks.
//! Dispatch requires AVX2 + BMI2 (they co-ship on every AVX2 CPU since
//! Haswell/Zen) and honours the `INSTAMEASURE_NO_SIMD` kill switch via
//! [`instameasure_packet::simd::simd_enabled`]; everything else — and
//! ragged tail lanes — funnels to the scalar oracle
//! [`derive_placements_scalar`], which differential tests hold
//! bit-identical to the kernel.

use instameasure_packet::hash::{mix64, SplitMix64};

use crate::config::WORD_BITS;

/// Salt folded into the hash before seeding the mask-position stream.
pub(crate) const MASK_SALT: u64 = 0xD6E8_FEB8_6659_FD93;

/// Salt multiplying the draw counter for the per-packet position draw.
pub(crate) const DRAW_SALT: u64 = 0xA24B_AED4_963E_E407;

/// Per-batch placement scratch, structure-of-arrays so each derived
/// stream is written (and later read) sequentially.
#[derive(Debug, Clone, Default)]
pub(crate) struct PlacementScratch {
    /// Confinement word index per packet (`h % num_words`).
    pub word_idx: Vec<usize>,
    /// Virtual-vector bit mask per packet.
    pub mask: Vec<u64>,
    /// Bit position (0..64) this packet's encode sets.
    pub pos: Vec<u8>,
}

impl PlacementScratch {
    /// Number of prepared placements.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.word_idx.len()
    }

    fn clear_and_reserve(&mut self, n: usize) {
        self.word_idx.clear();
        self.word_idx.reserve(n);
        self.mask.clear();
        self.mask.reserve(n);
        self.pos.clear();
        self.pos.reserve(n);
    }
}

/// Derives the flow's `b`-bit vector mask from its hash lane.
#[inline]
pub(crate) fn mask_for_hash(h: u64, vector_bits: u32) -> u64 {
    if vector_bits >= WORD_BITS {
        return u64::MAX;
    }
    // Derive b distinct positions deterministically from the hash.
    let mut rng = SplitMix64::new(mix64(h ^ MASK_SALT));
    let mut mask = 0u64;
    let mut picked = 0;
    while picked < vector_bits {
        let pos = rng.next_below(u64::from(WORD_BITS));
        let bit = 1u64 << pos;
        if mask & bit == 0 {
            mask |= bit;
            picked += 1;
        }
    }
    mask
}

/// Index of the `n`-th set bit of `mask` (0-based).
///
/// `n` must be less than `mask.count_ones()`.
#[inline]
pub(crate) fn nth_set_bit(mask: u64, n: u32) -> u32 {
    debug_assert!(n < mask.count_ones());
    let mut remaining = n;
    let mut m = mask;
    loop {
        let pos = m.trailing_zeros();
        if remaining == 0 {
            return pos;
        }
        remaining -= 1;
        m &= m - 1;
    }
}

/// Derives word index, mask and set-position for every hash in the batch.
///
/// `draw_counter` is the encoder's counter value *before* the batch:
/// packet `i` is derived for counter value `draw_counter + i + 1`, the
/// sequence a scalar encode loop would consume. Dispatches to the AVX2
/// kernel when available and allowed, with the scalar oracle as tail and
/// fallback; the outputs are bit-identical either way.
pub(crate) fn derive_placements(
    hashes: &[u64],
    num_words: u64,
    vector_bits: u32,
    draw_counter: u64,
    scratch: &mut PlacementScratch,
) {
    scratch.clear_and_reserve(hashes.len());
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if vector_bits < WORD_BITS && placements_kernel_available() {
        // SAFETY: placements_kernel_available() checked AVX2 + BMI2.
        unsafe {
            x4::derive_placements_avx2(hashes, num_words, vector_bits, draw_counter, scratch)
        };
        return;
    }
    fill_placements_scalar(hashes, num_words, vector_bits, draw_counter, scratch);
}

/// The scalar oracle for [`derive_placements`] (always clears `scratch`).
#[cfg(test)]
pub(crate) fn derive_placements_scalar(
    hashes: &[u64],
    num_words: u64,
    vector_bits: u32,
    draw_counter: u64,
    scratch: &mut PlacementScratch,
) {
    scratch.clear_and_reserve(hashes.len());
    fill_placements_scalar(hashes, num_words, vector_bits, draw_counter, scratch);
}

fn fill_placements_scalar(
    hashes: &[u64],
    num_words: u64,
    vector_bits: u32,
    draw_counter: u64,
    scratch: &mut PlacementScratch,
) {
    for (i, &h) in hashes.iter().enumerate() {
        let dc = draw_counter.wrapping_add(i as u64).wrapping_add(1);
        let mask = mask_for_hash(h, vector_bits);
        let draw = mix64(h ^ dc.wrapping_mul(DRAW_SALT));
        let nth = ((u128::from(draw) * u128::from(vector_bits)) >> 64) as u32;
        scratch.word_idx.push((h % num_words) as usize);
        scratch.mask.push(mask);
        scratch.pos.push(nth_set_bit(mask, nth) as u8);
    }
}

/// Whether the AVX2+BMI2 placement kernel is compiled in, supported by
/// the CPU and not disabled by the kill switch.
#[cfg(all(target_arch = "x86_64", not(miri)))]
fn placements_kernel_available() -> bool {
    instameasure_packet::simd::simd_enabled() && std::arch::is_x86_feature_detected!("bmi2")
}

#[cfg(all(target_arch = "x86_64", not(miri)))]
mod x4 {
    use super::{PlacementScratch, DRAW_SALT, MASK_SALT};
    use core::arch::x86_64::{
        _mm256_add_epi64, _mm256_and_si256, _mm256_cmpeq_epi64, _mm256_cmpgt_epi64,
        _mm256_movemask_epi8, _mm256_mul_epu32, _mm256_or_si256, _mm256_set1_epi64x,
        _mm256_setr_epi64x, _mm256_setzero_si256, _mm256_sllv_epi64, _mm256_srli_epi64,
        _mm256_sub_epi64, _mm256_xor_si256, _pdep_u64,
    };
    use instameasure_packet::simd::{x4 as pkt, LANE_WIDTH};

    // SplitMix64's additive constant (see instameasure_packet::hash).
    const SM64_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

    /// `nth_set_bit` via BMI2: deposit bit `n` into the mask's set
    /// positions and read off where it landed. Bit-identical to the
    /// scalar scan for every `n < mask.count_ones()`.
    ///
    /// # Safety
    ///
    /// Caller must ensure BMI2 is available.
    #[inline]
    #[target_feature(enable = "bmi2")]
    unsafe fn nth_set_bit_pdep(mask: u64, n: u32) -> u32 {
        _pdep_u64(1u64 << n, mask).trailing_zeros()
    }

    /// Four placements per step; see the module docs for the lane layout.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 and BMI2 are available, and
    /// `vector_bits < 64` (the full-word case has no mask stream).
    #[target_feature(enable = "avx2", enable = "bmi2")]
    pub(super) unsafe fn derive_placements_avx2(
        hashes: &[u64],
        num_words: u64,
        vector_bits: u32,
        draw_counter: u64,
        scratch: &mut PlacementScratch,
    ) {
        debug_assert!(vector_bits < 64);
        let zero = _mm256_setzero_si256();
        let one = _mm256_set1_epi64x(1);
        let gamma = _mm256_set1_epi64x(SM64_GAMMA as i64);
        let b_vec = _mm256_set1_epi64x(i64::from(vector_bits));
        let mask_salt = _mm256_set1_epi64x(MASK_SALT as i64);
        let draw_salt = _mm256_set1_epi64x(DRAW_SALT as i64);
        let lane_offsets = _mm256_setr_epi64x(1, 2, 3, 4);

        let mut chunks = hashes.chunks_exact(LANE_WIDTH);
        let mut base = 0u64;
        for chunk in &mut chunks {
            let h = pkt::from_array(chunk.try_into().expect("chunk is LANE_WIDTH hashes"));

            // Mask kernel: four SplitMix64 rejection streams in lockstep.
            // A lane that already picked its b positions keeps drawing
            // with the others but `take` gates every update off, so its
            // mask is exactly what the scalar loop (which stops drawing)
            // produces.
            let mut state = pkt::mix64(_mm256_xor_si256(h, mask_salt));
            let mut mask = zero;
            let mut picked = zero;
            loop {
                let unfinished = _mm256_cmpgt_epi64(b_vec, picked);
                if _mm256_movemask_epi8(unfinished) == 0 {
                    break;
                }
                state = _mm256_add_epi64(state, gamma);
                let x = pkt::mix64(state);
                // next_below(64) is a multiply-shift by 64: the top 6 bits.
                let pos = _mm256_srli_epi64::<58>(x);
                let bit = _mm256_sllv_epi64(one, pos);
                let is_new = _mm256_cmpeq_epi64(_mm256_and_si256(mask, bit), zero);
                let take = _mm256_and_si256(unfinished, is_new);
                mask = _mm256_or_si256(mask, _mm256_and_si256(bit, take));
                // Compare results are all-ones (-1): subtracting adds 1.
                picked = _mm256_sub_epi64(picked, take);
            }

            // Position draw: counter values are linear across the batch,
            // so lane i's counter is draw_counter + base + i + 1.
            let dc = _mm256_add_epi64(
                _mm256_set1_epi64x(draw_counter.wrapping_add(base) as i64),
                lane_offsets,
            );
            let draw = pkt::mix64(_mm256_xor_si256(h, pkt::mullo64(dc, draw_salt)));
            // nth = (u128(draw) * b) >> 64 decomposed into 32-bit products:
            // hi32(draw)*b + (lo32(draw)*b >> 32), all shifted down 32.
            let lo_prod = _mm256_mul_epu32(draw, b_vec);
            let hi_prod = _mm256_mul_epu32(_mm256_srli_epi64::<32>(draw), b_vec);
            let nth = _mm256_srli_epi64::<32>(_mm256_add_epi64(
                hi_prod,
                _mm256_srli_epi64::<32>(lo_prod),
            ));

            let masks = pkt::to_array(mask);
            let nths = pkt::to_array(nth);
            for (lane, &lane_hash) in chunk.iter().enumerate() {
                scratch.word_idx.push((lane_hash % num_words) as usize);
                scratch.mask.push(masks[lane]);
                scratch.pos.push(nth_set_bit_pdep(masks[lane], nths[lane] as u32) as u8);
            }
            base += LANE_WIDTH as u64;
        }

        super::fill_placements_scalar(
            chunks.remainder(),
            num_words,
            vector_bits,
            draw_counter.wrapping_add(base),
            scratch,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hashes(n: usize) -> Vec<u64> {
        let mut rng = SplitMix64::new(0xC0FF_EE00_1234_5678);
        (0..n).map(|_| rng.next_u64()).collect()
    }

    #[test]
    fn mask_has_exactly_b_bits() {
        for &b in &[2u32, 3, 8, 16, 63] {
            for &h in hashes(50).iter() {
                assert_eq!(mask_for_hash(h, b).count_ones(), b);
            }
        }
        assert_eq!(mask_for_hash(42, 64), u64::MAX);
    }

    #[test]
    fn nth_set_bit_selects_correctly() {
        let mask = 0b1011_0100u64;
        assert_eq!(nth_set_bit(mask, 0), 2);
        assert_eq!(nth_set_bit(mask, 1), 4);
        assert_eq!(nth_set_bit(mask, 2), 5);
        assert_eq!(nth_set_bit(mask, 3), 7);
        assert_eq!(nth_set_bit(u64::MAX, 63), 63);
    }

    #[test]
    fn dispatch_matches_scalar_oracle_on_every_length_and_geometry() {
        // Every tail residue, several vector widths, an odd word count
        // (num_words is memory/8, never forced to a power of two) and a
        // nonzero starting draw counter.
        for &b in &[2u32, 3, 8, 16, 63, 64] {
            for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 13, 100] {
                let hs = hashes(len);
                let mut via_dispatch = PlacementScratch::default();
                let mut via_scalar = PlacementScratch::default();
                derive_placements(&hs, 12_289, b, 0xFFFF_FFFF_FFFF_FFF0, &mut via_dispatch);
                derive_placements_scalar(&hs, 12_289, b, 0xFFFF_FFFF_FFFF_FFF0, &mut via_scalar);
                assert_eq!(via_dispatch.word_idx, via_scalar.word_idx, "b={b} len={len}");
                assert_eq!(via_dispatch.mask, via_scalar.mask, "b={b} len={len}");
                assert_eq!(via_dispatch.pos, via_scalar.pos, "b={b} len={len}");
                assert_eq!(via_dispatch.len(), len);
            }
        }
    }

    #[test]
    fn scalar_placements_match_single_packet_derivation() {
        // The batched oracle must consume counter values exactly like a
        // per-packet encode loop: dc+1, dc+2, ...
        let hs = hashes(9);
        let dc0 = 41u64;
        let mut scratch = PlacementScratch::default();
        derive_placements_scalar(&hs, 997, 8, dc0, &mut scratch);
        for (i, &h) in hs.iter().enumerate() {
            let dc = dc0 + i as u64 + 1;
            let mask = mask_for_hash(h, 8);
            let draw = mix64(h ^ dc.wrapping_mul(DRAW_SALT));
            let nth = ((u128::from(draw) * 8u128) >> 64) as u32;
            assert_eq!(scratch.word_idx[i], (h % 997) as usize);
            assert_eq!(scratch.mask[i], mask);
            assert_eq!(u32::from(scratch.pos[i]), nth_set_bit(mask, nth));
        }
    }
}
