//! The Recyclable Counter with Confinement (RCC) layer.

use instameasure_packet::hash::mix64;
use instameasure_packet::{prefetch, FlowDigest, FlowKey};

use crate::config::{SketchConfig, WORD_BITS};
use crate::decode;
use crate::simd::{self, PlacementScratch};

/// Emitted when a flow's virtual vector saturates: the online decode of the
/// cycle that just ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaturationEvent {
    /// Zero bits remaining in the vector at saturation (the raw noise
    /// level; can be 0 under heavy cross-flow noise).
    pub zeros: u32,
    /// Noise class in `1..=noise_max`, i.e. `zeros` clamped into the valid
    /// class range. Selects the L2 counter in a [`crate::FlowRegulator`].
    pub noise_class: u32,
    /// Decoded estimate of the flow's own packets in the finished cycle.
    pub estimate: f64,
}

/// One RCC layer: an arena of confinement words, each holding many
/// overlapping virtual vectors.
///
/// Every flow is hashed to one word and to `b` distinct bit positions
/// inside it. Encoding a packet is a single word access: set one randomly
/// chosen position, then check the zero count. When the zero count drops
/// to `noise_max` or below the vector *saturates* — the finished cycle is
/// decoded from its zero count and the vector's bits are cleared so the
/// memory is recycled. The *residual* decode of a still-running cycle is
/// additionally noise-corrected using the occupancy of the word bits
/// outside the vector (the confinement trick: those bits are a local,
/// same-exposure noise sample).
///
/// # Example
///
/// ```
/// use instameasure_packet::{FlowKey, Protocol};
/// use instameasure_sketch::{Rcc, SketchConfig};
///
/// let mut rcc = Rcc::new(SketchConfig::default());
/// let key = FlowKey::new([1, 1, 1, 1], [2, 2, 2, 2], 5, 5, Protocol::Udp);
/// let mut decoded = 0.0;
/// for _ in 0..1000 {
///     if let Some(sat) = rcc.encode(&key) {
///         decoded += sat.estimate;
///     }
/// }
/// decoded += rcc.residual(&key);
/// assert!((decoded - 1000.0).abs() / 1000.0 < 0.25, "{decoded}");
/// ```
#[derive(Debug, Clone)]
pub struct Rcc {
    cfg: SketchConfig,
    words: Vec<u64>,
    draw_counter: u64,
    encodes: u64,
    saturations: u64,
    /// Per-batch placement scratch (word index / mask / position SoA),
    /// recycled across [`Rcc::encode_batch`] calls.
    scratch: PlacementScratch,
}

/// A flow's location inside the arena: word index and vector bit mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    word_idx: usize,
    vector_mask: u64,
}

impl Rcc {
    /// Creates an empty RCC layer with the given geometry.
    #[must_use]
    pub fn new(cfg: SketchConfig) -> Self {
        Rcc {
            cfg,
            words: vec![0; cfg.num_words().max(1)],
            draw_counter: 0,
            encodes: 0,
            saturations: 0,
            scratch: PlacementScratch::default(),
        }
    }

    /// The layer's configuration.
    #[must_use]
    pub fn config(&self) -> &SketchConfig {
        &self.cfg
    }

    /// Hashes a flow key for this layer: one [`FlowDigest`] of the key
    /// bytes, then this layer's seed-derived lane. A
    /// [`crate::FlowRegulator`] computes the digest once per packet and
    /// shares it across layers (the paper's "hash function reuse").
    #[inline]
    #[must_use]
    pub fn hash_key(&self, key: &FlowKey) -> u64 {
        self.hash_digest(FlowDigest::of(key))
    }

    /// Derives this layer's hash lane from a precomputed digest — the
    /// hash-once hot path (no key bytes touched).
    #[inline]
    #[must_use]
    pub fn hash_digest(&self, digest: FlowDigest) -> u64 {
        digest.lane(self.cfg.seed())
    }

    /// Hints the CPU to pull the counter word of hash `h` toward L1 cache.
    ///
    /// Purely advisory (no state change); the batched encode loop issues
    /// this for packet `i + K` while finishing packet `i`.
    #[inline]
    pub fn prefetch_hashed(&self, h: u64) {
        let word_idx = (h % self.words.len() as u64) as usize;
        prefetch::prefetch_read_index(&self.words, word_idx);
    }

    /// Locates the flow's word and virtual-vector mask from its hash.
    #[inline]
    fn slot(&self, h: u64) -> Slot {
        let word_idx = (h % self.words.len() as u64) as usize;
        let vector_mask = simd::mask_for_hash(h, self.cfg.vector_bits());
        Slot { word_idx, vector_mask }
    }

    /// Encodes one packet of the flow identified by hash `h` (single word
    /// access). Returns a [`SaturationEvent`] if this packet saturated the
    /// vector.
    #[inline]
    pub fn encode_hashed(&mut self, h: u64) -> Option<SaturationEvent> {
        self.encodes += 1;
        self.draw_counter = self.draw_counter.wrapping_add(1);
        let slot = self.slot(h);
        let b = self.cfg.vector_bits();

        // Choose one of the b vector positions uniformly.
        let draw = mix64(h ^ self.draw_counter.wrapping_mul(simd::DRAW_SALT));
        let nth = ((u128::from(draw) * u128::from(b)) >> 64) as u32;
        let pos = simd::nth_set_bit(slot.vector_mask, nth);
        self.set_and_check(slot.word_idx, slot.vector_mask, pos as u8)
    }

    /// The memory-touching half of an encode: set the drawn position,
    /// check for saturation, decode and recycle if so. Shared by the
    /// scalar path ([`Rcc::encode_hashed`]) and the prepared batch path
    /// ([`Rcc::encode_prepared`]), which is what keeps them bit-identical
    /// once their `(word_idx, mask, pos)` triples agree.
    #[inline]
    fn set_and_check(&mut self, word_idx: usize, mask: u64, pos: u8) -> Option<SaturationEvent> {
        let b = self.cfg.vector_bits();
        let word = &mut self.words[word_idx];
        *word |= 1u64 << pos;

        let set_in_vector = (*word & mask).count_ones();
        let zeros = b - set_in_vector;
        if zeros > self.cfg.noise_max() {
            return None;
        }

        // Saturated: decode and recycle. No noise correction here: a
        // saturation cycle is short (one coupon epoch of *own* packets),
        // so the noise that matters is only what landed on the vector
        // during the cycle — and that is already visible as the depressed
        // zero count `zeros` (the noise class). The cumulative occupancy
        // of the never-recycled outside bits would grossly overstate
        // per-cycle noise and bias elephants low (it is the right sample
        // for the long-exposure residual decode below, not for this one).
        let estimate = decode::estimate_own_packets(b, zeros, 0.0);
        *word &= !mask;
        self.saturations += 1;
        Some(SaturationEvent { zeros, noise_class: zeros.clamp(1, self.cfg.noise_max()), estimate })
    }

    /// Derives the placement (word index, vector mask, drawn position) of
    /// every hash in the batch into the internal SoA scratch — the
    /// vectorizable, memory-free half of [`Rcc::encode_hashed`]. Each
    /// prepared packet must then be consumed exactly once, in order, by
    /// [`Rcc::encode_prepared`]; preparing again invalidates the scratch.
    pub(crate) fn prepare_batch(&mut self, hashes: &[u64]) {
        simd::derive_placements(
            hashes,
            self.words.len() as u64,
            self.cfg.vector_bits(),
            self.draw_counter,
            &mut self.scratch,
        );
    }

    /// Encodes prepared packet `i` (see [`Rcc::prepare_batch`]).
    ///
    /// Bit-identical to [`Rcc::encode_hashed`] on the same hash at the
    /// same draw-counter value: the placement was precomputed from
    /// exactly the counter value this call advances to.
    #[inline]
    pub(crate) fn encode_prepared(&mut self, i: usize) -> Option<SaturationEvent> {
        self.encodes += 1;
        self.draw_counter = self.draw_counter.wrapping_add(1);
        let word_idx = self.scratch.word_idx[i];
        let mask = self.scratch.mask[i];
        let pos = self.scratch.pos[i];
        self.set_and_check(word_idx, mask, pos)
    }

    /// Prefetches the counter word of prepared packet `i`; out-of-range
    /// indices are ignored (ragged batch tails need no guard). Unlike
    /// [`Rcc::prefetch_hashed`] this reuses the prepared word index
    /// instead of paying the `h % num_words` again.
    #[inline]
    pub(crate) fn prefetch_prepared(&self, i: usize) {
        if let Some(&word_idx) = self.scratch.word_idx.get(i) {
            prefetch::prefetch_read_index(&self.words, word_idx);
        }
    }

    /// Encodes one packet of `key`. See [`Rcc::encode_hashed`].
    pub fn encode(&mut self, key: &FlowKey) -> Option<SaturationEvent> {
        self.encode_hashed(self.hash_key(key))
    }

    /// Encodes a batch of precomputed hashes: derive every placement up
    /// front ([`Rcc::prepare_batch`] — AVX2 four packets per step where
    /// available), then run the memory-touching encode loop with the
    /// counter word of packet `i + K` prefetched while encoding packet
    /// `i` (K = [`prefetch::prefetch_distance`]). Calls `sink(i, event)`
    /// for every saturation, in encode order.
    ///
    /// Bit-identical to calling [`Rcc::encode_hashed`] on each hash in
    /// order: prefetching is advisory, the prepared placements are
    /// derived from the same counter sequence a scalar loop consumes,
    /// and the vector kernels are differential-tested against the scalar
    /// oracle.
    pub fn encode_batch(&mut self, hashes: &[u64], mut sink: impl FnMut(usize, SaturationEvent)) {
        self.prepare_batch(hashes);
        let k = prefetch::prefetch_distance();
        for i in 0..hashes.len().min(k) {
            self.prefetch_prepared(i);
        }
        for i in 0..hashes.len() {
            self.prefetch_prepared(i + k);
            if let Some(sat) = self.encode_prepared(i) {
                sink(i, sat);
            }
        }
    }

    /// Decodes, without modifying state, the packets currently retained in
    /// the flow's vector (the *residual* of the running cycle). This is the
    /// "packet-arrival-based decoding" primitive of §II.
    #[inline]
    #[must_use]
    pub fn residual_hashed(&self, h: u64) -> f64 {
        let slot = self.slot(h);
        let word = self.words[slot.word_idx];
        let b = self.cfg.vector_bits();
        let zeros = b - (word & slot.vector_mask).count_ones();
        if zeros == b {
            return 0.0;
        }
        let f = outside_occupancy(word, slot.vector_mask);
        decode::estimate_own_packets(b, zeros, f)
    }

    /// Residual of `key`'s running cycle. See [`Rcc::residual_hashed`].
    #[must_use]
    pub fn residual(&self, key: &FlowKey) -> f64 {
        self.residual_hashed(self.hash_key(key))
    }

    /// Total packets encoded so far.
    #[must_use]
    pub fn encodes(&self) -> u64 {
        self.encodes
    }

    /// Total saturation events so far.
    #[must_use]
    pub fn saturations(&self) -> u64 {
        self.saturations
    }

    /// Fraction of all arena bits currently set — a load indicator.
    #[must_use]
    pub fn fill_ratio(&self) -> f64 {
        let set: u64 = self.words.iter().map(|w| u64::from(w.count_ones())).sum();
        set as f64 / (self.words.len() as u64 * u64::from(WORD_BITS)) as f64
    }

    /// Clears all counter memory and statistics.
    pub fn reset(&mut self) {
        self.words.fill(0);
        self.draw_counter = 0;
        self.encodes = 0;
        self.saturations = 0;
    }
}

/// Occupancy of the word bits outside the vector — the local noise sample.
/// Returns 0 when the vector covers the whole word (no sample available).
#[inline]
fn outside_occupancy(word: u64, vector_mask: u64) -> f64 {
    let outside = !vector_mask;
    let total = outside.count_ones();
    if total == 0 {
        return 0.0;
    }
    f64::from((word & outside).count_ones()) / f64::from(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use instameasure_packet::Protocol;

    fn key(i: u32) -> FlowKey {
        FlowKey::new(i.to_be_bytes(), (!i).to_be_bytes(), 100, 200, Protocol::Tcp)
    }

    fn small_cfg() -> SketchConfig {
        SketchConfig::builder().memory_bytes(1024).vector_bits(8).seed(7).build().unwrap()
    }

    #[test]
    fn slot_is_deterministic_and_has_b_bits() {
        let rcc = Rcc::new(small_cfg());
        for i in 0..100 {
            let h = rcc.hash_key(&key(i));
            let s1 = rcc.slot(h);
            let s2 = rcc.slot(h);
            assert_eq!(s1, s2);
            assert_eq!(s1.vector_mask.count_ones(), 8);
            assert!(s1.word_idx < rcc.words.len());
        }
    }

    #[test]
    fn full_word_vector_uses_whole_word() {
        let cfg = SketchConfig::builder().memory_bytes(1024).vector_bits(64).build().unwrap();
        let rcc = Rcc::new(cfg);
        let s = rcc.slot(rcc.hash_key(&key(1)));
        assert_eq!(s.vector_mask, u64::MAX);
    }

    #[test]
    fn saturation_cycle_for_isolated_flow() {
        // One flow alone: zero noise, so it must saturate exactly when
        // zeros hit noise_max, and the decode must be near the coupon
        // value.
        let mut rcc = Rcc::new(small_cfg());
        let k = key(42);
        let mut first_sat = None;
        for n in 1..=100u32 {
            if let Some(sat) = rcc.encode(&k) {
                first_sat = Some((n, sat));
                break;
            }
        }
        let (n, sat) = first_sat.expect("flow must saturate within 100 packets");
        assert_eq!(sat.zeros, 3, "isolated flow saturates exactly at noise_max");
        assert_eq!(sat.noise_class, 3);
        assert!((4..=25).contains(&n), "saturation after {n} packets");
        assert!((3.0..=14.0).contains(&sat.estimate), "decode {}", sat.estimate);
    }

    #[test]
    fn vector_recycles_after_saturation() {
        let mut rcc = Rcc::new(small_cfg());
        let k = key(9);
        let mut sats = 0;
        for _ in 0..10_000 {
            if rcc.encode(&k).is_some() {
                sats += 1;
            }
        }
        assert!(sats > 10_000 / 20, "must keep saturating after recycling: {sats}");
        assert_eq!(rcc.saturations(), sats);
        assert_eq!(rcc.encodes(), 10_000);
    }

    #[test]
    fn isolated_flow_count_estimate_is_accurate() {
        let mut rcc = Rcc::new(small_cfg());
        let k = key(3);
        let true_count = 50_000u64;
        let mut est = 0.0;
        for _ in 0..true_count {
            if let Some(s) = rcc.encode(&k) {
                est += s.estimate;
            }
        }
        est += rcc.residual(&k);
        let rel = (est - true_count as f64).abs() / true_count as f64;
        assert!(rel < 0.10, "estimate {est} vs {true_count} (rel {rel})");
    }

    #[test]
    fn residual_is_nondestructive_and_bounded() {
        let mut rcc = Rcc::new(small_cfg());
        let k = key(5);
        for _ in 0..3 {
            assert!(rcc.encode(&k).is_none(), "3 packets cannot saturate an 8-bit vector");
        }
        let r1 = rcc.residual(&k);
        let r2 = rcc.residual(&k);
        assert_eq!(r1, r2);
        assert!(r1 > 0.0 && r1 < 10.0, "residual {r1}");
    }

    #[test]
    fn residual_of_unseen_flow_is_zero() {
        let rcc = Rcc::new(small_cfg());
        assert_eq!(rcc.residual(&key(777)), 0.0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut rcc = Rcc::new(small_cfg());
        for i in 0..100 {
            rcc.encode(&key(i));
        }
        assert!(rcc.fill_ratio() > 0.0);
        rcc.reset();
        assert_eq!(rcc.fill_ratio(), 0.0);
        assert_eq!(rcc.encodes(), 0);
        assert_eq!(rcc.saturations(), 0);
    }

    #[test]
    fn noise_classes_appear_under_contention() {
        // Many flows share words in a tiny arena; cross-flow noise makes
        // saturations land on classes below noise_max too.
        let cfg = SketchConfig::builder().memory_bytes(64).vector_bits(8).build().unwrap();
        let mut rcc = Rcc::new(cfg);
        let mut classes_seen = std::collections::HashSet::new();
        for round in 0..2000u32 {
            for i in 0..50 {
                if let Some(s) = rcc.encode(&key(i)) {
                    classes_seen.insert(s.noise_class);
                }
            }
            if classes_seen.len() >= 3 {
                let _ = round;
                break;
            }
        }
        assert!(
            classes_seen.len() >= 2,
            "contention should produce multiple noise classes: {classes_seen:?}"
        );
        assert!(classes_seen.iter().all(|&c| (1..=3).contains(&c)));
    }

    #[test]
    fn hash_digest_matches_hash_key() {
        let rcc = Rcc::new(small_cfg());
        for i in 0..100 {
            let k = key(i);
            assert_eq!(rcc.hash_key(&k), rcc.hash_digest(FlowDigest::of(&k)));
        }
    }

    #[test]
    fn prefetch_does_not_change_state() {
        let mut rcc = Rcc::new(small_cfg());
        for i in 0..100 {
            rcc.encode(&key(i));
        }
        let before = rcc.clone();
        for i in 0..200 {
            rcc.prefetch_hashed(rcc.hash_key(&key(i)));
        }
        assert_eq!(rcc.words, before.words);
        assert_eq!(rcc.draw_counter, before.draw_counter);
    }

    #[test]
    fn encode_batch_is_bit_identical_to_scalar() {
        for n in [0usize, 1, 3, 8, 9, 64, 1000] {
            let mut scalar = Rcc::new(small_cfg());
            let mut batched = Rcc::new(small_cfg());
            let hashes: Vec<u64> = (0..n as u32).map(|i| scalar.hash_key(&key(i % 17))).collect();

            let mut scalar_sats = Vec::new();
            for (i, &h) in hashes.iter().enumerate() {
                if let Some(s) = scalar.encode_hashed(h) {
                    scalar_sats.push((i, s));
                }
            }
            let mut batch_sats = Vec::new();
            batched.encode_batch(&hashes, |i, s| batch_sats.push((i, s)));

            assert_eq!(scalar_sats, batch_sats, "n={n}");
            assert_eq!(scalar.words, batched.words, "n={n}");
            assert_eq!(scalar.draw_counter, batched.draw_counter, "n={n}");
            assert_eq!(scalar.encodes(), batched.encodes(), "n={n}");
            assert_eq!(scalar.saturations(), batched.saturations(), "n={n}");
        }
    }

    #[test]
    fn saturation_frequency_matches_coupon_model() {
        // Single flow: average packets per saturation ≈ coupon_expected.
        let mut rcc = Rcc::new(small_cfg());
        let k = key(11);
        let n = 200_000u64;
        for _ in 0..n {
            rcc.encode(&k);
        }
        let period = n as f64 / rcc.saturations() as f64;
        let model = crate::decode::saturation_period(8, 3);
        let rel = (period - model).abs() / model;
        assert!(rel < 0.05, "period {period} vs model {model}");
    }
}
