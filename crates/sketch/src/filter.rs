//! The [`FlowFilter`] front-end abstraction: anything that sits between
//! the packet stream and the WSAF table, retaining mice flows and emitting
//! occasional accumulated updates for elephants.
//!
//! InstaMeasure's core claim is architectural — a small front-end filter
//! plus a large in-DRAM store beats a monolithic sketch — and several
//! sibling designs share that filter-then-store split (PriMe's SRAM front
//! end, HashFlow's main/ancillary tables). [`FlowFilter`] is the seam that
//! lets the pipeline swap front ends and compare them honestly at equal
//! memory: the paper's [`FlowRegulator`] is the reference implementation,
//! [`SwingFilter`] and [`HashFlowFilter`] are the alternates, and
//! [`FilterKind`] names them all for configs, CLIs, and benches.
//!
//! The contract, in one paragraph: `process` consumes a packet and returns
//! the filter *decision* — `None` means the packet was retained inside the
//! filter, `Some(update)` means an accumulated count was released toward
//! the WSAF. `estimate_packets` reports what the filter currently retains
//! for a flow (the *residual*), so a query layer can always answer
//! `store + residual` without waiting for a release. `process_batch` must
//! be bit-identical to scalar processing; `memory_bytes` is the total the
//! filter actually holds, which the equal-memory shootout pins against a
//! shared budget.

use core::str::FromStr;

use instameasure_packet::{FlowDigest, FlowKey, PacketRecord};
use instameasure_telemetry::{Instrumented, Snapshot};

use crate::config::SketchConfig;
use crate::flow_regulator::FlowRegulator;
use crate::hashflow::HashFlowFilter;
use crate::regulator::SingleLayerRcc;
use crate::swing::SwingFilter;

/// An accumulated count released by a front-end filter toward the WSAF
/// table (`ACC_WSAF(f, est_pkt, est_byte)` in the paper's Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowUpdate {
    /// The flow being credited.
    pub key: FlowKey,
    /// The flow's hash-once digest, carried along so the WSAF can derive
    /// its probe hash without rehashing the key bytes.
    pub digest: FlowDigest,
    /// Estimated packets accumulated since the flow's previous update.
    pub est_pkts: f64,
    /// Estimated bytes. Probabilistic filters use the saturation-sampling
    /// rule `est_pkts × len(trigger packet)` (§III-C); exact-counting
    /// filters carry the true accumulated byte count.
    pub est_bytes: f64,
    /// Timestamp of the packet that triggered the update.
    pub ts_nanos: u64,
}

/// Work counters of a front-end filter; the basis of the rate-regulation
/// figures (paper Figs. 1 and 7) and of the cost claims of §III-A.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Packets processed.
    pub packets: u64,
    /// WSAF updates emitted (insertion requests; "ips" numerator).
    pub updates: u64,
    /// Filter memory accesses performed (counter words or table slots).
    pub mem_accesses: u64,
    /// Flow-hash computations performed.
    pub hashes: u64,
}

impl FilterStats {
    /// Output-updates-per-input-packet: the paper's *rate regulation*
    /// (`ips / pps`); lower is better for the WSAF.
    #[must_use]
    pub fn regulation_rate(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.updates as f64 / self.packets as f64
        }
    }

    /// Average filter memory accesses per packet.
    #[must_use]
    pub fn accesses_per_packet(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.mem_accesses as f64 / self.packets as f64
        }
    }
}

/// A pluggable front-end flow filter: encodes packets, retains mice flows,
/// and emits accumulated [`FlowUpdate`]s for elephants.
///
/// Implementations must keep queries *instant*: at any point,
/// `sum(released est_pkts) + estimate_packets(digest)` tracks the flow's
/// true packet count, so `InstaMeasure` can answer `WSAF + residual`
/// without waiting for the filter to release.
pub trait FlowFilter: core::fmt::Debug + Send + Instrumented {
    /// Feeds one packet through the filter. The return value is the filter
    /// decision: `None` when the packet was retained inside the filter,
    /// `Some(update)` exactly when an accumulated count is released toward
    /// the WSAF.
    fn process(&mut self, pkt: &PacketRecord) -> Option<FlowUpdate>;

    /// Feeds a batch of packets, appending released updates to `out` in
    /// packet order. Must be bit-identical (filter state, statistics and
    /// emitted updates) to calling [`FlowFilter::process`] on each packet
    /// in order; implementations override it to hash once per packet up
    /// front and prefetch memory across the batch.
    fn process_batch(&mut self, pkts: &[PacketRecord], out: &mut Vec<FlowUpdate>) {
        for pkt in pkts {
            if let Some(u) = self.process(pkt) {
                out.push(u);
            }
        }
    }

    /// Estimated packets currently retained for the flow with this digest
    /// (not yet released to the WSAF) — the residual a query layer adds to
    /// the WSAF's accumulation. The caller has already hashed the key
    /// bytes once; implementations derive their lanes from the digest.
    fn estimate_packets(&self, digest: FlowDigest) -> f64;

    /// Estimated bytes currently retained for the flow with this digest,
    /// or `None` when the filter cannot attribute bytes to a flow it still
    /// retains (probabilistic filters share counter bits across flows, so
    /// their byte residual has no per-flow owner). Callers fall back to
    /// scaling [`FlowFilter::estimate_packets`] by an observed mean packet
    /// length.
    fn estimate_bytes(&self, digest: FlowDigest) -> Option<f64> {
        let _ = digest;
        None
    }

    /// [`FlowFilter::estimate_packets`] from the key bytes: hashes the key
    /// once and queries by digest.
    fn residual_packets(&self, key: &FlowKey) -> f64 {
        self.estimate_packets(FlowDigest::of(key))
    }

    /// Work-counter snapshot.
    fn stats(&self) -> FilterStats;

    /// Total filter memory in bytes (all layers / tables).
    fn memory_bytes(&self) -> usize;

    /// Clears all filter state and statistics.
    fn reset(&mut self);
}

/// The front-end filter designs the pipeline can be configured with.
///
/// All kinds built through [`FilterKind::build`] share one total memory
/// budget — the [`FlowRegulator`]'s paper accounting
/// `memory_bytes × (1 + noise_classes)` (32 KB L1 → 128 KB total) — so a
/// shootout across kinds is an equal-memory comparison by construction.
///
/// The enum is `#[non_exhaustive]`: later PRs add kinds without breaking
/// matches, so always keep a wildcard arm.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FilterKind {
    /// The paper's two-layer [`FlowRegulator`] (the default).
    #[default]
    Regulator,
    /// A single flat [`Rcc`](crate::Rcc) spending the whole budget on one
    /// layer ([`SingleLayerRcc`]) — the paper's Fig. 1/7 baseline.
    Rcc,
    /// [`SwingFilter`]: an exact fingerprint stage in front of a keyed
    /// store, split 1/3 filter – 2/3 store.
    Swing,
    /// [`HashFlowFilter`]: HashFlow's multi-way main table plus ancillary
    /// table with promotion, exporting evicted records as updates.
    HashFlow,
}

/// Every filter kind currently defined, in a stable order (configs, CLI
/// help, and the shootout bench iterate this).
pub const ALL_FILTER_KINDS: [FilterKind; 4] =
    [FilterKind::Regulator, FilterKind::Rcc, FilterKind::Swing, FilterKind::HashFlow];

/// A filter name that [`FilterKind::from_str`] did not recognize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownFilterError {
    name: String,
}

impl UnknownFilterError {
    /// The rejected name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl core::fmt::Display for UnknownFilterError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "unknown filter kind '{}' (expected one of:", self.name)?;
        for k in ALL_FILTER_KINDS {
            write!(f, " {k}")?;
        }
        write!(f, ")")
    }
}

impl std::error::Error for UnknownFilterError {}

impl FilterKind {
    /// The kind's canonical lowercase name (what [`FilterKind::from_str`]
    /// parses and the CLI accepts).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FilterKind::Regulator => "regulator",
            FilterKind::Rcc => "rcc",
            FilterKind::Swing => "swing",
            FilterKind::HashFlow => "hashflow",
        }
    }

    /// Builds the filter, sizing it to the equal-memory anchor: the total
    /// budget is `cfg.memory_bytes() × (1 + cfg.noise_classes())`, exactly
    /// what a [`FlowRegulator`] over `cfg` occupies (the paper's 32 KB →
    /// 128 KB accounting). Every kind's [`FlowFilter::memory_bytes`] comes
    /// out ≤ that budget (alternates may round down to whole slots).
    #[must_use]
    pub fn build(self, cfg: SketchConfig) -> AnyFilter {
        let budget = cfg.memory_bytes() * (1 + cfg.noise_classes() as usize);
        match self {
            FilterKind::Regulator => AnyFilter::Regulator(FlowRegulator::new(cfg)),
            FilterKind::Rcc => {
                let flat =
                    cfg.with_memory_bytes(budget).expect("scaling a valid geometry up stays valid");
                AnyFilter::Rcc(SingleLayerRcc::new(flat))
            }
            FilterKind::Swing => AnyFilter::Swing(SwingFilter::new(budget, cfg.seed())),
            FilterKind::HashFlow => AnyFilter::HashFlow(HashFlowFilter::new(budget, cfg.seed())),
        }
    }
}

impl core::fmt::Display for FilterKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for FilterKind {
    type Err = UnknownFilterError;

    /// Parses a kind by its canonical name, case-insensitively
    /// (`"HashFlow"` and `"hashflow"` both work).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.trim().to_ascii_lowercase();
        ALL_FILTER_KINDS
            .into_iter()
            .find(|k| k.name() == lower)
            .ok_or(UnknownFilterError { name: s.to_string() })
    }
}

/// A concrete front-end filter, dispatched by kind.
///
/// The pipeline holds this closed enum instead of a `Box<dyn FlowFilter>`:
/// the hot path keeps static dispatch (one match, then inlined calls), the
/// container stays `Clone` + `Debug`, and [`AnyFilter::kind`] stays
/// answerable. It still *is* a `FlowFilter`, so query layers that only
/// need the trait take `&dyn FlowFilter`.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum AnyFilter {
    /// The paper's two-layer regulator.
    Regulator(FlowRegulator),
    /// The flat single-layer RCC baseline.
    Rcc(SingleLayerRcc),
    /// The swing filter alternate.
    Swing(SwingFilter),
    /// The HashFlow alternate.
    HashFlow(HashFlowFilter),
}

macro_rules! delegate {
    ($self:ident, $f:ident => $body:expr) => {
        match $self {
            AnyFilter::Regulator($f) => $body,
            AnyFilter::Rcc($f) => $body,
            AnyFilter::Swing($f) => $body,
            AnyFilter::HashFlow($f) => $body,
        }
    };
}

impl AnyFilter {
    /// Which [`FilterKind`] this filter is.
    #[must_use]
    pub fn kind(&self) -> FilterKind {
        match self {
            AnyFilter::Regulator(_) => FilterKind::Regulator,
            AnyFilter::Rcc(_) => FilterKind::Rcc,
            AnyFilter::Swing(_) => FilterKind::Swing,
            AnyFilter::HashFlow(_) => FilterKind::HashFlow,
        }
    }

    /// The underlying [`FlowRegulator`], when this filter is one (for
    /// regulator-specific diagnostics like per-class saturation counts).
    #[must_use]
    pub fn as_regulator(&self) -> Option<&FlowRegulator> {
        match self {
            AnyFilter::Regulator(fr) => Some(fr),
            _ => None,
        }
    }
}

impl FlowFilter for AnyFilter {
    fn process(&mut self, pkt: &PacketRecord) -> Option<FlowUpdate> {
        delegate!(self, f => f.process(pkt))
    }

    fn process_batch(&mut self, pkts: &[PacketRecord], out: &mut Vec<FlowUpdate>) {
        delegate!(self, f => f.process_batch(pkts, out));
    }

    fn estimate_packets(&self, digest: FlowDigest) -> f64 {
        delegate!(self, f => f.estimate_packets(digest))
    }

    fn estimate_bytes(&self, digest: FlowDigest) -> Option<f64> {
        delegate!(self, f => f.estimate_bytes(digest))
    }

    fn residual_packets(&self, key: &FlowKey) -> f64 {
        delegate!(self, f => f.residual_packets(key))
    }

    fn stats(&self) -> FilterStats {
        delegate!(self, f => f.stats())
    }

    fn memory_bytes(&self) -> usize {
        delegate!(self, f => f.memory_bytes())
    }

    fn reset(&mut self) {
        delegate!(self, f => f.reset());
    }
}

impl Instrumented for AnyFilter {
    /// The inner filter's telemetry, verbatim (each implementation keeps
    /// its own metric prefix, so dashboards can tell designs apart).
    fn telemetry(&self) -> Snapshot {
        delegate!(self, f => f.telemetry())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instameasure_packet::Protocol;

    fn key(i: u32) -> FlowKey {
        FlowKey::new(i.to_be_bytes(), [6, 6, 6, 6], 80, 443, Protocol::Tcp)
    }

    fn cfg() -> SketchConfig {
        SketchConfig::builder().memory_bytes(4096).vector_bits(8).seed(7).build().unwrap()
    }

    #[test]
    fn kind_names_roundtrip_through_from_str() {
        for kind in ALL_FILTER_KINDS {
            assert_eq!(kind.name().parse::<FilterKind>().unwrap(), kind);
            assert_eq!(kind.name().to_uppercase().parse::<FilterKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.name());
        }
        let err = "bogus".parse::<FilterKind>().unwrap_err();
        assert_eq!(err.name(), "bogus");
        let msg = err.to_string();
        for kind in ALL_FILTER_KINDS {
            assert!(msg.contains(kind.name()), "{msg}");
        }
    }

    #[test]
    fn default_kind_is_the_regulator() {
        assert_eq!(FilterKind::default(), FilterKind::Regulator);
    }

    #[test]
    fn built_filters_respect_the_equal_memory_budget() {
        let cfg = cfg();
        let budget = cfg.memory_bytes() * (1 + cfg.noise_classes() as usize);
        for kind in ALL_FILTER_KINDS {
            let filter = kind.build(cfg);
            assert_eq!(filter.kind(), kind);
            let mem = filter.memory_bytes();
            assert!(mem <= budget, "{kind}: {mem} > budget {budget}");
            // No kind may squander the budget either: at least 7/8 used.
            assert!(mem * 8 >= budget * 7, "{kind}: {mem} wastes budget {budget}");
        }
    }

    #[test]
    fn regulator_kind_matches_a_plain_flow_regulator() {
        let mut via_kind = FilterKind::Regulator.build(cfg());
        let mut direct = FlowRegulator::new(cfg());
        assert!(via_kind.as_regulator().is_some());
        for t in 0..20_000u64 {
            let pkt = PacketRecord::new(key((t % 9) as u32), 700, t);
            assert_eq!(via_kind.process(&pkt), direct.process(&pkt));
        }
        assert_eq!(via_kind.stats(), FlowFilter::stats(&direct));
        for i in 0..9 {
            let a = via_kind.estimate_packets(FlowDigest::of(&key(i)));
            let b = direct.residual_packets_digest(FlowDigest::of(&key(i)));
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn every_kind_conserves_packets_through_release_plus_residual() {
        // Filters may misattribute between flows, but released + retained
        // totals must track the stream (the regulator probabilistically,
        // the table filters exactly).
        for kind in ALL_FILTER_KINDS {
            let mut filter = kind.build(cfg());
            let n = 60_000u64;
            let mut released = 0.0;
            for t in 0..n {
                if let Some(u) = filter.process(&PacketRecord::new(key((t % 40) as u32), 600, t)) {
                    assert!(u.est_pkts > 0.0, "{kind}: empty update");
                    released += u.est_pkts;
                }
            }
            let retained: f64 =
                (0..40).map(|i| filter.estimate_packets(FlowDigest::of(&key(i)))).sum();
            let total = released + retained;
            let rel = (total - n as f64).abs() / n as f64;
            assert!(rel < 0.15, "{kind}: released {released} + retained {retained} vs {n}");
        }
    }

    #[test]
    fn batch_matches_scalar_for_every_kind() {
        let trace: Vec<PacketRecord> = (0..6_000u64)
            .map(|t| PacketRecord::new(key((t % 17) as u32), 100 + (t % 1200) as u16, t))
            .collect();
        for kind in ALL_FILTER_KINDS {
            for chunk in [1usize, 13, 256] {
                let mut scalar = kind.build(cfg());
                let mut batched = kind.build(cfg());
                let mut scalar_out = Vec::new();
                for pkt in &trace {
                    if let Some(u) = scalar.process(pkt) {
                        scalar_out.push(u);
                    }
                }
                let mut batch_out = Vec::new();
                for pkts in trace.chunks(chunk) {
                    batched.process_batch(pkts, &mut batch_out);
                }
                assert_eq!(scalar_out, batch_out, "{kind} chunk={chunk}");
                assert_eq!(scalar.stats(), batched.stats(), "{kind} chunk={chunk}");
            }
        }
    }

    #[test]
    fn reset_restores_every_kind() {
        for kind in ALL_FILTER_KINDS {
            let mut filter = kind.build(cfg());
            for t in 0..5_000u64 {
                filter.process(&PacketRecord::new(key((t % 11) as u32), 500, t));
            }
            filter.reset();
            assert_eq!(filter.stats(), FilterStats::default(), "{kind}");
            for i in 0..11 {
                assert_eq!(filter.estimate_packets(FlowDigest::of(&key(i))), 0.0, "{kind}");
            }
        }
    }
}
