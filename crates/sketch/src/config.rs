//! Sketch geometry configuration.

use core::fmt;

/// Width in bits of the confinement word (one memory access covers the
/// whole virtual vector — the "confinement" of RCC).
pub const WORD_BITS: u32 = 64;

/// Errors returned when a [`SketchConfig`] is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `vector_bits` must be in `2..=WORD_BITS`.
    BadVectorBits(u32),
    /// `memory_bytes` must hold at least one word.
    TooLittleMemory(usize),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadVectorBits(b) => {
                write!(f, "vector_bits {b} out of range 2..={WORD_BITS}")
            }
            ConfigError::TooLittleMemory(m) => {
                write!(f, "memory_bytes {m} smaller than one {WORD_BITS}-bit word")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Geometry of one RCC layer: the memory arena, the virtual-vector size and
/// the hash seed.
///
/// The paper's defaults are an 8-bit virtual vector and 32 KB–512 KB of L1
/// memory (§IV-D). Construct via [`SketchConfig::builder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct SketchConfig {
    memory_bytes: usize,
    vector_bits: u32,
    seed: u64,
}

impl SketchConfig {
    /// Starts building a config. Defaults: 32 KB memory, 8-bit vectors,
    /// seed 0.
    #[must_use]
    pub fn builder() -> SketchConfigBuilder {
        SketchConfigBuilder::default()
    }

    /// Bytes of counter memory for one layer.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.memory_bytes
    }

    /// Number of words in the arena.
    #[must_use]
    pub fn num_words(&self) -> usize {
        self.memory_bytes / (WORD_BITS as usize / 8)
    }

    /// Virtual-vector size `b` in bits.
    #[must_use]
    pub fn vector_bits(&self) -> u32 {
        self.vector_bits
    }

    /// Hash seed for this layer.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Returns a copy with a different seed (layers must hash
    /// independently only in their word permutation; the paper reuses the
    /// L1 hash — we keep one seed per structure and derive layers from it).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different memory size.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::TooLittleMemory`] if `bytes` cannot hold one
    /// word.
    pub fn with_memory_bytes(mut self, bytes: usize) -> Result<Self, ConfigError> {
        if bytes < WORD_BITS as usize / 8 {
            return Err(ConfigError::TooLittleMemory(bytes));
        }
        self.memory_bytes = bytes;
        Ok(self)
    }

    /// The saturation threshold: a vector saturates when its zero count
    /// drops to `noise_max` or below. The paper uses 3 noise classes for
    /// `b = 8` (≈70% of the vector set); we generalize as
    /// `max(1, 3b/8)`.
    #[must_use]
    pub fn noise_max(&self) -> u32 {
        (3 * self.vector_bits / 8).max(1)
    }

    /// Number of distinguishable noise classes at saturation
    /// (`1..=noise_max`), which is also the number of L2 counters a
    /// [`crate::FlowRegulator`] allocates.
    #[must_use]
    pub fn noise_classes(&self) -> u32 {
        self.noise_max()
    }
}

impl Default for SketchConfig {
    fn default() -> Self {
        SketchConfig { memory_bytes: 32 * 1024, vector_bits: 8, seed: 0 }
    }
}

/// Builder for [`SketchConfig`].
///
/// # Example
///
/// ```
/// use instameasure_sketch::SketchConfig;
/// let cfg = SketchConfig::builder()
///     .memory_bytes(128 * 1024)
///     .vector_bits(8)
///     .seed(42)
///     .build()?;
/// assert_eq!(cfg.num_words(), 128 * 1024 / 8);
/// assert_eq!(cfg.noise_classes(), 3);
/// # Ok::<(), instameasure_sketch::ConfigError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct SketchConfigBuilder {
    cfg: SketchConfig,
}

impl SketchConfigBuilder {
    /// Sets the layer memory in bytes (default 32 KB).
    #[must_use]
    pub fn memory_bytes(mut self, bytes: usize) -> Self {
        self.cfg.memory_bytes = bytes;
        self
    }

    /// Sets the virtual-vector size in bits (default 8).
    #[must_use]
    pub fn vector_bits(mut self, bits: u32) -> Self {
        self.cfg.vector_bits = bits;
        self
    }

    /// Sets the hash seed (default 0).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Validates and returns the config.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the vector does not fit the confinement
    /// word or the memory cannot hold a single word.
    pub fn build(self) -> Result<SketchConfig, ConfigError> {
        if !(2..=WORD_BITS).contains(&self.cfg.vector_bits) {
            return Err(ConfigError::BadVectorBits(self.cfg.vector_bits));
        }
        if self.cfg.memory_bytes < WORD_BITS as usize / 8 {
            return Err(ConfigError::TooLittleMemory(self.cfg.memory_bytes));
        }
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = SketchConfig::default();
        assert_eq!(cfg.memory_bytes(), 32 * 1024);
        assert_eq!(cfg.vector_bits(), 8);
        assert_eq!(cfg.noise_max(), 3);
        assert_eq!(cfg.noise_classes(), 3, "paper: three L2 counters for b=8");
    }

    #[test]
    fn noise_classes_scale_with_vector() {
        let classes: Vec<u32> = [4u32, 8, 16, 32]
            .iter()
            .map(|&b| SketchConfig::builder().vector_bits(b).build().unwrap().noise_classes())
            .collect();
        assert_eq!(classes, vec![1, 3, 6, 12]);
    }

    #[test]
    fn rejects_bad_vector_bits() {
        assert_eq!(
            SketchConfig::builder().vector_bits(1).build().unwrap_err(),
            ConfigError::BadVectorBits(1)
        );
        assert_eq!(
            SketchConfig::builder().vector_bits(65).build().unwrap_err(),
            ConfigError::BadVectorBits(65)
        );
        assert!(SketchConfig::builder().vector_bits(64).build().is_ok());
    }

    #[test]
    fn rejects_tiny_memory() {
        assert_eq!(
            SketchConfig::builder().memory_bytes(4).build().unwrap_err(),
            ConfigError::TooLittleMemory(4)
        );
    }

    #[test]
    fn word_count() {
        let cfg = SketchConfig::builder().memory_bytes(32 * 1024).build().unwrap();
        assert_eq!(cfg.num_words(), 4096);
    }

    #[test]
    fn error_display() {
        assert!(ConfigError::BadVectorBits(99).to_string().contains("99"));
        assert!(ConfigError::TooLittleMemory(3).to_string().contains('3'));
    }
}
