//! The swing filter: an exact fingerprint stage in front of a keyed store.
//!
//! Where the [`FlowRegulator`](crate::FlowRegulator) retains flows
//! *probabilistically* (shared counter bits, decoded estimates), the swing
//! filter retains them *exactly* and spends its budget on two stages:
//!
//! ```text
//!          1/3 of budget                 2/3 of budget
//!   ┌───────────────────────┐    ┌───────────────────────────┐
//!   │ stage F: fingerprints │    │ stage S: keyed flow store │
//!   │ fp | pkts | bytes     │───▶│ key | pkts | bytes        │──▶ WSAF
//!   │ (12 B per cell)       │    │ (25 B per slot, 4-way)    │
//!   └───────────────────────┘    └───────────────────────────┘
//! ```
//!
//! A packet lands in one F cell. A young flow "swings" the cell — a
//! newcomer steals it from a near-empty resident — so churning mice
//! recycle the same cells instead of each claiming one. A flow that
//! proves itself (reaches the promotion threshold) moves its exact counts
//! into stage S, where elephants accumulate until a crowded bucket evicts
//! its smallest entry toward the WSAF. Every count released is exact; the
//! only noise is the tiny resident count a swing absorbs.

use instameasure_packet::{prefetch, FlowDigest, FlowKey, PacketRecord};
use instameasure_telemetry::{Instrumented, Snapshot};

use crate::filter::{FilterStats, FlowFilter, FlowUpdate};

/// Accounted bytes of one stage-F cell: 4-byte fingerprint + 4-byte packet
/// counter + 4-byte byte counter.
const CELL_BYTES: usize = 12;

/// Accounted bytes of one stage-S slot: 13-byte flow key + 4-byte packet
/// counter + 8-byte byte counter. (The cached digest is derivable from the
/// key and not counted, matching the WSAF's paper-style accounting.)
const SLOT_BYTES: usize = 25;

/// Stage-S bucket associativity.
const WAYS: usize = 4;

/// Packets a stage-F cell accumulates before its flow is promoted into
/// stage S.
const PROMOTE_PKTS: u32 = 32;

/// Largest resident count a newcomer may absorb when fingerprints collide
/// (the "swing"). Above this the resident is established and the newcomer
/// passes through instead.
const STEAL_PKTS: u32 = 1;

#[derive(Debug, Clone, Copy, Default)]
struct Cell {
    /// Fingerprint of the resident flow; 0 = empty.
    fp: u32,
    pkts: u32,
    bytes: u32,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    key: FlowKey,
    digest: FlowDigest,
    pkts: u32,
    bytes: u64,
}

/// The two-stage exact-counting front end (see module docs).
#[derive(Debug, Clone)]
pub struct SwingFilter {
    cells: Vec<Cell>,
    slots: Vec<Option<Slot>>,
    buckets: usize,
    seed: u64,
    stats: FilterStats,
    promotions: u64,
    steals: u64,
    passthroughs: u64,
    evictions: u64,
    /// Recycled digest buffer for the batched hot path.
    batch_scratch: Vec<FlowDigest>,
    /// Recycled lane/cell-index buffer for the batched hot path.
    lane_scratch: Vec<u64>,
}

impl SwingFilter {
    /// Creates a swing filter over a total memory budget, split 1/3 stage
    /// F – 2/3 stage S (rounded down to whole cells/slots, so
    /// [`FlowFilter::memory_bytes`] never exceeds `budget_bytes`; tiny
    /// budgets are padded up to one cell and one bucket).
    #[must_use]
    pub fn new(budget_bytes: usize, seed: u64) -> Self {
        let n_cells = ((budget_bytes / 3) / CELL_BYTES).max(1);
        let store_bytes = budget_bytes.saturating_sub(n_cells * CELL_BYTES);
        let buckets = ((store_bytes / SLOT_BYTES) / WAYS).max(1);
        SwingFilter {
            cells: vec![Cell::default(); n_cells],
            slots: vec![None; buckets * WAYS],
            buckets,
            seed,
            stats: FilterStats::default(),
            promotions: 0,
            steals: 0,
            passthroughs: 0,
            evictions: 0,
            batch_scratch: Vec::new(),
            lane_scratch: Vec::new(),
        }
    }

    /// Stage-F cell count.
    #[must_use]
    pub fn filter_cells(&self) -> usize {
        self.cells.len()
    }

    /// Stage-S slot count.
    #[must_use]
    pub fn store_slots(&self) -> usize {
        self.slots.len()
    }

    /// Fraction of stage-S slots occupied.
    #[must_use]
    pub fn store_fill_ratio(&self) -> f64 {
        let used = self.slots.iter().filter(|s| s.is_some()).count();
        used as f64 / self.slots.len() as f64
    }

    fn fingerprint(digest: FlowDigest) -> u32 {
        let fp = (digest.raw() >> 32) as u32;
        if fp == 0 {
            1
        } else {
            fp
        }
    }

    fn cell_index(&self, digest: FlowDigest) -> usize {
        (digest.lane(self.seed) % self.cells.len() as u64) as usize
    }

    fn bucket_range(&self, digest: FlowDigest) -> core::ops::Range<usize> {
        let b = (digest.lane(self.seed ^ 0x5706_F11E_57A6_E500) % self.buckets as u64) as usize;
        b * WAYS..(b + 1) * WAYS
    }

    /// Folds promoted counts into stage S; a full bucket evicts its
    /// smallest resident, whose exact totals are released as an update.
    fn store_accumulate(
        &mut self,
        key: FlowKey,
        digest: FlowDigest,
        pkts: u32,
        bytes: u64,
        ts_nanos: u64,
    ) -> Option<FlowUpdate> {
        self.stats.mem_accesses += 1;
        let range = self.bucket_range(digest);
        let mut empty: Option<usize> = None;
        let mut min_idx = range.start;
        let mut min_pkts = u32::MAX;
        for i in range {
            match &mut self.slots[i] {
                Some(s) if s.digest == digest && s.key == key => {
                    s.pkts += pkts;
                    s.bytes += bytes;
                    return None;
                }
                Some(s) => {
                    if s.pkts < min_pkts {
                        min_pkts = s.pkts;
                        min_idx = i;
                    }
                }
                None => {
                    if empty.is_none() {
                        empty = Some(i);
                    }
                }
            }
        }
        let fresh = Slot { key, digest, pkts, bytes };
        if let Some(i) = empty {
            self.slots[i] = Some(fresh);
            return None;
        }
        // Bucket full: the smallest resident ends its measurement here and
        // its exact totals flow to the WSAF.
        let victim = self.slots[min_idx].replace(fresh).expect("min slot is occupied");
        self.evictions += 1;
        self.stats.updates += 1;
        Some(FlowUpdate {
            key: victim.key,
            digest: victim.digest,
            est_pkts: f64::from(victim.pkts),
            est_bytes: victim.bytes as f64,
            ts_nanos,
        })
    }

    /// The per-packet decision with the digest and stage-F cell index
    /// already computed (`idx` must equal `self.cell_index(digest)`) —
    /// the shared tail of the scalar and batched paths, so both stay
    /// bit-identical by construction.
    fn process_prepared(
        &mut self,
        pkt: &PacketRecord,
        digest: FlowDigest,
        idx: usize,
    ) -> Option<FlowUpdate> {
        self.stats.packets += 1;
        self.stats.hashes += 1;
        let fp = Self::fingerprint(digest);
        self.stats.mem_accesses += 1;
        let cell = &mut self.cells[idx];

        if cell.fp == 0 || cell.fp == fp {
            let claiming = cell.fp == 0;
            cell.fp = fp;
            cell.pkts += 1;
            cell.bytes += u32::from(pkt.wire_len);
            if !claiming && cell.pkts >= PROMOTE_PKTS {
                let (pkts, bytes) = (cell.pkts, cell.bytes);
                *cell = Cell::default();
                self.promotions += 1;
                return self.store_accumulate(
                    pkt.key,
                    digest,
                    pkts,
                    u64::from(bytes),
                    pkt.ts_nanos,
                );
            }
            return None;
        }

        if cell.pkts <= STEAL_PKTS {
            // The swing: absorb a near-empty resident. Its count is the
            // filter's only noise source, bounded by STEAL_PKTS per steal.
            cell.fp = fp;
            cell.pkts += 1;
            cell.bytes += u32::from(pkt.wire_len);
            self.steals += 1;
            return None;
        }

        // Established resident: this packet passes straight through as an
        // exact single-packet update.
        self.passthroughs += 1;
        self.stats.updates += 1;
        Some(FlowUpdate {
            key: pkt.key,
            digest,
            est_pkts: 1.0,
            est_bytes: f64::from(pkt.wire_len),
            ts_nanos: pkt.ts_nanos,
        })
    }
}

impl FlowFilter for SwingFilter {
    fn process(&mut self, pkt: &PacketRecord) -> Option<FlowUpdate> {
        let digest = FlowDigest::of(&pkt.key);
        let idx = self.cell_index(digest);
        self.process_prepared(pkt, digest, idx)
    }

    /// Batched hot path: the AVX2 kernel digests four keys per step and
    /// derives their stage-F lanes (reduced to cell indices in place),
    /// then the cell of packet `i + K` is prefetched by its precomputed
    /// index while packet `i` is decided
    /// (K = [`prefetch::prefetch_distance`]). Stage-S buckets are not
    /// prefetched — only promotions reach them, and whether a packet
    /// promotes depends on the cell it lands in.
    fn process_batch(&mut self, pkts: &[PacketRecord], out: &mut Vec<FlowUpdate>) {
        let mut scratch = core::mem::take(&mut self.batch_scratch);
        let mut lanes = core::mem::take(&mut self.lane_scratch);
        instameasure_packet::simd::digest_lanes_into(pkts, self.seed, &mut scratch, &mut lanes);
        let cells_len = self.cells.len() as u64;
        for lane in &mut lanes {
            *lane %= cells_len;
        }

        let k = prefetch::prefetch_distance();
        for &idx in lanes.iter().take(k) {
            prefetch::prefetch_read_index(&self.cells, idx as usize);
        }
        for (i, pkt) in pkts.iter().enumerate() {
            if let Some(&ahead) = lanes.get(i + k) {
                prefetch::prefetch_read_index(&self.cells, ahead as usize);
            }
            if let Some(u) = self.process_prepared(pkt, scratch[i], lanes[i] as usize) {
                out.push(u);
            }
        }

        self.batch_scratch = scratch;
        self.lane_scratch = lanes;
    }

    fn estimate_packets(&self, digest: FlowDigest) -> f64 {
        let mut total = 0.0;
        let cell = &self.cells[self.cell_index(digest)];
        if cell.fp == Self::fingerprint(digest) {
            total += f64::from(cell.pkts);
        }
        for i in self.bucket_range(digest) {
            if let Some(s) = &self.slots[i] {
                if s.digest == digest {
                    total += f64::from(s.pkts);
                    break;
                }
            }
        }
        total
    }

    fn estimate_bytes(&self, digest: FlowDigest) -> Option<f64> {
        let mut total = 0.0;
        let cell = &self.cells[self.cell_index(digest)];
        if cell.fp == Self::fingerprint(digest) {
            total += f64::from(cell.bytes);
        }
        for i in self.bucket_range(digest) {
            if let Some(s) = &self.slots[i] {
                if s.digest == digest {
                    total += s.bytes as f64;
                    break;
                }
            }
        }
        Some(total)
    }

    fn stats(&self) -> FilterStats {
        self.stats
    }

    fn memory_bytes(&self) -> usize {
        self.cells.len() * CELL_BYTES + self.slots.len() * SLOT_BYTES
    }

    fn reset(&mut self) {
        self.cells.fill(Cell::default());
        self.slots.fill(None);
        self.stats = FilterStats::default();
        self.promotions = 0;
        self.steals = 0;
        self.passthroughs = 0;
        self.evictions = 0;
    }
}

impl Instrumented for SwingFilter {
    /// Exports counters under the `swing.` prefix: the shared work
    /// counters plus the design-specific `promotions`, `steals`,
    /// `passthroughs` and `evictions`.
    fn telemetry(&self) -> Snapshot {
        let mut snap = Snapshot::new();
        snap.set_counter("swing.packets", self.stats.packets);
        snap.set_counter("swing.updates", self.stats.updates);
        snap.set_counter("swing.hashes", self.stats.hashes);
        snap.set_counter("swing.mem_accesses", self.stats.mem_accesses);
        snap.set_counter("swing.promotions", self.promotions);
        snap.set_counter("swing.steals", self.steals);
        snap.set_counter("swing.passthroughs", self.passthroughs);
        snap.set_counter("swing.evictions", self.evictions);
        snap.set_gauge("swing.regulation_rate", self.stats.regulation_rate());
        snap.set_gauge("swing.store_fill_ratio", self.store_fill_ratio());
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instameasure_packet::Protocol;

    fn key(i: u32) -> FlowKey {
        FlowKey::new(i.to_be_bytes(), [3, 3, 3, 3], 443, 80, Protocol::Tcp)
    }

    fn pkt(i: u32, len: u16, t: u64) -> PacketRecord {
        PacketRecord::new(key(i), len, t)
    }

    #[test]
    fn memory_split_is_one_third_filter_two_thirds_store() {
        let f = SwingFilter::new(96 * 1024, 1);
        let f_bytes = f.filter_cells() * CELL_BYTES;
        let s_bytes = f.store_slots() * SLOT_BYTES;
        assert!(f.memory_bytes() <= 96 * 1024);
        let split = f_bytes as f64 / (f_bytes + s_bytes) as f64;
        assert!((split - 1.0 / 3.0).abs() < 0.01, "split {split}");
    }

    #[test]
    fn elephant_counts_are_exact() {
        let mut f = SwingFilter::new(64 * 1024, 2);
        let n = 10_000u64;
        let mut released_pkts = 0.0;
        let mut released_bytes = 0.0;
        for t in 0..n {
            if let Some(u) = f.process(&pkt(1, 1000, t)) {
                released_pkts += u.est_pkts;
                released_bytes += u.est_bytes;
            }
        }
        let d = FlowDigest::of(&key(1));
        assert_eq!(released_pkts + f.estimate_packets(d), n as f64, "exact packet count");
        assert_eq!(
            released_bytes + f.estimate_bytes(d).unwrap(),
            n as f64 * 1000.0,
            "exact byte count"
        );
    }

    #[test]
    fn stream_is_conserved_exactly() {
        // Released + retained must equal the packet count bit-exactly:
        // every transition moves integer counts, never invents them.
        let mut f = SwingFilter::new(8 * 1024, 3);
        let n = 50_000u64;
        let mut released = 0.0;
        let mut total_bytes = 0.0;
        for t in 0..n {
            let p = pkt((t % 300) as u32, 100 + (t % 1000) as u16, t);
            total_bytes += f64::from(p.wire_len);
            if let Some(u) = f.process(&p) {
                released += u.est_pkts;
            }
        }
        let retained: f64 =
            (0..300).map(|i| f.estimate_packets(FlowDigest::of(&key(i)))).sum::<f64>();
        assert_eq!(released + retained, n as f64);
        assert!(total_bytes > 0.0);
    }

    #[test]
    fn overloaded_mice_churn_stays_exact() {
        // 20k single-packet mice against a 4 KB filter: far beyond
        // capacity, so most packets pass through — but every released
        // update is an exact single packet and the totals balance.
        let mut f = SwingFilter::new(4 * 1024, 4);
        let n = 20_000u32;
        let mut released = 0.0;
        for i in 0..n {
            if let Some(u) = f.process(&pkt(i, 80, u64::from(i))) {
                assert_eq!(u.est_pkts, 1.0, "pass-throughs are exact single packets");
                released += u.est_pkts;
            }
        }
        let snap = f.telemetry();
        assert!(snap.counter("swing.steals").unwrap() > 0, "young residents get swung");
        assert!(snap.counter("swing.passthroughs").unwrap() > 0);
        let retained: f64 =
            (0..n).map(|i| f.estimate_packets(FlowDigest::of(&key(i)))).sum::<f64>();
        // Swings misattribute between colliding mice but conserve totals.
        assert!(released + retained >= f64::from(n), "nothing vanishes");
        assert!(f.stats().regulation_rate() <= 1.0);
    }

    #[test]
    fn one_access_per_packet_on_the_fast_path() {
        let mut f = SwingFilter::new(32 * 1024, 5);
        for t in 0..1_000u64 {
            f.process(&pkt(1, 500, t));
        }
        let s = f.stats();
        assert_eq!(s.hashes, 1_000);
        // One F access per packet plus one S access per promotion.
        assert!(s.accesses_per_packet() < 1.1, "{}", s.accesses_per_packet());
    }

    #[test]
    fn batch_is_bit_identical_to_scalar() {
        // Mixed churn: elephants, mice and fingerprint pressure, so every
        // transition (claim, count, promote, steal, pass-through, evict)
        // fires in both paths.
        let trace: Vec<PacketRecord> =
            (0..30_000u64).map(|t| pkt((t % 700) as u32, 100 + (t % 1200) as u16, t)).collect();
        for chunk in [1usize, 7, 256, 30_000] {
            let mut scalar = SwingFilter::new(6 * 1024, 9);
            let mut batched = SwingFilter::new(6 * 1024, 9);

            let mut scalar_out = Vec::new();
            for p in &trace {
                if let Some(u) = scalar.process(p) {
                    scalar_out.push(u);
                }
            }
            let mut batch_out = Vec::new();
            for pkts in trace.chunks(chunk) {
                batched.process_batch(pkts, &mut batch_out);
            }

            assert_eq!(scalar_out, batch_out, "chunk={chunk}");
            assert_eq!(scalar.stats(), batched.stats(), "chunk={chunk}");
            assert_eq!(scalar.telemetry(), batched.telemetry(), "chunk={chunk}");
            for i in 0..700u32 {
                let d = FlowDigest::of(&key(i));
                assert_eq!(
                    scalar.estimate_packets(d).to_bits(),
                    batched.estimate_packets(d).to_bits(),
                    "chunk={chunk} flow={i}"
                );
            }
        }
    }

    #[test]
    fn reset_clears_everything() {
        let mut f = SwingFilter::new(16 * 1024, 6);
        for t in 0..5_000u64 {
            f.process(&pkt((t % 7) as u32, 700, t));
        }
        f.reset();
        assert_eq!(f.stats(), FilterStats::default());
        assert_eq!(f.store_fill_ratio(), 0.0);
        assert_eq!(f.estimate_packets(FlowDigest::of(&key(1))), 0.0);
    }
}
