//! The single-layer RCC baseline filter, plus the deprecated `Regulator`
//! naming this module carried before the front end became pluggable.
//!
//! The abstraction itself now lives in [`crate::filter`] as
//! [`FlowFilter`]; this module keeps [`SingleLayerRcc`] (the paper's
//! Figs. 1/7/8 baseline) and the compatibility aliases.

use instameasure_packet::{FlowDigest, PacketRecord};
use instameasure_telemetry::{Instrumented, Snapshot};

use crate::config::SketchConfig;
use crate::filter::{FilterStats, FlowFilter, FlowUpdate};
use crate::rcc::Rcc;

/// Deprecated name of [`FilterStats`] from before the front end became
/// pluggable.
#[deprecated(since = "0.6.0", note = "renamed to `FilterStats`")]
pub type RegulatorStats = FilterStats;

/// Deprecated name of [`FlowFilter`] from before the front end became
/// pluggable. Every `FlowFilter` still implements it, so existing
/// `&mut dyn Regulator` call sites keep compiling.
#[deprecated(since = "0.6.0", note = "renamed to `FlowFilter`")]
pub trait Regulator: FlowFilter {}

#[allow(deprecated)]
impl<T: FlowFilter + ?Sized> Regulator for T {}

/// Single-layer RCC used as the paper's baseline regulator (Figs. 1, 7, 8):
/// every L1 saturation goes straight to the WSAF.
#[derive(Debug, Clone)]
pub struct SingleLayerRcc {
    rcc: Rcc,
    stats: FilterStats,
    /// Recycled per-batch scratch: one digest and one lane hash per packet.
    digest_scratch: Vec<FlowDigest>,
    lane_scratch: Vec<u64>,
}

impl SingleLayerRcc {
    /// Creates the baseline regulator.
    #[must_use]
    pub fn new(cfg: SketchConfig) -> Self {
        SingleLayerRcc {
            rcc: Rcc::new(cfg),
            stats: FilterStats::default(),
            digest_scratch: Vec::new(),
            lane_scratch: Vec::new(),
        }
    }

    /// Access to the underlying RCC layer.
    #[must_use]
    pub fn rcc(&self) -> &Rcc {
        &self.rcc
    }
}

impl FlowFilter for SingleLayerRcc {
    fn process(&mut self, pkt: &PacketRecord) -> Option<FlowUpdate> {
        self.stats.packets += 1;
        self.stats.hashes += 1;
        self.stats.mem_accesses += 1;
        let digest = FlowDigest::of(&pkt.key);
        let sat = self.rcc.encode_hashed(self.rcc.hash_digest(digest))?;
        self.stats.updates += 1;
        Some(FlowUpdate {
            key: pkt.key,
            digest,
            est_pkts: sat.estimate,
            est_bytes: sat.estimate * f64::from(pkt.wire_len),
            ts_nanos: pkt.ts_nanos,
        })
    }

    /// Batched baseline: digest + lane every packet up front (AVX2, four
    /// keys per step, where available), then drive [`Rcc::encode_batch`]
    /// (vectorized placement derivation + counter-word prefetch across
    /// the batch). Bit-identical to the scalar path.
    fn process_batch(&mut self, pkts: &[PacketRecord], out: &mut Vec<FlowUpdate>) {
        let mut digests = core::mem::take(&mut self.digest_scratch);
        let mut lanes = core::mem::take(&mut self.lane_scratch);
        instameasure_packet::simd::digest_lanes_into(
            pkts,
            self.rcc.config().seed(),
            &mut digests,
            &mut lanes,
        );

        self.stats.packets += pkts.len() as u64;
        self.stats.hashes += pkts.len() as u64;
        self.stats.mem_accesses += pkts.len() as u64;

        // Split borrows: the encode loop mutates the RCC while the sink
        // mutates the statistics and output buffer.
        let SingleLayerRcc { rcc, stats, .. } = self;
        rcc.encode_batch(&lanes, |i, sat| {
            stats.updates += 1;
            out.push(FlowUpdate {
                key: pkts[i].key,
                digest: digests[i],
                est_pkts: sat.estimate,
                est_bytes: sat.estimate * f64::from(pkts[i].wire_len),
                ts_nanos: pkts[i].ts_nanos,
            });
        });

        self.digest_scratch = digests;
        self.lane_scratch = lanes;
    }

    fn estimate_packets(&self, digest: FlowDigest) -> f64 {
        self.rcc.residual_hashed(self.rcc.hash_digest(digest))
    }

    fn stats(&self) -> FilterStats {
        self.stats
    }

    fn memory_bytes(&self) -> usize {
        self.rcc.config().memory_bytes()
    }

    fn reset(&mut self) {
        self.rcc.reset();
        self.stats = FilterStats::default();
    }
}

impl Instrumented for SingleLayerRcc {
    /// Exports the baseline regulator's counters under the `rcc.` prefix,
    /// mirroring the names [`crate::FlowRegulator`] uses under
    /// `regulator.` so the two are comparable side by side.
    fn telemetry(&self) -> Snapshot {
        let mut snap = Snapshot::new();
        snap.set_counter("rcc.packets", self.stats.packets);
        snap.set_counter("rcc.updates", self.stats.updates);
        snap.set_counter("rcc.hashes", self.stats.hashes);
        snap.set_counter("rcc.mem_accesses", self.stats.mem_accesses);
        snap.set_gauge("rcc.regulation_rate", self.stats.regulation_rate());
        snap.set_gauge("rcc.fill_ratio", self.rcc.fill_ratio());
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instameasure_packet::{FlowKey, Protocol};

    fn key(i: u32) -> FlowKey {
        FlowKey::new(i.to_be_bytes(), [9, 9, 9, 9], 10, 20, Protocol::Udp)
    }

    fn pkt(i: u32, t: u64) -> PacketRecord {
        PacketRecord::new(key(i), 500, t)
    }

    #[test]
    fn stats_rates() {
        let s = FilterStats { packets: 200, updates: 25, mem_accesses: 210, hashes: 200 };
        assert!((s.regulation_rate() - 0.125).abs() < 1e-12);
        assert!((s.accesses_per_packet() - 1.05).abs() < 1e-12);
        assert_eq!(FilterStats::default().regulation_rate(), 0.0);
        assert_eq!(FilterStats::default().accesses_per_packet(), 0.0);
    }

    #[test]
    fn single_layer_regulation_rate_matches_fig1() {
        // Paper Fig. 1: 8-bit RCC passes 12–19% of packets through to the
        // WSAF. For a single elephant flow the rate is 1/coupon ≈ 14%.
        let cfg = SketchConfig::builder().memory_bytes(4096).vector_bits(8).build().unwrap();
        let mut reg = SingleLayerRcc::new(cfg);
        for t in 0..100_000u64 {
            reg.process(&pkt(1, t));
        }
        let rate = reg.stats().regulation_rate();
        assert!((0.10..0.20).contains(&rate), "RCC regulation rate {rate}");
    }

    #[test]
    fn single_layer_one_access_one_hash_per_packet() {
        let mut reg = SingleLayerRcc::new(SketchConfig::default());
        for t in 0..1000 {
            reg.process(&pkt(t as u32 % 10, t));
        }
        let s = reg.stats();
        assert_eq!(s.mem_accesses, 1000);
        assert_eq!(s.hashes, 1000);
    }

    #[test]
    fn updates_carry_byte_estimates() {
        let cfg = SketchConfig::builder().memory_bytes(4096).vector_bits(8).build().unwrap();
        let mut reg = SingleLayerRcc::new(cfg);
        let mut saw_update = false;
        for t in 0..1000u64 {
            if let Some(u) = reg.process(&PacketRecord::new(key(1), 1500, t)) {
                assert!((u.est_bytes - u.est_pkts * 1500.0).abs() < 1e-9);
                assert_eq!(u.ts_nanos, t);
                saw_update = true;
            }
        }
        assert!(saw_update);
    }

    #[test]
    fn batch_is_bit_identical_to_scalar() {
        let trace: Vec<PacketRecord> = (0..5_000u64)
            .map(|t| PacketRecord::new(key((t % 23) as u32), 200 + (t % 1300) as u16, t))
            .collect();
        for chunk in [1usize, 7, 64, 333, 5_000] {
            let cfg = SketchConfig::builder().memory_bytes(2048).vector_bits(8).build().unwrap();
            let mut scalar = SingleLayerRcc::new(cfg);
            let mut batched = SingleLayerRcc::new(cfg);

            let mut scalar_out = Vec::new();
            for pkt in &trace {
                if let Some(u) = scalar.process(pkt) {
                    scalar_out.push(u);
                }
            }
            let mut batch_out = Vec::new();
            for pkts in trace.chunks(chunk) {
                batched.process_batch(pkts, &mut batch_out);
            }

            assert_eq!(scalar_out, batch_out, "chunk={chunk}");
            assert_eq!(scalar.stats(), batched.stats(), "chunk={chunk}");
            for i in 0..23 {
                let a = scalar.residual_packets(&key(i));
                let b = batched.residual_packets(&key(i));
                assert_eq!(a.to_bits(), b.to_bits(), "chunk={chunk} flow={i}");
            }
        }
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut reg = SingleLayerRcc::new(SketchConfig::default());
        for t in 0..100 {
            reg.process(&pkt(1, t));
        }
        reg.reset();
        assert_eq!(reg.stats(), FilterStats::default());
        assert_eq!(reg.residual_packets(&key(1)), 0.0);
    }

    #[test]
    fn digest_estimate_matches_key_residual() {
        let mut reg = SingleLayerRcc::new(SketchConfig::default());
        for t in 0..500 {
            reg.process(&pkt(3, t));
        }
        let by_key = reg.residual_packets(&key(3));
        let by_digest = reg.estimate_packets(FlowDigest::of(&key(3)));
        assert_eq!(by_key.to_bits(), by_digest.to_bits());
    }
}
