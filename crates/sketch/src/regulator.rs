//! The [`Regulator`] abstraction: anything that sits between the packet
//! stream and the WSAF table, retaining mice flows and emitting occasional
//! accumulated updates for elephants.

use instameasure_packet::{FlowDigest, FlowKey, PacketRecord};
use instameasure_telemetry::{Instrumented, Snapshot};

use crate::config::SketchConfig;
use crate::rcc::Rcc;

/// An accumulated count released by a regulator toward the WSAF table
/// (`ACC_WSAF(f, est_pkt, est_byte)` in the paper's Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowUpdate {
    /// The flow being credited.
    pub key: FlowKey,
    /// The flow's hash-once digest, carried along so the WSAF can derive
    /// its probe hash without rehashing the key bytes.
    pub digest: FlowDigest,
    /// Estimated packets accumulated since the flow's previous update.
    pub est_pkts: f64,
    /// Estimated bytes, via the saturation-sampling rule
    /// `est_pkts × len(trigger packet)` (§III-C).
    pub est_bytes: f64,
    /// Timestamp of the packet that triggered the update.
    pub ts_nanos: u64,
}

/// Work counters for a regulator; the basis of the rate-regulation figures
/// (paper Figs. 1 and 7) and of the cost claims of §III-A.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegulatorStats {
    /// Packets processed.
    pub packets: u64,
    /// WSAF updates emitted (insertion requests; "ips" numerator).
    pub updates: u64,
    /// Counter-word memory accesses performed.
    pub mem_accesses: u64,
    /// Flow-hash computations performed.
    pub hashes: u64,
}

impl RegulatorStats {
    /// Output-updates-per-input-packet: the paper's *rate regulation*
    /// (`ips / pps`); lower is better for the WSAF.
    #[must_use]
    pub fn regulation_rate(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.updates as f64 / self.packets as f64
        }
    }

    /// Average counter memory accesses per packet.
    #[must_use]
    pub fn accesses_per_packet(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.mem_accesses as f64 / self.packets as f64
        }
    }
}

/// A flow regulator: encodes packets, retains mice flows, emits accumulated
/// [`FlowUpdate`]s when sketches saturate.
pub trait Regulator {
    /// Feeds one packet through the regulator. Returns an update exactly
    /// when a saturation releases an accumulated count toward the WSAF.
    fn process(&mut self, pkt: &PacketRecord) -> Option<FlowUpdate>;

    /// Feeds a batch of packets, appending released updates to `out` in
    /// packet order. Must be bit-identical (sketch state, statistics and
    /// emitted updates) to calling [`Regulator::process`] on each packet in
    /// order; implementations override it to hash once per packet up front
    /// and prefetch counter words across the batch.
    fn process_batch(&mut self, pkts: &[PacketRecord], out: &mut Vec<FlowUpdate>) {
        for pkt in pkts {
            if let Some(u) = self.process(pkt) {
                out.push(u);
            }
        }
    }

    /// Estimated packets currently retained for `key` (not yet released to
    /// the WSAF) — the packet-arrival-based decode of the running cycles.
    fn residual_packets(&self, key: &FlowKey) -> f64;

    /// Work counters.
    fn stats(&self) -> RegulatorStats;

    /// Total sketch memory in bytes (all layers).
    fn memory_bytes(&self) -> usize;

    /// Clears all sketch state and statistics.
    fn reset(&mut self);
}

/// Single-layer RCC used as the paper's baseline regulator (Figs. 1, 7, 8):
/// every L1 saturation goes straight to the WSAF.
#[derive(Debug, Clone)]
pub struct SingleLayerRcc {
    rcc: Rcc,
    stats: RegulatorStats,
    /// Recycled per-batch scratch: one digest and one lane hash per packet.
    digest_scratch: Vec<FlowDigest>,
    lane_scratch: Vec<u64>,
}

impl SingleLayerRcc {
    /// Creates the baseline regulator.
    #[must_use]
    pub fn new(cfg: SketchConfig) -> Self {
        SingleLayerRcc {
            rcc: Rcc::new(cfg),
            stats: RegulatorStats::default(),
            digest_scratch: Vec::new(),
            lane_scratch: Vec::new(),
        }
    }

    /// Access to the underlying RCC layer.
    #[must_use]
    pub fn rcc(&self) -> &Rcc {
        &self.rcc
    }
}

impl Regulator for SingleLayerRcc {
    fn process(&mut self, pkt: &PacketRecord) -> Option<FlowUpdate> {
        self.stats.packets += 1;
        self.stats.hashes += 1;
        self.stats.mem_accesses += 1;
        let digest = FlowDigest::of(&pkt.key);
        let sat = self.rcc.encode_hashed(self.rcc.hash_digest(digest))?;
        self.stats.updates += 1;
        Some(FlowUpdate {
            key: pkt.key,
            digest,
            est_pkts: sat.estimate,
            est_bytes: sat.estimate * f64::from(pkt.wire_len),
            ts_nanos: pkt.ts_nanos,
        })
    }

    /// Batched baseline: hash every packet once up front, then drive
    /// [`Rcc::encode_batch`] (which prefetches counter words across the
    /// batch). Bit-identical to the scalar path.
    fn process_batch(&mut self, pkts: &[PacketRecord], out: &mut Vec<FlowUpdate>) {
        let mut digests = core::mem::take(&mut self.digest_scratch);
        let mut lanes = core::mem::take(&mut self.lane_scratch);
        digests.clear();
        lanes.clear();
        for pkt in pkts {
            let d = FlowDigest::of(&pkt.key);
            digests.push(d);
            lanes.push(self.rcc.hash_digest(d));
        }

        self.stats.packets += pkts.len() as u64;
        self.stats.hashes += pkts.len() as u64;
        self.stats.mem_accesses += pkts.len() as u64;

        // Split borrows: the encode loop mutates the RCC while the sink
        // mutates the statistics and output buffer.
        let SingleLayerRcc { rcc, stats, .. } = self;
        rcc.encode_batch(&lanes, |i, sat| {
            stats.updates += 1;
            out.push(FlowUpdate {
                key: pkts[i].key,
                digest: digests[i],
                est_pkts: sat.estimate,
                est_bytes: sat.estimate * f64::from(pkts[i].wire_len),
                ts_nanos: pkts[i].ts_nanos,
            });
        });

        self.digest_scratch = digests;
        self.lane_scratch = lanes;
    }

    fn residual_packets(&self, key: &FlowKey) -> f64 {
        self.rcc.residual(key)
    }

    fn stats(&self) -> RegulatorStats {
        self.stats
    }

    fn memory_bytes(&self) -> usize {
        self.rcc.config().memory_bytes()
    }

    fn reset(&mut self) {
        self.rcc.reset();
        self.stats = RegulatorStats::default();
    }
}

impl Instrumented for SingleLayerRcc {
    /// Exports the baseline regulator's counters under the `rcc.` prefix,
    /// mirroring the names [`crate::FlowRegulator`] uses under
    /// `regulator.` so the two are comparable side by side.
    fn telemetry(&self) -> Snapshot {
        let mut snap = Snapshot::new();
        snap.set_counter("rcc.packets", self.stats.packets);
        snap.set_counter("rcc.updates", self.stats.updates);
        snap.set_counter("rcc.hashes", self.stats.hashes);
        snap.set_counter("rcc.mem_accesses", self.stats.mem_accesses);
        snap.set_gauge("rcc.regulation_rate", self.stats.regulation_rate());
        snap.set_gauge("rcc.fill_ratio", self.rcc.fill_ratio());
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instameasure_packet::Protocol;

    fn key(i: u32) -> FlowKey {
        FlowKey::new(i.to_be_bytes(), [9, 9, 9, 9], 10, 20, Protocol::Udp)
    }

    fn pkt(i: u32, t: u64) -> PacketRecord {
        PacketRecord::new(key(i), 500, t)
    }

    #[test]
    fn stats_rates() {
        let s = RegulatorStats { packets: 200, updates: 25, mem_accesses: 210, hashes: 200 };
        assert!((s.regulation_rate() - 0.125).abs() < 1e-12);
        assert!((s.accesses_per_packet() - 1.05).abs() < 1e-12);
        assert_eq!(RegulatorStats::default().regulation_rate(), 0.0);
        assert_eq!(RegulatorStats::default().accesses_per_packet(), 0.0);
    }

    #[test]
    fn single_layer_regulation_rate_matches_fig1() {
        // Paper Fig. 1: 8-bit RCC passes 12–19% of packets through to the
        // WSAF. For a single elephant flow the rate is 1/coupon ≈ 14%.
        let cfg = SketchConfig::builder().memory_bytes(4096).vector_bits(8).build().unwrap();
        let mut reg = SingleLayerRcc::new(cfg);
        for t in 0..100_000u64 {
            reg.process(&pkt(1, t));
        }
        let rate = reg.stats().regulation_rate();
        assert!((0.10..0.20).contains(&rate), "RCC regulation rate {rate}");
    }

    #[test]
    fn single_layer_one_access_one_hash_per_packet() {
        let mut reg = SingleLayerRcc::new(SketchConfig::default());
        for t in 0..1000 {
            reg.process(&pkt(t as u32 % 10, t));
        }
        let s = reg.stats();
        assert_eq!(s.mem_accesses, 1000);
        assert_eq!(s.hashes, 1000);
    }

    #[test]
    fn updates_carry_byte_estimates() {
        let cfg = SketchConfig::builder().memory_bytes(4096).vector_bits(8).build().unwrap();
        let mut reg = SingleLayerRcc::new(cfg);
        let mut saw_update = false;
        for t in 0..1000u64 {
            if let Some(u) = reg.process(&PacketRecord::new(key(1), 1500, t)) {
                assert!((u.est_bytes - u.est_pkts * 1500.0).abs() < 1e-9);
                assert_eq!(u.ts_nanos, t);
                saw_update = true;
            }
        }
        assert!(saw_update);
    }

    #[test]
    fn batch_is_bit_identical_to_scalar() {
        let trace: Vec<PacketRecord> = (0..5_000u64)
            .map(|t| PacketRecord::new(key((t % 23) as u32), 200 + (t % 1300) as u16, t))
            .collect();
        for chunk in [1usize, 7, 64, 333, 5_000] {
            let cfg = SketchConfig::builder().memory_bytes(2048).vector_bits(8).build().unwrap();
            let mut scalar = SingleLayerRcc::new(cfg);
            let mut batched = SingleLayerRcc::new(cfg);

            let mut scalar_out = Vec::new();
            for pkt in &trace {
                if let Some(u) = scalar.process(pkt) {
                    scalar_out.push(u);
                }
            }
            let mut batch_out = Vec::new();
            for pkts in trace.chunks(chunk) {
                batched.process_batch(pkts, &mut batch_out);
            }

            assert_eq!(scalar_out, batch_out, "chunk={chunk}");
            assert_eq!(scalar.stats(), batched.stats(), "chunk={chunk}");
            for i in 0..23 {
                let a = scalar.residual_packets(&key(i));
                let b = batched.residual_packets(&key(i));
                assert_eq!(a.to_bits(), b.to_bits(), "chunk={chunk} flow={i}");
            }
        }
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut reg = SingleLayerRcc::new(SketchConfig::default());
        for t in 0..100 {
            reg.process(&pkt(1, t));
        }
        reg.reset();
        assert_eq!(reg.stats(), RegulatorStats::default());
        assert_eq!(reg.residual_packets(&key(1)), 0.0);
    }
}
