//! N-layer generalization of the FlowRegulator.
//!
//! §V-B of the paper notes that for a WSAF in even faster memory (TCAM),
//! "FlowRegulator can be configured to have enough margin by adjusting the
//! vector size or even the number of layers". This module implements that
//! extension: a counter with `L ≥ 1` layers in which each bit of layer
//! `k+1` encodes one saturation of layer `k`, so retention capacity grows
//! like `capacity(L1)^L` and the regulation rate shrinks geometrically.
//!
//! Layer 1 keeps the noise-class structure (one layer-2 branch per class);
//! deeper layers each use a single follow-on counter per branch — after
//! layer 2 the release quantum is already so coarse that per-class
//! branching buys nothing but memory.

use instameasure_packet::{FlowDigest, PacketRecord};
use instameasure_telemetry::{Instrumented, Snapshot};

use crate::config::SketchConfig;
use crate::decode;
use crate::filter::{FilterStats, FlowFilter, FlowUpdate};
use crate::rcc::Rcc;

/// One branch of the cascade: the chain of counters hanging under a single
/// L1 noise class.
#[derive(Debug, Clone)]
struct Branch {
    chain: Vec<Rcc>,
}

/// A FlowRegulator with a configurable number of layers (2 = the paper's
/// design, 3+ = the paper's TCAM-margin extension, 1 = plain RCC).
///
/// # Example
///
/// ```
/// use instameasure_packet::{FlowKey, PacketRecord, Protocol};
/// use instameasure_sketch::{FlowFilter, MultiLayerRegulator, SketchConfig};
///
/// let cfg = SketchConfig::builder().memory_bytes(8 * 1024).build()?;
/// let mut three = MultiLayerRegulator::new(cfg, 3);
/// let key = FlowKey::new([9, 9, 9, 9], [1, 1, 1, 1], 5, 5, Protocol::Udp);
/// for t in 0..200_000u64 {
///     three.process(&PacketRecord::new(key, 700, t));
/// }
/// // Three layers regulate far harder than two (~0.1% vs ~2%).
/// assert!(three.stats().regulation_rate() < 0.005);
/// # Ok::<(), instameasure_sketch::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MultiLayerRegulator {
    l1: Rcc,
    branches: Vec<Branch>,
    layers: u32,
    stats: FilterStats,
}

impl MultiLayerRegulator {
    /// Creates a regulator with `layers` layers (1..=6) over the given L1
    /// geometry. Every layer allocates the same memory as L1.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is 0 or greater than 6 (beyond six layers the
    /// release quantum exceeds any realistic measurement window).
    #[must_use]
    pub fn new(cfg: SketchConfig, layers: u32) -> Self {
        assert!((1..=6).contains(&layers), "layers must be in 1..=6");
        let classes = cfg.noise_classes() as usize;
        let branches = if layers >= 2 {
            (0..classes)
                .map(|_| Branch { chain: (0..layers - 1).map(|_| Rcc::new(cfg)).collect() })
                .collect()
        } else {
            Vec::new()
        };
        MultiLayerRegulator { l1: Rcc::new(cfg), branches, layers, stats: FilterStats::default() }
    }

    /// Number of layers.
    #[must_use]
    pub fn layers(&self) -> u32 {
        self.layers
    }

    /// The shared layer geometry.
    #[must_use]
    pub fn config(&self) -> &SketchConfig {
        self.l1.config()
    }

    /// Analytic retention capacity for this geometry and layer count:
    /// `capacity(L1) × capacity(layer)^(layers-1)` packets.
    #[must_use]
    pub fn model_retention(&self) -> f64 {
        let b = self.config().vector_bits();
        let epoch = decode::saturation_period(b, self.config().noise_max());
        epoch.powi(self.layers as i32)
    }
}

impl FlowFilter for MultiLayerRegulator {
    /// Cascaded encode: a saturation at layer `k` encodes one bit at layer
    /// `k+1`; only a saturation of the *last* layer releases an update,
    /// whose estimate is the product of the decodes along the chain.
    fn process(&mut self, pkt: &PacketRecord) -> Option<FlowUpdate> {
        self.stats.packets += 1;
        self.stats.hashes += 1;
        let digest = FlowDigest::of(&pkt.key);
        let h = self.l1.hash_digest(digest);

        self.stats.mem_accesses += 1;
        let sat1 = self.l1.encode_hashed(h)?;
        let mut estimate = sat1.estimate;
        if self.layers == 1 {
            self.stats.updates += 1;
            return Some(FlowUpdate {
                key: pkt.key,
                digest,
                est_pkts: estimate,
                est_bytes: estimate * f64::from(pkt.wire_len),
                ts_nanos: pkt.ts_nanos,
            });
        }

        let branch = &mut self.branches[(sat1.noise_class - 1) as usize];
        for layer in &mut branch.chain {
            self.stats.mem_accesses += 1;
            let sat = layer.encode_hashed(h)?;
            estimate *= sat.estimate;
        }

        self.stats.updates += 1;
        Some(FlowUpdate {
            key: pkt.key,
            digest,
            est_pkts: estimate,
            est_bytes: estimate * f64::from(pkt.wire_len),
            ts_nanos: pkt.ts_nanos,
        })
    }

    /// Residual: L1's cycle plus, per branch, the chain decoded inward
    /// (each level's residual scaled by the release quantum beneath it).
    fn estimate_packets(&self, digest: FlowDigest) -> f64 {
        let h = self.l1.hash_digest(digest);
        let mut total = self.l1.residual_hashed(h);
        let b = self.config().vector_bits();
        for (idx, branch) in self.branches.iter().enumerate() {
            let class = idx as u32 + 1;
            // Quantum represented by one bit at successive depths.
            let mut unit = decode::estimate_own_packets(b, class, 0.0).max(1.0);
            let epoch = decode::saturation_period(b, self.config().noise_max());
            for layer in &branch.chain {
                let level_count = layer.residual_hashed(h);
                if level_count > 0.0 {
                    total += level_count * unit;
                }
                unit *= epoch;
            }
        }
        total
    }

    fn stats(&self) -> FilterStats {
        self.stats
    }

    fn memory_bytes(&self) -> usize {
        let per_layer = self.config().memory_bytes();
        per_layer + self.branches.iter().map(|b| b.chain.len() * per_layer).sum::<usize>()
    }

    fn reset(&mut self) {
        self.l1.reset();
        for b in &mut self.branches {
            for l in &mut b.chain {
                l.reset();
            }
        }
        self.stats = FilterStats::default();
    }
}

impl Instrumented for MultiLayerRegulator {
    /// Exports the cascade's counters under the `multilayer.` prefix.
    fn telemetry(&self) -> Snapshot {
        let mut snap = Snapshot::new();
        snap.set_counter("multilayer.packets", self.stats.packets);
        snap.set_counter("multilayer.updates", self.stats.updates);
        snap.set_counter("multilayer.hashes", self.stats.hashes);
        snap.set_counter("multilayer.mem_accesses", self.stats.mem_accesses);
        snap.set_counter("multilayer.layers", u64::from(self.layers));
        snap.set_gauge("multilayer.regulation_rate", self.stats.regulation_rate());
        snap.set_gauge("multilayer.l1.fill_ratio", self.l1.fill_ratio());
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instameasure_packet::{FlowKey, Protocol};

    fn key(i: u32) -> FlowKey {
        FlowKey::new(i.to_be_bytes(), [2, 2, 2, 2], 7, 7, Protocol::Tcp)
    }

    fn pkt(i: u32, t: u64) -> PacketRecord {
        PacketRecord::new(key(i), 900, t)
    }

    fn cfg() -> SketchConfig {
        SketchConfig::builder().memory_bytes(8 * 1024).vector_bits(8).seed(5).build().unwrap()
    }

    #[test]
    fn one_layer_behaves_like_single_rcc() {
        let mut ml = MultiLayerRegulator::new(cfg(), 1);
        for t in 0..50_000u64 {
            ml.process(&pkt(1, t));
        }
        let rate = ml.stats().regulation_rate();
        assert!((0.10..0.20).contains(&rate), "1-layer rate {rate}");
        assert_eq!(ml.memory_bytes(), cfg().memory_bytes());
    }

    #[test]
    fn regulation_shrinks_geometrically_with_layers() {
        let mut rates = Vec::new();
        for layers in 1..=3u32 {
            let mut ml = MultiLayerRegulator::new(cfg(), layers);
            for t in 0..400_000u64 {
                ml.process(&pkt(1, t));
            }
            rates.push(ml.stats().regulation_rate());
        }
        assert!(rates[1] < rates[0] / 3.0, "2 layers {} << 1 layer {}", rates[1], rates[0]);
        assert!(rates[2] < rates[1] / 3.0, "3 layers {} << 2 layers {}", rates[2], rates[1]);
    }

    #[test]
    fn retention_matches_model() {
        // Single isolated flow: packets per update ≈ model_retention.
        for layers in 1..=2u32 {
            let mut ml = MultiLayerRegulator::new(cfg(), layers);
            let n = 500_000u64;
            for t in 0..n {
                ml.process(&pkt(1, t));
            }
            let period = n as f64 / ml.stats().updates.max(1) as f64;
            let model = ml.model_retention();
            let rel = (period - model).abs() / model;
            assert!(rel < 0.30, "layers={layers}: period {period} vs model {model}");
        }
    }

    #[test]
    fn three_layer_estimate_is_conserved() {
        let mut ml = MultiLayerRegulator::new(cfg(), 3);
        let truth = 2_000_000u64;
        let mut released = 0.0;
        for t in 0..truth {
            if let Some(u) = ml.process(&pkt(1, t)) {
                released += u.est_pkts;
            }
        }
        let total = released + ml.residual_packets(&key(1));
        let rel = (total - truth as f64).abs() / truth as f64;
        // One 3-layer cycle retains ~350 packets; tolerance accordingly.
        assert!(rel < 0.25, "estimate {total} vs {truth} ({rel})");
    }

    #[test]
    fn memory_accounting() {
        // 8 KB L1, 3 classes, layers-1 extra counters per class.
        let ml = MultiLayerRegulator::new(cfg(), 3);
        assert_eq!(ml.memory_bytes(), 8 * 1024 * (1 + 3 * 2));
    }

    #[test]
    fn accesses_bounded_by_layer_count() {
        let mut ml = MultiLayerRegulator::new(cfg(), 4);
        let n = 100_000u64;
        for t in 0..n {
            ml.process(&pkt((t % 5) as u32, t));
        }
        let s = ml.stats();
        assert!(s.accesses_per_packet() <= 4.0);
        assert!(s.accesses_per_packet() < 1.3, "deep layers are touched rarely");
        assert_eq!(s.hashes, n);
    }

    #[test]
    fn reset_clears_cascade() {
        let mut ml = MultiLayerRegulator::new(cfg(), 3);
        for t in 0..10_000u64 {
            ml.process(&pkt(1, t));
        }
        ml.reset();
        assert_eq!(ml.stats(), FilterStats::default());
        assert_eq!(ml.residual_packets(&key(1)), 0.0);
    }

    #[test]
    #[should_panic(expected = "layers must be in 1..=6")]
    fn rejects_zero_layers() {
        let _ = MultiLayerRegulator::new(cfg(), 0);
    }
}
