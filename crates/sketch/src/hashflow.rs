//! HashFlow-style front end: a multi-way main table plus a small ancillary
//! table with count-based promotion (see PAPERS.md).
//!
//! The main table `M` is `D` equal sub-tables probed in order; a flow
//! lives in at most one slot and its counts there are exact. Flows that
//! find every probe occupied spill into the ancillary table `A`, where
//! they keep counting; once an ancillary flow outgrows the smallest of
//! its main-table candidates it is *promoted* — it takes that slot, and
//! the demoted resident's exact record is exported toward the WSAF. An
//! ancillary collision likewise exports the resident before the newcomer
//! claims the slot (NetFlow-style export-on-eviction), so every released
//! update carries exact totals and the stream is conserved bit-for-bit.

use instameasure_packet::{prefetch, FlowDigest, FlowKey, PacketRecord};
use instameasure_telemetry::{Instrumented, Snapshot};

use crate::filter::{FilterStats, FlowFilter, FlowUpdate};

/// Number of main-table sub-tables (probe depth).
const D: usize = 3;

/// Accounted bytes per slot: 13-byte flow key + 4-byte packet counter +
/// 8-byte byte counter (the cached digest is derivable and not counted).
const SLOT_BYTES: usize = 25;

/// Lane-seed decorrelators for the `D` main sub-tables and the ancillary
/// table — distinct constants so one digest yields independent probes.
const LANE_SALTS: [u64; D] = [0x4A5A_F10E_0000_0001, 0x4A5A_F10E_0000_0002, 0x4A5A_F10E_0000_0003];

#[derive(Debug, Clone, Copy)]
struct Slot {
    key: FlowKey,
    digest: FlowDigest,
    pkts: u32,
    bytes: u64,
}

/// The HashFlow front end (see module docs).
#[derive(Debug, Clone)]
pub struct HashFlowFilter {
    /// `D` sub-tables laid out back to back, each `sub_len` slots.
    main: Vec<Option<Slot>>,
    sub_len: usize,
    ancillary: Vec<Option<Slot>>,
    seed: u64,
    stats: FilterStats,
    promotions: u64,
    collisions: u64,
    /// Recycled digest buffer for the batched hot path.
    batch_scratch: Vec<FlowDigest>,
    /// Recycled lane/first-probe-index buffer for the batched hot path.
    lane_scratch: Vec<u64>,
}

impl HashFlowFilter {
    /// Creates a HashFlow filter over a total memory budget: 1/8 ancillary,
    /// the rest split evenly across the `D` main sub-tables (rounded down
    /// to whole slots, so [`FlowFilter::memory_bytes`] never exceeds
    /// `budget_bytes`; tiny budgets are padded up to one slot per table).
    #[must_use]
    pub fn new(budget_bytes: usize, seed: u64) -> Self {
        let anc_slots = ((budget_bytes / 8) / SLOT_BYTES).max(1);
        let main_bytes = budget_bytes.saturating_sub(anc_slots * SLOT_BYTES);
        let sub_len = ((main_bytes / SLOT_BYTES) / D).max(1);
        HashFlowFilter {
            main: vec![None; sub_len * D],
            sub_len,
            ancillary: vec![None; anc_slots],
            seed,
            stats: FilterStats::default(),
            promotions: 0,
            collisions: 0,
            batch_scratch: Vec::new(),
            lane_scratch: Vec::new(),
        }
    }

    /// Slots in the main table (all sub-tables).
    #[must_use]
    pub fn main_slots(&self) -> usize {
        self.main.len()
    }

    /// Slots in the ancillary table.
    #[must_use]
    pub fn ancillary_slots(&self) -> usize {
        self.ancillary.len()
    }

    /// Fraction of main-table slots occupied.
    #[must_use]
    pub fn main_fill_ratio(&self) -> f64 {
        let used = self.main.iter().filter(|s| s.is_some()).count();
        used as f64 / self.main.len() as f64
    }

    fn main_index(&self, digest: FlowDigest, table: usize) -> usize {
        let lane = digest.lane(self.seed ^ LANE_SALTS[table]);
        table * self.sub_len + (lane % self.sub_len as u64) as usize
    }

    fn anc_index(&self, digest: FlowDigest) -> usize {
        (digest.lane(self.seed ^ 0xA4C1_11A2_7AB1_E000) % self.ancillary.len() as u64) as usize
    }

    fn export(slot: Slot, ts_nanos: u64) -> FlowUpdate {
        FlowUpdate {
            key: slot.key,
            digest: slot.digest,
            est_pkts: f64::from(slot.pkts),
            est_bytes: slot.bytes as f64,
            ts_nanos,
        }
    }

    /// The per-packet decision with the digest and first-probe slot index
    /// already computed (`idx0` must equal `self.main_index(digest, 0)`)
    /// — the shared tail of the scalar and batched paths, so both stay
    /// bit-identical by construction.
    fn process_prepared(
        &mut self,
        pkt: &PacketRecord,
        digest: FlowDigest,
        idx0: usize,
    ) -> Option<FlowUpdate> {
        self.stats.packets += 1;
        self.stats.hashes += 1;
        let len = u64::from(pkt.wire_len);

        // Probe the main sub-tables in order: count on match, claim the
        // first empty slot, otherwise remember the smallest resident as
        // the promotion candidate.
        let mut min_idx = usize::MAX;
        let mut min_pkts = u32::MAX;
        for t in 0..D {
            let idx = if t == 0 { idx0 } else { self.main_index(digest, t) };
            self.stats.mem_accesses += 1;
            match &mut self.main[idx] {
                Some(s) if s.digest == digest && s.key == pkt.key => {
                    s.pkts += 1;
                    s.bytes += len;
                    return None;
                }
                Some(s) => {
                    if s.pkts < min_pkts {
                        min_pkts = s.pkts;
                        min_idx = idx;
                    }
                }
                None => {
                    self.main[idx] = Some(Slot { key: pkt.key, digest, pkts: 1, bytes: len });
                    return None;
                }
            }
        }

        // Every main candidate is someone else's: count in the ancillary.
        let aidx = self.anc_index(digest);
        self.stats.mem_accesses += 1;
        match &mut self.ancillary[aidx] {
            Some(s) if s.digest == digest && s.key == pkt.key => {
                s.pkts += 1;
                s.bytes += len;
                if s.pkts > min_pkts {
                    // Promotion: the ancillary flow has outgrown the
                    // smallest main candidate, which is demoted and its
                    // exact record exported.
                    let promoted = self.ancillary[aidx].take().expect("just counted");
                    let demoted =
                        self.main[min_idx].replace(promoted).expect("candidate is occupied");
                    self.promotions += 1;
                    self.stats.updates += 1;
                    return Some(Self::export(demoted, pkt.ts_nanos));
                }
                None
            }
            Some(_) => {
                // Ancillary collision: export the resident, claim the slot.
                let resident = self.ancillary[aidx]
                    .replace(Slot { key: pkt.key, digest, pkts: 1, bytes: len })
                    .expect("resident is occupied");
                self.collisions += 1;
                self.stats.updates += 1;
                Some(Self::export(resident, pkt.ts_nanos))
            }
            None => {
                self.ancillary[aidx] = Some(Slot { key: pkt.key, digest, pkts: 1, bytes: len });
                None
            }
        }
    }
}

impl FlowFilter for HashFlowFilter {
    fn process(&mut self, pkt: &PacketRecord) -> Option<FlowUpdate> {
        let digest = FlowDigest::of(&pkt.key);
        let idx0 = self.main_index(digest, 0);
        self.process_prepared(pkt, digest, idx0)
    }

    /// Batched hot path: the AVX2 kernel digests four keys per step and
    /// derives their table-0 lanes (reduced to first-probe slot indices
    /// in place), then the first main-table probe slot of packet `i + K`
    /// is prefetched by its precomputed index while packet `i` is decided
    /// (K = [`prefetch::prefetch_distance`]). Later probes and the
    /// ancillary slot are not prefetched — whether a packet reaches them
    /// depends on the probes before, and the first sub-table absorbs most
    /// of the traffic.
    fn process_batch(&mut self, pkts: &[PacketRecord], out: &mut Vec<FlowUpdate>) {
        let mut scratch = core::mem::take(&mut self.batch_scratch);
        let mut lanes = core::mem::take(&mut self.lane_scratch);
        instameasure_packet::simd::digest_lanes_into(
            pkts,
            self.seed ^ LANE_SALTS[0],
            &mut scratch,
            &mut lanes,
        );
        // Table 0 starts at offset 0, so the first-probe index is just the
        // lane folded into the sub-table.
        let sub_len = self.sub_len as u64;
        for lane in &mut lanes {
            *lane %= sub_len;
        }

        let k = prefetch::prefetch_distance();
        for &idx in lanes.iter().take(k) {
            prefetch::prefetch_read_index(&self.main, idx as usize);
        }
        for (i, pkt) in pkts.iter().enumerate() {
            if let Some(&ahead) = lanes.get(i + k) {
                prefetch::prefetch_read_index(&self.main, ahead as usize);
            }
            if let Some(u) = self.process_prepared(pkt, scratch[i], lanes[i] as usize) {
                out.push(u);
            }
        }

        self.batch_scratch = scratch;
        self.lane_scratch = lanes;
    }

    fn estimate_packets(&self, digest: FlowDigest) -> f64 {
        for t in 0..D {
            if let Some(s) = &self.main[self.main_index(digest, t)] {
                if s.digest == digest {
                    return f64::from(s.pkts);
                }
            }
        }
        match &self.ancillary[self.anc_index(digest)] {
            Some(s) if s.digest == digest => f64::from(s.pkts),
            _ => 0.0,
        }
    }

    fn estimate_bytes(&self, digest: FlowDigest) -> Option<f64> {
        for t in 0..D {
            if let Some(s) = &self.main[self.main_index(digest, t)] {
                if s.digest == digest {
                    return Some(s.bytes as f64);
                }
            }
        }
        Some(match &self.ancillary[self.anc_index(digest)] {
            Some(s) if s.digest == digest => s.bytes as f64,
            _ => 0.0,
        })
    }

    fn stats(&self) -> FilterStats {
        self.stats
    }

    fn memory_bytes(&self) -> usize {
        (self.main.len() + self.ancillary.len()) * SLOT_BYTES
    }

    fn reset(&mut self) {
        self.main.fill(None);
        self.ancillary.fill(None);
        self.stats = FilterStats::default();
        self.promotions = 0;
        self.collisions = 0;
    }
}

impl Instrumented for HashFlowFilter {
    /// Exports counters under the `hashflow.` prefix: the shared work
    /// counters plus the design-specific `promotions` and `collisions`.
    fn telemetry(&self) -> Snapshot {
        let mut snap = Snapshot::new();
        snap.set_counter("hashflow.packets", self.stats.packets);
        snap.set_counter("hashflow.updates", self.stats.updates);
        snap.set_counter("hashflow.hashes", self.stats.hashes);
        snap.set_counter("hashflow.mem_accesses", self.stats.mem_accesses);
        snap.set_counter("hashflow.promotions", self.promotions);
        snap.set_counter("hashflow.collisions", self.collisions);
        snap.set_gauge("hashflow.regulation_rate", self.stats.regulation_rate());
        snap.set_gauge("hashflow.main_fill_ratio", self.main_fill_ratio());
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instameasure_packet::Protocol;

    fn key(i: u32) -> FlowKey {
        FlowKey::new(i.to_be_bytes(), [7, 7, 7, 7], 53, 5353, Protocol::Udp)
    }

    fn pkt(i: u32, len: u16, t: u64) -> PacketRecord {
        PacketRecord::new(key(i), len, t)
    }

    #[test]
    fn budget_split_and_accounting() {
        let f = HashFlowFilter::new(100 * 1024, 1);
        assert!(f.memory_bytes() <= 100 * 1024);
        let anc = f.ancillary_slots() as f64 / (f.main_slots() + f.ancillary_slots()) as f64;
        assert!((anc - 0.125).abs() < 0.01, "ancillary share {anc}");
        assert_eq!(f.main_slots() % D, 0);
    }

    #[test]
    fn resident_flows_count_exactly() {
        let mut f = HashFlowFilter::new(64 * 1024, 2);
        let n = 5_000u64;
        for t in 0..n {
            assert_eq!(f.process(&pkt(1, 900, t)), None, "lone flow never evicts");
        }
        let d = FlowDigest::of(&key(1));
        assert_eq!(f.estimate_packets(d), n as f64);
        assert_eq!(f.estimate_bytes(d), Some(n as f64 * 900.0));
    }

    #[test]
    fn stream_is_conserved_exactly() {
        let mut f = HashFlowFilter::new(4 * 1024, 3);
        let n = 40_000u64;
        let mut released_pkts = 0.0;
        let mut released_bytes = 0.0;
        for t in 0..n {
            let p = pkt((t % 500) as u32, 200 + (t % 800) as u16, t);
            if let Some(u) = f.process(&p) {
                released_pkts += u.est_pkts;
                released_bytes += u.est_bytes;
            }
        }
        let mut retained_pkts = 0.0;
        let mut retained_bytes = 0.0;
        for i in 0..500u32 {
            let d = FlowDigest::of(&key(i));
            retained_pkts += f.estimate_packets(d);
            retained_bytes += f.estimate_bytes(d).unwrap();
        }
        assert_eq!(released_pkts + retained_pkts, n as f64);
        assert!(released_bytes + retained_bytes > 0.0);
    }

    #[test]
    fn heavy_ancillary_flow_gets_promoted() {
        // Fill a tiny main table with mice, then drive one elephant: it
        // must end up promoted into the main table and demote a resident.
        let mut f = HashFlowFilter::new(2 * 1024, 4);
        for i in 0..200u32 {
            for t in 0..2u64 {
                f.process(&pkt(i, 100, t));
            }
        }
        for t in 0..2_000u64 {
            f.process(&pkt(9_999, 1500, 100 + t));
        }
        assert!(f.telemetry().counter("hashflow.promotions").unwrap() > 0);
        let d = FlowDigest::of(&key(9_999));
        assert!(f.estimate_packets(d) > 0.0, "elephant is retained after promotion");
    }

    #[test]
    fn at_most_d_plus_one_accesses_per_packet() {
        let mut f = HashFlowFilter::new(8 * 1024, 5);
        for t in 0..10_000u64 {
            f.process(&pkt((t % 97) as u32, 400, t));
        }
        let apx = f.stats().accesses_per_packet();
        assert!(apx <= (D + 1) as f64, "{apx}");
        assert!(apx >= 1.0);
    }

    #[test]
    fn batch_is_bit_identical_to_scalar() {
        // Enough flows over a tiny table that matches, claims, ancillary
        // counting, promotions and collision exports all fire.
        let trace: Vec<PacketRecord> =
            (0..30_000u64).map(|t| pkt((t % 600) as u32, 150 + (t % 900) as u16, t)).collect();
        for chunk in [1usize, 11, 256, 30_000] {
            let mut scalar = HashFlowFilter::new(3 * 1024, 8);
            let mut batched = HashFlowFilter::new(3 * 1024, 8);

            let mut scalar_out = Vec::new();
            for p in &trace {
                if let Some(u) = scalar.process(p) {
                    scalar_out.push(u);
                }
            }
            let mut batch_out = Vec::new();
            for pkts in trace.chunks(chunk) {
                batched.process_batch(pkts, &mut batch_out);
            }

            assert_eq!(scalar_out, batch_out, "chunk={chunk}");
            assert_eq!(scalar.stats(), batched.stats(), "chunk={chunk}");
            assert_eq!(scalar.telemetry(), batched.telemetry(), "chunk={chunk}");
            for i in 0..600u32 {
                let d = FlowDigest::of(&key(i));
                assert_eq!(
                    scalar.estimate_packets(d).to_bits(),
                    batched.estimate_packets(d).to_bits(),
                    "chunk={chunk} flow={i}"
                );
            }
        }
    }

    #[test]
    fn reset_clears_everything() {
        let mut f = HashFlowFilter::new(8 * 1024, 6);
        for t in 0..5_000u64 {
            f.process(&pkt((t % 50) as u32, 500, t));
        }
        f.reset();
        assert_eq!(f.stats(), FilterStats::default());
        assert_eq!(f.main_fill_ratio(), 0.0);
        assert_eq!(f.estimate_packets(FlowDigest::of(&key(3))), 0.0);
    }
}
