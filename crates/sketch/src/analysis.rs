//! Exact analytic model of RCC/FlowRegulator saturation behaviour.
//!
//! The decode module gives the closed-form *expectations* (coupon-collector
//! epochs). This module computes the exact distribution-level quantities by
//! evolving the underlying Markov chain — the state is the number of own
//! vector bits set — packet by packet:
//!
//! * how many saturations a flow of size `s` produces in expectation
//!   ([`SaturationChain::expected_saturations`]);
//! * the probability a mouse of size `s` leaks through a layer at all
//!   ([`SaturationChain::saturation_probability`]);
//! * the expected WSAF insertion rate for a whole workload
//!   ([`expected_regulation_rate`]) — the analytic counterpart of the
//!   Figs. 1/7 measurements, with no noise terms (single-flow chain).
//!
//! Every prediction is validated against simulation in the test suite.

use crate::config::SketchConfig;

/// The single-flow saturation Markov chain of one RCC layer.
///
/// State `k` = own vector bits set (`0..=b-noise_max-1`); each packet moves
/// `k → k+1` with probability `(b-k)/b` (it hit a still-zero position) and
/// stays with probability `k/b`. Reaching `b - noise_max` set bits is a
/// saturation, which resets the state to 0.
///
/// # Example
///
/// ```
/// use instameasure_sketch::analysis::SaturationChain;
/// use instameasure_sketch::SketchConfig;
///
/// let chain = SaturationChain::new(&SketchConfig::default()); // b=8, z*=3
/// // A 3-packet mouse almost never saturates…
/// assert!(chain.saturation_probability(3) < 0.05);
/// // …and the mean packets-per-saturation matches the coupon epoch.
/// let per_sat = 100_000.0 / chain.expected_saturations(100_000);
/// assert!((per_sat - 7.076).abs() < 0.05, "{per_sat}");
/// ```
#[derive(Debug, Clone)]
pub struct SaturationChain {
    /// Vector size `b`.
    b: u32,
    /// Set-bit count that triggers saturation (`b - noise_max`).
    threshold: u32,
}

impl SaturationChain {
    /// Builds the chain for a layer geometry.
    #[must_use]
    pub fn new(cfg: &SketchConfig) -> Self {
        SaturationChain { b: cfg.vector_bits(), threshold: cfg.vector_bits() - cfg.noise_max() }
    }

    /// Expected number of saturations a flow of exactly `s` packets
    /// produces (noise-free). `O(s·b)` exact dynamic program.
    #[must_use]
    pub fn expected_saturations(&self, s: u64) -> f64 {
        let b = self.b as usize;
        let thr = self.threshold as usize;
        // probs[k] = P(state == k); saturations accumulates expected resets.
        let mut probs = vec![0.0f64; thr];
        probs[0] = 1.0;
        let mut saturations = 0.0;
        let bf = self.b as f64;
        let mut next = vec![0.0f64; thr];
        for _ in 0..s {
            next.fill(0.0);
            let mut newly_saturated = 0.0;
            for (k, &p) in probs.iter().enumerate() {
                if p == 0.0 {
                    continue;
                }
                let hit_zero = (b - k) as f64 / bf;
                let stay = 1.0 - hit_zero;
                next[k] += p * stay;
                if k + 1 == thr {
                    newly_saturated += p * hit_zero;
                } else {
                    next[k + 1] += p * hit_zero;
                }
            }
            // A saturation resets to state 0.
            next[0] += newly_saturated;
            saturations += newly_saturated;
            std::mem::swap(&mut probs, &mut next);
        }
        saturations
    }

    /// Probability a flow of exactly `s` packets saturates at least once —
    /// the leak-through probability of a mouse.
    #[must_use]
    pub fn saturation_probability(&self, s: u64) -> f64 {
        let b = self.b as usize;
        let thr = self.threshold as usize;
        if s < thr as u64 {
            return 0.0;
        }
        // Absorbing version of the chain: saturation is absorbing.
        let mut probs = vec![0.0f64; thr + 1];
        probs[0] = 1.0;
        let bf = self.b as f64;
        for _ in 0..s {
            let mut next = vec![0.0f64; thr + 1];
            next[thr] = probs[thr]; // absorbed stays absorbed
            for (k, &p) in probs.iter().take(thr).enumerate() {
                if p == 0.0 {
                    continue;
                }
                let hit_zero = (b - k) as f64 / bf;
                next[k] += p * (1.0 - hit_zero);
                next[k + 1] += p * hit_zero;
            }
            probs = next;
        }
        probs[thr]
    }
}

/// Expected WSAF updates a flow of size `s` produces through an `layers`-
/// layer FlowRegulator (noise-free): the L1 chain's expected saturations
/// are fed, in expectation, through each subsequent layer's chain.
///
/// The expectation-of-composition approximation is exact in the fluid
/// limit and accurate to a few percent for elephants; mice are dominated
/// by the leak-through probability which the chain captures exactly at
/// layer 1.
///
/// # Panics
///
/// Panics if `layers` is zero.
#[must_use]
pub fn expected_updates(cfg: &SketchConfig, s: u64, layers: u32) -> f64 {
    assert!(layers > 0, "need at least one layer");
    let chain = SaturationChain::new(cfg);
    let mut count = chain.expected_saturations(s);
    for _ in 1..layers {
        // Feed the (fractional) expected saturations through the next
        // layer: interpolate the DP between floor and ceil.
        let lo = count.floor() as u64;
        let frac = count - lo as f64;
        let at_lo = chain.expected_saturations(lo);
        let at_hi = chain.expected_saturations(lo + 1);
        count = at_lo + frac * (at_hi - at_lo);
    }
    count
}

/// Analytic regulation rate (WSAF updates per packet) for a workload given
/// as flow sizes — the noise-free counterpart of the Figs. 1/7 curves.
///
/// # Panics
///
/// Panics if `layers` is zero.
#[must_use]
pub fn expected_regulation_rate(cfg: &SketchConfig, sizes: &[u64], layers: u32) -> f64 {
    let total: u64 = sizes.iter().sum();
    if total == 0 {
        return 0.0;
    }
    // Group identical sizes (Zipf tails are mostly 1s and 2s).
    let mut by_size: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for &s in sizes {
        *by_size.entry(s).or_insert(0) += 1;
    }
    let updates: f64 =
        by_size.into_iter().map(|(s, n)| n as f64 * expected_updates(cfg, s, layers)).sum();
    updates / total as f64
}

/// Memory accesses a WSAF insertion itself costs: one hash probe plus one
/// write into the open-addressed table.
pub const WSAF_ACCESSES_PER_INSERT: f64 = 2.0;

/// Expected slow-memory accesses per WSAF insertion for an `layers`-layer
/// FlowRegulator over the given workload — the honest replacement for the
/// historical "every insertion is exactly two accesses" constant.
///
/// Deployment model (paper Fig. 2): only layer 1 lives in fast on-chip
/// memory; layers 2..=L sit in the same slow memory as the WSAF. Every
/// saturation of layer `k` therefore costs one slow access to layer `k+1`,
/// and each final-layer saturation additionally pays
/// [`WSAF_ACCESSES_PER_INSERT`] for the table itself. Amortized over the
/// insertions that actually reach the WSAF:
///
/// ```text
/// probes_per_insert = (Σ_{k=1}^{L-1} rate_k + 2·rate_L) / rate_L
/// ```
///
/// where `rate_k` is the expected per-packet release rate out of layer `k`
/// ([`expected_regulation_rate`] with `k` layers). For a single layer this
/// collapses to exactly [`WSAF_ACCESSES_PER_INSERT`] — the old constant
/// was only ever right for plain RCC. Deeper cascades grow *more*
/// expensive per insertion (the layer-2 feed rate dominates), which is why
/// the planner cannot buy margin with depth alone when the intermediate
/// layers share the WSAF's memory.
///
/// Returns [`WSAF_ACCESSES_PER_INSERT`] when the workload produces no
/// insertions at all (the chain is never walked).
///
/// # Panics
///
/// Panics if `layers` is zero.
#[must_use]
pub fn expected_probes_per_insert(cfg: &SketchConfig, sizes: &[u64], layers: u32) -> f64 {
    assert!(layers > 0, "need at least one layer");
    let final_rate = expected_regulation_rate(cfg, sizes, layers);
    if final_rate <= 0.0 {
        return WSAF_ACCESSES_PER_INSERT;
    }
    let feed: f64 = (1..layers).map(|k| expected_regulation_rate(cfg, sizes, k)).sum();
    (feed + WSAF_ACCESSES_PER_INSERT * final_rate) / final_rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode;
    use crate::filter::FlowFilter;
    use crate::{FlowRegulator, SingleLayerRcc};
    use instameasure_packet::{FlowKey, PacketRecord, Protocol};

    fn cfg() -> SketchConfig {
        SketchConfig::builder().memory_bytes(64 * 1024).vector_bits(8).seed(4).build().unwrap()
    }

    #[test]
    fn chain_period_matches_coupon_epoch() {
        let chain = SaturationChain::new(&cfg());
        let s = 1_000_000u64;
        let per_sat = s as f64 / chain.expected_saturations(s);
        let coupon = decode::saturation_period(8, 3);
        assert!((per_sat - coupon).abs() / coupon < 0.001, "{per_sat} vs {coupon}");
    }

    #[test]
    fn mice_rarely_saturate() {
        let chain = SaturationChain::new(&cfg());
        assert_eq!(chain.saturation_probability(0), 0.0);
        assert_eq!(chain.saturation_probability(4), 0.0, "needs at least 5 set bits");
        assert!(chain.saturation_probability(5) < 0.3);
        assert!(chain.saturation_probability(3) < 0.05);
        // A 50-packet flow almost surely saturates.
        assert!(chain.saturation_probability(50) > 0.999);
        // Monotone in s.
        let mut prev = 0.0;
        for s in 0..60 {
            let p = chain.saturation_probability(s);
            assert!(p >= prev - 1e-12);
            prev = p;
        }
    }

    #[test]
    fn chain_matches_simulated_rcc_for_single_flow() {
        let key = FlowKey::new([1, 2, 3, 4], [4, 3, 2, 1], 9, 9, Protocol::Udp);
        for s in [10u64, 100, 10_000] {
            let mut reg = SingleLayerRcc::new(cfg());
            for t in 0..s {
                reg.process(&PacketRecord::new(key, 100, t));
            }
            let simulated = reg.stats().updates as f64;
            let analytic = SaturationChain::new(&cfg()).expected_saturations(s);
            // Single runs are integer-valued; compare within ±1 + 10%.
            assert!(
                (simulated - analytic).abs() <= 1.0 + 0.1 * analytic,
                "s={s}: simulated {simulated} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn two_layer_updates_match_simulation() {
        let key = FlowKey::new([9, 9, 9, 9], [1, 1, 1, 1], 2, 2, Protocol::Tcp);
        let s = 200_000u64;
        let mut fr = FlowRegulator::new(cfg());
        for t in 0..s {
            fr.process(&PacketRecord::new(key, 100, t));
        }
        let simulated = fr.stats().updates as f64;
        let analytic = expected_updates(&cfg(), s, 2);
        let rel = (simulated - analytic).abs() / analytic;
        assert!(rel < 0.10, "simulated {simulated} vs analytic {analytic}");
    }

    #[test]
    fn regulation_rate_predicts_zipf_workload() {
        // Analytic vs simulated regulation on a small Zipf workload.
        let sizes: Vec<u64> =
            (1..=2000u64).map(|i| ((20_000.0 / i as f64).round() as u64).max(1)).collect();
        let analytic = expected_regulation_rate(&cfg(), &sizes, 2);

        let mut fr = FlowRegulator::new(cfg());
        let mut packets = 0u64;
        for (i, &s) in sizes.iter().enumerate() {
            let key = FlowKey::new((i as u32).to_be_bytes(), [5, 5, 5, 5], 7, 8, Protocol::Tcp);
            for t in 0..s {
                fr.process(&PacketRecord::new(key, 100, t));
                packets += 1;
            }
        }
        let simulated = fr.stats().updates as f64 / packets as f64;
        // Noise in the shared words makes the simulation slightly hotter;
        // the analytic (noise-free) value must be within ~35%.
        let rel = (simulated - analytic).abs() / analytic.max(1e-9);
        assert!(rel < 0.35, "simulated {simulated:.5} vs analytic {analytic:.5} (rel {rel:.2})");
    }

    #[test]
    fn deeper_layers_regulate_geometrically_in_theory_too() {
        let sizes = vec![100_000u64; 4];
        let r1 = expected_regulation_rate(&cfg(), &sizes, 1);
        let r2 = expected_regulation_rate(&cfg(), &sizes, 2);
        let r3 = expected_regulation_rate(&cfg(), &sizes, 3);
        assert!(r2 < r1 / 4.0, "{r2} vs {r1}");
        assert!(r3 < r2 / 4.0, "{r3} vs {r2}");
        // Ratios follow the coupon epoch.
        let epoch = decode::saturation_period(8, 3);
        assert!((r1 / r2 - epoch).abs() / epoch < 0.05, "{}", r1 / r2);
    }

    #[test]
    fn zero_and_empty_inputs() {
        assert_eq!(expected_regulation_rate(&cfg(), &[], 2), 0.0);
        assert_eq!(SaturationChain::new(&cfg()).expected_saturations(0), 0.0);
        assert_eq!(expected_updates(&cfg(), 0, 3), 0.0);
    }

    #[test]
    fn single_layer_probe_chain_is_the_bare_insert_cost() {
        let sizes = vec![100_000u64; 4];
        assert_eq!(expected_probes_per_insert(&cfg(), &sizes, 1), WSAF_ACCESSES_PER_INSERT);
        // No insertions at all → the chain is never walked.
        assert_eq!(expected_probes_per_insert(&cfg(), &[], 3), WSAF_ACCESSES_PER_INSERT);
        assert_eq!(expected_probes_per_insert(&cfg(), &[1, 1, 1], 2), WSAF_ACCESSES_PER_INSERT);
    }

    #[test]
    fn two_layer_probe_chain_matches_the_rate_ratio() {
        let sizes = vec![100_000u64; 4];
        let r1 = expected_regulation_rate(&cfg(), &sizes, 1);
        let r2 = expected_regulation_rate(&cfg(), &sizes, 2);
        let probes = expected_probes_per_insert(&cfg(), &sizes, 2);
        assert!((probes - (r1 / r2 + WSAF_ACCESSES_PER_INSERT)).abs() < 1e-9, "{probes}");
        // The layer-2 feed dominates: far more than 2 accesses per insert,
        // roughly one coupon epoch's worth.
        let epoch = decode::saturation_period(8, 3);
        assert!((probes - (epoch + 2.0)).abs() / epoch < 0.05, "{probes} vs epoch {epoch}");
    }

    #[test]
    fn probe_chain_grows_with_depth() {
        let sizes = vec![100_000u64; 4];
        let p1 = expected_probes_per_insert(&cfg(), &sizes, 1);
        let p2 = expected_probes_per_insert(&cfg(), &sizes, 2);
        let p3 = expected_probes_per_insert(&cfg(), &sizes, 3);
        assert!(p1 < p2 && p2 < p3, "{p1} {p2} {p3}");
    }
}
