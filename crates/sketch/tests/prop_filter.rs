//! Property tests on the [`FlowFilter`] trait contract, over every
//! [`FilterKind`].
//!
//! Whatever the configured geometry, a built filter must (a) stay inside
//! the shared equal-memory budget `FilterKind::build` computes and use
//! most of it, (b) keep batched processing bit-identical to scalar, and
//! (c) never lose packets: released updates plus retained residuals must
//! account for everything fed in (exactly for the table-based kinds,
//! within decode tolerance for the probabilistic ones).

use instameasure_packet::{FlowDigest, FlowKey, PacketRecord, Protocol};
use instameasure_sketch::{FilterKind, FlowFilter, SketchConfig, ALL_FILTER_KINDS};
use proptest::prelude::*;

fn key(i: u32) -> FlowKey {
    FlowKey::new(i.to_be_bytes(), (i ^ 0xBEEF).to_be_bytes(), 40, 50, Protocol::Udp)
}

/// Sketch geometries big enough that minimum-size padding never binds
/// (every kind needs at least one cell/bucket/word).
fn arb_config() -> impl Strategy<Value = SketchConfig> {
    (10usize..=16, prop::sample::select(vec![4u32, 8, 16]), any::<u64>()).prop_map(
        |(mem_log2, bits, seed)| {
            SketchConfig::builder()
                .memory_bytes(1 << mem_log2)
                .vector_bits(bits)
                .seed(seed)
                .build()
                .expect("valid geometry")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_kind_respects_the_shared_budget(cfg in arb_config()) {
        let budget = cfg.memory_bytes() * (1 + cfg.noise_classes() as usize);
        for kind in ALL_FILTER_KINDS {
            let filter = kind.build(cfg);
            let mem = filter.memory_bytes();
            prop_assert!(mem <= budget, "{kind}: {mem} bytes over the {budget}-byte budget");
            prop_assert!(mem * 8 >= budget * 7, "{kind}: {mem} of {budget} bytes is under-allocated");
        }
    }

    #[test]
    fn memory_accounting_is_stable_under_load(cfg in arb_config(), packets in 1usize..3000) {
        for kind in ALL_FILTER_KINDS {
            let mut filter = kind.build(cfg);
            let before = filter.memory_bytes();
            for t in 0..packets {
                filter.process(&PacketRecord::new(key((t % 97) as u32), 200, t as u64));
            }
            prop_assert_eq!(before, filter.memory_bytes(), "{} grew under load", kind);
            filter.reset();
            prop_assert_eq!(before, filter.memory_bytes(), "{} changed size on reset", kind);
            prop_assert_eq!(filter.stats().packets, 0, "{} kept stats across reset", kind);
        }
    }

    #[test]
    fn batch_matches_scalar_for_every_kind(
        cfg in arb_config(),
        flows in 1u32..64,
        packets in 1usize..2000,
        chunk in 1usize..300,
    ) {
        let trace: Vec<PacketRecord> = (0..packets as u64)
            .map(|t| PacketRecord::new(key((t % u64::from(flows)) as u32), 120, t))
            .collect();
        for kind in ALL_FILTER_KINDS {
            let mut scalar = kind.build(cfg);
            let mut batched = kind.build(cfg);
            let mut scalar_out = Vec::new();
            for pkt in &trace {
                if let Some(u) = scalar.process(pkt) {
                    scalar_out.push(u);
                }
            }
            let mut batch_out = Vec::new();
            for pkts in trace.chunks(chunk) {
                batched.process_batch(pkts, &mut batch_out);
            }
            prop_assert_eq!(&scalar_out, &batch_out, "{} updates diverged", kind);
            prop_assert_eq!(scalar.stats(), batched.stats(), "{} stats diverged", kind);
            for i in 0..flows {
                let d = FlowDigest::of(&key(i));
                prop_assert_eq!(
                    scalar.estimate_packets(d).to_bits(),
                    batched.estimate_packets(d).to_bits(),
                    "{} residual diverged for flow {}", kind, i
                );
            }
        }
    }

    #[test]
    fn released_plus_retained_accounts_for_every_packet(
        cfg in arb_config(),
        flows in 1u32..40,
        packets in 100usize..4000,
    ) {
        let trace: Vec<PacketRecord> = (0..packets as u64)
            .map(|t| PacketRecord::new(key((t % u64::from(flows)) as u32), 100, t))
            .collect();
        for kind in ALL_FILTER_KINDS {
            let mut filter = kind.build(cfg);
            let mut released = 0.0;
            for pkt in &trace {
                if let Some(u) = filter.process(pkt) {
                    released += u.est_pkts;
                }
            }
            let retained: f64 =
                (0..flows).map(|i| filter.estimate_packets(FlowDigest::of(&key(i)))).sum();
            let total = released + retained;
            let exact = matches!(kind, FilterKind::Swing | FilterKind::HashFlow);
            if exact {
                // Table-based kinds conserve exactly; fingerprint collisions
                // can only over-count, never lose.
                prop_assert!(
                    total >= packets as f64 - 1e-6,
                    "{}: {} of {} packets accounted", kind, total, packets
                );
            } else {
                let rel = (total - packets as f64).abs() / packets as f64;
                prop_assert!(rel < 0.35, "{}: {} vs {} packets ({})", kind, total, packets, rel);
            }
        }
    }
}
