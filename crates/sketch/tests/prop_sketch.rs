//! Property tests on the sketch invariants.

use instameasure_packet::{FlowKey, PacketRecord, Protocol};
use instameasure_sketch::{decode, FlowFilter, FlowRegulator, Rcc, SingleLayerRcc, SketchConfig};
use proptest::prelude::*;

fn key(i: u32) -> FlowKey {
    FlowKey::new(i.to_be_bytes(), (i ^ 0xFFFF).to_be_bytes(), 20, 30, Protocol::Tcp)
}

proptest! {
    #[test]
    fn decode_monotone_in_zeros(b in 2u32..=64, f in 0.0f64..0.9) {
        let mut prev = f64::INFINITY;
        for z in 0..=b {
            let e = decode::estimate_own_packets(b, z, f);
            prop_assert!(e.is_finite() && e >= 0.0);
            prop_assert!(e <= prev + 1e-9, "b={} z={} f={}: {} > prev {}", b, z, f, e, prev);
            prev = e;
        }
    }

    #[test]
    fn decode_monotone_in_noise(b in 2u32..=64, z in 1u32..8) {
        prop_assume!(z <= b);
        let mut prev = f64::INFINITY;
        for step in 0..10 {
            let f = f64::from(step) * 0.1;
            let e = decode::estimate_own_packets(b, z, f);
            prop_assert!(e <= prev + 1e-9);
            prev = e;
        }
    }

    #[test]
    fn harmonic_matches_partial_sums(n in 1u32..200) {
        let exact: f64 = (1..=n).map(|i| 1.0 / f64::from(i)).sum();
        let approx = decode::harmonic_cont(f64::from(n));
        prop_assert!((exact - approx).abs() < 1e-8, "H({n}) {exact} vs {approx}");
    }

    #[test]
    fn conservation_single_flow(
        n in 100u64..20_000,
        seed in 0u64..1000,
        vector_bits in prop::sample::select(vec![4u32, 8, 16]),
    ) {
        // Released + residual must track the true count of an isolated
        // elephant flow within a generous bound.
        let cfg = SketchConfig::builder()
            .memory_bytes(16 * 1024)
            .vector_bits(vector_bits)
            .seed(seed)
            .build()
            .unwrap();
        let mut fr = FlowRegulator::new(cfg);
        let k = key(seed as u32);
        let mut released = 0.0;
        for t in 0..n {
            if let Some(u) = fr.process(&PacketRecord::new(k, 700, t)) {
                prop_assert!(u.est_pkts > 0.0);
                released += u.est_pkts;
            }
        }
        let total = released + fr.residual_packets(&k);
        let rel = (total - n as f64).abs() / n as f64;
        // Small n is dominated by quantization of one retention cycle.
        let capacity = 2.0 * decode::coupon_expected(vector_bits, 0).powi(2);
        let bound = (0.35f64).max(3.0 * capacity / n as f64);
        prop_assert!(rel < bound, "n={} est={} rel={} bound={}", n, total, rel, bound);
    }

    #[test]
    fn rcc_saturation_count_scales(n in 1000u64..50_000, seed in 0u64..100) {
        let cfg = SketchConfig::builder()
            .memory_bytes(4096)
            .vector_bits(8)
            .seed(seed)
            .build()
            .unwrap();
        let mut rcc = Rcc::new(cfg);
        let k = key(7);
        for _ in 0..n {
            rcc.encode(&k);
        }
        let period = n as f64 / rcc.saturations().max(1) as f64;
        let model = decode::saturation_period(8, 3);
        prop_assert!(
            (period - model).abs() / model < 0.25,
            "period {} vs model {}", period, model
        );
    }

    #[test]
    fn regulator_stats_are_consistent(flows in 1u32..50, pkts_per_flow in 1u64..200) {
        let cfg = SketchConfig::builder().memory_bytes(8192).vector_bits(8).build().unwrap();
        for reg in [&mut FlowRegulator::new(cfg) as &mut dyn FlowFilter,
                    &mut SingleLayerRcc::new(cfg) as &mut dyn FlowFilter] {
            let mut updates = 0u64;
            for i in 0..flows {
                for t in 0..pkts_per_flow {
                    if reg.process(&PacketRecord::new(key(i), 64, t)).is_some() {
                        updates += 1;
                    }
                }
            }
            let s = reg.stats();
            prop_assert_eq!(s.packets, u64::from(flows) * pkts_per_flow);
            prop_assert_eq!(s.updates, updates);
            prop_assert!(s.mem_accesses >= s.packets);
            prop_assert!(s.mem_accesses <= 2 * s.packets, "at most 2 accesses per packet");
            prop_assert_eq!(s.hashes, s.packets, "one hash per packet");
        }
    }

    #[test]
    fn residual_never_negative_or_nan(ops in prop::collection::vec((0u32..20, 40u16..1500), 1..500)) {
        let cfg = SketchConfig::builder().memory_bytes(512).vector_bits(8).build().unwrap();
        let mut fr = FlowRegulator::new(cfg);
        for (t, (i, len)) in ops.iter().enumerate() {
            fr.process(&PacketRecord::new(key(*i), *len, t as u64));
        }
        for i in 0..20 {
            let r = fr.residual_packets(&key(i));
            prop_assert!(r.is_finite() && r >= 0.0);
        }
    }
}
