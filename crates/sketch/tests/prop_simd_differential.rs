//! SIMD-vs-scalar differential battery: the AVX2 hot path must be
//! bit-identical to the scalar oracle for every [`FilterKind`] and every
//! [`FlowRegulatorOptions`] ablation, on ragged tails as much as full
//! lanes.
//!
//! The other batch-parity tests compare *batched* against *per-packet*
//! under whatever dispatch tier the host picks. These tests instead flip
//! the runtime kill switch ([`simd::set_simd_disabled`]) and replay the
//! same trace under both tiers, so the vector kernels are compared
//! directly against the scalar code they claim to mirror — on AVX2
//! hosts both legs run for real; elsewhere the comparison degenerates to
//! scalar-vs-scalar and still passes.

use std::sync::{Mutex, OnceLock};

use instameasure_packet::{simd, FlowDigest, FlowKey, PacketRecord, Protocol};
use instameasure_sketch::{
    FlowFilter, FlowRegulator, FlowRegulatorOptions, SketchConfig, ALL_FILTER_KINDS,
};
use proptest::prelude::*;

fn key(i: u32) -> FlowKey {
    FlowKey::new(i.to_be_bytes(), (i ^ 0xBEEF).to_be_bytes(), 40, 50, Protocol::Udp)
}

fn cfg(mem_log2: usize, bits: u32, seed: u64) -> SketchConfig {
    SketchConfig::builder()
        .memory_bytes(1 << mem_log2)
        .vector_bits(bits)
        .seed(seed)
        .build()
        .expect("valid geometry")
}

/// The kill switch is process-global, so tests that flip it must not
/// interleave with each other. (They can safely interleave with tests
/// that do not *read* the tier: flipping it changes which kernel runs,
/// never what it computes.)
fn tier_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Runs `f` once forced-scalar and once with SIMD allowed, returning
/// `(scalar, vector)`. Restores the pre-call dispatch tier on exit.
fn under_both_tiers<T>(mut f: impl FnMut() -> T) -> (T, T) {
    let _guard = tier_lock().lock().unwrap_or_else(|e| e.into_inner());
    let restore_disabled = simd::simd_supported() && !simd::simd_enabled();
    simd::set_simd_disabled(true);
    let scalar = f();
    simd::set_simd_disabled(false);
    let vector = f();
    simd::set_simd_disabled(restore_disabled);
    (scalar, vector)
}

/// Replays `trace` through a fresh `build()` in `chunk`-sized batches
/// and returns everything observable: released updates, stats, and the
/// per-flow residuals for `flows` distinct keys.
fn replay<F: FlowFilter>(
    build: impl Fn() -> F,
    trace: &[PacketRecord],
    chunk: usize,
    flows: u32,
) -> (Vec<instameasure_sketch::FlowUpdate>, instameasure_sketch::FilterStats, Vec<u64>) {
    let mut filter = build();
    let mut out = Vec::new();
    for pkts in trace.chunks(chunk.max(1)) {
        filter.process_batch(pkts, &mut out);
    }
    let residuals =
        (0..flows).map(|i| filter.estimate_packets(FlowDigest::of(&key(i))).to_bits()).collect();
    (out, filter.stats(), residuals)
}

fn trace(flows: u32, packets: usize) -> Vec<PacketRecord> {
    (0..packets as u64)
        .map(|t| PacketRecord::new(key((t % u64::from(flows.max(1))) as u32), 120, t))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_kind_is_bit_identical_across_tiers(
        mem_log2 in 10usize..=16,
        bits in prop::sample::select(vec![4u32, 8, 16]),
        seed in any::<u64>(),
        flows in 1u32..64,
        packets in 1usize..2000,
        chunk in 1usize..300,
    ) {
        let cfg = cfg(mem_log2, bits, seed);
        let trace = trace(flows, packets);
        for kind in ALL_FILTER_KINDS {
            let (scalar, vector) =
                under_both_tiers(|| replay(|| kind.build(cfg), &trace, chunk, flows));
            prop_assert_eq!(&scalar.0, &vector.0, "{} updates diverged across tiers", kind);
            prop_assert_eq!(&scalar.1, &vector.1, "{} stats diverged across tiers", kind);
            prop_assert_eq!(&scalar.2, &vector.2, "{} residuals diverged across tiers", kind);
        }
    }

    #[test]
    fn regulator_ablations_are_bit_identical_across_tiers(
        seed in any::<u64>(),
        flows in 1u32..32,
        packets in 1usize..3000,
        chunk in 1usize..400,
        shared in any::<bool>(),
        indep in any::<bool>(),
    ) {
        let cfg = cfg(11, 8, seed);
        let opts = FlowRegulatorOptions { shared_l2: shared, independent_l2_hash: indep };
        let trace = trace(flows, packets);
        let (scalar, vector) = under_both_tiers(|| {
            replay(|| FlowRegulator::with_options(cfg, opts), &trace, chunk, flows)
        });
        let ctx = format!("shared={shared} indep={indep} chunk={chunk}");
        prop_assert_eq!(&scalar.0, &vector.0, "{} updates diverged across tiers", &ctx);
        prop_assert_eq!(&scalar.1, &vector.1, "{} stats diverged across tiers", &ctx);
        prop_assert_eq!(&scalar.2, &vector.2, "{} residuals diverged across tiers", &ctx);
    }
}

/// Fixed-vector leg: every batch length around the 4-wide lane boundary
/// (empty, sub-lane, exact lanes, lane+tail, prime, large), for every
/// kind and every ablation — so a tail-handling bug can never hide
/// behind proptest's random lengths.
#[test]
fn ragged_tails_are_bit_identical_across_tiers_for_every_kind() {
    let full = trace(13, 256);
    for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 13, 64, 100, 256] {
        let slice = &full[..len];
        for kind in ALL_FILTER_KINDS {
            let (scalar, vector) =
                under_both_tiers(|| replay(|| kind.build(cfg(12, 8, 7)), slice, len.max(1), 13));
            assert_eq!(scalar, vector, "{kind} diverged across tiers at len {len}");
        }
        for (shared, indep) in [(false, false), (true, false), (false, true), (true, true)] {
            let opts = FlowRegulatorOptions { shared_l2: shared, independent_l2_hash: indep };
            let (scalar, vector) = under_both_tiers(|| {
                replay(|| FlowRegulator::with_options(cfg(12, 8, 7), opts), slice, len.max(1), 13)
            });
            assert_eq!(
                scalar, vector,
                "regulator shared={shared} indep={indep} diverged across tiers at len {len}"
            );
        }
    }
}

/// The drop-to-scalar kill switch must change only the dispatch tier it
/// reports, never an estimate: a long hot trace replayed under both
/// tiers ends in byte-identical released-update streams even when every
/// word saturates and recycles many times over.
#[test]
fn saturation_heavy_trace_is_bit_identical_across_tiers() {
    // One elephant flow hammers a tiny sketch so L1 saturates and
    // recycles constantly — the placement kernel's rejection loop and
    // draw counter see maximum churn.
    let trace: Vec<PacketRecord> =
        (0..20_000u64).map(|t| PacketRecord::new(key((t % 3) as u32), 1500, t)).collect();
    for kind in ALL_FILTER_KINDS {
        let (scalar, vector) =
            under_both_tiers(|| replay(|| kind.build(cfg(10, 16, 99)), &trace, 256, 3));
        assert_eq!(scalar, vector, "{kind} diverged across tiers under saturation churn");
    }
}
