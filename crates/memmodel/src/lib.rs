//! Analytic memory-technology model behind InstaMeasure's motivation.
//!
//! The paper's argument (§II, Figs. 1 and 7): the WSAF table lives in DRAM,
//! whose random access time is 10–20× slower than SRAM's; therefore the
//! regulator in front of it must pass at most ~5–10% of packets — RCC's
//! 12–19% is not enough, FlowRegulator's ~1% is. This crate encodes that
//! arithmetic so the figures can print explicit feasibility margins.
//!
//! # Example
//!
//! ```
//! use instameasure_memmodel::{MemoryTechnology, MarginAnalysis};
//!
//! // 1 Mpps arriving, FlowRegulator passing 1.02% to a DRAM WSAF:
//! let m = MarginAnalysis::new(1_000_000.0, 0.0102, MemoryTechnology::Dram);
//! assert!(m.is_feasible());
//! // RCC passing 19% would not be:
//! let rcc = MarginAnalysis::new(1_000_000.0, 0.19, MemoryTechnology::Dram);
//! assert!(rcc.margin() < m.margin());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::fmt;

/// A memory technology with a characteristic random-access latency.
///
/// Default latencies follow the paper's qualitative ordering: TCAM is the
/// fastest (and most expensive), SRAM is 10–20× faster than DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryTechnology {
    /// Commodity DRAM (default 80 ns random access).
    Dram,
    /// On-chip SRAM (default 5 ns).
    Sram,
    /// Ternary CAM (default 2 ns lookup).
    Tcam,
}

impl MemoryTechnology {
    /// Random access latency in nanoseconds.
    #[must_use]
    pub fn access_nanos(self) -> f64 {
        match self {
            MemoryTechnology::Dram => 80.0,
            MemoryTechnology::Sram => 5.0,
            MemoryTechnology::Tcam => 2.0,
        }
    }

    /// Maximum sustainable random accesses per second.
    #[must_use]
    pub fn accesses_per_second(self) -> f64 {
        1e9 / self.access_nanos()
    }

    /// Approximate cost per megabyte in USD, for the cost-effectiveness
    /// argument of §I (order-of-magnitude 2019 figures).
    #[must_use]
    pub fn dollars_per_mb(self) -> f64 {
        match self {
            MemoryTechnology::Dram => 0.01,
            MemoryTechnology::Sram => 25.0,
            MemoryTechnology::Tcam => 350.0,
        }
    }
}

impl fmt::Display for MemoryTechnology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryTechnology::Dram => write!(f, "DRAM"),
            MemoryTechnology::Sram => write!(f, "SRAM"),
            MemoryTechnology::Tcam => write!(f, "TCAM"),
        }
    }
}

/// Feasibility analysis: can a WSAF in the given technology absorb the
/// insertion rate a regulator produces?
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarginAnalysis {
    pps: f64,
    regulation_rate: f64,
    technology: MemoryTechnology,
    /// Average table slots probed per insertion (each probe is one memory
    /// access); 1.0 models an ideal table.
    probes_per_insert: f64,
    /// Measured random-access latency overriding the technology's paper
    /// constant (`None` = use the constant). Set from a calibrated
    /// machine profile so margins reflect the host actually running.
    access_nanos: Option<f64>,
}

impl MarginAnalysis {
    /// Creates an analysis for `pps` packets/second entering a regulator
    /// that passes `regulation_rate` (ips/pps) to a WSAF in `technology`,
    /// assuming one probe per insertion.
    ///
    /// # Panics
    ///
    /// Panics if `pps` is negative or `regulation_rate` is outside
    /// `[0, 1]`.
    #[must_use]
    pub fn new(pps: f64, regulation_rate: f64, technology: MemoryTechnology) -> Self {
        assert!(pps >= 0.0, "pps must be non-negative");
        assert!((0.0..=1.0).contains(&regulation_rate), "regulation rate must be in [0,1]");
        MarginAnalysis {
            pps,
            regulation_rate,
            technology,
            probes_per_insert: 1.0,
            access_nanos: None,
        }
    }

    /// Sets the average probes per insertion (≥ 1).
    ///
    /// Historically every call site passed a blanket `2.0` (probe +
    /// write); pass the workload's actual probe-chain length from
    /// `instameasure_sketch::analysis::expected_probes_per_insert`
    /// instead, which accounts for the regulator layers co-resident with
    /// the WSAF.
    #[must_use]
    pub fn with_probes_per_insert(mut self, probes: f64) -> Self {
        assert!(probes >= 1.0, "probes per insert must be >= 1");
        self.probes_per_insert = probes;
        self
    }

    /// Overrides the technology's paper-constant latency with a measured
    /// random-access latency in nanoseconds (from a calibrated machine
    /// profile). Must be finite and positive.
    #[must_use]
    pub fn with_access_nanos(mut self, nanos: f64) -> Self {
        assert!(nanos.is_finite() && nanos > 0.0, "access latency must be positive");
        self.access_nanos = Some(nanos);
        self
    }

    /// The random-access latency the analysis uses: the measured override
    /// when set, else the technology's paper constant.
    #[must_use]
    pub fn access_nanos(&self) -> f64 {
        self.access_nanos.unwrap_or_else(|| self.technology.access_nanos())
    }

    /// Maximum sustainable random accesses per second at
    /// [`MarginAnalysis::access_nanos`].
    #[must_use]
    pub fn capacity_accesses_per_second(&self) -> f64 {
        1e9 / self.access_nanos()
    }

    /// Insertions per second arriving at the WSAF.
    #[must_use]
    pub fn ips(&self) -> f64 {
        self.pps * self.regulation_rate
    }

    /// Memory accesses per second the WSAF must serve.
    #[must_use]
    pub fn accesses_per_second_required(&self) -> f64 {
        self.ips() * self.probes_per_insert
    }

    /// Capacity over demand; ≥ 1 means the WSAF keeps up.
    #[must_use]
    pub fn margin(&self) -> f64 {
        let req = self.accesses_per_second_required();
        if req == 0.0 {
            f64::INFINITY
        } else {
            self.capacity_accesses_per_second() / req
        }
    }

    /// Whether the WSAF can absorb the insertion stream.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        self.margin() >= 1.0
    }

    /// The largest regulation rate this technology tolerates at this
    /// packet rate (the paper's "<5%" rule of thumb for DRAM at ~1 Mpps
    /// with SRAM 10–20× faster).
    #[must_use]
    pub fn max_feasible_regulation(&self) -> f64 {
        if self.pps == 0.0 {
            return 1.0;
        }
        (self.capacity_accesses_per_second() / (self.pps * self.probes_per_insert)).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn technology_ordering_matches_paper() {
        // SRAM is 10–20× faster than DRAM; TCAM faster still.
        let ratio = MemoryTechnology::Dram.access_nanos() / MemoryTechnology::Sram.access_nanos();
        assert!((10.0..=20.0).contains(&ratio), "SRAM/DRAM ratio {ratio}");
        assert!(MemoryTechnology::Tcam.access_nanos() < MemoryTechnology::Sram.access_nanos());
        assert!(MemoryTechnology::Dram.dollars_per_mb() < MemoryTechnology::Sram.dollars_per_mb());
        assert!(MemoryTechnology::Sram.dollars_per_mb() < MemoryTechnology::Tcam.dollars_per_mb());
    }

    #[test]
    fn flowregulator_rate_is_feasible_in_dram_rcc_is_not() {
        // The paper's headline argument at a 40 GbE worst-case line rate
        // (~59.5 Mpps of 64-byte packets): DRAM absorbs FlowRegulator's
        // ~1% insertion stream but not RCC's 12–19%.
        let line_rate = 59.5e6;
        let fr = MarginAnalysis::new(line_rate, 0.0102, MemoryTechnology::Dram)
            .with_probes_per_insert(2.0);
        assert!(fr.is_feasible(), "FR margin {}", fr.margin());
        let rcc = MarginAnalysis::new(line_rate, 0.12, MemoryTechnology::Dram)
            .with_probes_per_insert(2.0);
        assert!(!rcc.is_feasible(), "RCC margin {}", rcc.margin());
    }

    #[test]
    fn ips_and_margin_arithmetic() {
        let m = MarginAnalysis::new(2.0e6, 0.05, MemoryTechnology::Sram);
        assert_eq!(m.ips(), 100_000.0);
        assert_eq!(m.accesses_per_second_required(), 100_000.0);
        let cap = MemoryTechnology::Sram.accesses_per_second();
        assert!((m.margin() - cap / 100_000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_traffic_is_trivially_feasible() {
        let m = MarginAnalysis::new(0.0, 0.5, MemoryTechnology::Dram);
        assert!(m.is_feasible());
        assert_eq!(m.margin(), f64::INFINITY);
        assert_eq!(m.max_feasible_regulation(), 1.0);
    }

    #[test]
    fn max_feasible_regulation_for_dram_near_one_percent_at_line_rate() {
        // At 100 Gbps minimum-size packets (~148.8 Mpps) DRAM tolerates
        // well under 10% regulation.
        let m = MarginAnalysis::new(148.8e6, 0.0, MemoryTechnology::Dram);
        let max = m.max_feasible_regulation();
        assert!(max < 0.10, "max regulation {max}");
    }

    #[test]
    #[should_panic(expected = "regulation rate must be in [0,1]")]
    fn rejects_bad_regulation_rate() {
        let _ = MarginAnalysis::new(1.0, 1.5, MemoryTechnology::Dram);
    }

    #[test]
    fn measured_latency_overrides_the_paper_constant() {
        let paper = MarginAnalysis::new(1.0e6, 0.05, MemoryTechnology::Dram);
        assert_eq!(paper.access_nanos(), 80.0);
        // A host whose DRAM measures 100 ns has proportionally less margin.
        let measured = paper.with_access_nanos(100.0);
        assert_eq!(measured.access_nanos(), 100.0);
        assert!((measured.margin() - paper.margin() * 0.8).abs() < 1e-9);
        assert!(measured.max_feasible_regulation() < paper.max_feasible_regulation());
    }

    #[test]
    #[should_panic(expected = "access latency must be positive")]
    fn rejects_nonpositive_latency() {
        let _ = MarginAnalysis::new(1.0, 0.5, MemoryTechnology::Dram).with_access_nanos(0.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(MemoryTechnology::Dram.to_string(), "DRAM");
        assert_eq!(MemoryTechnology::Sram.to_string(), "SRAM");
        assert_eq!(MemoryTechnology::Tcam.to_string(), "TCAM");
    }
}
