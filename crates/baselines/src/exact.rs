//! Exact per-flow counting (ground truth / packet-arrival-based ideal).

use std::collections::HashMap;

use instameasure_packet::{FlowKey, PacketRecord};

use crate::PerFlowCounter;

/// A plain exact counter: one hash-map entry per flow.
///
/// This is what a WSAF with unbounded memory and unbounded insertion rate
/// would produce; every accuracy figure compares against it, and the
/// detection-latency experiment uses it as the "packet-arrival-based
/// decoding" ideal (§II).
#[derive(Debug, Clone, Default)]
pub struct ExactCounter {
    counts: HashMap<FlowKey, (u64, u64)>,
}

impl ExactCounter {
    /// Creates an empty counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct flows seen.
    #[must_use]
    pub fn num_flows(&self) -> usize {
        self.counts.len()
    }

    /// Exact packet count for a flow (0 if unseen).
    #[must_use]
    pub fn packets(&self, key: &FlowKey) -> u64 {
        self.counts.get(key).map_or(0, |&(p, _)| p)
    }

    /// Exact byte count for a flow (0 if unseen).
    #[must_use]
    pub fn bytes(&self, key: &FlowKey) -> u64 {
        self.counts.get(key).map_or(0, |&(_, b)| b)
    }

    /// Iterates over `(flow, packets, bytes)`.
    pub fn iter(&self) -> impl Iterator<Item = (&FlowKey, u64, u64)> {
        self.counts.iter().map(|(k, &(p, b))| (k, p, b))
    }
}

impl PerFlowCounter for ExactCounter {
    fn record(&mut self, pkt: &PacketRecord) {
        let e = self.counts.entry(pkt.key).or_insert((0, 0));
        e.0 += 1;
        e.1 += u64::from(pkt.wire_len);
    }

    fn estimate_packets(&self, key: &FlowKey) -> f64 {
        self.packets(key) as f64
    }

    fn estimate_bytes(&self, key: &FlowKey) -> f64 {
        self.bytes(key) as f64
    }

    fn memory_bytes(&self) -> usize {
        // 5-tuple + two u64 counters + map overhead (~1.5x).
        self.counts.len() * 48
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instameasure_packet::Protocol;

    fn key(i: u32) -> FlowKey {
        FlowKey::new(i.to_be_bytes(), [0, 0, 0, 1], 1, 2, Protocol::Tcp)
    }

    #[test]
    fn counts_exactly() {
        let mut c = ExactCounter::new();
        for t in 0..10 {
            c.record(&PacketRecord::new(key(1), 100, t));
        }
        c.record(&PacketRecord::new(key(2), 64, 11));
        assert_eq!(c.packets(&key(1)), 10);
        assert_eq!(c.bytes(&key(1)), 1000);
        assert_eq!(c.estimate_packets(&key(2)), 1.0);
        assert_eq!(c.estimate_bytes(&key(2)), 64.0);
        assert_eq!(c.num_flows(), 2);
        assert_eq!(c.packets(&key(3)), 0);
        assert!(c.memory_bytes() > 0);
    }

    #[test]
    fn iter_covers_all_flows() {
        let mut c = ExactCounter::new();
        c.record(&PacketRecord::new(key(1), 10, 0));
        c.record(&PacketRecord::new(key(2), 20, 1));
        let mut seen: Vec<u64> = c.iter().map(|(_, p, _)| p).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 1]);
    }
}
