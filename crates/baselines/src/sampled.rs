//! NetFlow-style packet sampling.

use std::collections::HashMap;

use instameasure_packet::hash::mix64;
use instameasure_packet::{FlowKey, PacketRecord};

use crate::PerFlowCounter;

/// Sampled NetFlow: keep an exact table over a 1-in-`n` sampled substream
/// and scale estimates back up.
///
/// This is the industry mitigation for the `{ips = pps}` constraint the
/// paper discusses in §II — it protects the flow table at the cost of
/// accuracy (small flows are missed entirely, which is the behaviour the
/// accuracy comparisons exercise).
#[derive(Debug, Clone)]
pub struct SampledNetflow {
    sample_one_in: u64,
    counts: HashMap<FlowKey, (u64, u64)>,
    tick: u64,
    sampled: u64,
    seen: u64,
}

impl SampledNetflow {
    /// Creates a sampler that keeps one in `sample_one_in` packets
    /// (pseudo-randomly, deterministic per instance).
    ///
    /// # Panics
    ///
    /// Panics if `sample_one_in` is zero.
    #[must_use]
    pub fn new(sample_one_in: u64) -> Self {
        assert!(sample_one_in > 0, "sampling ratio must be positive");
        SampledNetflow { sample_one_in, counts: HashMap::new(), tick: 0, sampled: 0, seen: 0 }
    }

    /// Packets seen (sampled or not).
    #[must_use]
    pub fn packets_seen(&self) -> u64 {
        self.seen
    }

    /// Packets actually sampled into the table.
    #[must_use]
    pub fn packets_sampled(&self) -> u64 {
        self.sampled
    }

    /// Table entries (flows that had at least one sampled packet).
    #[must_use]
    pub fn num_entries(&self) -> usize {
        self.counts.len()
    }

    /// Effective insertion-per-packet rate into the flow table — the
    /// quantity NetFlow sampling is designed to bound.
    #[must_use]
    pub fn regulation_rate(&self) -> f64 {
        if self.seen == 0 {
            0.0
        } else {
            self.sampled as f64 / self.seen as f64
        }
    }
}

impl PerFlowCounter for SampledNetflow {
    fn record(&mut self, pkt: &PacketRecord) {
        self.seen += 1;
        self.tick = self.tick.wrapping_add(1);
        if mix64(self.tick).is_multiple_of(self.sample_one_in) {
            self.sampled += 1;
            let e = self.counts.entry(pkt.key).or_insert((0, 0));
            e.0 += 1;
            e.1 += u64::from(pkt.wire_len);
        }
    }

    fn estimate_packets(&self, key: &FlowKey) -> f64 {
        self.counts.get(key).map_or(0.0, |&(p, _)| p as f64 * self.sample_one_in as f64)
    }

    fn estimate_bytes(&self, key: &FlowKey) -> f64 {
        self.counts.get(key).map_or(0.0, |&(_, b)| b as f64 * self.sample_one_in as f64)
    }

    fn memory_bytes(&self) -> usize {
        self.counts.len() * 48
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instameasure_packet::Protocol;

    fn key(i: u32) -> FlowKey {
        FlowKey::new(i.to_be_bytes(), [4, 4, 4, 4], 9, 10, Protocol::Tcp)
    }

    #[test]
    fn sampling_rate_is_respected() {
        let mut nf = SampledNetflow::new(100);
        for t in 0..100_000u64 {
            nf.record(&PacketRecord::new(key(1), 100, t));
        }
        let rate = nf.regulation_rate();
        assert!((0.008..0.012).contains(&rate), "sampling rate {rate}");
    }

    #[test]
    fn elephant_estimate_scales_back_up() {
        let mut nf = SampledNetflow::new(10);
        for t in 0..100_000u64 {
            nf.record(&PacketRecord::new(key(1), 200, t));
        }
        let est = nf.estimate_packets(&key(1));
        assert!((est - 100_000.0).abs() / 100_000.0 < 0.05, "estimate {est}");
        let eb = nf.estimate_bytes(&key(1));
        assert!((eb - 20_000_000.0).abs() / 20_000_000.0 < 0.05, "bytes {eb}");
    }

    #[test]
    fn most_mice_are_missed() {
        // The fundamental accuracy cost of sampling: 1-packet flows are
        // almost never in the table.
        let mut nf = SampledNetflow::new(100);
        for i in 0..10_000u32 {
            nf.record(&PacketRecord::new(key(i), 64, 0));
        }
        let miss = (0..10_000u32).filter(|&i| nf.estimate_packets(&key(i)) == 0.0).count();
        assert!(miss > 9_500, "missed {miss}/10000 mice");
        assert!(nf.num_entries() < 300);
    }

    #[test]
    fn sample_one_in_one_is_exact() {
        let mut nf = SampledNetflow::new(1);
        for t in 0..500u64 {
            nf.record(&PacketRecord::new(key(1), 64, t));
        }
        assert_eq!(nf.estimate_packets(&key(1)), 500.0);
        assert_eq!(nf.regulation_rate(), 1.0);
    }

    #[test]
    #[should_panic(expected = "sampling ratio must be positive")]
    fn rejects_zero_ratio() {
        let _ = SampledNetflow::new(0);
    }
}
