//! CSM — randomized counter sharing (Li, Chen & Ling, INFOCOM 2011).

use instameasure_packet::hash::{flow_hash64, mix64};
use instameasure_packet::{FlowKey, PacketRecord};

use crate::PerFlowCounter;

/// Configuration of a [`CsmSketch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsmConfig {
    /// Total number of shared counters `m`.
    pub num_counters: usize,
    /// Per-flow storage-vector length `l` (counters drawn per flow). The
    /// paper's comparison uses `l = 10 000` so a single vector can hold
    /// the largest flow.
    pub vector_len: usize,
    /// Hash seed.
    pub seed: u64,
}

impl Default for CsmConfig {
    fn default() -> Self {
        CsmConfig { num_counters: 1 << 20, vector_len: 1000, seed: 0xC5A1 }
    }
}

/// The CSM sketch: a flow's *storage vector* is `l` counters pseudo-randomly
/// drawn from a shared pool of `m`; each packet increments one uniformly
/// chosen vector counter.
///
/// Decoding (counter-sum estimation) is **offline**: it reads all `l`
/// counters and subtracts the expected share of everyone else's traffic,
/// `l × (n_total − own) / m ≈ l × n_total / m`. The per-flow decode cost —
/// `l` random memory reads plus `l` hashes — is the paper's reason CSM
/// cannot decode 78 M flows online (§V-C).
#[derive(Debug, Clone)]
pub struct CsmSketch {
    cfg: CsmConfig,
    counters: Vec<u32>,
    byte_counters: Vec<u64>,
    total_packets: u64,
    total_bytes: u64,
    draw: u64,
}

impl CsmSketch {
    /// Creates an empty sketch.
    ///
    /// # Panics
    ///
    /// Panics if `num_counters` or `vector_len` is zero, or if
    /// `vector_len > num_counters`.
    #[must_use]
    pub fn new(cfg: CsmConfig) -> Self {
        assert!(cfg.num_counters > 0 && cfg.vector_len > 0, "sizes must be positive");
        assert!(cfg.vector_len <= cfg.num_counters, "vector cannot exceed pool");
        CsmSketch {
            cfg,
            counters: vec![0; cfg.num_counters],
            byte_counters: vec![0; cfg.num_counters],
            total_packets: 0,
            total_bytes: 0,
            draw: 0,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &CsmConfig {
        &self.cfg
    }

    /// Total packets recorded.
    #[must_use]
    pub fn total_packets(&self) -> u64 {
        self.total_packets
    }

    /// The `i`-th counter index of `key`'s storage vector.
    #[inline]
    fn vector_index(&self, h: u64, i: usize) -> usize {
        (mix64(h ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) % self.cfg.num_counters as u64)
            as usize
    }

    /// Number of memory reads + hashes one decode performs (`2l`) — the
    /// cost the paper's §V-C comparison hinges on.
    #[must_use]
    pub fn decode_cost_ops(&self) -> usize {
        2 * self.cfg.vector_len
    }
}

impl PerFlowCounter for CsmSketch {
    fn record(&mut self, pkt: &PacketRecord) {
        let h = flow_hash64(&pkt.key, self.cfg.seed);
        self.draw = self.draw.wrapping_add(1);
        let which = (mix64(h ^ self.draw) % self.cfg.vector_len as u64) as usize;
        let idx = self.vector_index(h, which);
        self.counters[idx] = self.counters[idx].saturating_add(1);
        self.byte_counters[idx] += u64::from(pkt.wire_len);
        self.total_packets += 1;
        self.total_bytes += u64::from(pkt.wire_len);
    }

    /// Counter-sum estimation: `Σ vector − l·n/m`, clamped at zero.
    fn estimate_packets(&self, key: &FlowKey) -> f64 {
        let h = flow_hash64(key, self.cfg.seed);
        let sum: u64 = (0..self.cfg.vector_len)
            .map(|i| u64::from(self.counters[self.vector_index(h, i)]))
            .sum();
        let noise =
            self.cfg.vector_len as f64 * self.total_packets as f64 / self.cfg.num_counters as f64;
        (sum as f64 - noise).max(0.0)
    }

    fn estimate_bytes(&self, key: &FlowKey) -> f64 {
        let h = flow_hash64(key, self.cfg.seed);
        let sum: u64 =
            (0..self.cfg.vector_len).map(|i| self.byte_counters[self.vector_index(h, i)]).sum();
        let noise =
            self.cfg.vector_len as f64 * self.total_bytes as f64 / self.cfg.num_counters as f64;
        (sum as f64 - noise).max(0.0)
    }

    fn memory_bytes(&self) -> usize {
        // The paper's CSM comparison counts the packet counters (32-bit).
        self.counters.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instameasure_packet::Protocol;

    fn key(i: u32) -> FlowKey {
        FlowKey::new(i.to_be_bytes(), [3, 3, 3, 3], 7, 8, Protocol::Udp)
    }

    fn small() -> CsmSketch {
        CsmSketch::new(CsmConfig { num_counters: 1 << 16, vector_len: 100, seed: 1 })
    }

    #[test]
    fn single_flow_estimate_is_close() {
        let mut csm = small();
        for t in 0..10_000u64 {
            csm.record(&PacketRecord::new(key(1), 100, t));
        }
        let est = csm.estimate_packets(&key(1));
        let rel = (est - 10_000.0).abs() / 10_000.0;
        assert!(rel < 0.05, "estimate {est}");
        let eb = csm.estimate_bytes(&key(1));
        assert!((eb - 1_000_000.0).abs() / 1_000_000.0 < 0.05, "bytes {eb}");
    }

    #[test]
    fn noise_subtraction_keeps_background_flows_near_zero() {
        let mut csm = small();
        // One elephant plus background mice.
        for t in 0..20_000u64 {
            csm.record(&PacketRecord::new(key(1), 100, t));
        }
        for i in 2..1000u32 {
            csm.record(&PacketRecord::new(key(i), 100, 0));
        }
        let unseen = csm.estimate_packets(&key(50_000));
        assert!(unseen < 500.0, "unseen flow estimate {unseen}");
    }

    #[test]
    fn estimates_never_negative() {
        let mut csm = small();
        for i in 0..5000u32 {
            csm.record(&PacketRecord::new(key(i), 64, 0));
        }
        for i in 0..100 {
            assert!(csm.estimate_packets(&key(i * 97)) >= 0.0);
        }
    }

    #[test]
    fn decode_cost_reflects_vector_len() {
        let csm = CsmSketch::new(CsmConfig { num_counters: 1 << 20, vector_len: 10_000, seed: 0 });
        assert_eq!(csm.decode_cost_ops(), 20_000, "paper's l=10000 decode is expensive");
        // 2^20 counters at 4B = 4MB... the paper's 60MB config:
        let paper =
            CsmSketch::new(CsmConfig { num_counters: 15 << 20, vector_len: 10_000, seed: 0 });
        assert_eq!(paper.memory_bytes(), 60 * (1 << 20));
    }

    #[test]
    fn storage_vector_is_deterministic() {
        let csm = small();
        let h = flow_hash64(&key(9), 1);
        let a: Vec<usize> = (0..10).map(|i| csm.vector_index(h, i)).collect();
        let b: Vec<usize> = (0..10).map(|i| csm.vector_index(h, i)).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "vector cannot exceed pool")]
    fn rejects_vector_larger_than_pool() {
        let _ = CsmSketch::new(CsmConfig { num_counters: 10, vector_len: 11, seed: 0 });
    }
}
