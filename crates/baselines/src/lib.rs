//! Baseline per-flow counters InstaMeasure is compared against.
//!
//! * [`ExactCounter`] — a plain hash map; the ground-truth reference and
//!   the paper's "packet-arrival-based" ideal.
//! * [`CsmSketch`] — randomized counter sharing (Li, Chen & Ling,
//!   INFOCOM 2011), the scheme the paper benchmarks in §V-C: encoding
//!   increments one of `l` shared counters; decoding sums all `l` and
//!   subtracts the expected noise — an *offline*, whole-array operation,
//!   which is exactly why the paper finds it impractically slow for
//!   whole-trace decoding.
//! * [`SampledNetflow`] — NetFlow-style packet sampling with an exact
//!   table over the sampled substream (the industry practice of §II).
//! * [`CountMinSketch`] — the most widely deployed counting sketch
//!   (Cormode & Muthukrishnan); `depth` memory touches per packet, no
//!   flow enumeration.
//! * [`SpaceSaving`] — the classic bounded-memory Top-K structure
//!   (Metwally et al.); exact below capacity, inherits-the-minimum above
//!   it — the "limited Top-K" regime §VI contrasts with.
//!
//! All of them implement [`PerFlowCounter`], the query interface shared
//! with the InstaMeasure system so benches can sweep implementations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod count_min;
mod csm;
mod exact;
mod sampled;
mod space_saving;

pub use count_min::{CountMinConfig, CountMinSketch};
pub use csm::{CsmConfig, CsmSketch};
pub use exact::ExactCounter;
pub use sampled::SampledNetflow;
pub use space_saving::SpaceSaving;

// The trait's home is the packet substrate (so the core system can
// implement it without depending on its competitors); re-exported here
// for backwards compatibility with its historical location.
pub use instameasure_packet::PerFlowCounter;
