//! Space-Saving (Metwally, Agrawal & El Abbadi 2005) — the classic
//! bounded-memory Top-K / elephant detector.

use std::collections::HashMap;

use instameasure_packet::{FlowKey, PacketRecord};

use crate::PerFlowCounter;

/// One monitored flow in the Space-Saving table.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Counter {
    key: FlowKey,
    count: u64,
    bytes: u64,
    /// Overestimation bound inherited from the evicted predecessor.
    error: u64,
}

/// Space-Saving: keep exactly `capacity` counters; a packet of an
/// unmonitored flow replaces the *minimum* counter and inherits its count
/// (the new flow's count is an overestimate bounded by the inherited
/// `error`).
///
/// Included because the paper contrasts with Top-K-oriented work
/// (Ben-Basat et al., §VI) whose lists are "quite limited (up to
/// top-512)": Space-Saving's accuracy collapses once the flow count far
/// exceeds its capacity, which is exactly the regime InstaMeasure's
/// in-DRAM WSAF (millions of entries) targets.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    capacity: usize,
    counters: Vec<Counter>,
    index: HashMap<FlowKey, usize>,
}

impl SpaceSaving {
    /// Creates a Space-Saving instance with `capacity` counters.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        SpaceSaving { capacity, counters: Vec::new(), index: HashMap::new() }
    }

    /// Number of monitored flows (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether no flow is monitored yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// The `k` largest monitored flows by count, descending, with their
    /// guaranteed lower bounds (`count - error`).
    #[must_use]
    pub fn top_k(&self, k: usize) -> Vec<(FlowKey, u64, u64)> {
        let mut all: Vec<&Counter> = self.counters.iter().collect();
        all.sort_by_key(|c| std::cmp::Reverse(c.count));
        all.truncate(k);
        all.iter().map(|c| (c.key, c.count, c.count - c.error)).collect()
    }

    fn min_index(&self) -> usize {
        let mut best = 0;
        for (i, c) in self.counters.iter().enumerate() {
            if c.count < self.counters[best].count {
                best = i;
            }
        }
        best
    }
}

impl PerFlowCounter for SpaceSaving {
    fn record(&mut self, pkt: &PacketRecord) {
        if let Some(&i) = self.index.get(&pkt.key) {
            self.counters[i].count += 1;
            self.counters[i].bytes += u64::from(pkt.wire_len);
            return;
        }
        if self.counters.len() < self.capacity {
            self.index.insert(pkt.key, self.counters.len());
            self.counters.push(Counter {
                key: pkt.key,
                count: 1,
                bytes: u64::from(pkt.wire_len),
                error: 0,
            });
            return;
        }
        // Replace the minimum counter; the newcomer inherits its count.
        let i = self.min_index();
        let old = self.counters[i];
        self.index.remove(&old.key);
        self.index.insert(pkt.key, i);
        self.counters[i] = Counter {
            key: pkt.key,
            count: old.count + 1,
            bytes: old.bytes + u64::from(pkt.wire_len),
            error: old.count,
        };
    }

    fn estimate_packets(&self, key: &FlowKey) -> f64 {
        self.index.get(key).map_or(0.0, |&i| self.counters[i].count as f64)
    }

    fn estimate_bytes(&self, key: &FlowKey) -> f64 {
        self.index.get(key).map_or(0.0, |&i| self.counters[i].bytes as f64)
    }

    fn memory_bytes(&self) -> usize {
        // key (13B) + count/bytes/error (24B) + index overhead (~16B).
        self.capacity * 53
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instameasure_packet::Protocol;

    fn key(i: u32) -> FlowKey {
        FlowKey::new(i.to_be_bytes(), [9, 9, 9, 9], 5, 6, Protocol::Udp)
    }

    fn feed(ss: &mut SpaceSaving, i: u32, n: u64) {
        for t in 0..n {
            ss.record(&PacketRecord::new(key(i), 100, t));
        }
    }

    #[test]
    fn below_capacity_is_exact() {
        let mut ss = SpaceSaving::new(10);
        feed(&mut ss, 1, 500);
        feed(&mut ss, 2, 300);
        assert_eq!(ss.estimate_packets(&key(1)), 500.0);
        assert_eq!(ss.estimate_bytes(&key(2)), 30_000.0);
        assert_eq!(ss.len(), 2);
        let top = ss.top_k(1);
        assert_eq!(top[0].0, key(1));
        assert_eq!(top[0].2, 500, "exact flows have zero error bound");
    }

    #[test]
    fn never_underestimates_monitored_flows() {
        let mut ss = SpaceSaving::new(16);
        for round in 0..50u32 {
            feed(&mut ss, round % 40, 5);
        }
        // Every monitored flow's count >= its true count (overestimate
        // with inherited error).
        for (k, count, _) in ss.top_k(16) {
            let i = u32::from_be_bytes(k.src_ip);
            let truth = ((50 - i).div_ceil(40)) as u64 * 5;
            assert!(count >= truth.min(5), "flow {i}: {count}");
        }
    }

    #[test]
    fn elephants_survive_mice_churn() {
        let mut ss = SpaceSaving::new(32);
        feed(&mut ss, 1, 10_000);
        for i in 100..5000u32 {
            feed(&mut ss, i, 1);
        }
        let top = ss.top_k(1);
        assert_eq!(top[0].0, key(1), "the elephant stays on top");
        assert!(top[0].1 >= 10_000);
    }

    #[test]
    fn capacity_bound_is_hard() {
        let mut ss = SpaceSaving::new(8);
        for i in 0..1000u32 {
            feed(&mut ss, i, 2);
        }
        assert_eq!(ss.len(), 8);
        assert!(ss.memory_bytes() < 1024);
    }

    #[test]
    fn accuracy_collapses_beyond_capacity_unlike_wsaf() {
        // The paper's point about limited Top-K baselines: with far more
        // flows than counters, small flows all read as the inherited
        // minimum — overestimates far from truth.
        let mut ss = SpaceSaving::new(64);
        for i in 0..10_000u32 {
            feed(&mut ss, i, 3);
        }
        let monitored = ss.top_k(64);
        let worst = monitored.iter().map(|&(_, c, _)| c).max().unwrap();
        assert!(worst > 100, "counts inflate by inherited error: {worst}");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        let _ = SpaceSaving::new(0);
    }
}
