//! Count-Min sketch (Cormode & Muthukrishnan 2005).

use instameasure_packet::hash::flow_hash64;
use instameasure_packet::{FlowKey, PacketRecord};

use crate::PerFlowCounter;

/// Configuration of a [`CountMinSketch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountMinConfig {
    /// Number of rows (independent hash functions); typical 3–5.
    pub depth: usize,
    /// Counters per row.
    pub width: usize,
    /// Hash seed.
    pub seed: u64,
}

impl Default for CountMinConfig {
    fn default() -> Self {
        CountMinConfig { depth: 4, width: 1 << 16, seed: 0xC04E }
    }
}

/// The classic Count-Min sketch: `depth` rows of `width` counters; each
/// packet increments one counter per row; a query returns the minimum over
/// the rows (an overestimate with one-sided error).
///
/// Included as the most widely deployed point of comparison. Note the
/// structural differences the paper's design addresses: Count-Min touches
/// `depth` memory words per packet (InstaMeasure touches ≤2), cannot
/// enumerate flows (no keys stored), and over-counts under heavy key
/// collisions rather than retaining mice.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    cfg: CountMinConfig,
    rows: Vec<Vec<u32>>,
    byte_rows: Vec<Vec<u64>>,
    total_packets: u64,
}

impl CountMinSketch {
    /// Creates an empty sketch.
    ///
    /// # Panics
    ///
    /// Panics if depth or width is zero.
    #[must_use]
    pub fn new(cfg: CountMinConfig) -> Self {
        assert!(cfg.depth > 0 && cfg.width > 0, "depth and width must be positive");
        CountMinSketch {
            cfg,
            rows: vec![vec![0; cfg.width]; cfg.depth],
            byte_rows: vec![vec![0; cfg.width]; cfg.depth],
            total_packets: 0,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &CountMinConfig {
        &self.cfg
    }

    /// Total packets recorded.
    #[must_use]
    pub fn total_packets(&self) -> u64 {
        self.total_packets
    }

    #[inline]
    fn index(&self, key: &FlowKey, row: usize) -> usize {
        (flow_hash64(key, self.cfg.seed.wrapping_add(row as u64 * 0x9E37)) % self.cfg.width as u64)
            as usize
    }
}

impl PerFlowCounter for CountMinSketch {
    fn record(&mut self, pkt: &PacketRecord) {
        for row in 0..self.cfg.depth {
            let idx = self.index(&pkt.key, row);
            self.rows[row][idx] = self.rows[row][idx].saturating_add(1);
            self.byte_rows[row][idx] += u64::from(pkt.wire_len);
        }
        self.total_packets += 1;
    }

    fn estimate_packets(&self, key: &FlowKey) -> f64 {
        (0..self.cfg.depth)
            .map(|row| self.rows[row][self.index(key, row)])
            .min()
            .map_or(0.0, f64::from)
    }

    fn estimate_bytes(&self, key: &FlowKey) -> f64 {
        (0..self.cfg.depth)
            .map(|row| self.byte_rows[row][self.index(key, row)])
            .min()
            .map_or(0.0, |v| v as f64)
    }

    fn memory_bytes(&self) -> usize {
        self.cfg.depth * self.cfg.width * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instameasure_packet::Protocol;

    fn key(i: u32) -> FlowKey {
        FlowKey::new(i.to_be_bytes(), [7, 7, 7, 7], 1, 2, Protocol::Tcp)
    }

    fn small() -> CountMinSketch {
        CountMinSketch::new(CountMinConfig { depth: 4, width: 1 << 12, seed: 1 })
    }

    #[test]
    fn never_underestimates() {
        let mut cm = small();
        for i in 0..2000u32 {
            for _ in 0..=(i % 7) {
                cm.record(&PacketRecord::new(key(i), 100, 0));
            }
        }
        for i in 0..2000u32 {
            let truth = f64::from(i % 7 + 1);
            let est = cm.estimate_packets(&key(i));
            assert!(est >= truth, "flow {i}: est {est} < truth {truth}");
        }
    }

    #[test]
    fn isolated_flow_is_exact() {
        let mut cm = small();
        for t in 0..5000u64 {
            cm.record(&PacketRecord::new(key(1), 100, t));
        }
        assert_eq!(cm.estimate_packets(&key(1)), 5000.0);
        assert_eq!(cm.estimate_bytes(&key(1)), 500_000.0);
        assert_eq!(cm.total_packets(), 5000);
    }

    #[test]
    fn overestimate_grows_with_load() {
        // Error is ~ total/width per collision: heavier load, bigger error.
        let light = {
            let mut cm = small();
            for i in 0..500u32 {
                cm.record(&PacketRecord::new(key(i), 64, 0));
            }
            cm.estimate_packets(&key(1_000_000))
        };
        let heavy = {
            let mut cm = small();
            for i in 0..200_000u32 {
                cm.record(&PacketRecord::new(key(i), 64, 0));
            }
            cm.estimate_packets(&key(1_000_000))
        };
        assert!(heavy >= light, "heavy {heavy} vs light {light}");
        assert!(heavy > 0.0, "dense sketch must collide");
    }

    #[test]
    fn memory_accounting() {
        assert_eq!(small().memory_bytes(), 4 * (1 << 12) * 4);
    }

    #[test]
    #[should_panic(expected = "depth and width must be positive")]
    fn rejects_zero_geometry() {
        let _ = CountMinSketch::new(CountMinConfig { depth: 0, width: 1, seed: 0 });
    }
}
