//! Property tests for the streaming generator.

use instameasure_traffic::stream::{StreamConfig, StreamingTrace};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn stream_invariants(
        flows in 10usize..500,
        alpha in 0.5f64..1.8,
        max in 100u64..5_000,
        seed in any::<u64>(),
    ) {
        let cfg = StreamConfig {
            flows,
            alpha,
            max_flow_size: max,
            duration_nanos: 100_000_000,
            seed,
        };
        let stream = StreamingTrace::new(cfg);
        let declared = stream.total_packets();
        let mut last = 0u64;
        let mut count = 0u64;
        for pkt in stream {
            prop_assert!(pkt.ts_nanos >= last, "time order");
            prop_assert!((60..=1514).contains(&pkt.wire_len), "valid length");
            last = pkt.ts_nanos;
            count += 1;
        }
        prop_assert_eq!(count, declared);
        // Analytic flow sizes sum to the declared total.
        let probe = StreamingTrace::new(cfg);
        let sum: u64 = (0..flows).map(|i| probe.flow_size(i)).sum();
        prop_assert_eq!(sum, declared);
    }
}
