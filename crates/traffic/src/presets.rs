//! Scaled stand-ins for the paper's two datasets.
//!
//! `scale = 1.0` targets a workload that runs in seconds on a laptop; the
//! paper's full traces are ~500× larger (see DESIGN.md "Substitutions").
//! Every preset is deterministic given its seed.

use crate::builder::{DiurnalPattern, SyntheticTraceBuilder, Trace};

/// A scaled stand-in for the CAIDA Equinix-Chicago 2016 one-hour trace
/// (paper §V-A: 3.7 B packets, 78 M L4 flows, ≤1.5 Mpps, Zipf-like sizes).
///
/// At `scale = 1.0`: ~150 k flows, a few million packets, compressed to a
/// 10-second horizon so pps stays in the paper's hundreds-of-kpps regime.
///
/// # Panics
///
/// Panics if `scale` is not positive.
#[must_use]
pub fn caida_like(scale: f64, seed: u64) -> Trace {
    assert!(scale > 0.0, "scale must be positive");
    let alpha = 1.05;
    let flows = ((150_000.0 * scale) as usize).max(100);
    SyntheticTraceBuilder::new()
        .num_flows(flows)
        .zipf_alpha(alpha)
        // Tie the head size to the flow count so the *shape* is
        // scale-invariant; the coefficient balances CAIDA's two defining
        // properties (~80% mice by count, elephants carrying the volume).
        .max_flow_size(((2.0 * (flows as f64).powf(alpha)) as u64).max(1_000))
        .duration_secs(10.0)
        .udp_fraction(0.2)
        .seed(seed)
        .build()
}

/// A scaled stand-in for the 113-hour campus gateway capture (paper §V-A:
/// 9.1 B packets, Zipf-like, strong day/night swing, 93.6% TCP).
///
/// The 113 hours are compressed into 113 "virtual hours" of 100 ms each so
/// the diurnal structure (≈4.7 days) survives at laptop scale.
///
/// # Panics
///
/// Panics if `scale` is not positive.
#[must_use]
pub fn campus_like(scale: f64, seed: u64) -> Trace {
    assert!(scale > 0.0, "scale must be positive");
    let virtual_hour = 100_000_000u64; // 100 ms per "hour"
    let alpha = 1.05;
    let flows = ((120_000.0 * scale) as usize).max(100);
    SyntheticTraceBuilder::new()
        .num_flows(flows)
        .zipf_alpha(alpha)
        .max_flow_size(((2.2 * (flows as f64).powf(alpha)) as u64).max(1_000))
        .duration_nanos(113 * virtual_hour)
        .udp_fraction(0.064)
        .diurnal(DiurnalPattern { period_nanos: 24 * virtual_hour, trough_fraction: 0.25 })
        .seed(seed)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use instameasure_packet::Protocol;

    #[test]
    fn caida_like_shape() {
        let t = caida_like(0.02, 1);
        assert!(t.stats.flows >= 2_900, "flows {}", t.stats.flows);
        assert!(t.stats.packets > 50_000, "packets {}", t.stats.packets);
        // Zipf: median flow is a mouse.
        assert!(t.stats.median_flow_size() <= 10);
        // Horizon 10 s.
        assert!(t.stats.duration_nanos <= 10_000_000_000);
    }

    #[test]
    fn campus_like_shape() {
        let t = campus_like(0.02, 2);
        assert!(t.stats.flows >= 2_000);
        // Mostly TCP, like the real capture.
        let udp = t.records.iter().filter(|r| r.key.protocol == Protocol::Udp).count();
        let frac = udp as f64 / t.records.len() as f64;
        assert!(frac < 0.15, "udp fraction {frac}");
        // Covers the 113 virtual hours.
        assert!(t.stats.duration_nanos > 100 * 100_000_000);
    }

    #[test]
    fn presets_are_deterministic() {
        let a = caida_like(0.01, 7);
        let b = caida_like(0.01, 7);
        assert_eq!(a.records.len(), b.records.len());
        assert_eq!(a.records.first(), b.records.first());
        assert_eq!(a.records.last(), b.records.last());
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn rejects_zero_scale() {
        let _ = caida_like(0.0, 0);
    }
}
