//! Zipf flow-size generation.

/// Deterministic Zipf-like flow sizes: the rank-`i` flow (1-based) gets
/// `max(1, round(c / i^alpha))` packets, with `c` chosen so the rank-1 flow
/// has `max_flow_size` packets.
///
/// Internet traffic famously follows this shape (paper §III cites Breslau
/// et al.): with `alpha ≈ 1` the handful of top-ranked elephants carry most
/// packets while the long tail of mice dominates the flow count.
///
/// # Panics
///
/// Panics if `alpha` is not positive and finite, or `max_flow_size == 0`.
///
/// # Example
///
/// ```
/// let sizes = instameasure_traffic::zipf_sizes(1000, 1.0, 1_000);
/// assert_eq!(sizes[0], 1_000);
/// assert_eq!(sizes[999], 1); // 1_000 / 1000
/// let mice = sizes.iter().filter(|&&s| s <= 10).count();
/// assert!(mice > 800, "mice dominate the flow count: {mice}");
/// ```
#[must_use]
pub fn zipf_sizes(num_flows: usize, alpha: f64, max_flow_size: u64) -> Vec<u64> {
    assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive and finite");
    assert!(max_flow_size > 0, "max_flow_size must be positive");
    let c = max_flow_size as f64;
    (1..=num_flows).map(|i| ((c / (i as f64).powf(alpha)).round() as u64).max(1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_monotone_nonincreasing() {
        let sizes = zipf_sizes(10_000, 1.1, 1_000_000);
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(sizes.len(), 10_000);
    }

    #[test]
    fn heavier_tail_with_smaller_alpha() {
        let flat = zipf_sizes(1000, 0.8, 100_000);
        let steep = zipf_sizes(1000, 1.5, 100_000);
        let total_flat: u64 = flat.iter().sum();
        let total_steep: u64 = steep.iter().sum();
        assert!(total_flat > total_steep, "smaller alpha spreads more volume to the tail");
    }

    #[test]
    fn elephants_carry_most_volume() {
        // The paper's premise: a few elephants carry the volume.
        let sizes = zipf_sizes(100_000, 1.0, 1_000_000);
        let total: u64 = sizes.iter().sum();
        let top1pct: u64 = sizes.iter().take(1000).sum();
        assert!(
            top1pct as f64 / total as f64 > 0.5,
            "top 1% flows carry {}% of packets",
            100 * top1pct / total
        );
    }

    #[test]
    fn every_flow_has_at_least_one_packet() {
        let sizes = zipf_sizes(1_000_000, 2.0, 100);
        assert!(sizes.iter().all(|&s| s >= 1));
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn rejects_bad_alpha() {
        let _ = zipf_sizes(10, -1.0, 100);
    }
}
