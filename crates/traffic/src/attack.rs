//! Constant-rate attack/heavy-hitter flow generation for the
//! detection-latency experiments (paper Fig. 9b: a traffic generator sends
//! 10–200 kpps at the device while detection delay is recorded).

use instameasure_packet::{FlowKey, PacketRecord, Protocol};

/// Generates one constant-rate flow: `rate_pps` packets per second from
/// `start_nanos` for `duration_nanos`, all `wire_len` bytes.
///
/// Packets are evenly spaced — the worst case for saturation-based
/// detection latency, since the detector must wait for whole retention
/// cycles.
///
/// # Panics
///
/// Panics if `rate_pps` is zero.
///
/// # Example
///
/// ```
/// use instameasure_packet::{FlowKey, Protocol};
/// use instameasure_traffic::attack::constant_rate_flow;
/// let key = FlowKey::new([6, 6, 6, 6], [7, 7, 7, 7], 666, 80, Protocol::Udp);
/// let pkts = constant_rate_flow(key, 10_000, 64, 0, 1_000_000_000);
/// assert_eq!(pkts.len(), 10_000);
/// assert_eq!(pkts[1].ts_nanos - pkts[0].ts_nanos, 100_000); // 10 kpps spacing
/// ```
#[must_use]
pub fn constant_rate_flow(
    key: FlowKey,
    rate_pps: u64,
    wire_len: u16,
    start_nanos: u64,
    duration_nanos: u64,
) -> Vec<PacketRecord> {
    assert!(rate_pps > 0, "rate must be positive");
    let gap = 1_000_000_000 / rate_pps;
    let count = duration_nanos / gap.max(1);
    (0..count).map(|i| PacketRecord::new(key, wire_len, start_nanos + i * gap)).collect()
}

/// A conventional attacker 5-tuple used by examples and benches.
#[must_use]
pub fn attacker_key(id: u8) -> FlowKey {
    FlowKey::new([198, 51, 100, id], [203, 0, 113, 7], 40_000 + u16::from(id), 80, Protocol::Udp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_and_span_are_exact() {
        let pkts = constant_rate_flow(attacker_key(1), 100_000, 64, 500, 100_000_000);
        assert_eq!(pkts.len(), 10_000, "100 kpps for 0.1 s");
        assert_eq!(pkts.first().unwrap().ts_nanos, 500);
        assert!(pkts.last().unwrap().ts_nanos < 500 + 100_000_000);
        // Even spacing.
        let gaps: Vec<u64> = pkts.windows(2).map(|w| w[1].ts_nanos - w[0].ts_nanos).collect();
        assert!(gaps.iter().all(|&g| g == gaps[0]));
    }

    #[test]
    fn distinct_attackers_have_distinct_keys() {
        assert_ne!(attacker_key(1), attacker_key(2));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn rejects_zero_rate() {
        let _ = constant_rate_flow(attacker_key(0), 0, 64, 0, 1);
    }
}
