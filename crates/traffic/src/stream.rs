//! Streaming trace generation for larger-than-RAM workloads.
//!
//! [`SyntheticTraceBuilder`](crate::SyntheticTraceBuilder) materializes the
//! whole packet vector — fine up to a few million packets, but the paper's
//! workloads are billions. [`StreamingTrace`] generates the same Zipf-shaped
//! traffic as a time-ordered *iterator* with `O(flows)` memory and exact
//! analytic ground truth (every flow emits exactly its assigned size), so
//! stress runs can push tens of millions of packets through the pipeline
//! without holding them.
//!
//! # Example
//!
//! ```
//! use instameasure_traffic::stream::{StreamConfig, StreamingTrace};
//!
//! let cfg = StreamConfig { flows: 1_000, alpha: 1.05, max_flow_size: 5_000,
//!                          duration_nanos: 1_000_000_000, seed: 7 };
//! let stream = StreamingTrace::new(cfg);
//! let total = stream.total_packets();
//! let mut last_ts = 0;
//! let mut count = 0u64;
//! for pkt in StreamingTrace::new(cfg) {
//!     assert!(pkt.ts_nanos >= last_ts, "time-ordered");
//!     last_ts = pkt.ts_nanos;
//!     count += 1;
//! }
//! assert_eq!(count, total);
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use instameasure_packet::hash::mix64;
use instameasure_packet::{FlowKey, PacketRecord, Protocol};

use crate::zipf::zipf_sizes;

/// Parameters of a streaming trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Number of distinct flows.
    pub flows: usize,
    /// Zipf exponent.
    pub alpha: f64,
    /// Packets in the rank-1 flow.
    pub max_flow_size: u64,
    /// Trace horizon in nanoseconds.
    pub duration_nanos: u64,
    /// Seed for keys, phases and packet sizes.
    pub seed: u64,
}

/// Per-flow generator state.
#[derive(Debug, Clone, Copy)]
struct FlowState {
    remaining: u64,
    next_ts: u64,
    gap: u64,
    wire_len: u16,
}

/// A time-ordered packet iterator over a synthetic Zipf workload.
///
/// Construction is `O(flows log flows)`; each packet is `O(log flows)`
/// (a binary-heap event queue keyed on next arrival time).
#[derive(Debug)]
pub struct StreamingTrace {
    cfg: StreamConfig,
    states: Vec<FlowState>,
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    total: u64,
    emitted: u64,
}

impl StreamingTrace {
    /// Builds the stream (allocates per-flow state only).
    ///
    /// # Panics
    ///
    /// Panics if `flows` is zero or the duration is zero.
    #[must_use]
    pub fn new(cfg: StreamConfig) -> Self {
        assert!(cfg.flows > 0, "need at least one flow");
        assert!(cfg.duration_nanos > 0, "need a positive duration");
        let sizes = zipf_sizes(cfg.flows, cfg.alpha, cfg.max_flow_size);
        let mut states = Vec::with_capacity(cfg.flows);
        let mut heap = BinaryHeap::with_capacity(cfg.flows);
        let mut total = 0u64;
        for (idx, &size) in sizes.iter().enumerate() {
            total += size;
            // Deterministic per-flow randomness from (seed, idx).
            let r = mix64(cfg.seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            // Spread the flow over a span proportional to its size
            // (mice burst, elephants span the horizon), like the builder.
            let span = (size.saturating_mul(2_000_000)).min(cfg.duration_nanos);
            let start_max = cfg.duration_nanos - span.min(cfg.duration_nanos);
            let start = if start_max == 0 { 0 } else { r % start_max };
            let gap = (span / size).max(1);
            let wire_len = Self::wire_len_for(r);
            states.push(FlowState { remaining: size, next_ts: start, gap, wire_len });
            heap.push(Reverse((start, idx as u32)));
        }
        StreamingTrace { cfg, states, heap, total, emitted: 0 }
    }

    /// Exact total packet count of the stream.
    #[must_use]
    pub fn total_packets(&self) -> u64 {
        self.total
    }

    /// Packets emitted so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The deterministic key of flow `idx` (also the analytic ground-truth
    /// handle: flow `idx` carries exactly [`StreamingTrace::flow_size`]
    /// packets).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= flows`.
    #[must_use]
    pub fn flow_key(&self, idx: usize) -> FlowKey {
        assert!(idx < self.cfg.flows, "flow index out of range");
        let r = mix64(self.cfg.seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let r2 = mix64(r);
        FlowKey::new(
            ((r >> 32) as u32).to_be_bytes(),
            (r2 as u32).to_be_bytes(),
            (r as u16) | 1024,
            [80u16, 443, 53, 22, 8080][(r2 >> 32) as usize % 5],
            if r2 >> 60 < 3 { Protocol::Udp } else { Protocol::Tcp },
        )
    }

    /// The exact packet count of flow `idx` (Zipf rank `idx + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= flows`.
    #[must_use]
    pub fn flow_size(&self, idx: usize) -> u64 {
        assert!(idx < self.cfg.flows, "flow index out of range");
        let c = self.cfg.max_flow_size as f64;
        ((c / ((idx + 1) as f64).powf(self.cfg.alpha)).round() as u64).max(1)
    }

    /// The fixed wire length of flow `idx`'s packets.
    #[must_use]
    pub fn flow_wire_len(&self, idx: usize) -> u16 {
        self.states[idx].wire_len
    }

    /// Per-flow homogeneous length from the bimodal mix (like the
    /// builder's profiles, without per-packet jitter — jitter would force
    /// per-packet RNG state and buys nothing for stress runs).
    fn wire_len_for(r: u64) -> u16 {
        let sel = (r >> 16) % 100;
        if sel < 55 {
            64 + (r % 53) as u16
        } else if sel < 85 {
            1430 + (r % 85) as u16
        } else {
            250 + (r % 900) as u16
        }
    }
}

impl Iterator for StreamingTrace {
    type Item = PacketRecord;

    fn next(&mut self) -> Option<PacketRecord> {
        let Reverse((ts, idx)) = self.heap.pop()?;
        let key = self.flow_key(idx as usize);
        let state = &mut self.states[idx as usize];
        state.remaining -= 1;
        let pkt = PacketRecord::new(key, state.wire_len, ts);
        if state.remaining > 0 {
            // Deterministic jitter: up to one gap of slack.
            let jitter = mix64(ts ^ u64::from(idx)) % state.gap.max(1);
            state.next_ts = ts + state.gap + jitter / 2;
            self.heap.push(Reverse((state.next_ts, idx)));
        }
        self.emitted += 1;
        Some(pkt)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.total - self.emitted) as usize;
        (left, Some(left))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> StreamConfig {
        StreamConfig {
            flows: 2_000,
            alpha: 1.05,
            max_flow_size: 10_000,
            duration_nanos: 1_000_000_000,
            seed: 5,
        }
    }

    #[test]
    fn emits_exactly_the_declared_packets_in_order() {
        let stream = StreamingTrace::new(cfg());
        let total = stream.total_packets();
        let mut last = 0;
        let mut count = 0u64;
        for pkt in stream {
            assert!(pkt.ts_nanos >= last);
            last = pkt.ts_nanos;
            count += 1;
        }
        assert_eq!(count, total);
        assert!(last < cfg().duration_nanos * 2, "bounded overshoot from jitter");
    }

    #[test]
    fn per_flow_counts_match_analytic_truth() {
        use std::collections::HashMap;
        let stream = StreamingTrace::new(cfg());
        let keys: Vec<FlowKey> = (0..cfg().flows).map(|i| stream.flow_key(i)).collect();
        let sizes: Vec<u64> = (0..cfg().flows).map(|i| stream.flow_size(i)).collect();
        let mut counts: HashMap<FlowKey, u64> = HashMap::new();
        for pkt in stream {
            *counts.entry(pkt.key).or_insert(0) += 1;
        }
        for (i, key) in keys.iter().enumerate() {
            assert_eq!(counts.get(key).copied().unwrap_or(0), sizes[i], "flow {i}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<_> = StreamingTrace::new(cfg()).take(1000).collect();
        let b: Vec<_> = StreamingTrace::new(cfg()).take(1000).collect();
        assert_eq!(a, b);
        let mut other = cfg();
        other.seed = 6;
        let c: Vec<_> = StreamingTrace::new(other).take(1000).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn size_hint_is_exact() {
        let mut s = StreamingTrace::new(cfg());
        let total = s.total_packets() as usize;
        assert_eq!(s.size_hint(), (total, Some(total)));
        s.next();
        assert_eq!(s.size_hint(), (total - 1, Some(total - 1)));
    }

    #[test]
    fn memory_stays_proportional_to_flows_not_packets() {
        // 200M-packet stream constructs instantly and yields lazily.
        let big = StreamConfig {
            flows: 10_000,
            alpha: 0.8,
            max_flow_size: 4_000_000,
            duration_nanos: 3_600_000_000_000,
            seed: 1,
        };
        let mut s = StreamingTrace::new(big);
        assert!(s.total_packets() > 100_000_000);
        // Pull a few packets without materializing anything.
        for _ in 0..1000 {
            assert!(s.next().is_some());
        }
    }

    #[test]
    #[should_panic(expected = "flow index out of range")]
    fn flow_key_bounds_checked() {
        let s = StreamingTrace::new(cfg());
        let _ = s.flow_key(10_000);
    }
}
