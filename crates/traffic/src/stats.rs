//! Ground truth and trace statistics.

use std::collections::HashMap;

use instameasure_packet::{FlowKey, PacketRecord};

/// Exact per-flow packet and byte counts — the reference every accuracy
/// figure compares against (the paper's "packet-arrival-based" ground
/// truth).
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Exact packets per flow.
    pub packets: HashMap<FlowKey, u64>,
    /// Exact bytes per flow.
    pub bytes: HashMap<FlowKey, u64>,
}

impl GroundTruth {
    /// Flows with at least `min_packets` packets, with their counts.
    #[must_use]
    pub fn flows_at_least(&self, min_packets: u64) -> Vec<(FlowKey, u64)> {
        self.packets.iter().filter(|&(_, &c)| c >= min_packets).map(|(k, &c)| (*k, c)).collect()
    }

    /// The `k` largest flows by the chosen metric, descending.
    #[must_use]
    pub fn top_k(&self, k: usize, by_bytes: bool) -> Vec<(FlowKey, u64)> {
        let map = if by_bytes { &self.bytes } else { &self.packets };
        let mut v: Vec<(FlowKey, u64)> = map.iter().map(|(k, &c)| (*k, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.to_bytes().cmp(&b.0.to_bytes())));
        v.truncate(k);
        v
    }
}

/// Computes the exact per-flow ground truth of a packet stream.
#[must_use]
pub fn ground_truth(records: &[PacketRecord]) -> GroundTruth {
    let mut gt = GroundTruth::default();
    for r in records {
        *gt.packets.entry(r.key).or_insert(0) += 1;
        *gt.bytes.entry(r.key).or_insert(0) += u64::from(r.wire_len);
    }
    gt
}

/// Packets-per-second series over fixed bins (the pps curves of Figs. 1, 7
/// and 12).
///
/// Returns one value per bin of `bin_nanos`, covering the full span of the
/// stream. Values are scaled to packets *per second* regardless of bin
/// width.
///
/// # Panics
///
/// Panics if `bin_nanos` is zero.
#[must_use]
pub fn pps_series(records: &[PacketRecord], bin_nanos: u64) -> Vec<f64> {
    assert!(bin_nanos > 0, "bin width must be positive");
    let Some(last) = records.last() else {
        return Vec::new();
    };
    let bins = (last.ts_nanos / bin_nanos + 1) as usize;
    let mut counts = vec![0u64; bins];
    for r in records {
        counts[(r.ts_nanos / bin_nanos) as usize] += 1;
    }
    let scale = 1e9 / bin_nanos as f64;
    counts.into_iter().map(|c| c as f64 * scale).collect()
}

/// Summary statistics of a trace.
#[derive(Debug, Clone)]
pub struct TraceStats {
    /// Total packets.
    pub packets: u64,
    /// Total bytes.
    pub bytes: u64,
    /// Distinct flows.
    pub flows: usize,
    /// Trace span in nanoseconds (first to last packet).
    pub duration_nanos: u64,
    /// Exact per-flow counts.
    pub truth: GroundTruth,
}

impl TraceStats {
    /// Computes statistics (including full ground truth) for a stream.
    #[must_use]
    pub fn from_records(records: &[PacketRecord]) -> Self {
        let truth = ground_truth(records);
        let duration = match (records.first(), records.last()) {
            (Some(f), Some(l)) => l.ts_nanos - f.ts_nanos,
            _ => 0,
        };
        TraceStats {
            packets: records.len() as u64,
            bytes: records.iter().map(|r| u64::from(r.wire_len)).sum(),
            flows: truth.packets.len(),
            duration_nanos: duration,
            truth,
        }
    }

    /// Average packets per second across the span.
    #[must_use]
    pub fn mean_pps(&self) -> f64 {
        if self.duration_nanos == 0 {
            0.0
        } else {
            self.packets as f64 * 1e9 / self.duration_nanos as f64
        }
    }

    /// Median flow size in packets.
    #[must_use]
    pub fn median_flow_size(&self) -> u64 {
        let mut sizes: Vec<u64> = self.truth.packets.values().copied().collect();
        if sizes.is_empty() {
            return 0;
        }
        sizes.sort_unstable();
        sizes[sizes.len() / 2]
    }

    /// Complementary CDF of flow sizes at the given thresholds:
    /// `(threshold, fraction of flows with ≥ threshold packets)` — the
    /// distribution plot of paper Fig. 6.
    #[must_use]
    pub fn flow_size_ccdf(&self, thresholds: &[u64]) -> Vec<(u64, f64)> {
        let n = self.truth.packets.len().max(1) as f64;
        thresholds
            .iter()
            .map(|&t| {
                let count = self.truth.packets.values().filter(|&&s| s >= t).count();
                (t, count as f64 / n)
            })
            .collect()
    }

    /// Complementary CDF of flow *byte* volumes (Fig. 6's byte panel).
    #[must_use]
    pub fn flow_bytes_ccdf(&self, thresholds: &[u64]) -> Vec<(u64, f64)> {
        let n = self.truth.bytes.len().max(1) as f64;
        thresholds
            .iter()
            .map(|&t| {
                let count = self.truth.bytes.values().filter(|&&s| s >= t).count();
                (t, count as f64 / n)
            })
            .collect()
    }

    /// Fraction of packets per transport protocol, descending — the
    /// dataset breakdown of §V-A ("6.4% of UDP and 93.6% TCP").
    #[must_use]
    pub fn protocol_mix(&self) -> Vec<(instameasure_packet::Protocol, f64)> {
        let mut counts: HashMap<instameasure_packet::Protocol, u64> = HashMap::new();
        let mut total = 0u64;
        for (key, &pkts) in &self.truth.packets {
            *counts.entry(key.protocol).or_insert(0) += pkts;
            total += pkts;
        }
        let mut mix: Vec<_> =
            counts.into_iter().map(|(p, c)| (p, c as f64 / total.max(1) as f64)).collect();
        mix.sort_by(|a, b| b.1.total_cmp(&a.1));
        mix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instameasure_packet::Protocol;

    fn key(i: u32) -> FlowKey {
        FlowKey::new(i.to_be_bytes(), [1, 1, 1, 1], 5, 6, Protocol::Tcp)
    }

    fn mk(records: &[(u32, u16, u64)]) -> Vec<PacketRecord> {
        records.iter().map(|&(i, len, ts)| PacketRecord::new(key(i), len, ts)).collect()
    }

    #[test]
    fn ground_truth_counts_exactly() {
        let recs = mk(&[(1, 100, 0), (1, 200, 1), (2, 50, 2)]);
        let gt = ground_truth(&recs);
        assert_eq!(gt.packets[&key(1)], 2);
        assert_eq!(gt.bytes[&key(1)], 300);
        assert_eq!(gt.packets[&key(2)], 1);
        assert_eq!(gt.packets.len(), 2);
    }

    #[test]
    fn flows_at_least_filters() {
        let recs = mk(&[(1, 10, 0), (1, 10, 1), (1, 10, 2), (2, 10, 3)]);
        let gt = ground_truth(&recs);
        let big = gt.flows_at_least(2);
        assert_eq!(big.len(), 1);
        assert_eq!(big[0], (key(1), 3));
    }

    #[test]
    fn top_k_by_both_metrics() {
        // Flow 1: 3 packets × 10B; flow 2: 1 packet × 1000B.
        let recs = mk(&[(1, 10, 0), (1, 10, 1), (1, 10, 2), (2, 1000, 3)]);
        let gt = ground_truth(&recs);
        assert_eq!(gt.top_k(1, false)[0].0, key(1), "packet top-1");
        assert_eq!(gt.top_k(1, true)[0].0, key(2), "byte top-1");
        assert_eq!(gt.top_k(10, false).len(), 2);
    }

    #[test]
    fn pps_series_scales_to_per_second() {
        // 4 packets in bin 0 (0..0.5s), 2 in bin 1.
        let recs = mk(&[
            (1, 10, 0),
            (1, 10, 100),
            (1, 10, 200),
            (1, 10, 300),
            (1, 10, 500_000_000),
            (1, 10, 600_000_000),
        ]);
        let series = pps_series(&recs, 500_000_000);
        assert_eq!(series.len(), 2);
        assert!((series[0] - 8.0).abs() < 1e-9, "4 pkts / 0.5 s = 8 pps");
        assert!((series[1] - 4.0).abs() < 1e-9);
        assert!(pps_series(&[], 1000).is_empty());
    }

    #[test]
    fn stats_summary_fields() {
        let recs = mk(&[(1, 100, 10), (2, 200, 20), (2, 300, 30)]);
        let s = TraceStats::from_records(&recs);
        assert_eq!(s.packets, 3);
        assert_eq!(s.bytes, 600);
        assert_eq!(s.flows, 2);
        assert_eq!(s.duration_nanos, 20);
        assert!(s.mean_pps() > 0.0);
    }

    #[test]
    fn ccdf_is_monotone_nonincreasing() {
        let recs = mk(&[(1, 10, 0), (1, 10, 1), (2, 10, 2), (3, 10, 3)]);
        let s = TraceStats::from_records(&recs);
        let ccdf = s.flow_size_ccdf(&[1, 2, 3]);
        assert_eq!(ccdf[0].1, 1.0, "all flows have >= 1 packet");
        assert!(ccdf.windows(2).all(|w| w[0].1 >= w[1].1));
        assert_eq!(ccdf[2].1, 0.0);
    }

    #[test]
    fn byte_ccdf_and_protocol_mix() {
        use instameasure_packet::Protocol;
        let mut recs = mk(&[(1, 100, 0), (1, 100, 1), (2, 50, 2)]);
        // Make flow 2 UDP.
        recs[2].key.protocol = Protocol::Udp;
        let s = TraceStats::from_records(&recs);
        let byte_ccdf = s.flow_bytes_ccdf(&[50, 200, 300]);
        assert_eq!(byte_ccdf[0].1, 1.0);
        assert_eq!(byte_ccdf[1].1, 0.5, "only flow 1 has >= 200 B");
        assert_eq!(byte_ccdf[2].1, 0.0);
        let mix = s.protocol_mix();
        assert_eq!(mix[0].0, Protocol::Tcp);
        assert!((mix[0].1 - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(mix[1].0, Protocol::Udp);
    }

    #[test]
    fn empty_trace_stats() {
        let s = TraceStats::from_records(&[]);
        assert_eq!(s.packets, 0);
        assert_eq!(s.flows, 0);
        assert_eq!(s.mean_pps(), 0.0);
        assert_eq!(s.median_flow_size(), 0);
    }
}
