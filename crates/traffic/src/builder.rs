//! The general synthetic trace generator.

use instameasure_packet::{FlowKey, PacketRecord, Protocol};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::stats::TraceStats;
use crate::zipf::zipf_sizes;

/// Sinusoidal arrival-rate modulation for long-horizon traces: packets are
/// thinned more aggressively in the "night" troughs, mimicking the campus
/// day/night swing of paper Fig. 12(a).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalPattern {
    /// Period of one day in trace time (nanoseconds).
    pub period_nanos: u64,
    /// Trough rate as a fraction of the peak rate, in `[0, 1]`.
    pub trough_fraction: f64,
}

impl DiurnalPattern {
    /// Relative rate (0..=1] at trace time `t`.
    #[must_use]
    pub fn rate_at(&self, t: u64) -> f64 {
        let phase = (t % self.period_nanos) as f64 / self.period_nanos as f64;
        let wave = 0.5 - 0.5 * (phase * core::f64::consts::TAU).cos(); // 0 at midnight, 1 at noon
        self.trough_fraction + (1.0 - self.trough_fraction) * wave
    }
}

/// A generated trace: the time-ordered packet stream plus its statistics.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Packets ordered by timestamp.
    pub records: Vec<PacketRecord>,
    /// Summary statistics (also the ground-truth container).
    pub stats: TraceStats,
}

/// Builder for synthetic Zipf traces (see crate docs and DESIGN.md).
///
/// Flow sizes follow `zipf_sizes(num_flows, alpha, max_flow_size)`; each
/// flow starts at a random offset and spreads its packets over a span
/// proportional to its size; packet lengths follow the classic bimodal
/// Internet mix (~55% small ACK-ish, ~30% MTU-ish, rest mid-size).
#[derive(Debug, Clone)]
pub struct SyntheticTraceBuilder {
    num_flows: usize,
    zipf_alpha: f64,
    max_flow_size: u64,
    duration_nanos: u64,
    seed: u64,
    diurnal: Option<DiurnalPattern>,
    udp_fraction: f64,
}

impl Default for SyntheticTraceBuilder {
    fn default() -> Self {
        SyntheticTraceBuilder {
            num_flows: 10_000,
            zipf_alpha: 1.1,
            max_flow_size: 100_000,
            duration_nanos: 1_000_000_000,
            seed: 0,
            diurnal: None,
            udp_fraction: 0.15,
        }
    }
}

impl SyntheticTraceBuilder {
    /// Starts a builder with defaults (10 k flows, α=1.1, 1 s horizon).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct flows.
    #[must_use]
    pub fn num_flows(mut self, n: usize) -> Self {
        self.num_flows = n;
        self
    }

    /// Zipf exponent for flow sizes (default 1.1).
    #[must_use]
    pub fn zipf_alpha(mut self, a: f64) -> Self {
        self.zipf_alpha = a;
        self
    }

    /// Packets in the largest flow (default 100 000).
    #[must_use]
    pub fn max_flow_size(mut self, s: u64) -> Self {
        self.max_flow_size = s;
        self
    }

    /// Trace horizon in seconds.
    #[must_use]
    pub fn duration_secs(mut self, secs: f64) -> Self {
        self.duration_nanos = (secs * 1e9) as u64;
        self
    }

    /// Trace horizon in nanoseconds.
    #[must_use]
    pub fn duration_nanos(mut self, nanos: u64) -> Self {
        self.duration_nanos = nanos;
        self
    }

    /// RNG seed; identical seeds give identical traces.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Applies day/night rate modulation.
    #[must_use]
    pub fn diurnal(mut self, pattern: DiurnalPattern) -> Self {
        self.diurnal = Some(pattern);
        self
    }

    /// Fraction of UDP flows (default 0.15; the rest are TCP).
    #[must_use]
    pub fn udp_fraction(mut self, f: f64) -> Self {
        self.udp_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Generates the trace.
    ///
    /// # Panics
    ///
    /// Panics if `num_flows` is zero or the duration is zero.
    #[must_use]
    pub fn build(&self) -> Trace {
        assert!(self.num_flows > 0, "need at least one flow");
        assert!(self.duration_nanos > 0, "need a positive duration");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let sizes = zipf_sizes(self.num_flows, self.zipf_alpha, self.max_flow_size);
        let total_hint: u64 = sizes.iter().sum();
        let mut records = Vec::with_capacity(total_hint as usize);

        for &size in &sizes {
            let key = random_key(&mut rng, self.udp_fraction);
            // Span: mice burst within ~size·2 ms, elephants cover the
            // whole horizon.
            let span = (size.saturating_mul(2_000_000)).min(self.duration_nanos);
            let start = rng.gen_range(0..=self.duration_nanos - span.min(self.duration_nanos));
            // Packet lengths are homogeneous *within* a flow (an scp
            // stream is wall-to-wall MTU, a DNS flow is all-small) and
            // bimodal *across* flows — the property that makes the
            // paper's saturation-sampled byte counter accurate.
            let profile = LenProfile::draw(&mut rng);
            for _ in 0..size {
                let ts = start + rng.gen_range(0..span.max(1));
                if let Some(d) = &self.diurnal {
                    // Thin packets in the trough: keep with prob rate_at(ts).
                    if rng.gen::<f64>() > d.rate_at(ts) {
                        continue;
                    }
                }
                records.push(PacketRecord::new(key, profile.sample(&mut rng), ts));
            }
        }

        records.sort_by_key(|r| r.ts_nanos);
        let stats = TraceStats::from_records(&records);
        Trace { records, stats }
    }
}

/// Draws a random 5-tuple. Campus/CAIDA-like traces have many sources
/// talking to many destinations.
fn random_key(rng: &mut StdRng, udp_fraction: f64) -> FlowKey {
    let proto = if rng.gen::<f64>() < udp_fraction { Protocol::Udp } else { Protocol::Tcp };
    FlowKey::new(
        rng.gen::<u32>().to_be_bytes(),
        rng.gen::<u32>().to_be_bytes(),
        rng.gen_range(1024..=u16::MAX),
        [80u16, 443, 53, 22, 8080][rng.gen_range(0..5usize)],
        proto,
    )
}

/// A flow's characteristic packet-length profile: a base length drawn from
/// the classic bimodal Internet mix, with small per-packet jitter.
#[derive(Debug, Clone, Copy)]
struct LenProfile {
    base: u16,
    jitter: u16,
}

impl LenProfile {
    fn draw(rng: &mut StdRng) -> Self {
        let r = rng.gen::<f64>();
        if r < 0.55 {
            LenProfile { base: rng.gen_range(64..=116), jitter: 4 } // ACKs, DNS, control
        } else if r < 0.85 {
            LenProfile { base: rng.gen_range(1430..=1484), jitter: 30 } // MTU-sized data
        } else {
            LenProfile { base: rng.gen_range(250..=1150), jitter: 50 } // everything else
        }
    }

    fn sample(&self, rng: &mut StdRng) -> u16 {
        self.base + rng.gen_range(0..=2 * self.jitter) - self.jitter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticTraceBuilder::new().num_flows(100).seed(9).build();
        let b = SyntheticTraceBuilder::new().num_flows(100).seed(9).build();
        let c = SyntheticTraceBuilder::new().num_flows(100).seed(10).build();
        assert_eq!(a.records, b.records);
        assert_ne!(a.records, c.records);
    }

    #[test]
    fn records_are_time_ordered_within_horizon() {
        let t = SyntheticTraceBuilder::new().num_flows(500).duration_secs(2.0).build();
        assert!(t.records.windows(2).all(|w| w[0].ts_nanos <= w[1].ts_nanos));
        assert!(t.records.iter().all(|r| r.ts_nanos < 2_000_000_000));
    }

    #[test]
    fn flow_count_and_sizes_match_ground_truth() {
        let t = SyntheticTraceBuilder::new().num_flows(300).max_flow_size(5_000).build();
        assert_eq!(t.stats.flows, 300);
        let truth = &t.stats.truth;
        let max = truth.packets.values().max().copied().unwrap();
        assert!((4_000..=5_000).contains(&max), "largest flow {max}");
    }

    #[test]
    fn packet_lengths_are_valid_and_bimodal() {
        let t = SyntheticTraceBuilder::new().num_flows(2_000).build();
        let small = t.records.iter().filter(|r| r.wire_len <= 120).count();
        let big = t.records.iter().filter(|r| r.wire_len >= 1400).count();
        let n = t.records.len();
        assert!(small > n / 3, "small fraction {}", small as f64 / n as f64);
        assert!(big > n / 10, "big fraction {}", big as f64 / n as f64);
        assert!(t.records.iter().all(|r| (60..=1514).contains(&r.wire_len)));
    }

    #[test]
    fn diurnal_modulation_thins_the_trough() {
        let day = 1_000_000_000u64; // compressed "day" of 1 s
        let t = SyntheticTraceBuilder::new()
            .num_flows(3_000)
            .duration_nanos(day)
            .diurnal(DiurnalPattern { period_nanos: day, trough_fraction: 0.1 })
            .seed(4)
            .build();
        // Packets in the middle half (noon) vs the outer quarters (night).
        let noon =
            t.records.iter().filter(|r| r.ts_nanos > day / 4 && r.ts_nanos < 3 * day / 4).count();
        let night = t.records.len() - noon;
        assert!(noon > 2 * night, "noon {noon} vs night {night}");
    }

    #[test]
    fn diurnal_rate_bounds() {
        let d = DiurnalPattern { period_nanos: 100, trough_fraction: 0.2 };
        for t in 0..200 {
            let r = d.rate_at(t);
            assert!((0.2..=1.0).contains(&r), "rate {r} at {t}");
        }
        assert!(d.rate_at(0) < 0.21, "midnight is the trough");
        assert!(d.rate_at(50) > 0.99, "noon is the peak");
    }

    #[test]
    fn udp_fraction_respected() {
        let t = SyntheticTraceBuilder::new().num_flows(2_000).udp_fraction(1.0).build();
        assert!(t.records.iter().all(|r| r.key.protocol == instameasure_packet::Protocol::Udp));
    }
}
