//! Adversarial traffic generators with ground-truth labels, built to
//! trip (or deliberately stress) the streaming detection suite:
//!
//! * [`syn_flood`] — many spoofed sources converge on one victim (the
//!   DDoS-victim detector's positive case);
//! * [`horizontal_scan`] — one source touches many destinations (the
//!   super-spreader positive case);
//! * [`pulse_wave`] — a flood that switches on and off across epochs,
//!   the pattern that defeats long-window averaging detectors;
//! * [`collision_flood`] — flow keys brute-forced so every one lands on
//!   the *same* first WSAF probe slot, piling the table's triangular
//!   probe chain as deep as the flow count: the algorithmic-complexity
//!   attack on the paper's in-DRAM working set.
//!
//! Every generator returns its [`AttackTruth`] — who attacked whom and
//! when — so test batteries can assert the detector fired on the right
//! subject rather than merely fired. Generators are deterministic (no
//! RNG) and emit time-ordered records; flows carry
//! [`PACKETS_PER_FLOW`]-scale packet counts by default because a flow
//! must saturate the FlowRegulator before it surfaces in the WSAF the
//! detectors read.

use instameasure_packet::{FlowKey, PacketRecord, Protocol};
use instameasure_wsaf::{triangular_probe_slot, WsafConfig, WsafTable};

/// Packets per adversarial flow that reliably push a flow through the
/// test-scale FlowRegulator into the WSAF (established by the core
/// application tests; real traces need far fewer per the paper's §III-B
/// retention analysis).
pub const PACKETS_PER_FLOW: u64 = 300;

/// Nanoseconds between consecutive packets in a generated trace — dense
/// enough that no WSAF entry expires mid-scenario.
const PACKET_GAP_NANOS: u64 = 500;

/// Ground truth emitted alongside each generated attack trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackTruth {
    /// Stable scenario label (`"syn_flood"`, `"horizontal_scan"`,
    /// `"pulse_wave"`, `"collision_flood"`).
    pub scenario: &'static str,
    /// The attacking source, when the scenario has a single one.
    pub attacker: Option<[u8; 4]>,
    /// The victim destination, when the scenario has a single one.
    pub victim: Option<[u8; 4]>,
    /// Timestamp of the first attack packet.
    pub onset_nanos: u64,
    /// Distinct attack flows in the trace.
    pub flows: usize,
    /// Active `(start_nanos, end_nanos)` windows; one entry per pulse
    /// for [`pulse_wave`], a single whole-trace window otherwise.
    pub pulses: Vec<(u64, u64)>,
}

fn span_of(records: &[PacketRecord]) -> (u64, u64) {
    let first = records.first().map_or(0, |r| r.ts_nanos);
    let last = records.last().map_or(0, |r| r.ts_nanos);
    (first, last)
}

/// A SYN flood: `bots` spoofed sources each fire `pkts_per_bot` short
/// TCP packets at one victim. Sources interleave in time (the victim
/// sees the aggregate, not one bot at a time).
#[must_use]
pub fn syn_flood(
    bots: u16,
    pkts_per_bot: u64,
    start_nanos: u64,
) -> (Vec<PacketRecord>, AttackTruth) {
    let victim = [99, 9, 9, 9];
    let mut records = Vec::with_capacity(bots as usize * pkts_per_bot as usize);
    let mut ts = start_nanos;
    for _round in 0..pkts_per_bot {
        for b in 0..bots {
            let src = [172, 16, (b >> 8) as u8, b as u8];
            let key = FlowKey::new(src, victim, 1024 + b, 80, Protocol::Tcp);
            records.push(PacketRecord::new(key, 60, ts));
            ts += PACKET_GAP_NANOS;
        }
    }
    let (first, last) = span_of(&records);
    let truth = AttackTruth {
        scenario: "syn_flood",
        attacker: None,
        victim: Some(victim),
        onset_nanos: first,
        flows: bots as usize,
        pulses: vec![(first, last)],
    };
    (records, truth)
}

/// A horizontal scan: one scanner sweeps `dsts` destinations on one
/// port, `pkts_per_dst` packets each, destinations interleaved.
#[must_use]
pub fn horizontal_scan(
    dsts: u16,
    pkts_per_dst: u64,
    start_nanos: u64,
) -> (Vec<PacketRecord>, AttackTruth) {
    let scanner = [66, 6, 6, 6];
    let mut records = Vec::with_capacity(dsts as usize * pkts_per_dst as usize);
    let mut ts = start_nanos;
    for _round in 0..pkts_per_dst {
        for d in 0..dsts {
            let dst = [10, 1, (d >> 8) as u8, d as u8];
            let key = FlowKey::new(scanner, dst, 4000, 80, Protocol::Tcp);
            records.push(PacketRecord::new(key, 60, ts));
            ts += PACKET_GAP_NANOS;
        }
    }
    let (first, last) = span_of(&records);
    let truth = AttackTruth {
        scenario: "horizontal_scan",
        attacker: Some(scanner),
        victim: None,
        onset_nanos: first,
        flows: dsts as usize,
        pulses: vec![(first, last)],
    };
    (records, truth)
}

/// A pulse-wave DDoS: `pulses` bursts of [`syn_flood`]-shaped traffic
/// separated by `quiet_nanos` of silence. Returned as one record batch
/// **per pulse** so epoch-driven tests can close an epoch between
/// pulses (push pulse → rotate → quiet epoch → rotate …) and assert the
/// alert appears at pulse epochs and disappears at quiet ones.
#[must_use]
pub fn pulse_wave(
    pulses: usize,
    bots: u16,
    pkts_per_bot: u64,
    quiet_nanos: u64,
) -> (Vec<Vec<PacketRecord>>, AttackTruth) {
    let mut bursts = Vec::with_capacity(pulses);
    let mut windows = Vec::with_capacity(pulses);
    let mut start = 0u64;
    let mut victim = [99, 9, 9, 9];
    for _ in 0..pulses {
        let (burst, truth) = syn_flood(bots, pkts_per_bot, start);
        victim = truth.victim.expect("syn_flood always has a victim");
        let (first, last) = span_of(&burst);
        windows.push((first, last));
        start = last + quiet_nanos;
        bursts.push(burst);
    }
    let truth = AttackTruth {
        scenario: "pulse_wave",
        attacker: None,
        victim: Some(victim),
        onset_nanos: windows.first().map_or(0, |w| w.0),
        flows: bots as usize,
        pulses: windows,
    };
    (bursts, truth)
}

/// A WSAF hash-collision flood: `flows` keys from one source,
/// destination addresses brute-forced until every key's *first*
/// triangular probe slot is identical under `cfg`'s seed. Accumulating
/// these keys makes the table walk probe chains as deep as the flow
/// count — the worst-case DRAM cost per deposit — while the detection
/// suite still sees the shape of a super-spreader (one source, many
/// destinations).
///
/// # Panics
///
/// Panics if the IPv4 space under the `[10, …]` prefix cannot supply
/// `flows` colliding keys (practically unreachable for sane counts).
#[must_use]
pub fn collision_flood(
    cfg: &WsafConfig,
    flows: usize,
    pkts_per_flow: u64,
    start_nanos: u64,
) -> (Vec<PacketRecord>, AttackTruth) {
    let attacker = [13, 3, 3, 7];
    let table = WsafTable::new(*cfg);
    let capacity = cfg.num_entries();
    let probe_of = |key: &FlowKey| triangular_probe_slot(table.hash_key(key), 0, capacity);

    let mut keys: Vec<FlowKey> = Vec::with_capacity(flows);
    let mut target = None;
    for candidate in 0..=u32::from(u16::MAX) * 256 {
        let bytes = candidate.to_be_bytes();
        let dst = [10, bytes[1], bytes[2], bytes[3]];
        let key = FlowKey::new(attacker, dst, 4000, 80, Protocol::Udp);
        let slot = probe_of(&key);
        match target {
            None => {
                target = Some(slot);
                keys.push(key);
            }
            Some(t) if slot == t => keys.push(key),
            Some(_) => {}
        }
        if keys.len() == flows {
            break;
        }
    }
    assert_eq!(keys.len(), flows, "address space exhausted before {flows} collisions");

    let mut records = Vec::with_capacity(flows * pkts_per_flow as usize);
    let mut ts = start_nanos;
    for _round in 0..pkts_per_flow {
        for key in &keys {
            records.push(PacketRecord::new(*key, 60, ts));
            ts += PACKET_GAP_NANOS;
        }
    }
    let (first, last) = span_of(&records);
    let truth = AttackTruth {
        scenario: "collision_flood",
        attacker: Some(attacker),
        victim: None,
        onset_nanos: first,
        flows,
        pulses: vec![(first, last)],
    };
    (records, truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_time_ordered(records: &[PacketRecord]) -> bool {
        records.windows(2).all(|w| w[0].ts_nanos <= w[1].ts_nanos)
    }

    #[test]
    fn syn_flood_converges_on_one_victim() {
        let (records, truth) = syn_flood(150, 10, 1_000);
        assert_eq!(records.len(), 1500);
        assert!(is_time_ordered(&records));
        assert_eq!(truth.scenario, "syn_flood");
        assert_eq!(truth.onset_nanos, 1_000);
        assert_eq!(truth.flows, 150);
        let victim = truth.victim.unwrap();
        assert!(records.iter().all(|r| r.key.dst_ip == victim));
        let sources: std::collections::HashSet<[u8; 4]> =
            records.iter().map(|r| r.key.src_ip).collect();
        assert_eq!(sources.len(), 150, "every bot is a distinct source");
    }

    #[test]
    fn horizontal_scan_fans_out_from_one_source() {
        let (records, truth) = horizontal_scan(200, 5, 0);
        assert_eq!(records.len(), 1000);
        assert!(is_time_ordered(&records));
        let scanner = truth.attacker.unwrap();
        assert!(records.iter().all(|r| r.key.src_ip == scanner));
        let dsts: std::collections::HashSet<[u8; 4]> =
            records.iter().map(|r| r.key.dst_ip).collect();
        assert_eq!(dsts.len(), 200);
    }

    #[test]
    fn pulse_wave_pulses_are_disjoint_and_labeled() {
        let (bursts, truth) = pulse_wave(3, 50, 4, 1_000_000);
        assert_eq!(bursts.len(), 3);
        assert_eq!(truth.pulses.len(), 3);
        for (burst, (first, last)) in bursts.iter().zip(&truth.pulses) {
            assert!(is_time_ordered(burst));
            assert_eq!(burst.first().unwrap().ts_nanos, *first);
            assert_eq!(burst.last().unwrap().ts_nanos, *last);
        }
        // Quiet gaps separate consecutive pulses.
        for w in truth.pulses.windows(2) {
            assert!(w[1].0 >= w[0].1 + 1_000_000);
        }
    }

    #[test]
    fn collision_flood_keys_share_one_probe_base() {
        let cfg = WsafConfig::builder().entries_log2(10).build().unwrap();
        let (records, truth) = collision_flood(&cfg, 24, 3, 0);
        assert_eq!(truth.flows, 24);
        assert!(is_time_ordered(&records));
        let table = WsafTable::new(cfg);
        let slots: std::collections::HashSet<usize> = records
            .iter()
            .map(|r| triangular_probe_slot(table.hash_key(&r.key), 0, cfg.num_entries()))
            .collect();
        assert_eq!(slots.len(), 1, "every key must land on the same first probe slot");
        let keys: std::collections::HashSet<FlowKey> = records.iter().map(|r| r.key).collect();
        assert_eq!(keys.len(), 24, "collisions are distinct flows, not one repeated key");
    }
}
