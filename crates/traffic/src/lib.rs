//! Traffic substrate: synthetic traces standing in for the paper's
//! datasets.
//!
//! The paper evaluates on two captures we cannot redistribute: the CAIDA
//! Equinix-Chicago 2016 one-hour trace (3.7 B packets, 78 M L4 flows) and a
//! 113-hour campus gateway capture. What the algorithms actually depend on
//! is the *shape* of that traffic — Zipf-distributed flow sizes where mice
//! dominate the flow count and elephants dominate the volume — so this
//! crate generates seeded synthetic traces with those properties at
//! laptop-friendly scales (see DESIGN.md, "Substitutions"):
//!
//! * [`SyntheticTraceBuilder`] — the general generator: Zipf(α) flow
//!   sizes, bimodal packet lengths, flows spread over the trace horizon,
//!   optional diurnal rate modulation.
//! * [`presets::caida_like`] — a scaled stand-in for the CAIDA hour.
//! * [`presets::campus_like`] — a scaled stand-in for the 113-hour campus
//!   capture (diurnal day/night swing).
//! * [`attack`] — constant-rate heavy-hitter flows for the
//!   detection-latency experiments (Fig. 9b).
//! * [`adversarial`] — labeled attack scenarios (SYN flood, horizontal
//!   scan, pulse-wave DDoS, WSAF hash-collision flood) with ground
//!   truth, for the streaming anomaly-detection battery.
//! * [`stats`] — ground truth and distribution/series statistics used by
//!   every figure.
//! * [`stream`] — an `O(flows)`-memory time-ordered packet iterator with
//!   analytic ground truth, for stress runs of tens of millions of packets.
//!
//! # Example
//!
//! ```
//! use instameasure_traffic::SyntheticTraceBuilder;
//!
//! let trace = SyntheticTraceBuilder::new()
//!     .num_flows(1_000)
//!     .zipf_alpha(1.1)
//!     .max_flow_size(2_000)
//!     .duration_secs(1.0)
//!     .seed(7)
//!     .build();
//! assert_eq!(trace.stats.flows, 1_000);
//! // Mice dominate the flow count…
//! assert!(trace.stats.median_flow_size() <= 5);
//! // …but the packet stream is time-ordered and non-empty.
//! assert!(trace.records.windows(2).all(|w| w[0].ts_nanos <= w[1].ts_nanos));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod attack;
mod builder;
pub mod presets;
pub mod stats;
pub mod stream;
mod zipf;

pub use builder::{DiurnalPattern, SyntheticTraceBuilder, Trace};
pub use stats::{ground_truth, pps_series, GroundTruth, TraceStats};
pub use zipf::zipf_sizes;

use instameasure_packet::PacketRecord;

/// Merges several time-ordered packet streams into one time-ordered
/// stream (used to inject attack flows into background traffic).
///
/// # Example
///
/// ```
/// use instameasure_traffic::{merge_records, SyntheticTraceBuilder};
/// let a = SyntheticTraceBuilder::new().num_flows(10).seed(1).build().records;
/// let b = SyntheticTraceBuilder::new().num_flows(10).seed(2).build().records;
/// let merged = merge_records(vec![a.clone(), b.clone()]);
/// assert_eq!(merged.len(), a.len() + b.len());
/// assert!(merged.windows(2).all(|w| w[0].ts_nanos <= w[1].ts_nanos));
/// ```
#[must_use]
pub fn merge_records(streams: Vec<Vec<PacketRecord>>) -> Vec<PacketRecord> {
    let total = streams.iter().map(Vec::len).sum();
    let mut merged = Vec::with_capacity(total);
    for s in streams {
        merged.extend(s);
    }
    merged.sort_by_key(|r| r.ts_nanos);
    merged
}
