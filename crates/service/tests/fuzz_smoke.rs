//! Bounded fuzz smoke run over the wire-protocol fuzz bodies.
//!
//! Same shape as the packet crate's fuzz smoke: CI cannot assume nightly
//! plus cargo-fuzz, so this replays seeded wire traffic and a bounded number
//! of deterministic xorshift mutations through the invariant bodies in
//! `instameasure_service::fuzzing`. Tune the budget with
//! `INSTAMEASURE_FUZZ_ITERS` (mutations per seed, default 2000); set
//! `INSTAMEASURE_WRITE_CORPUS=<dir>` to dump the seeds as starting corpus
//! files for real fuzzing sessions.

// Too slow under Miri; the wire unit tests cover the same code there.
// Absent under loom: the model-check build compiles only the kernels.
#![cfg(all(not(miri), not(loom)))]

use instameasure_packet::{FlowKey, PacketRecord, Protocol};
use instameasure_service::fuzzing::{fuzz_frame_stream, fuzz_payloads, fuzz_truncations};
use instameasure_service::wire::{write_frame, Request, Response, StatusReport, TopFlow};

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Applies one random byte-level mutation (flip, splice, truncate, extend).
fn mutate(buf: &mut Vec<u8>, rng: &mut XorShift) {
    match rng.next() % 4 {
        0 if !buf.is_empty() => {
            let i = (rng.next() as usize) % buf.len();
            buf[i] ^= (rng.next() & 0xFF) as u8;
        }
        1 if !buf.is_empty() => {
            let cut = (rng.next() as usize) % buf.len();
            buf.truncate(cut);
        }
        2 => buf.extend_from_slice(&rng.next().to_le_bytes()),
        _ if buf.len() >= 4 => {
            let i = (rng.next() as usize) % (buf.len() - 3);
            let word = rng.next().to_le_bytes();
            buf[i..i + 4].copy_from_slice(&word[..4]);
        }
        _ => buf.push((rng.next() & 0xFF) as u8),
    }
}

fn key(i: u32) -> FlowKey {
    FlowKey::new(i.to_be_bytes(), [10, 0, 0, 9], 4000, 443, Protocol::Tcp)
}

/// One encoded wire stream per message family, so the mutation budget
/// exercises every opcode's decoder.
fn sample_streams() -> Vec<Vec<u8>> {
    let records: Vec<PacketRecord> =
        (0..16).map(|t| PacketRecord::new(key(t), 700, u64::from(t))).collect();
    let requests = [
        Request::IngestBatch(records),
        Request::IngestFin,
        Request::QueryFlow(key(1)),
        Request::QueryTopK(25),
        Request::QueryStatus,
        Request::QueryTelemetry,
        Request::Rotate,
        Request::Shutdown,
    ];
    let responses = [
        Response::FinAck { packets: 12345 },
        Response::Flow { packets: 900.5, bytes: 612_340.0 },
        Response::TopK(vec![
            TopFlow { key: key(1), packets: 5000.0, bytes: 3_500_000.0 },
            TopFlow { key: key(2), packets: 100.0, bytes: 6_400.0 },
        ]),
        Response::Status(StatusReport {
            packets_submitted: 1_000_000,
            packets_processed: 1_000_000,
            ingest_frames: 123,
            connections: 4,
            flows: 999,
            epoch: 2,
            workers: 8,
        }),
        Response::Telemetry("{\"service.frames.ingest\":123}".to_string()),
        Response::Rotated { epoch: 3, flows_retired: 999 },
        Response::Error { class: "bad_payload".to_string(), message: "test".to_string() },
    ];
    let mut streams = Vec::new();
    for frame in requests.iter().map(Request::encode).chain(responses.iter().map(Response::encode))
    {
        let mut wire = Vec::new();
        write_frame(&mut wire, frame.opcode, &frame.payload).unwrap();
        streams.push(wire);
    }
    // One concatenated stream of everything, so the frame reader is also
    // fuzzed across frame boundaries.
    let all: Vec<u8> = streams.iter().flatten().copied().collect();
    streams.push(all);
    streams
}

fn iters() -> u64 {
    std::env::var("INSTAMEASURE_FUZZ_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(2_000)
}

#[test]
fn smoke_wire_streams_and_payloads() {
    let seeds = sample_streams();
    if let Ok(dir) = std::env::var("INSTAMEASURE_WRITE_CORPUS") {
        let d = std::path::Path::new(&dir).join("service_wire");
        std::fs::create_dir_all(&d).unwrap();
        for (i, s) in seeds.iter().enumerate() {
            std::fs::write(d.join(format!("seed-stream-{i}")), s).unwrap();
        }
    }
    let mut rng = XorShift(0x5eed_0003);
    for seed in &seeds {
        fuzz_frame_stream(seed);
        fuzz_payloads(seed);
        let mut buf = seed.clone();
        for _ in 0..iters() {
            mutate(&mut buf, &mut rng);
            if buf.len() > 16_384 {
                buf.truncate(16_384);
            }
            fuzz_frame_stream(&buf);
            fuzz_payloads(&buf);
        }
    }
}

#[test]
fn smoke_truncation_sweep() {
    let seeds = sample_streams();
    let mut rng = XorShift(0x5eed_0004);
    // The truncation body is O(len^2) in reads; a smaller budget keeps the
    // wall-clock comparable to the stream smoke.
    let per_seed = (iters() / 8).max(32);
    for seed in &seeds {
        fuzz_truncations(seed);
        let mut buf = seed.clone();
        for _ in 0..per_seed {
            mutate(&mut buf, &mut rng);
            if buf.len() > 2_048 {
                buf.truncate(2_048);
            }
            fuzz_truncations(&buf);
        }
    }
}
