//! Model checks for the two concurrency kernels under `--cfg loom`:
//! the SPSC batch ring ([`instameasure_service::ring`]) and the
//! epoch-stamped snapshot slot ([`instameasure_service::snapshot`]).
//!
//! Built and run only as
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p instameasure-service --test loom_model --release
//! ```
//!
//! which swaps the kernels' atomics and cells for `loom`'s modeled
//! types (the workspace ships a schedule-perturbing shim in `shims/loom`
//! with the same API, so the check runs in the offline container; a
//! real `loom` crate drops in with no source change). Each `model`
//! closure is executed across many explored/perturbed interleavings;
//! assertions hold in all of them.
#![cfg(loom)]

use instameasure_service::ring::{ring, PushError};
use instameasure_service::snapshot::SnapshotSlot;
use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::Arc;
use loom::thread;

/// FIFO transfer: everything pushed is popped exactly once, in order,
/// across every interleaving of producer and consumer.
#[test]
fn ring_transfers_in_order_without_loss() {
    loom::model(|| {
        let (mut tx, mut rx) = ring::<u32>(2);
        let producer = thread::spawn(move || {
            let mut sent = 0u32;
            while sent < 3 {
                match tx.push(sent) {
                    Ok(()) => sent += 1,
                    Err(PushError::Full(_)) => thread::yield_now(),
                    Err(PushError::Closed(_)) => unreachable!("consumer never closes here"),
                }
            }
        });
        let mut got = Vec::new();
        while got.len() < 3 {
            match rx.pop() {
                Some(v) => got.push(v),
                None => thread::yield_now(),
            }
        }
        producer.join().unwrap();
        assert_eq!(got, vec![0, 1, 2], "SPSC ring must be lossless FIFO");
    });
}

/// The close/drain handshake accounts every item to exactly one side:
/// an `Ok` push is always popped by the closing consumer's bounded
/// drain; a `Closed` push never is. No loss, no double count.
#[test]
fn ring_close_handshake_accounts_every_item_exactly_once() {
    loom::model(|| {
        let (mut tx, mut rx) = ring::<u32>(2);
        let producer = thread::spawn(move || {
            let mut accepted = 0u32;
            for v in 0..2u32 {
                match tx.push(v) {
                    Ok(()) => accepted += 1,
                    Err(PushError::Full(_)) | Err(PushError::Closed(_)) => break,
                }
            }
            accepted
        });
        // Race the close against the pushes, then drain to the bound the
        // handshake published.
        rx.close();
        let mut drained = 0u32;
        while !rx.is_drained() {
            if rx.pop().is_some() {
                drained += 1;
            } else {
                thread::yield_now();
            }
        }
        let accepted = producer.join().unwrap();
        assert_eq!(
            drained, accepted,
            "every Ok push must be drained; every Closed push must not be"
        );
    });
}

/// Producer drop is a close from the other side: the consumer drains
/// exactly what was pushed, then observes `producer_closed`.
#[test]
fn ring_reaps_a_dropped_producer() {
    loom::model(|| {
        let (mut tx, mut rx) = ring::<u32>(2);
        let producer = thread::spawn(move || {
            let pushed = u32::from(tx.push(7).is_ok());
            drop(tx);
            pushed
        });
        let mut got = 0u32;
        loop {
            if rx.pop().is_some() {
                got += 1;
            } else if rx.producer_closed() {
                // One final sweep: close-then-drain may still find the
                // item published just before the producer flag.
                while rx.pop().is_some() {
                    got += 1;
                }
                break;
            } else {
                thread::yield_now();
            }
        }
        assert_eq!(got, producer.join().unwrap());
    });
}

/// Seqlock snapshot: readers racing a publisher never observe a torn
/// pairing — the stamp in the view always matches the validated stamp,
/// views never go backwards, and the published value is internally
/// consistent (both halves written together).
#[test]
fn snapshot_readers_never_observe_torn_views() {
    loom::model(|| {
        let slot = Arc::new(SnapshotSlot::new((0u64, 0u64)));
        let publisher = {
            let slot = Arc::clone(&slot);
            thread::spawn(move || {
                for g in 1..=2u64 {
                    slot.publish((g, g * 1000));
                }
            })
        };
        let reader = {
            let slot = Arc::clone(&slot);
            thread::spawn(move || {
                let mut last = 0u64;
                for _ in 0..3 {
                    let (view, _retries) = slot.read();
                    assert_eq!(view.stamp % 2, 0, "validated stamp must be even");
                    let (g, scaled) = view.value;
                    assert_eq!(scaled, g * 1000, "torn view: halves from different publishes");
                    assert!(g >= last, "validated views must not regress");
                    last = g;
                }
            })
        };
        publisher.join().unwrap();
        reader.join().unwrap();
        let (view, _) = slot.read();
        assert_eq!(view.value, (2, 2000), "final read sees the last publication");
    });
}

/// The engine's freshness protocol in miniature: a version counter is
/// bumped before publishing, and a reader that saw version `v` always
/// obtains a view at least as new as `v` once the publisher is done.
#[test]
fn snapshot_version_handshake_is_monotone() {
    loom::model(|| {
        let ver = Arc::new(AtomicU64::new(0));
        let slot = Arc::new(SnapshotSlot::new(0u64));
        let publisher = {
            let (ver, slot) = (Arc::clone(&ver), Arc::clone(&slot));
            thread::spawn(move || {
                ver.store(1, Ordering::Release);
                slot.publish(1);
            })
        };
        let want = ver.load(Ordering::Acquire);
        loop {
            let (view, _) = slot.read();
            if view.value >= want {
                break;
            }
            thread::yield_now();
        }
        publisher.join().unwrap();
    });
}
