//! Adversarial wire-protocol tests over real loopback sockets: every
//! malformed byte stream an untrusted peer can produce must end in a
//! classified error (counted in `service.rejects.<class>`) and a closed
//! connection — with the daemon itself staying alive and queryable.
#![cfg(not(loom))]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use instameasure_core::InstaMeasureConfig;
use instameasure_packet::{FlowKey, PacketRecord, Protocol};
use instameasure_service::server::{Server, ServiceConfig};
use instameasure_service::wire::{
    read_frame, Opcode, Request, Response, DEFAULT_MAX_PAYLOAD, MAGIC,
};
use instameasure_service::ServiceClient;

fn test_server() -> Server {
    let cfg = ServiceConfig::builder()
        .addr("127.0.0.1:0")
        .workers(2)
        .batch_size(64)
        .read_timeout(Duration::from_millis(500))
        .per_worker(InstaMeasureConfig::default().small_for_tests())
        .build()
        .expect("static test config is valid");
    Server::start(cfg).expect("loopback bind")
}

fn raw_connect(server: &Server) -> TcpStream {
    let s = TcpStream::connect(server.local_addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s
}

/// Reads one reply frame and asserts it is a classified error of `class`.
fn expect_error_class(stream: &mut TcpStream, class: &str) {
    let frame = read_frame(stream, DEFAULT_MAX_PAYLOAD)
        .expect("reply frame readable")
        .expect("server must reply before closing");
    match Response::decode(&frame).expect("reply decodes") {
        Response::Error { class: got, message } => {
            assert_eq!(got, class, "wrong error class (message: {message})");
        }
        other => panic!("expected error reply, got {other:?}"),
    }
}

/// The daemon must still answer queries after whatever the test did.
fn assert_alive(server: &Server) {
    let mut ops = ServiceClient::connect(server.local_addr()).expect("daemon still accepting");
    let status = ops.status().expect("daemon still answering");
    assert_eq!(status.workers, 2);
}

fn reject_count(server: &Server, class: &str) -> u64 {
    server.registry().snapshot().counter(&format!("service.rejects.{class}")).unwrap_or(0)
}

/// Polls until `cond` holds or the deadline passes.
fn wait_for(mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn garbage_magic_is_classified_and_nonfatal() {
    let server = test_server();
    let mut s = raw_connect(&server);
    s.write_all(b"XXXX\x01\x00\x00\x00\x00").unwrap();
    s.flush().unwrap();
    expect_error_class(&mut s, "bad_magic");
    assert!(wait_for(|| reject_count(&server, "bad_magic") >= 1));
    assert_alive(&server);
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    let server = test_server();
    let mut s = raw_connect(&server);
    let mut frame = Vec::new();
    frame.extend_from_slice(&MAGIC);
    frame.push(Opcode::IngestBatch as u8);
    frame.extend_from_slice(&u32::MAX.to_be_bytes());
    s.write_all(&frame).unwrap();
    s.flush().unwrap();
    expect_error_class(&mut s, "oversized");
    assert!(wait_for(|| reject_count(&server, "oversized") >= 1));
    assert_alive(&server);
}

#[test]
fn unknown_opcode_is_classified() {
    let server = test_server();
    let mut s = raw_connect(&server);
    let mut frame = Vec::new();
    frame.extend_from_slice(&MAGIC);
    frame.push(0x55);
    frame.extend_from_slice(&0u32.to_be_bytes());
    s.write_all(&frame).unwrap();
    s.flush().unwrap();
    expect_error_class(&mut s, "unknown_opcode");
    assert_alive(&server);
}

#[test]
fn bad_payload_in_query_is_classified() {
    let server = test_server();
    let mut s = raw_connect(&server);
    // QueryFlow demands exactly one 13-byte key; send 3 bytes.
    let mut frame = Vec::new();
    frame.extend_from_slice(&MAGIC);
    frame.push(Opcode::QueryFlow as u8);
    frame.extend_from_slice(&3u32.to_be_bytes());
    frame.extend_from_slice(&[1, 2, 3]);
    s.write_all(&frame).unwrap();
    s.flush().unwrap();
    expect_error_class(&mut s, "bad_payload");
    assert!(wait_for(|| reject_count(&server, "bad_payload") >= 1));
    assert_alive(&server);
}

#[test]
fn truncated_header_mid_frame_is_counted() {
    let server = test_server();
    let mut s = raw_connect(&server);
    // Five of nine header bytes, then a write-side shutdown: the server
    // sees EOF mid-header and must classify it as a truncation.
    s.write_all(&MAGIC).unwrap();
    s.write_all(&[Opcode::QueryStatus as u8]).unwrap();
    s.flush().unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();
    // The error reply may or may not reach us; the counter must.
    let mut sink = Vec::new();
    let _ = s.read_to_end(&mut sink);
    assert!(wait_for(|| reject_count(&server, "truncated") >= 1));
    assert_alive(&server);
}

#[test]
fn abrupt_disconnect_mid_batch_keeps_complete_frames() {
    let server = test_server();
    let key = FlowKey::new([10, 1, 1, 1], [10, 1, 1, 2], 555, 80, Protocol::Udp);
    let records: Vec<PacketRecord> = (0..100).map(|t| PacketRecord::new(key, 64, t)).collect();

    {
        let mut s = raw_connect(&server);
        // One complete ingest frame...
        let complete = Request::IngestBatch(records.clone()).encode();
        let mut wire = Vec::new();
        instameasure_service::wire::write_frame(&mut wire, complete.opcode, &complete.payload)
            .unwrap();
        s.write_all(&wire).unwrap();
        // ...then the same frame cut off halfway through its payload, and
        // an abrupt drop of the socket.
        s.write_all(&wire[..wire.len() / 2]).unwrap();
        s.flush().unwrap();
    }

    // Only the complete frame's packets may ever be accounted: exactly
    // 100 submitted and processed, the half frame discarded.
    assert!(
        wait_for(|| {
            let mut ops = ServiceClient::connect(server.local_addr()).unwrap();
            let st = ops.status().unwrap();
            st.packets_submitted == 100 && st.packets_processed == 100
        }),
        "complete frame must be flushed by the dropped connection's lane"
    );
    let mut ops = ServiceClient::connect(server.local_addr()).unwrap();
    let (pkts, _) = ops.query_flow(&key).unwrap();
    assert!(pkts > 0.0, "the surviving batch must be measurable");
    let report = ops.shutdown().unwrap();
    assert_eq!(report.packets_submitted, 100);
    assert_eq!(report.packets_processed, 100);
    server.join();
}

#[test]
fn slow_loris_pusher_does_not_wedge_the_daemon() {
    let server = test_server();
    let key = FlowKey::new([10, 2, 2, 1], [10, 2, 2, 2], 777, 80, Protocol::Tcp);
    let records: Vec<PacketRecord> = (0..50).map(|t| PacketRecord::new(key, 64, t)).collect();
    let complete = Request::IngestBatch(records).encode();
    let mut wire = Vec::new();
    instameasure_service::wire::write_frame(&mut wire, complete.opcode, &complete.payload).unwrap();

    let mut loris = raw_connect(&server);
    // Trickle the frame a byte at a time. Each byte lands well inside the
    // per-read timeout, so the connection is legal — just hostile-slow.
    // The daemon must keep serving other clients the whole time: a
    // handler thread owns this socket, never a shard worker.
    let mut fed = 0usize;
    for chunk in wire.chunks(1) {
        loris.write_all(chunk).unwrap();
        loris.flush().unwrap();
        fed += 1;
        // Interleave a full query round-trip between dribbled bytes at a
        // few checkpoints — liveness while the loris is mid-frame.
        if fed.is_multiple_of(16) {
            assert_alive(&server);
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    // The dribbled frame was complete, so its packets must be accepted:
    // a fin handshake on the same connection acks all 50.
    let fin = Request::IngestFin.encode();
    let mut fin_wire = Vec::new();
    instameasure_service::wire::write_frame(&mut fin_wire, fin.opcode, &fin.payload).unwrap();
    loris.write_all(&fin_wire).unwrap();
    loris.flush().unwrap();
    let reply = read_frame(&mut loris, DEFAULT_MAX_PAYLOAD)
        .expect("reply readable")
        .expect("server replies to a completed frame");
    match Response::decode(&reply).expect("reply decodes") {
        Response::FinAck { packets } => assert_eq!(packets, 50),
        other => panic!("expected fin ack, got {other:?}"),
    }
    assert_alive(&server);
}

#[test]
fn slow_loris_stalled_past_timeout_is_cut_loose() {
    let server = test_server();
    let mut loris = raw_connect(&server);
    // Three header bytes, then silence longer than the read timeout: the
    // daemon must cut the connection (timeout or truncation class) and
    // keep serving everyone else.
    loris.write_all(&MAGIC[..3]).unwrap();
    loris.flush().unwrap();
    std::thread::sleep(Duration::from_millis(900));
    assert!(
        wait_for(|| {
            let snap = server.registry().snapshot();
            snap.counter("service.timeouts").unwrap_or(0) + snap.counter_sum("service.rejects") >= 1
        }),
        "a loris slower than the read timeout must be classified and dropped"
    );
    let mut sink = Vec::new();
    let _ = loris.read_to_end(&mut sink); // server closed on us
    assert_alive(&server);
}

#[test]
fn pusher_disconnecting_mid_ring_full_does_not_wedge_a_shard() {
    // Tiny rings plus an artificial per-batch worker stall: the pusher's
    // handler thread blocks shipping into a full ring, and the pusher
    // then vanishes. The shard worker must keep draining, the daemon
    // must keep answering queries, and shutdown accounting must be
    // packet-exact (everything shipped is processed; the torn half
    // frame is discarded).
    let cfg = ServiceConfig::builder()
        .addr("127.0.0.1:0")
        .workers(2)
        .batch_size(32)
        .queue_batches(2)
        .read_timeout(Duration::from_millis(500))
        .per_worker(InstaMeasureConfig::default().small_for_tests())
        .build()
        .expect("static test config is valid");
    let server = Server::start(cfg).expect("loopback bind");
    server.engine().debug_set_worker_stall(1_000_000); // 1 ms per batch

    let key = FlowKey::new([10, 3, 3, 1], [10, 3, 3, 2], 888, 80, Protocol::Udp);
    let records: Vec<PacketRecord> = (0..4_000).map(|t| PacketRecord::new(key, 64, t)).collect();
    let complete = Request::IngestBatch(records).encode();
    let mut wire = Vec::new();
    instameasure_service::wire::write_frame(&mut wire, complete.opcode, &complete.payload).unwrap();

    {
        let mut s = raw_connect(&server);
        // One full frame (125 batches of 32 against a 2-batch ring: the
        // handler will be parked on a full ring while the worker dawdles)
        // then half of a second frame, then an abrupt drop.
        s.write_all(&wire).unwrap();
        s.write_all(&wire[..wire.len() / 2]).unwrap();
        s.flush().unwrap();
    }

    // Queries must flow while the ring is congested.
    assert_alive(&server);
    server.engine().debug_set_worker_stall(0);

    assert!(
        wait_for(|| {
            let mut ops = ServiceClient::connect(server.local_addr()).unwrap();
            let st = ops.status().unwrap();
            st.packets_submitted == 4_000 && st.packets_processed == 4_000
        }),
        "the dropped pusher's complete frame must drain fully"
    );
    let mut ops = ServiceClient::connect(server.local_addr()).unwrap();
    let report = ops.shutdown().unwrap();
    assert_eq!(report.packets_submitted, 4_000);
    assert_eq!(report.packets_processed, 4_000);
    server.join();
}

#[test]
fn malformed_storm_never_kills_the_daemon() {
    let server = test_server();
    let payloads: Vec<Vec<u8>> =
        vec![b"GET / HTTP/1.1\r\n\r\n".to_vec(), vec![0u8; 9], vec![0xFF; 64], MAGIC.to_vec(), {
            let mut v = MAGIC.to_vec();
            v.push(Opcode::IngestBatch as u8);
            v.extend_from_slice(&(DEFAULT_MAX_PAYLOAD + 1).to_be_bytes());
            v
        }];
    for p in &payloads {
        let mut s = raw_connect(&server);
        let _ = s.write_all(p);
        let _ = s.flush();
        drop(s);
    }
    assert!(wait_for(|| {
        server.registry().snapshot().counter_sum("service.rejects")
            + server.registry().snapshot().counter("service.timeouts").unwrap_or(0)
            >= 1
    }));
    assert_alive(&server);
}
