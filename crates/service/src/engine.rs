//! The live measurement engine behind the daemon.
//!
//! The offline pipeline ([`instameasure_core::multicore`]) runs one
//! manager over one finite iterator and tears everything down at
//! end-of-stream. A daemon has neither: ingest arrives on many
//! connections, queries arrive while packets flow, and the stream only
//! ends when an operator says so. The engine therefore re-shapes the same
//! worker design for continuous operation:
//!
//! * `N` worker threads, each bound to one shard — an [`InstaMeasure`]
//!   behind a [`Mutex`]. The worker locks its shard per *batch* (not per
//!   packet), so queries interleave with ingest at batch granularity and
//!   never pause the other `N-1` shards. Flow→shard routing is the same
//!   popcount rule as the offline pipeline ([`worker_for`]), so all
//!   packets of a flow still meet one shard.
//! * Each ingest connection gets an [`IngestLane`]: private per-shard
//!   batch buffers plus clones of the bounded worker channels. Batches
//!   are recycled through a per-worker return channel exactly like the
//!   offline manager, so the steady state allocates nothing. Bounded
//!   channels + blocking sends give end-to-end backpressure: a slow
//!   worker fills its queue, the lane blocks, the connection's socket
//!   buffer fills, and the remote tap's TCP window closes.
//! * Packet-exact accounting: `service.ingest.packets` counts what lanes
//!   shipped, per-worker counters count what shards processed, and
//!   [`Engine::drain`] proves `submitted == processed` once the queues
//!   are empty. A lane flushes its partial batches when dropped, so even
//!   an abruptly closed connection loses nothing that was decoded.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;

use crossbeam::channel;
use instameasure_core::multicore::{worker_for, MAX_BATCH_SIZE};
use instameasure_core::{InstaMeasure, InstaMeasureConfig};
use instameasure_packet::{FlowKey, PacketRecord};
use instameasure_telemetry::{
    AtomicCell, Counter, Histogram, Instrumented, SharedRegistry, Snapshot,
};

use crate::wire::TopFlow;

/// Geometry of the live engine.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker shard count.
    pub workers: usize,
    /// Packets per dispatch batch (same economics as the offline
    /// pipeline's [`instameasure_core::multicore::MultiCoreConfig::batch_size`]).
    pub batch_size: usize,
    /// Per-worker queue capacity in whole batches.
    pub queue_batches: usize,
    /// Per-shard measurement configuration.
    pub per_worker: InstaMeasureConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 4,
            batch_size: 256,
            queue_batches: 16,
            per_worker: InstaMeasureConfig::default(),
        }
    }
}

/// The ingest side is closed (the daemon is draining); the submitted
/// records were not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineClosed;

impl core::fmt::Display for EngineClosed {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "engine is draining; ingest is closed")
    }
}

impl std::error::Error for EngineClosed {}

/// Final accounting of a drained engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainReport {
    /// Packets lanes shipped into worker queues over the engine's life.
    pub submitted: u64,
    /// Packets workers fully processed (equals `submitted` after a clean
    /// drain — the channels are empty and every batch was drained).
    pub processed: u64,
    /// Per-worker processed counts.
    pub per_worker: Vec<u64>,
}

struct Lanes {
    senders: Vec<channel::Sender<Vec<PacketRecord>>>,
}

/// The live measurement engine: shards, workers, and the ingest fabric.
pub struct Engine {
    shards: Vec<Arc<Mutex<InstaMeasure>>>,
    batch_size: usize,
    /// Master channel senders; `None` once draining started. Lanes clone
    /// from here, so taking this also stops new lanes.
    lanes: Mutex<Option<Lanes>>,
    recycle: Vec<Arc<channel::Receiver<Vec<PacketRecord>>>>,
    handles: Mutex<Vec<thread::JoinHandle<u64>>>,
    registry: Arc<SharedRegistry>,
    submitted: Counter<AtomicCell>,
    batches: Counter<AtomicCell>,
    batch_fill: Histogram<AtomicCell>,
    worker_packets: Vec<Counter<AtomicCell>>,
    epoch: AtomicU64,
    drained: Mutex<Option<DrainReport>>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Engine {
    /// Boots the engine: builds the shards and spawns the worker threads.
    /// Metrics are registered in `registry` under `service.*`.
    ///
    /// # Panics
    ///
    /// Panics if `workers`, `batch_size` or `queue_batches` is zero, or
    /// `batch_size` exceeds [`MAX_BATCH_SIZE`] (server configs are
    /// validated before they get here).
    #[must_use]
    pub fn start(cfg: &EngineConfig, registry: Arc<SharedRegistry>) -> Self {
        assert!(cfg.workers > 0, "need at least one worker");
        assert!(
            cfg.batch_size > 0 && cfg.batch_size <= MAX_BATCH_SIZE,
            "batch size must be in 1..={MAX_BATCH_SIZE}"
        );
        assert!(cfg.queue_batches > 0, "queue must hold at least one batch");

        let shards: Vec<Arc<Mutex<InstaMeasure>>> = (0..cfg.workers)
            .map(|_| Arc::new(Mutex::new(InstaMeasure::new(cfg.per_worker))))
            .collect();
        let submitted = registry.counter("service.ingest.packets");
        let batches = registry.counter("service.ingest.batches");
        let batch_fill = registry.histogram("ingest.batch_fill");
        registry
            .gauge("hotpath.prefetch_enabled")
            .set(if instameasure_packet::prefetch::prefetch_enabled() { 1.0 } else { 0.0 });
        let worker_packets: Vec<_> = (0..cfg.workers)
            .map(|w| registry.counter(&format!("service.worker{w}.packets")))
            .collect();

        let mut senders = Vec::with_capacity(cfg.workers);
        let mut recycle = Vec::with_capacity(cfg.workers);
        let mut handles = Vec::with_capacity(cfg.workers);
        for (w, shard) in shards.iter().enumerate() {
            let (tx, rx) = channel::bounded::<Vec<PacketRecord>>(cfg.queue_batches);
            // The return lane holds every buffer that can be in flight.
            let (recycle_tx, recycle_rx) =
                channel::bounded::<Vec<PacketRecord>>(cfg.queue_batches + 2);
            senders.push(tx);
            recycle.push(Arc::new(recycle_rx));
            let shard = Arc::clone(shard);
            let packets_ctr = worker_packets[w].clone();
            handles.push(thread::spawn(move || {
                let mut processed = 0u64;
                while let Ok(mut batch) = rx.recv() {
                    // Lanes never ship empty batches, so an empty vector
                    // is the drain poison: exit even though lane clones
                    // of the sender may still be alive.
                    if batch.is_empty() {
                        break;
                    }
                    {
                        let mut im = lock(&shard);
                        im.process_batch(&batch);
                    }
                    processed += batch.len() as u64;
                    packets_ctr.add(batch.len() as u64);
                    batch.clear();
                    // Hand the drained buffer back; if the return lane is
                    // full, let the allocation drop.
                    let _ = recycle_tx.try_send(batch);
                }
                processed
            }));
        }

        Engine {
            shards,
            batch_size: cfg.batch_size,
            lanes: Mutex::new(Some(Lanes { senders })),
            recycle,
            handles: Mutex::new(handles),
            registry,
            submitted,
            batches,
            batch_fill,
            worker_packets,
            epoch: AtomicU64::new(0),
            drained: Mutex::new(None),
        }
    }

    /// Opens an ingest lane for one connection, or `None` if the engine
    /// is draining.
    #[must_use]
    pub fn lane(&self) -> Option<IngestLane> {
        let guard = lock(&self.lanes);
        let lanes = guard.as_ref()?;
        Some(IngestLane {
            senders: lanes.senders.clone(),
            recycle: self.recycle.clone(),
            pending: (0..self.shards.len()).map(|_| Vec::with_capacity(self.batch_size)).collect(),
            batch_size: self.batch_size,
            accepted: 0,
            submitted_ctr: self.submitted.clone(),
            batches_ctr: self.batches.clone(),
            batch_fill: self.batch_fill.clone(),
        })
    }

    /// Number of worker shards.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Current measurement epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Packets shipped into worker queues so far.
    #[must_use]
    pub fn packets_submitted(&self) -> u64 {
        self.submitted.get()
    }

    /// Packets fully processed by shards so far.
    #[must_use]
    pub fn packets_processed(&self) -> u64 {
        self.worker_packets.iter().map(Counter::get).sum()
    }

    /// Per-flow estimate `(packets, bytes)` from the owning shard —
    /// WSAF accumulation plus sketch residual, the paper's instant query.
    /// The key is digested once; both halves of the answer derive from
    /// that single hash ([`InstaMeasure::estimate`]).
    #[must_use]
    pub fn estimate(&self, key: &FlowKey) -> (f64, f64) {
        let shard = &self.shards[worker_for(key, self.shards.len())];
        let im = lock(shard);
        im.estimate(key)
    }

    /// Merged top-`k` flows by packets across all shards (WSAF view, the
    /// same merge the offline CLI prints). Shards are locked one at a
    /// time, so ingest continues on the others while each is read.
    #[must_use]
    pub fn top_k(&self, k: usize) -> Vec<TopFlow> {
        let mut all: Vec<TopFlow> = Vec::new();
        for shard in &self.shards {
            let im = lock(shard);
            all.extend(im.wsaf().top_k_by_packets(k).into_iter().map(|e| TopFlow {
                key: e.key,
                packets: e.packets,
                bytes: e.bytes,
            }));
        }
        all.sort_by(|a, b| b.packets.total_cmp(&a.packets).then_with(|| a.key.cmp(&b.key)));
        all.truncate(k);
        all
    }

    /// Distinct flows currently resident across all WSAF shards.
    #[must_use]
    pub fn flows(&self) -> u64 {
        self.shards.iter().map(|s| lock(s).wsaf().len() as u64).sum()
    }

    /// Rotates the measurement epoch: resets every shard and bumps the
    /// epoch counter. Returns `(new_epoch, flows_retired)`. Shards rotate
    /// one at a time; packets racing the rotation land entirely in the
    /// old or entirely in the new epoch of their one shard.
    pub fn rotate(&self) -> (u64, u64) {
        let mut retired = 0u64;
        for shard in &self.shards {
            let mut im = lock(shard);
            retired += im.wsaf().len() as u64;
            im.reset();
        }
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        self.registry.gauge("service.epoch").set(epoch as f64);
        (epoch, retired)
    }

    /// The service registry (`service.*` metrics) merged with every
    /// shard's measurement telemetry (`regulator.*`, `wsaf.*`).
    #[must_use]
    pub fn full_telemetry(&self) -> Snapshot {
        let mut snap = self.registry.snapshot();
        for shard in &self.shards {
            snap.merge(&lock(shard).telemetry());
        }
        snap
    }

    /// Closes ingest and joins the workers, returning the final
    /// accounting. Idempotent and safe to race: later or concurrent
    /// calls return the first call's report. The caller should close
    /// ingest connections first — every batch shipped before the drain
    /// poison is processed and counted, but a lane racing the drain gets
    /// [`EngineClosed`] for anything after it.
    pub fn drain(&self) -> DrainReport {
        let mut drained = lock(&self.drained);
        if let Some(report) = drained.as_ref() {
            return report.clone();
        }
        // Poison each worker queue, then drop the master senders so no
        // new lanes open. In-queue batches ahead of the poison are still
        // drained and counted.
        if let Some(lanes) = lock(&self.lanes).take() {
            for tx in &lanes.senders {
                let _ = tx.send(Vec::new());
            }
        }
        let handles: Vec<_> = lock(&self.handles).drain(..).collect();
        let per_worker: Vec<u64> =
            handles.into_iter().map(|h| h.join().expect("worker thread must not panic")).collect();
        let report = DrainReport {
            submitted: self.submitted.get(),
            processed: per_worker.iter().sum(),
            per_worker,
        };
        *drained = Some(report.clone());
        report
    }
}

impl Instrumented for Engine {
    fn telemetry(&self) -> Snapshot {
        self.full_telemetry()
    }
}

/// One connection's private ingest path: per-shard batch buffers plus
/// clones of the bounded worker channels. Dropping a lane flushes its
/// partial batches, so every decoded record is delivered exactly once
/// even when the connection dies mid-stream.
pub struct IngestLane {
    senders: Vec<channel::Sender<Vec<PacketRecord>>>,
    recycle: Vec<Arc<channel::Receiver<Vec<PacketRecord>>>>,
    pending: Vec<Vec<PacketRecord>>,
    batch_size: usize,
    accepted: u64,
    submitted_ctr: Counter<AtomicCell>,
    batches_ctr: Counter<AtomicCell>,
    batch_fill: Histogram<AtomicCell>,
}

impl IngestLane {
    /// Routes a decoded batch into the per-shard buffers, shipping every
    /// buffer that fills. Blocks when a worker queue is full — that is
    /// the backpressure propagating to the socket.
    ///
    /// # Errors
    ///
    /// Returns [`EngineClosed`] if the engine drained underneath the
    /// lane; records of the failed call are not counted as accepted.
    pub fn submit(&mut self, records: &[PacketRecord]) -> Result<(), EngineClosed> {
        let workers = self.senders.len();
        for pkt in records {
            let w = worker_for(&pkt.key, workers);
            self.pending[w].push(*pkt);
            if self.pending[w].len() == self.batch_size {
                self.ship(w)?;
            }
        }
        self.accepted += records.len() as u64;
        Ok(())
    }

    /// Ships every non-empty partial buffer (end-of-stream flush).
    ///
    /// # Errors
    ///
    /// Returns [`EngineClosed`] if the engine drained underneath the lane.
    pub fn flush(&mut self) -> Result<(), EngineClosed> {
        for w in 0..self.senders.len() {
            if !self.pending[w].is_empty() {
                self.ship(w)?;
            }
        }
        Ok(())
    }

    /// Packets accepted on this lane so far (what the fin-ack reports).
    #[must_use]
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    fn ship(&mut self, w: usize) -> Result<(), EngineClosed> {
        let full = std::mem::take(&mut self.pending[w]);
        let n = full.len() as u64;
        match self.senders[w].send(full) {
            Ok(()) => {
                self.submitted_ctr.add(n);
                self.batches_ctr.inc();
                self.batch_fill.observe(n);
                // Reuse a drained buffer if one is waiting.
                self.pending[w] = self.recycle[w]
                    .try_recv()
                    .unwrap_or_else(|_| Vec::with_capacity(self.batch_size));
                Ok(())
            }
            Err(channel::SendError(mut rejected)) => {
                // Engine drained; keep the records so a retry (or the
                // accounting caller) can still see them, but report the
                // failure.
                rejected.truncate(0);
                self.pending[w] = rejected;
                Err(EngineClosed)
            }
        }
    }
}

impl Drop for IngestLane {
    /// Flush-on-drop: an abruptly closed connection still delivers every
    /// record that was decoded from complete frames.
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instameasure_packet::Protocol;

    fn key(i: u32) -> FlowKey {
        FlowKey::new(i.to_be_bytes(), [9, 9, 9, 9], 40000, 443, Protocol::Tcp)
    }

    fn records(n: u64, flows: u32) -> Vec<PacketRecord> {
        (0..n).map(|t| PacketRecord::new(key(t as u32 % flows), 100, t)).collect()
    }

    fn test_engine(workers: usize) -> Engine {
        let cfg = EngineConfig {
            workers,
            batch_size: 64,
            queue_batches: 4,
            per_worker: InstaMeasureConfig::default().small_for_tests(),
        };
        Engine::start(&cfg, Arc::new(SharedRegistry::new()))
    }

    #[test]
    fn submit_flush_drain_accounts_for_every_packet() {
        let engine = test_engine(3);
        let mut lane = engine.lane().unwrap();
        lane.submit(&records(10_007, 91)).unwrap();
        lane.flush().unwrap();
        assert_eq!(lane.accepted(), 10_007);
        drop(lane);
        let report = engine.drain();
        assert_eq!(report.submitted, 10_007);
        assert_eq!(report.processed, 10_007);
        assert_eq!(report.per_worker.iter().sum::<u64>(), 10_007);
    }

    #[test]
    fn dropped_lane_flushes_partials() {
        let engine = test_engine(2);
        let mut lane = engine.lane().unwrap();
        // 10 packets with batch_size 64: nothing ships until the drop.
        lane.submit(&records(10, 10)).unwrap();
        drop(lane);
        let report = engine.drain();
        assert_eq!(report.processed, 10);
    }

    #[test]
    fn estimates_match_offline_single_core_when_one_worker() {
        let recs = records(30_000, 50);
        let engine = test_engine(1);
        let mut lane = engine.lane().unwrap();
        lane.submit(&recs).unwrap();
        drop(lane);
        engine.drain();

        let mut offline = InstaMeasure::new(InstaMeasureConfig::default().small_for_tests());
        for r in &recs {
            offline.process(r);
        }
        for i in 0..50 {
            let (pkts, _) = engine.estimate(&key(i));
            let want = offline.estimate_packets(&key(i));
            assert!((pkts - want).abs() < 1e-12, "flow {i}: {pkts} vs {want}");
        }
    }

    #[test]
    fn top_k_merges_across_shards() {
        let engine = test_engine(4);
        let mut lane = engine.lane().unwrap();
        // Eight heavy flows of strictly decreasing size; all are large
        // enough to saturate the regulator and land in the WSAF, and
        // popcount sharding spreads them over several shards.
        let mut recs = Vec::new();
        let mut t = 0u64;
        for i in 0..8u32 {
            for _ in 0..(40_000 - 4_000 * u64::from(i)) {
                recs.push(PacketRecord::new(key(i + 1), 700, t));
                t += 1;
            }
        }
        lane.submit(&recs).unwrap();
        drop(lane);
        engine.drain();
        let top = engine.top_k(5);
        assert_eq!(top.len(), 5, "all heavy flows must be WSAF-resident");
        assert_eq!(top[0].key, key(1));
        assert!(top[0].packets > top[1].packets);
        for w in top.windows(2) {
            assert!(w[0].packets >= w[1].packets, "top-k must be sorted");
        }
    }

    #[test]
    fn queries_work_while_ingest_runs() {
        let engine = Arc::new(test_engine(2));
        let e2 = Arc::clone(&engine);
        let pusher = thread::spawn(move || {
            let mut lane = e2.lane().unwrap();
            for chunk in records(200_000, 128).chunks(1000) {
                lane.submit(chunk).unwrap();
            }
            lane.flush().unwrap();
        });
        // Interleave queries with the live ingest.
        for _ in 0..50 {
            let _ = engine.top_k(5);
            let _ = engine.estimate(&key(3));
            let _ = engine.flows();
        }
        pusher.join().unwrap();
        let report = engine.drain();
        assert_eq!(report.submitted, 200_000);
        assert_eq!(report.processed, 200_000);
    }

    #[test]
    fn rotate_resets_shards_and_bumps_epoch() {
        let engine = test_engine(2);
        let mut lane = engine.lane().unwrap();
        lane.submit(&records(50_000, 40)).unwrap();
        lane.flush().unwrap();
        drop(lane);
        engine.drain();
        let resident = engine.flows();
        assert!(resident > 0, "elephants must be resident before rotate");
        let (epoch, retired) = engine.rotate();
        assert_eq!(epoch, 1);
        assert_eq!(retired, resident);
        assert_eq!(engine.flows(), 0);
        let (pkts, bytes) = engine.estimate(&key(1));
        assert_eq!((pkts, bytes), (0.0, 0.0));
    }

    #[test]
    fn hot_path_telemetry_is_surfaced() {
        let engine = test_engine(2);
        let mut lane = engine.lane().unwrap();
        lane.submit(&records(1_000, 16)).unwrap();
        lane.flush().unwrap();
        drop(lane);
        engine.drain();
        let snap = engine.full_telemetry();
        let fill = snap.histogram("ingest.batch_fill").unwrap();
        assert_eq!(fill.sum, 1_000, "every shipped packet lands in one fill bucket");
        assert_eq!(fill.count, snap.counter("service.ingest.batches").unwrap());
        let expected = if instameasure_packet::prefetch::prefetch_enabled() { 1.0 } else { 0.0 };
        assert_eq!(snap.gauge("hotpath.prefetch_enabled"), Some(expected));
    }

    #[test]
    fn drain_closes_ingest_and_is_idempotent() {
        let engine = test_engine(2);
        let mut lane = engine.lane().unwrap();
        lane.submit(&records(100, 7)).unwrap();
        drop(lane);
        let a = engine.drain();
        let b = engine.drain();
        assert_eq!(a, b);
        assert!(engine.lane().is_none(), "no lanes after drain");
    }

    #[test]
    fn submit_after_drain_is_classified() {
        let engine = test_engine(1);
        let mut lane = engine.lane().unwrap();
        engine.drain();
        let err = lane.submit(&records(256, 1)).unwrap_err();
        assert_eq!(err, EngineClosed);
    }
}
