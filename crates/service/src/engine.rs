//! The live measurement engine behind the daemon: thread-per-shard
//! ownership, lock-free ingest, snapshot queries.
//!
//! The offline pipeline ([`instameasure_core::multicore`]) runs one
//! manager over one finite iterator and tears everything down at
//! end-of-stream. A daemon has neither: ingest arrives on many
//! connections, queries arrive while packets flow, and the stream only
//! ends when an operator says so. Earlier revisions kept each shard's
//! [`InstaMeasure`] behind a mutex locked per batch; this engine removes
//! that lock from the hot path entirely:
//!
//! * **Thread-per-shard ownership.** Each shard's sketch state is a plain
//!   (unshared) [`InstaMeasure`] owned by one worker thread, optionally
//!   pinned to a CPU ([`EngineConfig::pin`]) so megabytes of regulator
//!   and WSAF arrays stay cache-resident. Flow→shard routing is the same
//!   popcount rule as the offline pipeline ([`worker_for`]), so all
//!   packets of a flow still meet one shard.
//! * **SPSC ring ingest.** Each [`IngestLane`] (one per connection) holds
//!   a bounded [`crate::ring`] pair per shard: a forward ring carrying
//!   filled batches and a return ring carrying drained buffers back, the
//!   same recycling discipline as the offline manager, so the steady
//!   state allocates nothing and neither enqueue nor drain takes a lock.
//!   A full ring spins the pusher (counted in `service.ring.full_stalls`)
//!   — the backpressure that ultimately closes the remote tap's TCP
//!   window. Workers discover new lanes through a mailbox guarded by a
//!   mutex plus a generation counter, so the per-batch path costs one
//!   relaxed atomic load, not a lock.
//! * **Epoch-stamped snapshot queries.** Queries never touch live shard
//!   state. The worker publishes an immutable clone of its pipeline into
//!   a [`crate::snapshot::SnapshotSlot`] on demand (a reader asks, the
//!   worker answers at the next batch boundary); readers validate the
//!   seqlock stamp and retry on odd/changed values
//!   (`service.snapshot.retries`). After a drain the worker's last act is
//!   publishing its exact end-of-stream state, so post-drain queries are
//!   bit-identical to an offline replay of the same per-shard stream.
//! * **Packet-exact accounting.** `service.ingest.packets` counts what
//!   lanes shipped, per-worker counters count what shards processed, and
//!   [`Engine::drain`] proves `submitted == processed`: shutdown closes
//!   every ring through the handshake in [`crate::ring`], so a push
//!   racing the drain is either processed-and-counted or
//!   rejected-and-uncounted (`service.ingest.rejected_packets`), never
//!   lost. A lane flushes its partial batches when dropped, so an
//!   abruptly closed connection loses nothing that was decoded. `drain`
//!   is idempotent; concurrent calls all return the first report.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use instameasure_core::multicore::{worker_for, MAX_BATCH_SIZE};
use instameasure_core::{InstaMeasure, InstaMeasureConfig};
use instameasure_packet::{FlowKey, PacketRecord};
use instameasure_telemetry::{
    AtomicCell, Counter, Histogram, Instrumented, SharedRegistry, Snapshot,
};

use crate::affinity;
use crate::ring::{ring, PushError, RingConsumer, RingProducer};
use crate::snapshot::{SnapshotSlot, Stamped};
use crate::wire::TopFlow;

/// Batches a worker drains from one lane before giving others a turn.
const DRAIN_QUANTUM: usize = 8;
/// Idle loop iterations (yields) before a worker parks on its condvar.
const SPIN_ROUNDS: u32 = 64;
/// Parked workers re-check their flags at least this often, so a lost
/// wakeup costs bounded latency, never liveness.
const PARK_TIMEOUT: Duration = Duration::from_micros(200);
/// How long a query waits for a fresher snapshot before serving the
/// newest published view anyway (a stalled worker must not stall reads
/// forever). An idle worker answers in microseconds — the generous
/// bound only matters when the host starves the worker thread outright,
/// where serving a stale (possibly still-empty) view would turn
/// scheduler noise into wrong answers.
const SNAPSHOT_PATIENCE: Duration = Duration::from_secs(2);

/// Geometry of the live engine.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker shard count.
    pub workers: usize,
    /// Packets per dispatch batch (same economics as the offline
    /// pipeline's [`instameasure_core::multicore::MultiCoreConfig::batch_size`]).
    pub batch_size: usize,
    /// Per-shard ring capacity in whole batches.
    pub queue_batches: usize,
    /// Pin worker `w` to CPU `w mod available` ([`affinity`]); off by
    /// default because it is an optimization that a best-effort failure
    /// silently skips.
    pub pin: bool,
    /// Per-shard measurement configuration.
    pub per_worker: InstaMeasureConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 4,
            batch_size: 256,
            queue_batches: 16,
            pin: false,
            per_worker: InstaMeasureConfig::default(),
        }
    }
}

/// The ingest side is closed (the daemon is draining); the submitted
/// records were not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineClosed;

impl core::fmt::Display for EngineClosed {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "engine is draining; ingest is closed")
    }
}

impl std::error::Error for EngineClosed {}

/// Final accounting of a drained engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainReport {
    /// Packets lanes shipped into shard rings over the engine's life.
    pub submitted: u64,
    /// Packets workers fully processed (equals `submitted` after a clean
    /// drain — every ring was drained through the close handshake).
    pub processed: u64,
    /// Per-worker processed counts.
    pub per_worker: Vec<u64>,
}

/// A published point-in-time view of one shard.
#[derive(Debug)]
struct ShardView {
    /// State version (batches applied, plus two per rotate) at publish.
    ver: u64,
    /// Measurement epoch this view belongs to. A rotation publishes the
    /// *complete* retiring state stamped with the old epoch before the
    /// reset, then the fresh state stamped with the new one — so merged
    /// queries can demand one epoch across all shards.
    epoch: u64,
    /// Clone of the shard pipeline at a batch boundary.
    im: InstaMeasure,
}

/// Worker-side endpoints of one lane's ring pair.
struct LaneRings {
    fwd: RingConsumer<Vec<PacketRecord>>,
    ret: RingProducer<Vec<PacketRecord>>,
}

/// Lane-side endpoints of one lane's ring pair.
struct LanePort {
    fwd: RingProducer<Vec<PacketRecord>>,
    ret: RingConsumer<Vec<PacketRecord>>,
}

/// Control requests a worker handles at a batch boundary.
enum Control {
    Rotate(Arc<RotateSync>),
}

struct RotateSync {
    retired: AtomicU64,
    remaining: AtomicUsize,
    /// The epoch the rotation opens (workers stamp their post-reset
    /// publications with it).
    new_epoch: u64,
    /// When set, each worker parks a clone of its complete retiring
    /// state in `snapshots[w]` before resetting — the detection
    /// coordinator's per-shard epoch capture.
    want_snapshots: bool,
    snapshots: Mutex<Vec<Option<InstaMeasure>>>,
}

/// What one epoch rotation produced.
#[derive(Debug)]
pub struct RotateOutcome {
    /// The epoch the rotation opened (old epoch + 1).
    pub epoch: u64,
    /// WSAF-resident flows retired across all shards.
    pub retired: u64,
    /// The complete retiring per-shard measurement states, indexed by
    /// shard — populated only by [`Engine::rotate_with_snapshots`].
    pub snapshots: Vec<InstaMeasure>,
}

/// Everything shared between one worker thread, the lanes feeding it and
/// the query side. Note what is *not* here: the shard's `InstaMeasure`,
/// which the worker owns outright.
struct Shard {
    /// Hand-off point for newly opened lanes' ring endpoints. Locked by
    /// lane creation and by the worker only when `reg_gen` moves — never
    /// on the per-batch path.
    mailbox: Mutex<Vec<LaneRings>>,
    reg_gen: AtomicU64,
    /// Final-sweep latch: once set (under `mailbox`), no lane may
    /// register here again, which bounds shutdown.
    reg_closed: AtomicBool,
    control: Mutex<Vec<Control>>,
    control_flag: AtomicBool,
    draining: AtomicBool,
    /// Cleared by the worker after its final exact publication, so
    /// queries know the newest view is the end-of-stream truth.
    running: AtomicBool,
    /// Worker is (about to be) blocked on `wake_cv`; producers skip the
    /// notify entirely while this is false, keeping the hot path
    /// lock-free.
    parked: AtomicBool,
    wake: Mutex<bool>,
    wake_cv: Condvar,
    slot: SnapshotSlot<ShardView>,
    /// Batches applied so far (the freshness ruler for snapshot waits).
    ver: AtomicU64,
    /// Bumped by readers that need a fresher view than the slot holds.
    snap_requests: AtomicU64,
    /// WSAF-resident flow count, maintained per batch so `status` polls
    /// never force a snapshot clone.
    flows_resident: AtomicU64,
    /// Test hook: nanoseconds the worker dawdles per batch.
    worker_stall: AtomicU64,
    cfg: InstaMeasureConfig,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Wakes a shard's worker if (and only if) it is parked.
fn wake(shard: &Shard) {
    if shard.parked.load(Ordering::Relaxed) {
        let mut pending = lock(&shard.wake);
        *pending = true;
        shard.wake_cv.notify_all();
    }
}

/// The live measurement engine: shard-owning workers and the lock-free
/// ingest fabric.
pub struct Engine {
    shards: Vec<Arc<Shard>>,
    batch_size: usize,
    queue_batches: usize,
    open: Arc<AtomicBool>,
    handles: Mutex<Vec<thread::JoinHandle<u64>>>,
    registry: Arc<SharedRegistry>,
    submitted: Counter<AtomicCell>,
    batches: Counter<AtomicCell>,
    batch_fill: Histogram<AtomicCell>,
    ring_occupancy: Histogram<AtomicCell>,
    ring_stalls: Counter<AtomicCell>,
    snap_retries: Counter<AtomicCell>,
    epoch_retries: Counter<AtomicCell>,
    rejected: Counter<AtomicCell>,
    epoch: AtomicU64,
    drained: Mutex<Option<DrainReport>>,
}

/// Per-worker context moved into the worker thread.
struct WorkerCtx {
    index: usize,
    shard: Arc<Shard>,
    packets_ctr: Counter<AtomicCell>,
    publishes_ctr: Counter<AtomicCell>,
    pinned_ctr: Counter<AtomicCell>,
    pin_cpu: Option<usize>,
}

impl Engine {
    /// Boots the engine: builds the shards and spawns the worker threads.
    /// Metrics are registered in `registry` under `service.*`.
    ///
    /// # Panics
    ///
    /// Panics if `workers`, `batch_size` or `queue_batches` is zero, or
    /// `batch_size` exceeds [`MAX_BATCH_SIZE`] (server configs are
    /// validated before they get here).
    #[must_use]
    pub fn start(cfg: &EngineConfig, registry: Arc<SharedRegistry>) -> Self {
        assert!(cfg.workers > 0, "need at least one worker");
        assert!(
            cfg.batch_size > 0 && cfg.batch_size <= MAX_BATCH_SIZE,
            "batch size must be in 1..={MAX_BATCH_SIZE}"
        );
        assert!(cfg.queue_batches > 0, "ring must hold at least one batch");

        let shards: Vec<Arc<Shard>> = (0..cfg.workers)
            .map(|_| {
                Arc::new(Shard {
                    mailbox: Mutex::new(Vec::new()),
                    reg_gen: AtomicU64::new(0),
                    reg_closed: AtomicBool::new(false),
                    control: Mutex::new(Vec::new()),
                    control_flag: AtomicBool::new(false),
                    draining: AtomicBool::new(false),
                    running: AtomicBool::new(true),
                    parked: AtomicBool::new(false),
                    wake: Mutex::new(false),
                    wake_cv: Condvar::new(),
                    slot: SnapshotSlot::new(ShardView {
                        ver: 0,
                        epoch: 0,
                        im: InstaMeasure::new(cfg.per_worker),
                    }),
                    ver: AtomicU64::new(0),
                    snap_requests: AtomicU64::new(0),
                    flows_resident: AtomicU64::new(0),
                    worker_stall: AtomicU64::new(0),
                    cfg: cfg.per_worker,
                })
            })
            .collect();

        let submitted = registry.counter("service.ingest.packets");
        let batches = registry.counter("service.ingest.batches");
        let batch_fill = registry.histogram("ingest.batch_fill");
        let ring_occupancy = registry.histogram("service.ring.occupancy");
        let ring_stalls = registry.counter("service.ring.full_stalls");
        let snap_retries = registry.counter("service.snapshot.retries");
        let epoch_retries = registry.counter("service.snapshot.epoch_retries");
        let rejected = registry.counter("service.ingest.rejected_packets");
        let publishes = registry.counter("service.snapshot.publishes");
        let pinned = registry.counter("service.workers.pinned");
        registry
            .gauge("hotpath.prefetch_enabled")
            .set(if instameasure_packet::prefetch::prefetch_enabled() { 1.0 } else { 0.0 });
        registry
            .gauge("hotpath.prefetch_distance")
            .set(instameasure_packet::prefetch::prefetch_distance() as f64);
        registry.gauge("hotpath.simd_enabled").set(if instameasure_packet::simd::simd_enabled() {
            1.0
        } else {
            0.0
        });
        for feature in instameasure_packet::simd::cpu_features() {
            registry.gauge(&format!("hotpath.cpu.{feature}")).set(1.0);
        }

        let cpus = affinity::available_cpus();
        let mut handles = Vec::with_capacity(cfg.workers);
        for (w, shard) in shards.iter().enumerate() {
            let ctx = WorkerCtx {
                index: w,
                shard: Arc::clone(shard),
                packets_ctr: registry.counter(&format!("service.worker{w}.packets")),
                publishes_ctr: publishes.clone(),
                pinned_ctr: pinned.clone(),
                pin_cpu: cfg.pin.then_some(w % cpus),
            };
            let im = InstaMeasure::new(cfg.per_worker);
            handles.push(
                thread::Builder::new()
                    .name(format!("im-shard-{w}"))
                    .spawn(move || worker_loop(&ctx, im))
                    .expect("spawning a shard worker thread"),
            );
        }

        Engine {
            shards,
            batch_size: cfg.batch_size,
            queue_batches: cfg.queue_batches,
            open: Arc::new(AtomicBool::new(true)),
            handles: Mutex::new(handles),
            registry,
            submitted,
            batches,
            batch_fill,
            ring_occupancy,
            ring_stalls,
            snap_retries,
            epoch_retries,
            rejected,
            epoch: AtomicU64::new(0),
            drained: Mutex::new(None),
        }
    }

    /// Opens an ingest lane for one connection, or `None` if the engine
    /// is draining.
    #[must_use]
    pub fn lane(&self) -> Option<IngestLane> {
        if !self.open.load(Ordering::SeqCst) {
            return None;
        }
        let workers = self.shards.len();
        let mut ports = Vec::with_capacity(workers);
        let mut endpoints = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (fwd_tx, fwd_rx) = ring::<Vec<PacketRecord>>(self.queue_batches);
            // The return ring holds every buffer that can be in flight.
            let (ret_tx, ret_rx) = ring::<Vec<PacketRecord>>(self.queue_batches + 2);
            ports.push(LanePort { fwd: fwd_tx, ret: ret_rx });
            endpoints.push(LaneRings { fwd: fwd_rx, ret: ret_tx });
        }
        for (shard, ep) in self.shards.iter().zip(endpoints) {
            let mut mb = lock(&shard.mailbox);
            if shard.reg_closed.load(Ordering::SeqCst) {
                // Drain won the race: abort the lane. Endpoints already
                // registered are reaped by their workers once the ports
                // drop (right now, via this early return).
                return None;
            }
            mb.push(ep);
            drop(mb);
            shard.reg_gen.fetch_add(1, Ordering::Release);
            wake(shard);
        }
        Some(IngestLane {
            ports,
            shards: self.shards.clone(),
            open: Arc::clone(&self.open),
            pending: (0..workers).map(|_| Vec::with_capacity(self.batch_size)).collect(),
            batch_size: self.batch_size,
            accepted: 0,
            submitted_ctr: self.submitted.clone(),
            batches_ctr: self.batches.clone(),
            batch_fill: self.batch_fill.clone(),
            ring_occupancy: self.ring_occupancy.clone(),
            ring_stalls: self.ring_stalls.clone(),
            rejected_ctr: self.rejected.clone(),
        })
    }

    /// Number of worker shards.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Current measurement epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Packets shipped into shard rings so far.
    #[must_use]
    pub fn packets_submitted(&self) -> u64 {
        self.submitted.get()
    }

    /// Packets fully processed by shards so far.
    #[must_use]
    pub fn packets_processed(&self) -> u64 {
        (0..self.shards.len())
            .map(|w| self.registry.counter(&format!("service.worker{w}.packets")).get())
            .sum()
    }

    /// A validated snapshot of shard `w`, no staler than the shard's
    /// state at call time (worker permitting — a worker that fails to
    /// publish within [`SNAPSHOT_PATIENCE`] serves the newest *published*
    /// view instead of stalling the query; a shard that has never
    /// published is waited out, never answered with the empty initial
    /// view).
    fn view(&self, w: usize) -> Arc<Stamped<ShardView>> {
        let shard = &self.shards[w];
        let want = shard.ver.load(Ordering::Acquire);
        let (view, retries) = shard.slot.read();
        self.snap_retries.add(retries);
        if view.value.ver >= want {
            return view;
        }
        shard.snap_requests.fetch_add(1, Ordering::AcqRel);
        wake(shard);
        let deadline = Instant::now() + SNAPSHOT_PATIENCE;
        loop {
            let (view, retries) = shard.slot.read();
            self.snap_retries.add(retries);
            if view.value.ver >= want {
                return view;
            }
            if !shard.running.load(Ordering::Acquire) {
                // The worker exited; its final exact publication is
                // ordered before `running := false`, so re-read once.
                let (view, retries) = shard.slot.read();
                self.snap_retries.add(retries);
                return view;
            }
            // Serving a *stale* view on deadline is bounded staleness;
            // serving the never-published initial view would answer
            // "empty" for a shard that holds data. The worker is alive
            // (`running`) and publishes on request within one loop
            // round, so waiting out the first publication terminates.
            if Instant::now() >= deadline && view.value.ver > 0 {
                return view;
            }
            wake(shard);
            thread::sleep(Duration::from_micros(20));
        }
    }

    /// Per-flow estimate `(packets, bytes)` from the owning shard's
    /// snapshot — WSAF accumulation plus sketch residual, the paper's
    /// instant query. The key is digested once; both halves of the answer
    /// derive from that single hash ([`InstaMeasure::estimate`]).
    #[must_use]
    pub fn estimate(&self, key: &FlowKey) -> (f64, f64) {
        let view = self.view(worker_for(key, self.shards.len()));
        view.value.im.estimate(key)
    }

    /// Merged top-`k` flows by packets across all shards (WSAF view, the
    /// same merge the offline CLI prints). The per-shard snapshots are
    /// epoch-validated *and* mutually epoch-consistent — a merge racing
    /// a rotation sees either every shard's retiring state or every
    /// shard's fresh state, never a mix. Ingest never pauses.
    #[must_use]
    pub fn top_k(&self, k: usize) -> Vec<TopFlow> {
        let mut all: Vec<TopFlow> = Vec::new();
        for view in self.consistent_views() {
            all.extend(view.value.im.wsaf().top_k_by_packets(k).into_iter().map(|e| TopFlow {
                key: e.key,
                packets: e.packets,
                bytes: e.bytes,
            }));
        }
        all.sort_by(|a, b| b.packets.total_cmp(&a.packets).then_with(|| a.key.cmp(&b.key)));
        all.truncate(k);
        all
    }

    /// One epoch-validated snapshot per shard, retried until every view
    /// carries the *same* epoch. During a rotation the shards flip to
    /// the new epoch at their own batch boundaries; the handful of
    /// microseconds where they disagree is waited out (counted in
    /// `service.snapshot.epoch_retries`), bounded by the same patience
    /// as single-shard reads — on deadline the freshest mix is served
    /// rather than stalling the caller forever.
    fn consistent_views(&self) -> Vec<Arc<Stamped<ShardView>>> {
        let deadline = Instant::now() + SNAPSHOT_PATIENCE;
        loop {
            let views: Vec<_> = (0..self.shards.len()).map(|w| self.view(w)).collect();
            let epoch0 = views[0].value.epoch;
            if views.iter().all(|v| v.value.epoch == epoch0) || Instant::now() >= deadline {
                return views;
            }
            self.epoch_retries.inc();
            thread::sleep(Duration::from_micros(20));
        }
    }

    /// Distinct flows currently resident across all WSAF shards. Served
    /// from per-batch counters, so status polls cost a few atomic loads,
    /// not a snapshot.
    #[must_use]
    pub fn flows(&self) -> u64 {
        self.shards.iter().map(|s| s.flows_resident.load(Ordering::Acquire)).sum()
    }

    /// Rotates the measurement epoch: resets every shard and bumps the
    /// epoch counter. Returns `(new_epoch, flows_retired)`. Live shards
    /// rotate at a batch boundary inside their owning worker; packets
    /// racing the rotation land entirely in the old or entirely in the
    /// new epoch of their one shard.
    pub fn rotate(&self) -> (u64, u64) {
        let outcome = self.rotate_inner(false);
        (outcome.epoch, outcome.retired)
    }

    /// Rotates the epoch and additionally returns every shard's
    /// *complete* retiring measurement state — the per-shard epoch
    /// capture streaming detection consumes. Each worker clones its
    /// state at its own rotation boundary, before the reset, so the
    /// captured shards jointly form exactly the closed epoch.
    pub fn rotate_with_snapshots(&self) -> RotateOutcome {
        self.rotate_inner(true)
    }

    fn rotate_inner(&self, want_snapshots: bool) -> RotateOutcome {
        // The drain lock serializes rotations, so the epoch arithmetic
        // below is race-free.
        let drained = lock(&self.drained);
        let new_epoch = self.epoch.load(Ordering::Relaxed) + 1;
        let mut snapshots: Vec<InstaMeasure> = Vec::new();
        let retired = if drained.is_some() {
            // Workers have exited; the engine is the (sole, serialized by
            // the drain lock) writer now. Retire what the final exact
            // views hold and publish fresh empty state.
            let mut retired = 0u64;
            for shard in &self.shards {
                let (view, retries) = shard.slot.read();
                self.snap_retries.add(retries);
                retired += view.value.im.wsaf().len() as u64;
                if want_snapshots {
                    snapshots.push(view.value.im.clone());
                }
                let ver = shard.ver.fetch_add(1, Ordering::AcqRel) + 1;
                shard.slot.publish(ShardView {
                    ver,
                    epoch: new_epoch,
                    im: InstaMeasure::new(shard.cfg),
                });
                shard.flows_resident.store(0, Ordering::Release);
            }
            retired
        } else {
            let sync = Arc::new(RotateSync {
                retired: AtomicU64::new(0),
                remaining: AtomicUsize::new(self.shards.len()),
                new_epoch,
                want_snapshots,
                snapshots: Mutex::new((0..self.shards.len()).map(|_| None).collect()),
            });
            for shard in &self.shards {
                lock(&shard.control).push(Control::Rotate(Arc::clone(&sync)));
                shard.control_flag.store(true, Ordering::Release);
                wake(shard);
            }
            while sync.remaining.load(Ordering::Acquire) > 0 {
                thread::yield_now();
            }
            if want_snapshots {
                snapshots = lock(&sync.snapshots)
                    .drain(..)
                    .map(|s| s.expect("every worker parks its snapshot before acking"))
                    .collect();
            }
            sync.retired.load(Ordering::Acquire)
        };
        self.epoch.store(new_epoch, Ordering::Relaxed);
        drop(drained);
        self.registry.gauge("service.epoch").set(new_epoch as f64);
        RotateOutcome { epoch: new_epoch, retired, snapshots }
    }

    /// The service registry (`service.*` metrics) merged with every
    /// shard's measurement telemetry (`regulator.*`, `wsaf.*`), read from
    /// epoch-validated snapshots.
    #[must_use]
    pub fn full_telemetry(&self) -> Snapshot {
        let mut snap = self.registry.snapshot();
        for view in self.consistent_views() {
            snap.merge(&view.value.im.telemetry());
        }
        snap
    }

    /// Closes ingest, drains every ring and joins the workers, returning
    /// the final accounting. Idempotent and safe to race: later or
    /// concurrent calls return the first call's report. Every batch a
    /// lane successfully shipped is processed and counted — the ring
    /// close handshake resolves pushes racing the drain to exactly one
    /// side — and a lane racing the drain gets [`EngineClosed`] for
    /// anything after.
    pub fn drain(&self) -> DrainReport {
        let mut drained = lock(&self.drained);
        if let Some(report) = drained.as_ref() {
            return report.clone();
        }
        self.open.store(false, Ordering::SeqCst);
        for shard in &self.shards {
            shard.draining.store(true, Ordering::SeqCst);
            wake(shard);
        }
        let handles: Vec<_> = lock(&self.handles).drain(..).collect();
        let per_worker: Vec<u64> =
            handles.into_iter().map(|h| h.join().expect("worker thread must not panic")).collect();
        let report = DrainReport {
            submitted: self.submitted.get(),
            processed: per_worker.iter().sum(),
            per_worker,
        };
        *drained = Some(report.clone());
        report
    }

    /// Test hook: slow every snapshot publication by `nanos` inside the
    /// odd seqlock window (0 disarms). Lets the torn-read regression test
    /// prove readers retry rather than observe a mixed-epoch view.
    #[doc(hidden)]
    pub fn debug_set_publish_stall(&self, nanos: u64) {
        for shard in &self.shards {
            shard.slot.set_publish_stall(nanos);
        }
    }

    /// Test hook: make every worker dawdle `nanos` per batch (0 disarms),
    /// so tests can hold rings non-empty deterministically.
    #[doc(hidden)]
    pub fn debug_set_worker_stall(&self, nanos: u64) {
        for shard in &self.shards {
            shard.worker_stall.store(nanos, Ordering::Relaxed);
        }
    }

    /// Test hook: the raw seqlock stamp of shard `w`'s snapshot slot.
    #[doc(hidden)]
    #[must_use]
    pub fn debug_snapshot_stamp(&self, w: usize) -> u64 {
        self.shards[w].slot.stamp()
    }

    /// Test hook: one validated snapshot read of shard `w`, returning
    /// `(seqlock stamp, shard version)` of the view. Within one reader
    /// thread both components must be monotone non-decreasing and the
    /// stamp always even — the torn-read regression test hammers this
    /// while publication is artificially slowed.
    #[doc(hidden)]
    #[must_use]
    pub fn debug_shard_view_meta(&self, w: usize) -> (u64, u64) {
        let (view, retries) = self.shards[w].slot.read();
        self.snap_retries.add(retries);
        (view.stamp, view.value.ver)
    }

    /// Test hook: a full clone of shard `w`'s measurement state, read
    /// through the same validated-snapshot path as queries. The
    /// differential suites diff this against an offline replay of the
    /// shard's exact packet stream.
    #[doc(hidden)]
    #[must_use]
    pub fn debug_shard_measurement(&self, w: usize) -> InstaMeasure {
        self.view(w).value.im.clone()
    }

    /// Test hook: one epoch-consistent merged read, returning the epoch
    /// stamp and WSAF-resident flow count of every shard's view. The
    /// epoch-boundary regression test hammers this against racing
    /// rotations: the epochs must always agree, and the per-shard
    /// states must be all-retiring or all-fresh, never mixed.
    #[doc(hidden)]
    #[must_use]
    pub fn debug_consistent_view(&self) -> Vec<(u64, usize)> {
        self.consistent_views()
            .into_iter()
            .map(|v| (v.value.epoch, v.value.im.wsaf().len()))
            .collect()
    }
}

impl Drop for Engine {
    /// A dropped engine still joins its workers (via the idempotent
    /// drain), so no shard thread outlives the fabric it serves.
    fn drop(&mut self) {
        self.drain();
    }
}

impl Instrumented for Engine {
    fn telemetry(&self) -> Snapshot {
        self.full_telemetry()
    }
}

/// The owning worker: drains its lanes' rings, applies batches to its
/// private `InstaMeasure`, publishes snapshots on request, and exits only
/// after the drain handshake has emptied and closed every ring.
fn worker_loop(ctx: &WorkerCtx, mut im: InstaMeasure) -> u64 {
    if let Some(cpu) = ctx.pin_cpu {
        if affinity::pin_current_thread(cpu) {
            ctx.pinned_ctr.inc();
        }
    }
    let shard = &*ctx.shard;
    let mut lanes: Vec<LaneRings> = Vec::new();
    let mut seen_gen = 0u64;
    let mut processed = 0u64;
    let mut served_snaps = 0u64;
    let mut last_pub_ver = 0u64;
    let mut epoch = 0u64;
    let mut idle_rounds = 0u32;

    loop {
        let mut busy = false;

        // Absorb newly registered lanes; one relaxed-ish load when quiet.
        let gen = shard.reg_gen.load(Ordering::Acquire);
        if gen != seen_gen {
            lanes.extend(lock(&shard.mailbox).drain(..));
            seen_gen = gen;
            busy = true;
        }

        // Drain a bounded quantum per lane (fairness across connections),
        // then reap lanes whose producer side is gone.
        lanes.retain_mut(|lane| {
            for _ in 0..DRAIN_QUANTUM {
                match lane.fwd.pop() {
                    Some(batch) => {
                        busy = true;
                        process_one(shard, &mut im, &batch, &mut processed, &ctx.packets_ctr);
                        recycle(lane, batch);
                    }
                    None => break,
                }
            }
            !(lane.fwd.producer_closed() && lane.fwd.is_drained())
        });

        // Control requests (epoch rotation) land at batch boundaries.
        if shard.control_flag.swap(false, Ordering::AcqRel) {
            busy = true;
            let pending: Vec<Control> = lock(&shard.control).drain(..).collect();
            for ctl in pending {
                match ctl {
                    Control::Rotate(sync) => {
                        sync.retired.fetch_add(im.wsaf().len() as u64, Ordering::AcqRel);
                        // Publish the *complete* retiring state, stamped
                        // with the closing epoch, before the reset.
                        // Queries racing the rotation (their freshness
                        // `want` was captured pre-rotate) are satisfied
                        // by this view instead of the post-reset empty
                        // one — the old code dropped the pre-rotation
                        // snapshot here and answered "empty" for a
                        // shard that held a full epoch of flows.
                        shard.ver.fetch_add(1, Ordering::Release);
                        publish(shard, &im, epoch, &mut last_pub_ver, &ctx.publishes_ctr);
                        if sync.want_snapshots {
                            lock(&sync.snapshots)[ctx.index] = Some(im.clone());
                        }
                        im.reset();
                        epoch = sync.new_epoch;
                        shard.flows_resident.store(0, Ordering::Release);
                        shard.ver.fetch_add(1, Ordering::Release);
                        publish(shard, &im, epoch, &mut last_pub_ver, &ctx.publishes_ctr);
                        sync.remaining.fetch_sub(1, Ordering::AcqRel);
                    }
                }
            }
        }

        // Publish a snapshot if any reader asked since the last one.
        let want = shard.snap_requests.load(Ordering::Acquire);
        if want != served_snaps {
            publish(shard, &im, epoch, &mut last_pub_ver, &ctx.publishes_ctr);
            served_snaps = want;
        }

        if busy {
            idle_rounds = 0;
            continue;
        }

        if shard.draining.load(Ordering::Acquire) {
            final_sweep(shard, &mut im, &mut lanes, &mut processed, &ctx.packets_ctr);
            // The last act before `running := false` is publishing the
            // exact end-of-stream state; queries re-read after observing
            // the flag, so post-drain answers are bit-exact.
            shard.ver.fetch_add(1, Ordering::Release);
            publish(shard, &im, epoch, &mut last_pub_ver, &ctx.publishes_ctr);
            shard.running.store(false, Ordering::Release);
            return processed;
        }

        idle_rounds += 1;
        if idle_rounds < SPIN_ROUNDS {
            thread::yield_now();
        } else {
            park(shard);
        }
    }
}

/// Applies one batch to the worker's private state and maintains the
/// shard's version/occupancy counters.
fn process_one(
    shard: &Shard,
    im: &mut InstaMeasure,
    batch: &[PacketRecord],
    processed: &mut u64,
    packets_ctr: &Counter<AtomicCell>,
) {
    let stall = shard.worker_stall.load(Ordering::Relaxed);
    if stall > 0 {
        thread::sleep(Duration::from_nanos(stall));
    }
    if batch.is_empty() {
        return;
    }
    im.process_batch(batch);
    *processed += batch.len() as u64;
    packets_ctr.add(batch.len() as u64);
    shard.flows_resident.store(im.wsaf().len() as u64, Ordering::Release);
    shard.ver.fetch_add(1, Ordering::Release);
}

/// Hands a drained buffer back through the return ring; if the lane is
/// gone or the ring full, the allocation just drops.
fn recycle(lane: &mut LaneRings, mut batch: Vec<PacketRecord>) {
    batch.clear();
    let _ = lane.ret.push(batch);
}

/// Publishes the current state unless the newest publication already
/// carries it (idle polls clone nothing).
fn publish(
    shard: &Shard,
    im: &InstaMeasure,
    epoch: u64,
    last_pub_ver: &mut u64,
    publishes_ctr: &Counter<AtomicCell>,
) {
    let ver = shard.ver.load(Ordering::Acquire);
    if ver == *last_pub_ver {
        return;
    }
    shard.slot.publish(ShardView { ver, epoch, im: im.clone() });
    *last_pub_ver = ver;
    publishes_ctr.inc();
}

/// Shutdown sweep: latch registration closed, then empty and close every
/// ring through the handshake in [`crate::ring`]. After this returns, no
/// packet is in flight for this shard anywhere.
fn final_sweep(
    shard: &Shard,
    im: &mut InstaMeasure,
    lanes: &mut Vec<LaneRings>,
    processed: &mut u64,
    packets_ctr: &Counter<AtomicCell>,
) {
    let stragglers: Vec<LaneRings> = {
        let mut mb = lock(&shard.mailbox);
        // Under the mailbox lock: every racing `Engine::lane()` either
        // registered before this (absorbed below) or observes the latch
        // and aborts. Registration is therefore finished for good.
        shard.reg_closed.store(true, Ordering::SeqCst);
        mb.drain(..).collect()
    };
    lanes.extend(stragglers);
    for lane in lanes.iter_mut() {
        while let Some(batch) = lane.fwd.pop() {
            process_one(shard, im, &batch, processed, packets_ctr);
            recycle(lane, batch);
        }
        lane.fwd.close();
        // The close bound admits at most the one racing push; drain it.
        while let Some(batch) = lane.fwd.pop() {
            process_one(shard, im, &batch, processed, packets_ctr);
            recycle(lane, batch);
        }
    }
    lanes.clear();
}

/// Parks the worker until a producer, control request or timeout wakes
/// it. The `parked` flag keeps producers off the mutex while the worker
/// runs; the timeout turns any lost wakeup into bounded latency.
fn park(shard: &Shard) {
    shard.parked.store(true, Ordering::SeqCst);
    {
        let mut pending = lock(&shard.wake);
        if !*pending {
            let (guard, _timeout) = shard
                .wake_cv
                .wait_timeout(pending, PARK_TIMEOUT)
                .unwrap_or_else(PoisonError::into_inner);
            pending = guard;
        }
        *pending = false;
    }
    shard.parked.store(false, Ordering::SeqCst);
}

/// One connection's private ingest path: per-shard batch buffers plus the
/// producing ends of the per-shard ring pairs. Dropping a lane flushes
/// its partial batches, so every decoded record is delivered exactly once
/// even when the connection dies mid-stream.
pub struct IngestLane {
    ports: Vec<LanePort>,
    shards: Vec<Arc<Shard>>,
    open: Arc<AtomicBool>,
    pending: Vec<Vec<PacketRecord>>,
    batch_size: usize,
    accepted: u64,
    submitted_ctr: Counter<AtomicCell>,
    batches_ctr: Counter<AtomicCell>,
    batch_fill: Histogram<AtomicCell>,
    ring_occupancy: Histogram<AtomicCell>,
    ring_stalls: Counter<AtomicCell>,
    rejected_ctr: Counter<AtomicCell>,
}

impl IngestLane {
    /// Routes a decoded batch into the per-shard buffers, shipping every
    /// buffer that fills. Spins (with yields) when a shard ring is full —
    /// that is the backpressure propagating to the socket.
    ///
    /// # Errors
    ///
    /// Returns [`EngineClosed`] if the engine drained underneath the
    /// lane; records of the failed call are not counted as accepted.
    pub fn submit(&mut self, records: &[PacketRecord]) -> Result<(), EngineClosed> {
        let workers = self.ports.len();
        for pkt in records {
            let w = worker_for(&pkt.key, workers);
            self.pending[w].push(*pkt);
            if self.pending[w].len() == self.batch_size {
                self.ship(w)?;
            }
        }
        self.accepted += records.len() as u64;
        Ok(())
    }

    /// Ships every non-empty partial buffer (end-of-stream flush).
    ///
    /// # Errors
    ///
    /// Returns [`EngineClosed`] if the engine drained underneath the lane.
    pub fn flush(&mut self) -> Result<(), EngineClosed> {
        for w in 0..self.ports.len() {
            if !self.pending[w].is_empty() {
                self.ship(w)?;
            }
        }
        Ok(())
    }

    /// Packets accepted on this lane so far (what the fin-ack reports).
    #[must_use]
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    fn ship(&mut self, w: usize) -> Result<(), EngineClosed> {
        if !self.open.load(Ordering::SeqCst) {
            // Fail fast while draining; the records of this batch are
            // rejected (counted, never half-processed).
            let n = self.pending[w].len() as u64;
            self.pending[w].clear();
            self.rejected_ctr.add(n);
            return Err(EngineClosed);
        }
        let full = std::mem::take(&mut self.pending[w]);
        let n = full.len() as u64;
        let mut item = full;
        let mut stalled = false;
        loop {
            match self.ports[w].fwd.push(item) {
                Ok(()) => {
                    self.submitted_ctr.add(n);
                    self.batches_ctr.inc();
                    self.batch_fill.observe(n);
                    self.ring_occupancy.observe(self.ports[w].fwd.len() as u64);
                    wake(&self.shards[w]);
                    // Reuse a drained buffer if one came back.
                    self.pending[w] = self.ports[w]
                        .ret
                        .pop()
                        .unwrap_or_else(|| Vec::with_capacity(self.batch_size));
                    return Ok(());
                }
                Err(PushError::Full(back)) => {
                    if !stalled {
                        self.ring_stalls.inc();
                        stalled = true;
                    }
                    wake(&self.shards[w]);
                    thread::yield_now();
                    item = back;
                }
                Err(PushError::Closed(back)) => {
                    // Engine drained mid-push. Either the buffer came
                    // back (never entered the ring) or it is orphaned
                    // past the close bound; both mean "not processed".
                    let mut buf = back.unwrap_or_default();
                    buf.clear();
                    self.pending[w] = buf;
                    self.rejected_ctr.add(n);
                    return Err(EngineClosed);
                }
            }
        }
    }
}

impl Drop for IngestLane {
    /// Flush-on-drop: an abruptly closed connection still delivers every
    /// record that was decoded from complete frames. Dropping the ports
    /// marks the rings producer-closed, so the worker reaps them.
    fn drop(&mut self) {
        let _ = self.flush();
        for shard in &self.shards {
            wake(shard);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instameasure_packet::Protocol;

    fn key(i: u32) -> FlowKey {
        FlowKey::new(i.to_be_bytes(), [9, 9, 9, 9], 40000, 443, Protocol::Tcp)
    }

    fn records(n: u64, flows: u32) -> Vec<PacketRecord> {
        (0..n).map(|t| PacketRecord::new(key(t as u32 % flows), 100, t)).collect()
    }

    fn test_engine(workers: usize) -> Engine {
        let cfg = EngineConfig {
            workers,
            batch_size: 64,
            queue_batches: 4,
            pin: false,
            per_worker: InstaMeasureConfig::default().small_for_tests(),
        };
        Engine::start(&cfg, Arc::new(SharedRegistry::new()))
    }

    #[test]
    fn submit_flush_drain_accounts_for_every_packet() {
        let engine = test_engine(3);
        let mut lane = engine.lane().unwrap();
        lane.submit(&records(10_007, 91)).unwrap();
        lane.flush().unwrap();
        assert_eq!(lane.accepted(), 10_007);
        drop(lane);
        let report = engine.drain();
        assert_eq!(report.submitted, 10_007);
        assert_eq!(report.processed, 10_007);
        assert_eq!(report.per_worker.iter().sum::<u64>(), 10_007);
    }

    #[test]
    fn dropped_lane_flushes_partials() {
        let engine = test_engine(2);
        let mut lane = engine.lane().unwrap();
        // 10 packets with batch_size 64: nothing ships until the drop.
        lane.submit(&records(10, 10)).unwrap();
        drop(lane);
        let report = engine.drain();
        assert_eq!(report.processed, 10);
    }

    #[test]
    fn estimates_match_offline_single_core_when_one_worker() {
        let recs = records(30_000, 50);
        let engine = test_engine(1);
        let mut lane = engine.lane().unwrap();
        lane.submit(&recs).unwrap();
        drop(lane);
        engine.drain();

        let mut offline = InstaMeasure::new(InstaMeasureConfig::default().small_for_tests());
        for r in &recs {
            offline.process(r);
        }
        for i in 0..50 {
            let (pkts, _) = engine.estimate(&key(i));
            let want = offline.estimate_packets(&key(i));
            assert!((pkts - want).abs() < 1e-12, "flow {i}: {pkts} vs {want}");
        }
    }

    #[test]
    fn top_k_merges_across_shards() {
        let engine = test_engine(4);
        let mut lane = engine.lane().unwrap();
        // Eight heavy flows of strictly decreasing size; all are large
        // enough to saturate the regulator and land in the WSAF, and
        // popcount sharding spreads them over several shards.
        let mut recs = Vec::new();
        let mut t = 0u64;
        for i in 0..8u32 {
            for _ in 0..(40_000 - 4_000 * u64::from(i)) {
                recs.push(PacketRecord::new(key(i + 1), 700, t));
                t += 1;
            }
        }
        lane.submit(&recs).unwrap();
        drop(lane);
        engine.drain();
        let top = engine.top_k(5);
        assert_eq!(top.len(), 5, "all heavy flows must be WSAF-resident");
        assert_eq!(top[0].key, key(1));
        assert!(top[0].packets > top[1].packets);
        for w in top.windows(2) {
            assert!(w[0].packets >= w[1].packets, "top-k must be sorted");
        }
    }

    #[test]
    fn queries_work_while_ingest_runs() {
        let engine = Arc::new(test_engine(2));
        let e2 = Arc::clone(&engine);
        let pusher = thread::spawn(move || {
            let mut lane = e2.lane().unwrap();
            for chunk in records(200_000, 128).chunks(1000) {
                lane.submit(chunk).unwrap();
            }
            lane.flush().unwrap();
        });
        // Interleave queries with the live ingest.
        for _ in 0..50 {
            let _ = engine.top_k(5);
            let _ = engine.estimate(&key(3));
            let _ = engine.flows();
        }
        pusher.join().unwrap();
        let report = engine.drain();
        assert_eq!(report.submitted, 200_000);
        assert_eq!(report.processed, 200_000);
    }

    #[test]
    fn rotate_resets_shards_and_bumps_epoch() {
        let engine = test_engine(2);
        let mut lane = engine.lane().unwrap();
        lane.submit(&records(50_000, 40)).unwrap();
        lane.flush().unwrap();
        drop(lane);
        engine.drain();
        let resident = engine.flows();
        assert!(resident > 0, "elephants must be resident before rotate");
        let (epoch, retired) = engine.rotate();
        assert_eq!(epoch, 1);
        assert_eq!(retired, resident);
        assert_eq!(engine.flows(), 0);
        let (pkts, bytes) = engine.estimate(&key(1));
        assert_eq!((pkts, bytes), (0.0, 0.0));
    }

    #[test]
    fn rotate_while_live_resets_at_batch_boundary() {
        let engine = test_engine(2);
        let mut lane = engine.lane().unwrap();
        lane.submit(&records(50_000, 40)).unwrap();
        lane.flush().unwrap();
        // Quiesce (processed == submitted) without draining.
        while engine.packets_processed() < 50_000 {
            thread::yield_now();
        }
        assert!(engine.flows() > 0);
        let (epoch, retired) = engine.rotate();
        assert_eq!(epoch, 1);
        assert!(retired > 0, "live rotate must retire resident flows");
        assert_eq!(engine.flows(), 0);
        // The engine is still ingesting after a live rotate.
        lane.submit(&records(1_000, 8)).unwrap();
        lane.flush().unwrap();
        drop(lane);
        let report = engine.drain();
        assert_eq!(report.submitted, 51_000);
        assert_eq!(report.processed, 51_000);
    }

    #[test]
    fn rotate_with_snapshots_captures_the_complete_closed_epoch() {
        let engine = test_engine(2);
        let mut lane = engine.lane().unwrap();
        lane.submit(&records(50_000, 40)).unwrap();
        lane.flush().unwrap();
        while engine.packets_processed() < 50_000 {
            thread::yield_now();
        }
        let resident = engine.flows();
        assert!(resident > 0, "elephants must be resident before rotate");
        let outcome = engine.rotate_with_snapshots();
        assert_eq!(outcome.epoch, 1);
        assert_eq!(outcome.snapshots.len(), 2, "one capture per shard");
        let captured: u64 = outcome.snapshots.iter().map(|im| im.wsaf().len() as u64).sum();
        assert_eq!(captured, resident, "captures hold the complete retiring epoch");
        assert_eq!(outcome.retired, resident);
        assert_eq!(engine.flows(), 0, "live state was reset");
        drop(lane);
        engine.drain();
        // The drained path (engine as sole writer) snapshots too.
        let outcome = engine.rotate_with_snapshots();
        assert_eq!(outcome.epoch, 2);
        assert_eq!(outcome.snapshots.len(), 2);
        assert_eq!(outcome.retired, 0, "nothing resident after the first rotate");
    }

    #[test]
    fn hot_path_telemetry_is_surfaced() {
        let engine = test_engine(2);
        let mut lane = engine.lane().unwrap();
        lane.submit(&records(1_000, 16)).unwrap();
        lane.flush().unwrap();
        drop(lane);
        engine.drain();
        let snap = engine.full_telemetry();
        let fill = snap.histogram("ingest.batch_fill").unwrap();
        assert_eq!(fill.sum, 1_000, "every shipped packet lands in one fill bucket");
        assert_eq!(fill.count, snap.counter("service.ingest.batches").unwrap());
        let occupancy = snap.histogram("service.ring.occupancy").unwrap();
        assert_eq!(occupancy.count, fill.count, "every ship observes ring occupancy");
        let expected = if instameasure_packet::prefetch::prefetch_enabled() { 1.0 } else { 0.0 };
        assert_eq!(snap.gauge("hotpath.prefetch_enabled"), Some(expected));
        assert_eq!(
            snap.gauge("hotpath.prefetch_distance"),
            Some(instameasure_packet::prefetch::prefetch_distance() as f64)
        );
        let expected_simd = if instameasure_packet::simd::simd_enabled() { 1.0 } else { 0.0 };
        assert_eq!(snap.gauge("hotpath.simd_enabled"), Some(expected_simd));
        for feature in instameasure_packet::simd::cpu_features() {
            assert_eq!(snap.gauge(&format!("hotpath.cpu.{feature}")), Some(1.0));
        }
    }

    #[test]
    fn drain_closes_ingest_and_is_idempotent() {
        let engine = test_engine(2);
        let mut lane = engine.lane().unwrap();
        lane.submit(&records(100, 7)).unwrap();
        drop(lane);
        let a = engine.drain();
        let b = engine.drain();
        assert_eq!(a, b);
        assert!(engine.lane().is_none(), "no lanes after drain");
    }

    #[test]
    fn double_shutdown_with_nonempty_rings_drains_packet_exactly() {
        let engine = Arc::new(test_engine(2));
        // Dawdle per batch so rings are still populated when the drain
        // lands mid-stream.
        engine.debug_set_worker_stall(200_000);
        let mut lane = engine.lane().unwrap();
        lane.submit(&records(20_000, 64)).unwrap();
        lane.flush().unwrap();
        drop(lane);
        // Two concurrent shutdowns must agree on one packet-exact report.
        let e2 = Arc::clone(&engine);
        let racer = thread::spawn(move || e2.drain());
        let a = engine.drain();
        let b = racer.join().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.submitted, 20_000);
        assert_eq!(a.processed, 20_000, "nonempty rings must drain before workers exit");
        // Nothing the lane shipped was silently dropped.
        let snap = engine.full_telemetry();
        assert_eq!(snap.counter("service.ingest.rejected_packets").unwrap_or(0), 0);
        // A third shutdown still returns the same report.
        assert_eq!(engine.drain(), a);
    }

    #[test]
    fn submit_after_drain_is_classified_and_counted() {
        let engine = test_engine(1);
        let mut lane = engine.lane().unwrap();
        engine.drain();
        let err = lane.submit(&records(256, 1)).unwrap_err();
        assert_eq!(err, EngineClosed);
        // The rejected batch shows up in telemetry, not in thin air.
        let snap = engine.full_telemetry();
        assert!(snap.counter("service.ingest.rejected_packets").unwrap_or(0) > 0);
        assert_eq!(engine.packets_submitted(), engine.packets_processed());
    }
}
