//! Streaming anomaly detection wired into the live engine.
//!
//! At every epoch rotation the engine already captures the complete
//! closed epoch per shard ([`crate::engine::Engine::rotate_with_snapshots`]).
//! This module turns those captures into verdicts and pushes them to the
//! network:
//!
//! * [`DetectionRuntime`] absorbs each shard's WSAF into one mergeable
//!   [`EpochFeatures`] summary, keeps the previous epoch's summary as
//!   the comparison window, and runs the
//!   [`instameasure_core::detect::DetectorSuite`] over the pair. The
//!   shard merge is exact — the popcount dispatch keys all flows of a
//!   source to one shard, so per-shard features partition the epoch and
//!   their union is bit-identical to a single-shard run (the
//!   `prop_detect` battery pins this).
//! * [`AlertHub`] is the subscriber registry: connections that sent
//!   [`crate::wire::Request::Subscribe`] register their write half here
//!   and receive unsolicited [`crate::wire::Response::Alert`] frames.
//!   The write half is the *same* mutex-guarded stream the connection
//!   handler replies on, so alert frames and reply frames serialize at
//!   frame granularity and never interleave mid-frame.
//!
//! The paper's claim under test is the ~10 ms detection budget: the
//! `detect.alert_latency` histogram records rotation-start to
//! alerts-on-the-wire nanoseconds for every alert-producing epoch, and
//! `tests/anomaly_e2e.rs` gates the client-observed onset→alert time.

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use instameasure_core::detect::{
    Anomaly, DetectorConfig, DetectorSuite, EpochFeatures, ALL_ANOMALY_KINDS,
};
use instameasure_telemetry::{AtomicCell, Counter, Gauge, Histogram, SharedRegistry};

use crate::engine::Engine;
use crate::tune::TuneRuntime;
use crate::wire::{write_frame, Response, SUBSCRIBE_MASK_ALL};

/// How long one alert write may block on a slow subscriber before the
/// subscriber is reaped. Keeps a stalled `watch` client from delaying
/// every other subscriber past the detection budget.
const ALERT_WRITE_TIMEOUT: Duration = Duration::from_secs(1);

/// Configuration of the streaming detection layer.
#[derive(Debug, Clone, Default)]
pub struct DetectionConfig {
    /// When set, a dedicated `im-detect` thread rotates the engine and
    /// evaluates detectors every `interval` — the paper's epoch clock.
    /// When `None`, epochs close only on protocol
    /// [`crate::wire::Request::Rotate`] frames (the mode the e2e battery
    /// uses to time onset→alert precisely).
    pub interval: Option<Duration>,
    /// Detector thresholds, forwarded to
    /// [`instameasure_core::detect::DetectorSuite::standard`].
    pub detectors: DetectorConfig,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One registered alert consumer: the connection's shared write half
/// plus its subscription mask.
struct Subscriber {
    id: u64,
    kinds: u8,
    writer: Arc<Mutex<TcpStream>>,
}

/// Registry of live alert subscribers.
///
/// Broadcast is best effort per subscriber: a write failure (or a write
/// that would block past [`ALERT_WRITE_TIMEOUT`]) reaps that subscriber
/// without disturbing the others; the connection itself stays open and
/// its reply lane keeps working.
pub struct AlertHub {
    subs: Mutex<Vec<Subscriber>>,
    next_id: AtomicU64,
    subscribers_gauge: Gauge<AtomicCell>,
}

impl AlertHub {
    fn new(registry: &SharedRegistry) -> Self {
        AlertHub {
            subs: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            subscribers_gauge: registry.gauge("detect.subscribers"),
        }
    }

    /// Registers a connection's write half for the anomaly kinds in
    /// `kinds` (a mask of [`instameasure_core::detect::AnomalyKind::bit`]
    /// values; `0` means all). Returns the subscription id for
    /// [`AlertHub::unsubscribe`].
    pub fn subscribe(&self, writer: Arc<Mutex<TcpStream>>, kinds: u8) -> u64 {
        let kinds = if kinds == 0 { SUBSCRIBE_MASK_ALL } else { kinds & SUBSCRIBE_MASK_ALL };
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut subs = lock(&self.subs);
        subs.push(Subscriber { id, kinds, writer });
        self.subscribers_gauge.set(subs.len() as f64);
        id
    }

    /// Drops one subscription (connection closed or re-subscribed).
    pub fn unsubscribe(&self, id: u64) {
        let mut subs = lock(&self.subs);
        subs.retain(|s| s.id != id);
        self.subscribers_gauge.set(subs.len() as f64);
    }

    /// Current subscriber count.
    #[must_use]
    pub fn subscriber_count(&self) -> usize {
        lock(&self.subs).len()
    }

    /// Pushes every matching alert to every subscriber, reaping the
    /// ones whose sockets fail. Returns the number of alert frames that
    /// made it onto the wire.
    fn broadcast(&self, epoch: u64, alerts: &[Anomaly]) -> u64 {
        if alerts.is_empty() {
            return 0;
        }
        let mut sent = 0u64;
        let mut subs = lock(&self.subs);
        subs.retain(|sub| {
            let wanted: Vec<&Anomaly> =
                alerts.iter().filter(|a| sub.kinds & a.kind.bit() != 0).collect();
            if wanted.is_empty() {
                return true;
            }
            let mut stream = lock(&sub.writer);
            let _ = stream.set_write_timeout(Some(ALERT_WRITE_TIMEOUT));
            for anomaly in wanted {
                let frame = Response::Alert { epoch, anomaly: *anomaly }.encode();
                if write_frame(&mut *stream, frame.opcode, &frame.payload).is_err() {
                    return false;
                }
                sent += 1;
            }
            use std::io::Write as _;
            stream.flush().is_ok()
        });
        self.subscribers_gauge.set(subs.len() as f64);
        sent
    }
}

impl core::fmt::Debug for AlertHub {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("AlertHub").field("subscribers", &self.subscriber_count()).finish()
    }
}

/// What one [`DetectionRuntime::run_epoch`] call produced.
#[derive(Debug, Clone)]
pub struct EpochVerdict {
    /// The epoch the engine advanced *to* (the closed epoch is one
    /// less).
    pub epoch: u64,
    /// Flows retired from the WSAF shards by the rotation.
    pub retired: u64,
    /// The suite's verdicts over the closed epoch, severity-sorted per
    /// kind.
    pub alerts: Vec<Anomaly>,
}

/// The per-server detection state machine: rotate → absorb → evaluate →
/// broadcast, serialized so concurrent rotate requests cannot tear the
/// previous-epoch window.
pub struct DetectionRuntime {
    engine: Arc<Engine>,
    suite: DetectorSuite,
    hub: AlertHub,
    /// `(closed_epoch, features)` of the newest completed epoch; the
    /// comparison window for the next one. The mutex also serializes
    /// whole `run_epoch` calls.
    prev: Mutex<Option<(u64, EpochFeatures)>>,
    /// When armed (`serve --auto-tune`), every closed epoch's observed
    /// flow sizes are re-solved against the operator's tuning target.
    tuner: Option<Arc<TuneRuntime>>,
    epochs_ctr: Counter<AtomicCell>,
    alerts_ctr: Counter<AtomicCell>,
    alert_kind_ctrs: Vec<Counter<AtomicCell>>,
    alert_latency: Histogram<AtomicCell>,
}

impl DetectionRuntime {
    /// Builds the runtime over a running engine, registering the
    /// `detect.*` instruments.
    #[must_use]
    pub fn new(engine: Arc<Engine>, cfg: DetectorConfig, registry: &SharedRegistry) -> Self {
        DetectionRuntime {
            engine,
            suite: DetectorSuite::standard(cfg),
            hub: AlertHub::new(registry),
            prev: Mutex::new(None),
            tuner: None,
            epochs_ctr: registry.counter("detect.epochs"),
            alerts_ctr: registry.counter("detect.alerts"),
            alert_kind_ctrs: ALL_ANOMALY_KINDS
                .iter()
                .map(|k| registry.counter(&format!("detect.alerts.{}", k.label())))
                .collect(),
            alert_latency: registry.histogram("detect.alert_latency"),
        }
    }

    /// Arms the epoch re-tuner: after each rotation the closed epoch's
    /// observed flow sizes are fed to [`TuneRuntime::retune`], keeping
    /// the served plan and the `tune.*` gauges tracking live traffic.
    #[must_use]
    pub fn with_tuner(mut self, tuner: Arc<TuneRuntime>) -> Self {
        self.tuner = Some(tuner);
        self
    }

    /// The subscriber registry (the server hands connections here).
    #[must_use]
    pub fn hub(&self) -> &AlertHub {
        &self.hub
    }

    /// The thresholds in force.
    #[must_use]
    pub fn detector_config(&self) -> &DetectorConfig {
        self.suite.config()
    }

    /// Closes the current epoch and evaluates it: rotates the engine
    /// with per-shard snapshot capture, merges the shard features,
    /// runs every detector against the previous epoch's features, and
    /// pushes matching [`crate::wire::Response::Alert`] frames to the
    /// subscribers **before** returning — the caller's reply (e.g. the
    /// `Rotated` ack) therefore lands after the alerts it caused.
    ///
    /// Calls are serialized; the rotation-start→alerts-written time of
    /// every alert-producing epoch lands in `detect.alert_latency`.
    pub fn run_epoch(&self) -> EpochVerdict {
        let mut prev = lock(&self.prev);
        let start = Instant::now();
        let outcome = self.engine.rotate_with_snapshots();
        let closed_epoch = outcome.epoch.saturating_sub(1);

        let mut cur = EpochFeatures::default();
        for shard in &outcome.snapshots {
            cur.absorb(shard.wsaf());
        }
        let prev_features = prev.as_ref().map(|(_, f)| f);
        let alerts = self.suite.evaluate(closed_epoch, prev_features, &cur);

        self.epochs_ctr.inc();
        for a in &alerts {
            self.alerts_ctr.inc();
            self.alert_kind_ctrs[a.kind.code() as usize].inc();
        }
        let _sent = self.hub.broadcast(closed_epoch, &alerts);
        if !alerts.is_empty() {
            self.alert_latency.observe(start.elapsed().as_nanos() as u64);
        }

        // Re-solve the tuning target from what this epoch actually
        // carried — after the alerts are on the wire, so the solver
        // (milliseconds) never eats into the detection budget.
        if let Some(tuner) = &self.tuner {
            let _ = tuner.retune(&cur.flow_sizes());
        }

        *prev = Some((closed_epoch, cur));
        EpochVerdict { epoch: outcome.epoch, retired: outcome.retired, alerts }
    }
}

impl core::fmt::Debug for DetectionRuntime {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("DetectionRuntime")
            .field("suite", &self.suite)
            .field("hub", &self.hub)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use instameasure_core::detect::AnomalyKind;
    use instameasure_core::InstaMeasureConfig;
    use instameasure_packet::{FlowKey, PacketRecord, Protocol};

    fn start_engine(workers: usize) -> (Arc<Engine>, Arc<SharedRegistry>) {
        let registry = Arc::new(SharedRegistry::new());
        let cfg = EngineConfig {
            workers,
            batch_size: 64,
            queue_batches: 8,
            pin: false,
            per_worker: InstaMeasureConfig::default().small_for_tests(),
        };
        (Arc::new(Engine::start(&cfg, Arc::clone(&registry))), registry)
    }

    fn push_scan(engine: &Arc<Engine>, dsts: u16) {
        let mut records = Vec::new();
        for d in 0..dsts {
            let key = FlowKey::new(
                [66, 6, 6, 6],
                [10, 1, (d >> 8) as u8, d as u8],
                4000,
                80,
                Protocol::Tcp,
            );
            records.extend((0..300u64).map(|t| PacketRecord::new(key, 60, t)));
        }
        let mut lane = engine.lane().expect("engine is live");
        for chunk in records.chunks(997) {
            lane.submit(chunk).unwrap();
        }
        lane.flush().unwrap();
    }

    #[test]
    fn run_epoch_detects_a_scan_and_advances_the_window() {
        let (engine, registry) = start_engine(2);
        let runtime = DetectionRuntime::new(
            Arc::clone(&engine),
            DetectorConfig::default(),
            registry.as_ref(),
        );

        push_scan(&engine, 200);
        engine.drain();
        let verdict = runtime.run_epoch();
        assert_eq!(verdict.epoch, 1);
        assert!(
            verdict.alerts.iter().any(|a| a.kind == AnomalyKind::SuperSpreader),
            "a 200-destination scan must trip the spreader detector: {:?}",
            verdict.alerts
        );

        // Nothing in the next epoch: the scan vanishing is a heavy
        // change against the stored window, but no spreader remains.
        let verdict = runtime.run_epoch();
        assert_eq!(verdict.epoch, 2);
        assert!(
            !verdict.alerts.iter().any(|a| a.kind == AnomalyKind::SuperSpreader),
            "an empty epoch has no spreader: {:?}",
            verdict.alerts
        );

        let snap = registry.snapshot();
        assert_eq!(snap.counter("detect.epochs"), Some(2));
        assert!(snap.counter("detect.alerts").unwrap() >= 1);
        assert!(snap.counter("detect.alerts.super_spreader").unwrap() >= 1);
        assert!(snap.histogram("detect.alert_latency").is_some());
    }

    #[test]
    fn hub_masks_and_unsubscribe_update_the_gauge() {
        let registry = SharedRegistry::new();
        let hub = AlertHub::new(&registry);
        // A dead socket stands in for a writer; broadcast reaps it.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let id = hub.subscribe(Arc::new(Mutex::new(stream)), 0);
        assert_eq!(hub.subscriber_count(), 1);
        assert_eq!(registry.snapshot().gauge("detect.subscribers"), Some(1.0));
        hub.unsubscribe(id);
        assert_eq!(hub.subscriber_count(), 0);
        assert_eq!(registry.snapshot().gauge("detect.subscribers"), Some(0.0));
    }
}
