//! Shared fuzz-target bodies for the wire protocol, in the same style as
//! `instameasure_packet::fuzzing`: each function upholds one contract —
//! **arbitrary bytes from an untrusted peer must produce a classified
//! `Ok`/`Err`, never a panic, overflow, unbounded allocation or
//! out-of-bounds access**. `tests/fuzz_smoke.rs` drives these bodies
//! with a bounded deterministic mutation budget in ordinary stable-Rust
//! CI.

use crate::wire::{read_frame, write_frame, Frame, Request, Response, DEFAULT_MAX_PAYLOAD};

/// Feeds arbitrary bytes to the frame reader and both message decoders.
/// Whatever decodes successfully must re-encode to a frame that decodes
/// to the same message (round-trip stability on the surviving subset).
pub fn fuzz_frame_stream(data: &[u8]) {
    let mut cursor = data;
    // Drain frames until the stream errors or ends; bounded because every
    // iteration consumes at least a header.
    while let Ok(Some(frame)) = read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD) {
        check_roundtrip(&frame);
    }
}

/// Arbitrary bytes as a single frame payload under every opcode: both
/// decoders must classify or accept, never panic — and accepted messages
/// must round-trip.
pub fn fuzz_payloads(data: &[u8]) {
    for opcode_byte in [
        0x01u8, 0x02, 0x10, 0x11, 0x12, 0x13, 0x20, 0x21, 0x30, 0x82, 0x90, 0x91, 0x92, 0x93, 0xA0,
        0xB0, 0xB1, 0xFF,
    ] {
        let mut wire = Vec::with_capacity(crate::wire::HEADER_BYTES + data.len());
        wire.extend_from_slice(&crate::wire::MAGIC);
        wire.push(opcode_byte);
        wire.extend_from_slice(&(data.len() as u32).to_be_bytes());
        wire.extend_from_slice(data);
        if let Ok(Some(frame)) = read_frame(&mut wire.as_slice(), DEFAULT_MAX_PAYLOAD) {
            check_roundtrip(&frame);
        }
    }
}

fn check_roundtrip(frame: &Frame) {
    if let Ok(req) = Request::decode(frame) {
        let re = req.encode();
        let back = Request::decode(&re).expect("re-encoded request must decode");
        assert_eq!(back, req, "request round-trip diverged");
    }
    if let Ok(resp) = Response::decode(frame) {
        let re = resp.encode();
        let back = Response::decode(&re).expect("re-encoded response must decode");
        // Error messages survive lossy UTF-8 only one way; compare the
        // re-encoded form instead of the original bytes.
        assert_eq!(back.encode(), re, "response round-trip diverged");
    }
}

/// A truncation sweep: a valid frame cut at every byte boundary must
/// yield clean-EOF (cut == 0) or a classified truncation — and a frame
/// with each header byte corrupted must never panic.
pub fn fuzz_truncations(data: &[u8]) {
    let mut wire = Vec::new();
    write_frame(&mut wire, crate::wire::Opcode::IngestBatch, data).expect("vec write");
    for cut in 0..wire.len() {
        let _ = read_frame(&mut &wire[..cut], DEFAULT_MAX_PAYLOAD);
    }
    for i in 0..wire.len().min(crate::wire::HEADER_BYTES) {
        let mut corrupt = wire.clone();
        corrupt[i] ^= 0xFF;
        let _ = read_frame(&mut corrupt.as_slice(), DEFAULT_MAX_PAYLOAD);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instameasure_packet::{FlowKey, PacketRecord, Protocol};

    #[test]
    fn bodies_accept_valid_and_corrupt_inputs() {
        let key = FlowKey::new([10, 0, 0, 1], [10, 0, 0, 2], 4242, 443, Protocol::Udp);
        let records: Vec<PacketRecord> = (0..9).map(|t| PacketRecord::new(key, 900, t)).collect();
        let frame = Request::IngestBatch(records).encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, frame.opcode, &frame.payload).unwrap();
        fuzz_frame_stream(&wire);
        fuzz_payloads(&frame.payload);
        fuzz_truncations(&frame.payload);
        // Garbage too.
        fuzz_frame_stream(b"\xFF\x00garbage that is not a frame at all");
        fuzz_payloads(b"\x00\x00\x00\x02short");
    }

    #[test]
    fn bodies_cover_subscribe_and_alert_frames() {
        use instameasure_core::detect::{Anomaly, AnomalyKind, Subject};
        let sub = Request::Subscribe { kinds: 0x05 }.encode();
        let alert = Response::Alert {
            epoch: 3,
            anomaly: Anomaly {
                kind: AnomalyKind::EntropyShift,
                subject: Subject::Flow(FlowKey::new(
                    [1, 2, 3, 4],
                    [5, 6, 7, 8],
                    9,
                    10,
                    Protocol::Tcp,
                )),
                score: -0.4,
                threshold: 0.25,
            },
        }
        .encode();
        for frame in [&sub, &alert] {
            let mut wire = Vec::new();
            write_frame(&mut wire, frame.opcode, &frame.payload).unwrap();
            fuzz_frame_stream(&wire);
            fuzz_payloads(&frame.payload);
            fuzz_truncations(&frame.payload);
        }
    }
}
