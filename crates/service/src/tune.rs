//! Auto-tuning state carried by a `serve --auto-tune` daemon.
//!
//! The CLI solves the boot configuration *before* the engine starts
//! (calibrate or load a [`MachineProfile`], run
//! [`instameasure_autotune::solve`], materialize the winning
//! [`TunePlan`] as the per-shard config). This module is what remains
//! live afterwards:
//!
//! * [`TuneRuntime`] serves the plan over the wire
//!   ([`crate::wire::Request::QueryPlan`] →
//!   [`crate::wire::Response::Plan`]) and re-solves it at every epoch
//!   rotation from the flow sizes the closed epoch actually observed
//!   ([`instameasure_core::detect::EpochFeatures::flow_sizes`]), so an
//!   operator watching `tune.*` telemetry sees when live traffic has
//!   drifted away from the workload the daemon was sized for.
//! * The engine's geometry is fixed at boot — a WSAF cannot be resized
//!   under live ingest — so a drifted re-solve never mutates the
//!   engine. It updates the served plan (the *recommendation*) and
//!   raises the `tune.drift` gauge; restarting with the new plan is the
//!   operator's call.
//!
//! Telemetry registered by the runtime:
//!
//! | instrument | meaning |
//! |---|---|
//! | `tune.resolves` | epoch re-solves that produced a feasible plan |
//! | `tune.infeasible` | epoch re-solves where no candidate met the target |
//! | `tune.drift` | gauge: 1 when the latest recommendation's geometry differs from the boot geometry |
//! | `tune.predicted_epsilon` | gauge: latest plan's predicted relative error |
//! | `tune.margin` | gauge: latest plan's throughput margin |
//! | `tune.regulation` | gauge: latest plan's predicted WSAF insertion rate |
//! | `tune.vector_bits` / `tune.layers` / `tune.wsaf_log2` | gauges: latest recommended geometry |

use std::sync::{Mutex, PoisonError};

use instameasure_autotune::{solve, MachineProfile, TunePlan, TuneRequest};
use instameasure_telemetry::{AtomicCell, Counter, Gauge, SharedRegistry};

use crate::wire::PlanReport;

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Everything the CLI solved before boot, handed to
/// [`crate::server::ServiceConfigBuilder::auto_tune`].
#[derive(Debug, Clone)]
pub struct TuneState {
    /// The calibrated (or loaded) memory-hierarchy profile.
    pub profile: MachineProfile,
    /// The operator's stated target, kept for epoch re-solves. The
    /// `pps` here is **per shard** — the CLI divides the offered load
    /// by the worker count before solving, because each popcount-routed
    /// shard owns its own sketch and WSAF.
    pub request: TuneRequest,
    /// The plan each shard booted with.
    pub plan: TunePlan,
    /// Worker shard count, so epoch re-solves can reduce the merged
    /// cross-shard feature set back to one shard's share.
    pub shards: usize,
}

/// Live auto-tuning state: the boot plan, the latest recommendation,
/// and the `tune.*` instruments.
pub struct TuneRuntime {
    profile: MachineProfile,
    request: TuneRequest,
    shards: usize,
    /// Geometry the engine actually runs — fixed for the process
    /// lifetime.
    boot: TunePlan,
    /// The most recent feasible solve (boot plan until traffic arrives).
    latest: Mutex<TunePlan>,
    resolves: Counter<AtomicCell>,
    infeasible: Counter<AtomicCell>,
    drift: Gauge<AtomicCell>,
    predicted_epsilon: Gauge<AtomicCell>,
    margin: Gauge<AtomicCell>,
    regulation: Gauge<AtomicCell>,
    vector_bits: Gauge<AtomicCell>,
    layers: Gauge<AtomicCell>,
    wsaf_log2: Gauge<AtomicCell>,
}

impl TuneRuntime {
    /// Builds the runtime from the pre-boot solve, registering the
    /// `tune.*` instruments and publishing the boot plan's figures.
    #[must_use]
    pub fn new(state: TuneState, registry: &SharedRegistry) -> Self {
        let rt = TuneRuntime {
            profile: state.profile,
            request: state.request,
            shards: state.shards.max(1),
            latest: Mutex::new(state.plan),
            boot: state.plan,
            resolves: registry.counter("tune.resolves"),
            infeasible: registry.counter("tune.infeasible"),
            drift: registry.gauge("tune.drift"),
            predicted_epsilon: registry.gauge("tune.predicted_epsilon"),
            margin: registry.gauge("tune.margin"),
            regulation: registry.gauge("tune.regulation"),
            vector_bits: registry.gauge("tune.vector_bits"),
            layers: registry.gauge("tune.layers"),
            wsaf_log2: registry.gauge("tune.wsaf_log2"),
        };
        let boot = rt.boot;
        rt.publish(&boot);
        rt
    }

    /// The plan the engine booted with.
    #[must_use]
    pub fn boot_plan(&self) -> &TunePlan {
        &self.boot
    }

    /// The latest recommendation (the boot plan until a re-solve
    /// succeeded).
    #[must_use]
    pub fn latest_plan(&self) -> TunePlan {
        *lock(&self.latest)
    }

    /// The wire-format report served to [`crate::wire::Request::QueryPlan`].
    #[must_use]
    pub fn report(&self) -> PlanReport {
        let plan = lock(&self.latest);
        PlanReport {
            l1_memory_bytes: plan.l1_memory_bytes,
            vector_bits: plan.vector_bits,
            layers: plan.layers,
            wsaf_entries_log2: plan.wsaf_entries_log2,
            predicted_regulation: plan.predicted_regulation,
            probes_per_insert: plan.probes_per_insert,
            margin: plan.margin,
            predicted_epsilon: plan.predicted_epsilon,
            access_nanos: plan.access_nanos,
            hash_ns: self.profile.hash_ns(),
        }
    }

    /// Re-solves the operator's target against the flow sizes one
    /// closed epoch actually observed (descending, merged across
    /// shards — every `shards`-th size approximates one popcount
    /// shard's share of the distribution, matching the per-shard `pps`
    /// in the request). A feasible solve becomes the new recommendation
    /// (and sets `tune.drift` if its geometry differs from the boot
    /// geometry); an infeasible one only counts — the prior
    /// recommendation stands. Empty epochs are ignored: an idle link
    /// says nothing about the workload.
    pub fn retune(&self, observed_sizes: &[u64]) -> Option<TunePlan> {
        if observed_sizes.is_empty() {
            return None;
        }
        let per_shard: Vec<u64> = observed_sizes.iter().step_by(self.shards).copied().collect();
        match solve(&self.profile, &self.request, &per_shard) {
            Some(plan) => {
                self.resolves.inc();
                self.publish(&plan);
                *lock(&self.latest) = plan;
                Some(plan)
            }
            None => {
                self.infeasible.inc();
                None
            }
        }
    }

    fn publish(&self, plan: &TunePlan) {
        self.drift.set(if plan.same_geometry(&self.boot) { 0.0 } else { 1.0 });
        self.predicted_epsilon.set(plan.predicted_epsilon);
        self.margin.set(plan.margin);
        self.regulation.set(plan.predicted_regulation);
        self.vector_bits.set(f64::from(plan.vector_bits));
        self.layers.set(f64::from(plan.layers));
        self.wsaf_log2.set(f64::from(plan.wsaf_entries_log2));
    }
}

impl core::fmt::Debug for TuneRuntime {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TuneRuntime")
            .field("boot", &self.boot)
            .field("latest", &self.latest_plan())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instameasure_autotune::zipf_sizes;

    fn state() -> TuneState {
        let profile = MachineProfile::paper();
        let request = TuneRequest::accuracy(1.0e6, 0.2, 0.1);
        let plan = solve(&profile, &request, &zipf_sizes(20_000, 100_000))
            .expect("the paper profile solves a loose target");
        TuneState { profile, request, plan, shards: 1 }
    }

    #[test]
    fn report_mirrors_the_boot_plan_until_a_retune() {
        let registry = SharedRegistry::new();
        let rt = TuneRuntime::new(state(), &registry);
        let report = rt.report();
        assert_eq!(report.vector_bits, rt.boot_plan().vector_bits);
        assert_eq!(report.wsaf_entries_log2, rt.boot_plan().wsaf_entries_log2);
        assert!((report.hash_ns - MachineProfile::paper().hash_ns()).abs() < 1e-12);

        let snap = registry.snapshot();
        assert_eq!(snap.gauge("tune.drift"), Some(0.0));
        assert_eq!(snap.gauge("tune.vector_bits"), Some(f64::from(report.vector_bits)));
        assert_eq!(snap.counter("tune.resolves"), Some(0));
    }

    #[test]
    fn retune_ignores_empty_epochs_and_counts_feasible_solves() {
        let registry = SharedRegistry::new();
        let rt = TuneRuntime::new(state(), &registry);

        assert!(rt.retune(&[]).is_none());
        assert_eq!(registry.snapshot().counter("tune.resolves"), Some(0));

        // Same workload shape the boot plan was solved for: feasible,
        // and the recommendation should match the boot geometry.
        let plan = rt.retune(&zipf_sizes(20_000, 100_000)).expect("same workload is feasible");
        assert!(plan.same_geometry(rt.boot_plan()));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("tune.resolves"), Some(1));
        assert_eq!(snap.gauge("tune.drift"), Some(0.0));
    }

    #[test]
    fn a_heavier_workload_drifts_the_recommendation() {
        let registry = SharedRegistry::new();
        let rt = TuneRuntime::new(state(), &registry);

        // A far larger active flow set forces a bigger WSAF: geometry
        // drifts, the gauge says so, and the served report follows the
        // new recommendation.
        let heavy = zipf_sizes(3_000_000, 1_000_000);
        let plan = rt.retune(&heavy).expect("a loose accuracy target stays feasible");
        assert!(
            !plan.same_geometry(rt.boot_plan()),
            "3M flows must outgrow a 20k-flow WSAF: {plan:?} vs {:?}",
            rt.boot_plan()
        );
        assert_eq!(registry.snapshot().gauge("tune.drift"), Some(1.0));
        assert_eq!(rt.report().wsaf_entries_log2, plan.wsaf_entries_log2);
    }
}
