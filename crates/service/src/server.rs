//! The network-facing daemon: accept loop, per-connection protocol
//! handlers, and the shutdown/drain choreography.
//!
//! One listener accepts TCP connections; each gets its own handler
//! thread. A connection may mix ingest and query frames freely — taps
//! stream [`crate::wire::Request::IngestBatch`] frames, operators open a
//! second connection for queries, and neither blocks the other: ingest
//! backpressure is per-connection (bounded worker queues block that
//! lane's socket only), and queries read shards one at a time.
//!
//! Robustness rules, each of which the adversarial test suite exercises:
//!
//! * every malformed frame (bad magic, unknown opcode, oversized length
//!   prefix, truncated stream, mismatched payload) yields one classified
//!   error reply where possible, a `service.rejects.<class>` count, and a
//!   closed connection — never a panic;
//! * a peer that goes silent is cut off by the read timeout
//!   ([`ServiceConfig::read_timeout`]) so dead taps cannot pin
//!   connections forever;
//! * a connection that dies mid-batch loses only the frame that did not
//!   arrive completely — decoded records are flushed to the pipeline by
//!   the lane's drop;
//! * [`crate::wire::Request::Shutdown`] stops the accept loop, waits for
//!   peer connections to finish (bounded by
//!   [`ServiceConfig::drain_grace`]), drains the engine, and only then
//!   acks with the final packet-exact [`StatusReport`].

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use instameasure_core::multicore::MAX_BATCH_SIZE;
use instameasure_core::InstaMeasureConfig;
use instameasure_telemetry::{AtomicCell, Counter, Histogram, SharedRegistry};

use crate::detect::{DetectionConfig, DetectionRuntime};
use crate::engine::{Engine, EngineConfig, IngestLane};
use crate::tune::{TuneRuntime, TuneState};
use crate::wire::{
    frame_wire_len, read_frame, write_frame, Request, Response, StatusReport, WireError,
    DEFAULT_MAX_PAYLOAD, SUBSCRIBE_MASK_ALL,
};

/// Configuration of the daemon. Build via [`ServiceConfig::builder`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral loopback port;
    /// read the bound address back from [`Server::local_addr`]).
    pub addr: String,
    /// Worker shard count.
    pub workers: usize,
    /// Packets per dispatch batch into the worker queues.
    pub batch_size: usize,
    /// Per-worker queue capacity in whole batches.
    pub queue_batches: usize,
    /// Pin each shard worker to a CPU (`serve --pin`); best effort.
    pub pin: bool,
    /// Per-shard measurement configuration.
    pub per_worker: InstaMeasureConfig,
    /// Ceiling on one frame's payload; larger length prefixes are
    /// rejected before allocation.
    pub max_frame_bytes: u32,
    /// Idle cutoff: a connection with no complete frame for this long is
    /// closed (`service.timeouts` counts them).
    pub read_timeout: Duration,
    /// Maximum simultaneous connections; excess accepts are refused with
    /// a classified error frame.
    pub max_connections: usize,
    /// How long a shutdown waits for other connections to finish before
    /// draining anyway.
    pub drain_grace: Duration,
    /// Streaming anomaly detection (`None` disables it; `Subscribe`
    /// frames are then rejected as `unsupported`).
    pub detect: Option<DetectionConfig>,
    /// Auto-tuning state from a pre-boot solve (`serve --auto-tune`).
    /// `None` rejects [`Request::QueryPlan`] as `unsupported`.
    pub tune: Option<TuneState>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            batch_size: 256,
            queue_batches: 16,
            pin: false,
            per_worker: InstaMeasureConfig::default(),
            max_frame_bytes: DEFAULT_MAX_PAYLOAD,
            read_timeout: Duration::from_secs(30),
            max_connections: 64,
            drain_grace: Duration::from_secs(5),
            detect: None,
            tune: None,
        }
    }
}

/// Rejected [`ServiceConfigBuilder`] parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServiceConfigError {
    /// `workers` was zero.
    NoWorkers,
    /// `batch_size` was zero or above [`MAX_BATCH_SIZE`].
    BatchSize {
        /// The rejected value.
        got: usize,
    },
    /// `queue_batches` was zero.
    ZeroQueueBatches,
    /// `max_frame_bytes` cannot hold even a one-record ingest frame.
    FrameTooSmall {
        /// The rejected value.
        got: u32,
    },
    /// `max_connections` was zero.
    NoConnections,
    /// `read_timeout` was zero (a zero timeout means "block forever" to
    /// the socket layer, which defeats the idle cutoff).
    ZeroReadTimeout,
    /// A detection interval of zero would spin the rotation loop.
    ZeroDetectInterval,
}

impl core::fmt::Display for ServiceConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServiceConfigError::NoWorkers => write!(f, "need at least one worker"),
            ServiceConfigError::BatchSize { got } => {
                write!(f, "batch size must be in 1..={MAX_BATCH_SIZE}, got {got}")
            }
            ServiceConfigError::ZeroQueueBatches => {
                write!(f, "queue must hold at least one batch")
            }
            ServiceConfigError::FrameTooSmall { got } => {
                write!(f, "max frame bytes {got} below the one-record minimum")
            }
            ServiceConfigError::NoConnections => {
                write!(f, "need at least one connection slot")
            }
            ServiceConfigError::ZeroReadTimeout => {
                write!(f, "read timeout must be non-zero")
            }
            ServiceConfigError::ZeroDetectInterval => {
                write!(f, "detection interval must be non-zero")
            }
        }
    }
}

impl std::error::Error for ServiceConfigError {}

/// Validating builder for [`ServiceConfig`].
#[derive(Debug, Clone, Default)]
pub struct ServiceConfigBuilder {
    cfg: ServiceConfig,
}

impl ServiceConfigBuilder {
    /// Sets the listen address (default `127.0.0.1:0`).
    #[must_use]
    pub fn addr(mut self, addr: &str) -> Self {
        self.cfg.addr = addr.to_string();
        self
    }

    /// Sets the worker shard count (default 4).
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.cfg.workers = n;
        self
    }

    /// Sets the dispatch batch size in packets (default 256).
    #[must_use]
    pub fn batch_size(mut self, n: usize) -> Self {
        self.cfg.batch_size = n;
        self
    }

    /// Sets the per-worker queue capacity in batches (default 16).
    #[must_use]
    pub fn queue_batches(mut self, n: usize) -> Self {
        self.cfg.queue_batches = n;
        self
    }

    /// Sets the per-shard measurement configuration.
    #[must_use]
    pub fn per_worker(mut self, cfg: InstaMeasureConfig) -> Self {
        self.cfg.per_worker = cfg;
        self
    }

    /// Pins each shard worker to a CPU (default off; best effort).
    #[must_use]
    pub fn pin(mut self, pin: bool) -> Self {
        self.cfg.pin = pin;
        self
    }

    /// Sets the frame payload ceiling (default 1 MiB).
    #[must_use]
    pub fn max_frame_bytes(mut self, n: u32) -> Self {
        self.cfg.max_frame_bytes = n;
        self
    }

    /// Sets the idle read timeout (default 30 s).
    #[must_use]
    pub fn read_timeout(mut self, t: Duration) -> Self {
        self.cfg.read_timeout = t;
        self
    }

    /// Sets the connection-slot ceiling (default 64).
    #[must_use]
    pub fn max_connections(mut self, n: usize) -> Self {
        self.cfg.max_connections = n;
        self
    }

    /// Sets the shutdown drain grace period (default 5 s).
    #[must_use]
    pub fn drain_grace(mut self, t: Duration) -> Self {
        self.cfg.drain_grace = t;
        self
    }

    /// Enables streaming anomaly detection (default off).
    #[must_use]
    pub fn detect(mut self, detect: DetectionConfig) -> Self {
        self.cfg.detect = Some(detect);
        self
    }

    /// Attaches a pre-boot auto-tuning solve (default off). The caller
    /// remains responsible for booting the engine with the plan's
    /// geometry ([`instameasure_autotune::TunePlan::to_config`] →
    /// [`ServiceConfigBuilder::per_worker`]); this only arms the live
    /// side: `QueryPlan` service and epoch re-solves.
    #[must_use]
    pub fn auto_tune(mut self, state: TuneState) -> Self {
        self.cfg.tune = Some(state);
        self
    }

    /// Validates and returns the config.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceConfigError`] naming the rejected parameter.
    pub fn build(self) -> Result<ServiceConfig, ServiceConfigError> {
        let c = &self.cfg;
        if c.workers == 0 {
            return Err(ServiceConfigError::NoWorkers);
        }
        if c.batch_size == 0 || c.batch_size > MAX_BATCH_SIZE {
            return Err(ServiceConfigError::BatchSize { got: c.batch_size });
        }
        if c.queue_batches == 0 {
            return Err(ServiceConfigError::ZeroQueueBatches);
        }
        let min_frame = 4 + instameasure_packet::PacketRecord::WIRE_BYTES as u32;
        if c.max_frame_bytes < min_frame {
            return Err(ServiceConfigError::FrameTooSmall { got: c.max_frame_bytes });
        }
        if c.max_connections == 0 {
            return Err(ServiceConfigError::NoConnections);
        }
        if c.read_timeout.is_zero() {
            return Err(ServiceConfigError::ZeroReadTimeout);
        }
        if let Some(detect) = &c.detect {
            if detect.interval.is_some_and(|i| i.is_zero()) {
                return Err(ServiceConfigError::ZeroDetectInterval);
            }
        }
        Ok(self.cfg)
    }
}

impl ServiceConfig {
    /// Starts building a validated config from the defaults.
    #[must_use]
    pub fn builder() -> ServiceConfigBuilder {
        ServiceConfigBuilder::default()
    }
}

/// Shared per-server state each handler thread clones.
struct Shared {
    engine: Arc<Engine>,
    detection: Option<Arc<DetectionRuntime>>,
    tune: Option<Arc<TuneRuntime>>,
    registry: Arc<SharedRegistry>,
    stop: AtomicBool,
    active: AtomicUsize,
    final_report: Mutex<Option<StatusReport>>,
    cfg: ServiceConfig,
    conns_opened: Counter<AtomicCell>,
    conns_closed: Counter<AtomicCell>,
    frames_ingest: Counter<AtomicCell>,
    frames_query: Counter<AtomicCell>,
    bytes_rx: Counter<AtomicCell>,
    bytes_tx: Counter<AtomicCell>,
    rejects: Counter<AtomicCell>,
    timeouts: Counter<AtomicCell>,
    query_nanos: Histogram<AtomicCell>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    fn status(&self) -> StatusReport {
        StatusReport {
            packets_submitted: self.engine.packets_submitted(),
            packets_processed: self.engine.packets_processed(),
            ingest_frames: self.frames_ingest.get(),
            connections: self.conns_opened.get(),
            flows: self.engine.flows(),
            epoch: self.engine.epoch(),
            workers: self.engine.workers() as u32,
        }
    }

    fn count_reject(&self, class: &str) {
        self.rejects.inc();
        self.registry.counter(&format!("service.rejects.{class}")).inc();
    }
}

/// A running daemon. Dropping the handle does **not** stop the server;
/// call [`Server::join`] to wait for a protocol-initiated shutdown, or
/// [`Server::request_stop`] + [`Server::join`] to stop it locally.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_handle: Option<thread::JoinHandle<()>>,
    detect_handle: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listener, boots the engine and starts accepting.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the address cannot be bound.
    pub fn start(cfg: ServiceConfig) -> std::io::Result<Server> {
        let registry = Arc::new(SharedRegistry::new());
        let engine_cfg = EngineConfig {
            workers: cfg.workers,
            batch_size: cfg.batch_size,
            queue_batches: cfg.queue_batches,
            pin: cfg.pin,
            per_worker: cfg.per_worker,
        };
        let engine = Arc::new(Engine::start(&engine_cfg, Arc::clone(&registry)));
        let tune =
            cfg.tune.clone().map(|state| Arc::new(TuneRuntime::new(state, registry.as_ref())));
        let detection = cfg.detect.as_ref().map(|d| {
            let mut runtime =
                DetectionRuntime::new(Arc::clone(&engine), d.detectors, registry.as_ref());
            if let Some(tuner) = &tune {
                // Detection owns the epoch clock, so it also drives the
                // re-tuner: every closed epoch's observed flow sizes are
                // re-solved against the operator's target.
                runtime = runtime.with_tuner(Arc::clone(tuner));
            }
            Arc::new(runtime)
        });
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let shared = Arc::new(Shared {
            engine,
            detection,
            tune,
            conns_opened: registry.counter("service.connections.opened"),
            conns_closed: registry.counter("service.connections.closed"),
            frames_ingest: registry.counter("service.frames.ingest"),
            frames_query: registry.counter("service.frames.query"),
            bytes_rx: registry.counter("service.bytes.rx"),
            bytes_tx: registry.counter("service.bytes.tx"),
            rejects: registry.counter("service.rejects"),
            timeouts: registry.counter("service.timeouts"),
            query_nanos: registry.histogram("service.query_nanos"),
            registry,
            stop: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            final_report: Mutex::new(None),
            cfg,
        });

        let accept_shared = Arc::clone(&shared);
        let accept_handle = thread::Builder::new()
            .name("im-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawning the accept thread");

        // The epoch clock: with a configured interval, detection runs on
        // its own thread; otherwise epochs close on protocol rotates.
        let interval = shared.cfg.detect.as_ref().and_then(|d| d.interval);
        let detect_handle = match (interval, &shared.detection) {
            (Some(every), Some(runtime)) => {
                let runtime = Arc::clone(runtime);
                let stop_shared = Arc::clone(&shared);
                Some(
                    thread::Builder::new()
                        .name("im-detect".to_string())
                        .spawn(move || detect_loop(&runtime, &stop_shared, every))
                        .expect("spawning the detection thread"),
                )
            }
            _ => None,
        };

        Ok(Server { shared, addr, accept_handle: Some(accept_handle), detect_handle })
    }

    /// The address the listener actually bound (resolves `:0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine, for in-process queries (examples, embedded use).
    #[must_use]
    pub fn engine(&self) -> &Arc<Engine> {
        &self.shared.engine
    }

    /// The server's metric registry (`service.*`).
    #[must_use]
    pub fn registry(&self) -> &Arc<SharedRegistry> {
        &self.shared.registry
    }

    /// The streaming detection runtime, when the config enabled one.
    #[must_use]
    pub fn detection(&self) -> Option<&Arc<DetectionRuntime>> {
        self.shared.detection.as_ref()
    }

    /// The auto-tuning runtime, when the config armed one.
    #[must_use]
    pub fn tuner(&self) -> Option<&Arc<TuneRuntime>> {
        self.shared.tune.as_ref()
    }

    /// True once a shutdown (protocol or local) has been requested.
    #[must_use]
    pub fn is_stopping(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Requests a local shutdown (equivalent to receiving a
    /// [`Request::Shutdown`] frame, minus the reply).
    pub fn request_stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// Waits for shutdown to complete and returns the final packet-exact
    /// accounting. Blocks until a shutdown is requested via the protocol
    /// or [`Server::request_stop`].
    pub fn join(mut self) -> StatusReport {
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.detect_handle.take() {
            let _ = h.join();
        }
        // Wait for handler threads to finish (each is bounded by the
        // read timeout once stop is set).
        while self.shared.active.load(Ordering::SeqCst) > 0 {
            thread::sleep(Duration::from_millis(2));
        }
        self.shared.engine.drain();
        let mut report = lock(&self.shared.final_report);
        *report.get_or_insert_with(|| self.shared.status())
    }
}

/// The periodic epoch clock: closes and evaluates an epoch every
/// `every`, checking the stop flag at a finer grain so shutdown is not
/// delayed by a long interval.
fn detect_loop(runtime: &Arc<DetectionRuntime>, shared: &Arc<Shared>, every: Duration) {
    let tick = Duration::from_millis(2).min(every);
    let mut next = Instant::now() + every;
    while !shared.stop.load(Ordering::SeqCst) {
        let now = Instant::now();
        if now < next {
            thread::sleep(tick.min(next - now));
            continue;
        }
        let _ = runtime.run_epoch();
        next += every;
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Alert pushes and query acks are small frames written
                // back-to-back; Nagle + delayed ACK would park the
                // second one for ~40 ms, blowing the detection budget.
                let _ = stream.set_nodelay(true);
                if shared.active.load(Ordering::SeqCst) >= shared.cfg.max_connections {
                    shared.count_reject("busy");
                    refuse(stream, shared);
                    continue;
                }
                shared.active.fetch_add(1, Ordering::SeqCst);
                shared.conns_opened.inc();
                let conn_shared = Arc::clone(shared);
                let spawned = thread::Builder::new().name("im-conn".to_string()).spawn(move || {
                    handle_connection(stream, &conn_shared);
                    conn_shared.active.fetch_sub(1, Ordering::SeqCst);
                    conn_shared.conns_closed.inc();
                });
                if spawned.is_err() {
                    shared.active.fetch_sub(1, Ordering::SeqCst);
                    shared.count_reject("spawn");
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Best-effort error reply to a connection refused at the accept stage.
fn refuse(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nonblocking(false);
    let reply = Response::Error {
        class: "busy".to_string(),
        message: format!("connection limit {} reached", shared.cfg.max_connections),
    };
    let frame = reply.encode();
    let _ = write_frame(&mut stream, frame.opcode, &frame.payload);
}

/// Sends one response frame, counting its bytes. Returns false if the
/// peer is unreachable (the handler then closes). The stream mutex is
/// shared with the [`crate::detect::AlertHub`] once the connection
/// subscribes, so replies and alert pushes never interleave mid-frame.
fn send(writer: &Mutex<TcpStream>, shared: &Arc<Shared>, resp: &Response) -> bool {
    let frame = resp.encode();
    let mut stream = lock(writer);
    match write_frame(&mut *stream, frame.opcode, &frame.payload) {
        Ok(()) => {
            shared.bytes_tx.add(frame_wire_len(frame.payload.len()));
            stream.flush().is_ok()
        }
        Err(_) => false,
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    // Accepted sockets must not inherit the listener's non-blocking mode.
    if stream.set_nonblocking(false).is_err()
        || stream.set_read_timeout(Some(shared.cfg.read_timeout)).is_err()
    {
        shared.count_reject("io");
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        shared.count_reject("io");
        return;
    };
    let mut reader = BufReader::new(read_half);
    let writer = Arc::new(Mutex::new(stream));
    let mut lane: Option<IngestLane> = None;
    let mut sub_id: Option<u64> = None;

    loop {
        let frame = match read_frame(&mut reader, shared.cfg.max_frame_bytes) {
            Ok(None) => break, // clean disconnect at a frame boundary
            Ok(Some(frame)) => {
                shared.bytes_rx.add(frame_wire_len(frame.payload.len()));
                frame
            }
            Err(WireError::Io(e)) if is_timeout(&e) => {
                // An alert subscriber is *supposed* to sit quietly and
                // listen, so the idle cutoff does not apply to it; a
                // dead one is reaped by the hub when a broadcast write
                // fails. Other idle peers: if the server is draining
                // this is the normal way a quiet connection ends;
                // otherwise count and cut it.
                if sub_id.is_some() && !shared.stop.load(Ordering::SeqCst) {
                    continue;
                }
                if !shared.stop.load(Ordering::SeqCst) {
                    shared.timeouts.inc();
                }
                break;
            }
            Err(e) => {
                shared.count_reject(e.class());
                let _ = send(
                    &writer,
                    shared,
                    &Response::Error { class: e.class().to_string(), message: e.to_string() },
                );
                break;
            }
        };
        let request = match Request::decode(&frame) {
            Ok(r) => r,
            Err(e) => {
                shared.count_reject(e.class());
                let _ = send(
                    &writer,
                    shared,
                    &Response::Error { class: e.class().to_string(), message: e.to_string() },
                );
                break;
            }
        };
        if !dispatch(request, &writer, &mut lane, &mut sub_id, shared) {
            break;
        }
    }
    // A closed connection takes its subscription with it.
    if let (Some(id), Some(runtime)) = (sub_id, &shared.detection) {
        runtime.hub().unsubscribe(id);
    }
    // Lane drop flushes partial batches — no decoded record is lost.
}

/// Handles one request; returns false when the connection should close.
fn dispatch(
    request: Request,
    writer: &Arc<Mutex<TcpStream>>,
    lane: &mut Option<IngestLane>,
    sub_id: &mut Option<u64>,
    shared: &Arc<Shared>,
) -> bool {
    match request {
        Request::IngestBatch(records) => {
            shared.frames_ingest.inc();
            if shared.stop.load(Ordering::SeqCst) {
                shared.count_reject("draining");
                let _ = send(
                    writer,
                    shared,
                    &Response::Error {
                        class: "draining".to_string(),
                        message: "daemon is shutting down; ingest is closed".to_string(),
                    },
                );
                return false;
            }
            let open = match lane {
                Some(l) => l,
                None => match shared.engine.lane() {
                    Some(l) => lane.insert(l),
                    None => {
                        shared.count_reject("draining");
                        let _ = send(
                            writer,
                            shared,
                            &Response::Error {
                                class: "draining".to_string(),
                                message: "daemon is shutting down; ingest is closed".to_string(),
                            },
                        );
                        return false;
                    }
                },
            };
            match open.submit(&records) {
                Ok(()) => true,
                Err(e) => {
                    shared.count_reject("draining");
                    let _ = send(
                        writer,
                        shared,
                        &Response::Error { class: "draining".to_string(), message: e.to_string() },
                    );
                    false
                }
            }
        }
        Request::IngestFin => {
            shared.frames_ingest.inc();
            let accepted = match lane {
                Some(l) => match l.flush() {
                    Ok(()) => l.accepted(),
                    Err(e) => {
                        shared.count_reject("draining");
                        let _ = send(
                            writer,
                            shared,
                            &Response::Error {
                                class: "draining".to_string(),
                                message: e.to_string(),
                            },
                        );
                        return false;
                    }
                },
                None => 0,
            };
            send(writer, shared, &Response::FinAck { packets: accepted })
        }
        Request::QueryFlow(key) => {
            let (packets, bytes) = timed_query(shared, || shared.engine.estimate(&key));
            send(writer, shared, &Response::Flow { packets, bytes })
        }
        Request::QueryTopK(k) => {
            let flows = timed_query(shared, || shared.engine.top_k(k as usize));
            send(writer, shared, &Response::TopK(flows))
        }
        Request::QueryStatus => {
            let status = timed_query(shared, || shared.status());
            send(writer, shared, &Response::Status(status))
        }
        Request::QueryTelemetry => {
            let json = timed_query(shared, || shared.engine.full_telemetry().to_json());
            send(writer, shared, &Response::Telemetry(json))
        }
        Request::Rotate => {
            // With detection enabled the rotation routes through the
            // runtime, so the closed epoch is evaluated and alert frames
            // reach subscribers *before* this `Rotated` ack — the e2e
            // battery times onset→alert against exactly that ordering.
            let (epoch, flows_retired) = timed_query(shared, || match &shared.detection {
                Some(runtime) => {
                    let verdict = runtime.run_epoch();
                    (verdict.epoch, verdict.retired)
                }
                None => shared.engine.rotate(),
            });
            send(writer, shared, &Response::Rotated { epoch, flows_retired })
        }
        Request::QueryPlan => {
            let Some(tuner) = &shared.tune else {
                shared.count_reject("unsupported");
                let _ = send(
                    writer,
                    shared,
                    &Response::Error {
                        class: "unsupported".to_string(),
                        message: "auto-tuning is disabled; start the daemon with serve --auto-tune"
                            .to_string(),
                    },
                );
                return false;
            };
            let report = timed_query(shared, || tuner.report());
            send(writer, shared, &Response::Plan(report))
        }
        Request::Subscribe { kinds } => {
            let Some(runtime) = &shared.detection else {
                shared.count_reject("unsupported");
                let _ = send(
                    writer,
                    shared,
                    &Response::Error {
                        class: "unsupported".to_string(),
                        message: "detection is disabled; start the daemon with --detect"
                            .to_string(),
                    },
                );
                return false;
            };
            let kinds = if kinds == 0 { SUBSCRIBE_MASK_ALL } else { kinds };
            if let Some(old) = sub_id.take() {
                runtime.hub().unsubscribe(old);
            }
            *sub_id = Some(runtime.hub().subscribe(Arc::clone(writer), kinds));
            send(writer, shared, &Response::Subscribed { epoch: shared.engine.epoch(), kinds })
        }
        Request::Shutdown => {
            shared.stop.store(true, Ordering::SeqCst);
            // Wait (bounded) for the other connections to finish so the
            // drain below sees every lane closed.
            let deadline = Instant::now() + shared.cfg.drain_grace;
            while shared.active.load(Ordering::SeqCst) > 1 && Instant::now() < deadline {
                thread::sleep(Duration::from_millis(2));
            }
            shared.engine.drain();
            let status = shared.status();
            *lock(&shared.final_report) = Some(status);
            let _ = send(writer, shared, &Response::Status(status));
            false
        }
    }
}

fn timed_query<T>(shared: &Arc<Shared>, f: impl FnOnce() -> T) -> T {
    shared.frames_query.inc();
    let start = Instant::now();
    let out = f();
    shared.query_nanos.observe(start.elapsed().as_nanos() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_every_knob() {
        assert!(ServiceConfig::builder().build().is_ok());
        assert_eq!(
            ServiceConfig::builder().workers(0).build().unwrap_err(),
            ServiceConfigError::NoWorkers
        );
        assert_eq!(
            ServiceConfig::builder().batch_size(0).build().unwrap_err(),
            ServiceConfigError::BatchSize { got: 0 }
        );
        assert_eq!(
            ServiceConfig::builder().batch_size(MAX_BATCH_SIZE + 1).build().unwrap_err(),
            ServiceConfigError::BatchSize { got: MAX_BATCH_SIZE + 1 }
        );
        assert_eq!(
            ServiceConfig::builder().queue_batches(0).build().unwrap_err(),
            ServiceConfigError::ZeroQueueBatches
        );
        assert_eq!(
            ServiceConfig::builder().max_frame_bytes(8).build().unwrap_err(),
            ServiceConfigError::FrameTooSmall { got: 8 }
        );
        assert_eq!(
            ServiceConfig::builder().max_connections(0).build().unwrap_err(),
            ServiceConfigError::NoConnections
        );
        assert_eq!(
            ServiceConfig::builder().read_timeout(Duration::ZERO).build().unwrap_err(),
            ServiceConfigError::ZeroReadTimeout
        );
    }

    #[test]
    fn server_binds_ephemeral_port_and_stops_locally() {
        let cfg = ServiceConfig::builder()
            .workers(1)
            .per_worker(InstaMeasureConfig::default().small_for_tests())
            .read_timeout(Duration::from_millis(100))
            .build()
            .unwrap();
        let server = Server::start(cfg).unwrap();
        assert_ne!(server.local_addr().port(), 0);
        server.request_stop();
        let report = server.join();
        assert_eq!(report.packets_submitted, 0);
        assert_eq!(report.packets_processed, 0);
        assert_eq!(report.workers, 1);
    }
}
