//! Best-effort CPU pinning for shard worker threads (`serve --pin`).
//!
//! Thread-per-shard ownership pays off most when a shard's sketch state
//! stays resident in one core's cache hierarchy; letting the scheduler
//! migrate workers re-warms megabytes of regulator/WSAF arrays on every
//! move. Like the packet crate's mmap wrapper, this binds the one libc
//! symbol it needs directly (`sched_setaffinity`) instead of growing a
//! dependency, and degrades to a no-op off Linux (or under Miri, which
//! cannot service foreign calls).

#![allow(unsafe_code)]

/// Pins the *calling* thread to `cpu` (modulo the allowed range covered
/// by the mask). Returns whether the kernel accepted the mask; `false`
/// means the thread keeps floating, which is always safe.
#[cfg(all(target_os = "linux", not(miri)))]
pub fn pin_current_thread(cpu: usize) -> bool {
    extern "C" {
        // glibc wrapper: pid 0 = calling thread, mask is a bit set of
        // `cpusetsize` bytes.
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    // A full cpu_set_t is 1024 bits; 16 u64 words cover it.
    let mut mask = [0u64; 16];
    let cpu = cpu % (mask.len() * 64);
    mask[cpu / 64] = 1u64 << (cpu % 64);
    // SAFETY: the mask outlives the call and its length is passed
    // exactly; sched_setaffinity reads, never writes, the buffer.
    unsafe { sched_setaffinity(0, core::mem::size_of_val(&mask), mask.as_ptr()) == 0 }
}

/// No-op fallback: pinning is an optimization, not a correctness need.
#[cfg(not(all(target_os = "linux", not(miri))))]
pub fn pin_current_thread(_cpu: usize) -> bool {
    false
}

/// CPUs available to this process (≥ 1).
#[must_use]
pub fn available_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinning_reports_and_work_continues() {
        let accepted = pin_current_thread(0);
        #[cfg(all(target_os = "linux", not(miri)))]
        assert!(accepted, "pinning to CPU 0 must succeed on Linux");
        #[cfg(not(all(target_os = "linux", not(miri))))]
        assert!(!accepted);
        assert!(available_cpus() >= 1);
    }
}
