//! Client library for the live service: what remote taps and operator
//! tools link against (and what the `instameasure push`/`query` CLI
//! subcommands are built on).
//!
//! One [`ServiceClient`] wraps one TCP connection and may mix ingest and
//! queries, exactly as the protocol allows. Large traces are pushed with
//! [`ServiceClient::push_records`], which chunks into frames below the
//! server's payload ceiling and relies on TCP backpressure — a saturated
//! daemon slows the push instead of dropping it.

use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use instameasure_core::detect::Anomaly;
use instameasure_packet::{FlowKey, PacketRecord};

use crate::wire::{
    frame_wire_len, read_frame, write_frame, Frame, PlanReport, Request, Response, StatusReport,
    TopFlow, WireError, DEFAULT_MAX_PAYLOAD,
};

/// Records per ingest frame pushed by [`ServiceClient::push_records`]:
/// 8192 × 23 B ≈ 188 KiB payload, comfortably under the default 1 MiB
/// frame ceiling while still amortizing the frame header well.
pub const PUSH_CHUNK_RECORDS: usize = 8192;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// The wire protocol failed (transport or framing).
    Wire(WireError),
    /// The server replied with a classified error frame.
    Remote {
        /// The server's stable error class (see [`WireError::class`]
        /// plus `"draining"`, `"busy"`).
        class: String,
        /// Human-readable detail.
        message: String,
    },
    /// The server replied with the wrong message type for the request.
    UnexpectedReply {
        /// What the client was waiting for.
        expected: &'static str,
    },
    /// The server closed the connection instead of replying.
    Disconnected,
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire: {e}"),
            ClientError::Remote { class, message } => write!(f, "server [{class}]: {message}"),
            ClientError::UnexpectedReply { expected } => {
                write!(f, "unexpected reply (wanted {expected})")
            }
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Wire(WireError::Io(e))
    }
}

/// One connection to a running daemon.
pub struct ServiceClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Alert frames that arrived while waiting for a request's reply.
    /// A subscribed connection receives unsolicited
    /// [`Response::Alert`] frames at any time; request/reply methods
    /// park them here and [`ServiceClient::next_alert`] drains them in
    /// arrival order.
    pending_alerts: VecDeque<(u64, Anomaly)>,
}

impl ServiceClient {
    /// Connects with a 10 s read timeout.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Wire`] on connect failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Self::connect_with_timeout(addr, Duration::from_secs(10))
    }

    /// Connects with an explicit reply timeout.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Wire`] on connect failures.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        read_timeout: Duration,
    ) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        // Requests are small frames; without nodelay a rotate sent right
        // after a status poll can sit out a delayed-ACK timer (~40 ms).
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(read_timeout))?;
        let read_half = stream.try_clone()?;
        Ok(ServiceClient {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            pending_alerts: VecDeque::new(),
        })
    }

    fn send_frame(&mut self, frame: &Frame) -> Result<(), ClientError> {
        write_frame(&mut self.writer, frame.opcode, &frame.payload)?;
        Ok(())
    }

    fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.send_frame(&request.encode())?;
        self.writer.flush().map_err(WireError::Io)?;
        loop {
            match read_frame(&mut self.reader, DEFAULT_MAX_PAYLOAD)? {
                None => return Err(ClientError::Disconnected),
                Some(frame) => {
                    let resp = Response::decode(&frame)?;
                    match resp {
                        Response::Error { class, message } => {
                            return Err(ClientError::Remote { class, message });
                        }
                        // Unsolicited alert pushes may land ahead of the
                        // reply (the server writes them first at
                        // rotation); park them for `next_alert`.
                        Response::Alert { epoch, anomaly } => {
                            self.pending_alerts.push_back((epoch, anomaly));
                        }
                        other => return Ok(other),
                    }
                }
            }
        }
    }

    /// Streams one unacknowledged ingest batch (callers chunk; prefer
    /// [`ServiceClient::push_records`] for whole traces).
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Wire`] on transport failures.
    pub fn push_batch(&mut self, records: &[PacketRecord]) -> Result<(), ClientError> {
        self.send_frame(&Request::IngestBatch(records.to_vec()).encode())
    }

    /// Pushes a whole trace in [`PUSH_CHUNK_RECORDS`]-sized frames, then
    /// finishes the stream and returns the server's accepted-packet
    /// total — the packet-exact receipt.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] if the push or the fin-ack fails.
    pub fn push_records(&mut self, records: &[PacketRecord]) -> Result<u64, ClientError> {
        for chunk in records.chunks(PUSH_CHUNK_RECORDS) {
            self.push_batch(chunk)?;
        }
        self.finish()
    }

    /// Ends the ingest stream: the server flushes this connection's lane
    /// and acks with the packets it accepted.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on transport failure or an error reply.
    pub fn finish(&mut self) -> Result<u64, ClientError> {
        match self.roundtrip(&Request::IngestFin)? {
            Response::FinAck { packets } => Ok(packets),
            _ => Err(ClientError::UnexpectedReply { expected: "fin ack" }),
        }
    }

    /// Estimates one flow: `(packets, bytes)`, zero if never seen.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on transport failure or an error reply.
    pub fn query_flow(&mut self, key: &FlowKey) -> Result<(f64, f64), ClientError> {
        match self.roundtrip(&Request::QueryFlow(*key))? {
            Response::Flow { packets, bytes } => Ok((packets, bytes)),
            _ => Err(ClientError::UnexpectedReply { expected: "flow reply" }),
        }
    }

    /// The merged top-`k` flows by packets, descending.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on transport failure or an error reply.
    pub fn top_k(&mut self, k: u32) -> Result<Vec<TopFlow>, ClientError> {
        match self.roundtrip(&Request::QueryTopK(k))? {
            Response::TopK(flows) => Ok(flows),
            _ => Err(ClientError::UnexpectedReply { expected: "top-k reply" }),
        }
    }

    /// Live accounting summary.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on transport failure or an error reply.
    pub fn status(&mut self) -> Result<StatusReport, ClientError> {
        match self.roundtrip(&Request::QueryStatus)? {
            Response::Status(s) => Ok(s),
            _ => Err(ClientError::UnexpectedReply { expected: "status reply" }),
        }
    }

    /// Full telemetry snapshot as JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on transport failure or an error reply.
    pub fn telemetry_json(&mut self) -> Result<String, ClientError> {
        match self.roundtrip(&Request::QueryTelemetry)? {
            Response::Telemetry(json) => Ok(json),
            _ => Err(ClientError::UnexpectedReply { expected: "telemetry reply" }),
        }
    }

    /// The daemon's auto-tuned configuration plan (the latest
    /// recommendation, which starts as the boot plan and follows epoch
    /// re-solves of the observed traffic).
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Remote`] with class `"unsupported"` if
    /// the daemon was not started with `serve --auto-tune`, and
    /// [`ClientError`] on transport failures.
    pub fn query_plan(&mut self) -> Result<PlanReport, ClientError> {
        match self.roundtrip(&Request::QueryPlan)? {
            Response::Plan(report) => Ok(report),
            _ => Err(ClientError::UnexpectedReply { expected: "plan reply" }),
        }
    }

    /// Rotates the measurement epoch; returns `(new_epoch, flows_retired)`.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on transport failure or an error reply.
    pub fn rotate(&mut self) -> Result<(u64, u64), ClientError> {
        match self.roundtrip(&Request::Rotate)? {
            Response::Rotated { epoch, flows_retired } => Ok((epoch, flows_retired)),
            _ => Err(ClientError::UnexpectedReply { expected: "rotate reply" }),
        }
    }

    /// Subscribes this connection to streaming anomaly alerts for the
    /// kinds in `kinds` (a mask of
    /// [`instameasure_core::detect::AnomalyKind::bit`] values; `0`
    /// means all). Returns `(current_epoch, effective_mask)`; alerts
    /// then arrive via [`ServiceClient::next_alert`].
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Remote`] with class `"unsupported"` if the
    /// daemon runs without detection.
    pub fn subscribe(&mut self, kinds: u8) -> Result<(u64, u8), ClientError> {
        match self.roundtrip(&Request::Subscribe { kinds })? {
            Response::Subscribed { epoch, kinds } => Ok((epoch, kinds)),
            _ => Err(ClientError::UnexpectedReply { expected: "subscribe ack" }),
        }
    }

    /// The next alert, if one is buffered or arrives before the read
    /// timeout: `Ok(None)` means "no alert yet", not an error, so a
    /// `watch` loop can poll without tearing the connection down.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on transport failures other than the
    /// timeout, and [`ClientError::Disconnected`] when the server
    /// closes.
    pub fn next_alert(&mut self) -> Result<Option<(u64, Anomaly)>, ClientError> {
        if let Some(hit) = self.pending_alerts.pop_front() {
            return Ok(Some(hit));
        }
        match read_frame(&mut self.reader, DEFAULT_MAX_PAYLOAD) {
            Ok(None) => Err(ClientError::Disconnected),
            Ok(Some(frame)) => match Response::decode(&frame)? {
                Response::Alert { epoch, anomaly } => Ok(Some((epoch, anomaly))),
                Response::Error { class, message } => Err(ClientError::Remote { class, message }),
                _ => Err(ClientError::UnexpectedReply { expected: "alert push" }),
            },
            Err(WireError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                Ok(None)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Asks the daemon to drain and stop; returns the final packet-exact
    /// status once the drain completed.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on transport failure or an error reply.
    pub fn shutdown(&mut self) -> Result<StatusReport, ClientError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::Status(s) => Ok(s),
            _ => Err(ClientError::UnexpectedReply { expected: "shutdown status" }),
        }
    }

    /// Approximate bytes one pushed record costs on the wire, for
    /// capacity planning (`frame_wire_len` amortized over a full chunk).
    #[must_use]
    pub fn bytes_per_record() -> f64 {
        let payload = 4 + PUSH_CHUNK_RECORDS * PacketRecord::WIRE_BYTES;
        frame_wire_len(payload) as f64 / PUSH_CHUNK_RECORDS as f64
    }
}
