//! Live measurement service for the InstaMeasure pipeline.
//!
//! The paper's headline property is *online* operation: queries are
//! answered from the in-DRAM WSAF in milliseconds, not shipped to a
//! remote collector and answered next epoch. Everything before this
//! crate replayed finite pcap files; this crate is the long-running
//! network-facing daemon that the ROADMAP's "production-scale system"
//! needs:
//!
//! * [`wire`] — the length-prefixed binary protocol: framed
//!   [`instameasure_packet::PacketRecord`] batches from remote taps, and
//!   a query/control vocabulary (flow lookup, top-K, status, telemetry,
//!   epoch rotate, shutdown), every malformed input mapped to a
//!   classified [`wire::WireError`], never a panic.
//! * [`engine`] — the continuously running measurement core: popcount-
//!   sharded worker threads with exclusive-by-convention WSAF shards
//!   behind per-batch mutexes, recycled bounded-queue batches for
//!   allocation-free steady state, online queries that never stop
//!   ingest, and drain with packet-exact accounting.
//! * [`server`] — the TCP daemon: accept loop, per-connection handlers
//!   with idle timeouts and per-class reject telemetry, graceful
//!   drain-on-shutdown.
//! * [`client`] — what taps and operator tools link against; also the
//!   engine under the `instameasure push` / `instameasure query` CLI.
//!
//! # Example
//!
//! ```
//! use instameasure_service::client::ServiceClient;
//! use instameasure_service::server::{Server, ServiceConfig};
//! use instameasure_core::InstaMeasureConfig;
//! use instameasure_packet::{FlowKey, PacketRecord, Protocol};
//!
//! let cfg = ServiceConfig::builder()
//!     .workers(2)
//!     .per_worker(InstaMeasureConfig::default().small_for_tests())
//!     .build()?;
//! let server = Server::start(cfg)?;
//!
//! let mut tap = ServiceClient::connect(server.local_addr())?;
//! let key = FlowKey::new([10, 0, 0, 1], [10, 0, 0, 2], 4242, 80, Protocol::Tcp);
//! let trace: Vec<PacketRecord> =
//!     (0..5000).map(|t| PacketRecord::new(key, 1000, t)).collect();
//! let accepted = tap.push_records(&trace)?;
//! assert_eq!(accepted, 5000);
//!
//! let mut ops = ServiceClient::connect(server.local_addr())?;
//! let final_report = ops.shutdown()?;
//! assert_eq!(final_report.packets_processed, 5000);
//! server.join();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod engine;
#[doc(hidden)]
pub mod fuzzing;
pub mod server;
pub mod wire;

pub use client::{ClientError, ServiceClient};
pub use engine::{DrainReport, Engine, EngineConfig, IngestLane};
pub use server::{Server, ServiceConfig, ServiceConfigBuilder, ServiceConfigError};
pub use wire::{Request, Response, StatusReport, TopFlow, WireError};
