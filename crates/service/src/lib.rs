//! Live measurement service for the InstaMeasure pipeline.
//!
//! The paper's headline property is *online* operation: queries are
//! answered from the in-DRAM WSAF in milliseconds, not shipped to a
//! remote collector and answered next epoch. Everything before this
//! crate replayed finite pcap files; this crate is the long-running
//! network-facing daemon that the ROADMAP's "production-scale system"
//! needs:
//!
//! * [`wire`] — the length-prefixed binary protocol: framed
//!   [`instameasure_packet::PacketRecord`] batches from remote taps, and
//!   a query/control vocabulary (flow lookup, top-K, status, telemetry,
//!   epoch rotate, shutdown), every malformed input mapped to a
//!   classified [`wire::WireError`], never a panic.
//! * [`engine`] — the continuously running measurement core: popcount-
//!   sharded *thread-per-shard* workers that own their WSAF shard
//!   outright, fed through lock-free SPSC rings ([`ring`]) with recycled
//!   batch buffers for allocation-free steady state, online queries
//!   served from epoch-stamped snapshots ([`snapshot`]) that never stop
//!   ingest, and drain with packet-exact accounting.
//! * [`server`] — the TCP daemon: accept loop, per-connection handlers
//!   with idle timeouts and per-class reject telemetry, graceful
//!   drain-on-shutdown.
//! * [`client`] — what taps and operator tools link against; also the
//!   engine under the `instameasure push` / `instameasure query` CLI.
//! * [`detect`] — streaming anomaly detection at epoch rotation:
//!   per-shard epoch captures merged into
//!   [`instameasure_core::detect::EpochFeatures`], the detector suite
//!   run over consecutive epochs, and verdicts pushed as unsolicited
//!   [`wire::Response::Alert`] frames to subscribed connections, with
//!   the rotation→alert time measured in `detect.alert_latency`.
//! * [`tune`] — auto-tuning state for `serve --auto-tune` daemons: the
//!   machine-profiled boot plan served over
//!   [`wire::Request::QueryPlan`], re-solved at every epoch rotation
//!   against the flow sizes the closed epoch observed, with drift
//!   surfaced through `tune.*` telemetry.
//!
//! # Example
//!
//! ```
//! use instameasure_service::client::ServiceClient;
//! use instameasure_service::server::{Server, ServiceConfig};
//! use instameasure_core::InstaMeasureConfig;
//! use instameasure_packet::{FlowKey, PacketRecord, Protocol};
//!
//! let cfg = ServiceConfig::builder()
//!     .workers(2)
//!     .per_worker(InstaMeasureConfig::default().small_for_tests())
//!     .build()?;
//! let server = Server::start(cfg)?;
//!
//! let mut tap = ServiceClient::connect(server.local_addr())?;
//! let key = FlowKey::new([10, 0, 0, 1], [10, 0, 0, 2], 4242, 80, Protocol::Tcp);
//! let trace: Vec<PacketRecord> =
//!     (0..5000).map(|t| PacketRecord::new(key, 1000, t)).collect();
//! let accepted = tap.push_records(&trace)?;
//! assert_eq!(accepted, 5000);
//!
//! let mut ops = ServiceClient::connect(server.local_addr())?;
//! let final_report = ops.shutdown()?;
//! assert_eq!(final_report.packets_processed, 5000);
//! server.join();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// `deny` rather than `forbid`: the SPSC ring (slot cells behind atomics)
// and the affinity module (one raw sched_setaffinity binding) are the
// only `#[allow(unsafe_code)]`s.
#![deny(unsafe_code)]
#![warn(missing_docs)]

// Under `--cfg loom` only the concurrency kernels compile — the model
// checker replaces their atomics/cells with loom's types, which cannot
// coexist with the std-threaded daemon in the same build. Tier-1 builds
// never set the cfg and get the whole crate.
pub mod affinity;
#[cfg(not(loom))]
pub mod client;
#[cfg(not(loom))]
pub mod detect;
#[cfg(not(loom))]
pub mod engine;
#[cfg(not(loom))]
#[doc(hidden)]
pub mod fuzzing;
pub mod ring;
#[cfg(not(loom))]
pub mod server;
pub mod snapshot;
#[cfg(not(loom))]
pub mod tune;
#[cfg(not(loom))]
pub mod wire;

#[cfg(not(loom))]
pub use client::{ClientError, ServiceClient};
#[cfg(not(loom))]
pub use detect::{AlertHub, DetectionConfig, DetectionRuntime, EpochVerdict};
#[cfg(not(loom))]
pub use engine::{DrainReport, Engine, EngineConfig, IngestLane};
#[cfg(not(loom))]
pub use server::{Server, ServiceConfig, ServiceConfigBuilder, ServiceConfigError};
#[cfg(not(loom))]
pub use tune::{TuneRuntime, TuneState};
#[cfg(not(loom))]
pub use wire::{PlanReport, Request, Response, StatusReport, TopFlow, WireError};
