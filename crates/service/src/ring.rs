//! Bounded single-producer/single-consumer ring: the lock-free ingest
//! fabric between an [`crate::engine::IngestLane`] and the worker thread
//! that owns the shard.
//!
//! # Why not the crossbeam channel?
//!
//! The offline pipeline's bounded channels (and the shim standing in for
//! them) take a mutex per send/recv. That is fine for a finite replay but
//! puts every pusher and the shard worker through the same lock word on
//! the live path. An SPSC ring needs no lock at all: with exactly one
//! producer and one consumer, a power-of-two slot array plus two
//! monotonic indices is enough, and each side writes only its own index.
//!
//! # Memory ordering
//!
//! * Producer: load `head` (`Acquire`) to observe freed slots, write the
//!   slot, then publish with `tail.store(SeqCst)`. The release half of
//!   the store makes the slot write visible before the index moves.
//! * Consumer: load `tail` (`Acquire`) to observe published slots, read
//!   the slot, then free it with `head.store(Release)`.
//!
//! `tail` is published `SeqCst` (not merely `Release`) because the
//! close/drain handshake below needs a single total order between the
//! producer's index publication and the consumer's `closed` flag; on the
//! pure hot path the upgrade costs one locked instruction per *batch*,
//! which is noise next to the sketch work inside the batch.
//!
//! # Close/drain handshake (packet-exact shutdown)
//!
//! When the engine drains, the *consumer* closes the ring while the
//! producer may have a push in flight. The handshake keeps accounting
//! exact — every item is either processed by the consumer (and the
//! producer told `Ok`) or rejected (and the producer told `Closed`),
//! never both, never neither:
//!
//! 1. Consumer: `closed.store(true, SeqCst)`, then `final = tail.load
//!    (SeqCst)`, publish `final` and never pop past it.
//! 2. Producer: check `closed` before the slot write (if set, reject and
//!    hand the item back) and again after the `tail` publication. If the
//!    late check is clear, the store is ordered before the consumer's
//!    `final` read in the SeqCst total order, so the item *will* drain:
//!    report `Ok`. If the late check observes `closed`, wait for `final`
//!    and compare: the item is at index `final` or later ⇒ orphaned
//!    (dropped with the ring, reported `Closed`), earlier ⇒ drained
//!    (reported `Ok`).
//!
//! With one producer, at most one push can race the close, and the wait
//! in step 2 is bounded by the consumer's two stores.
//!
//! Compiled under `--cfg loom`, every atomic and cell access goes through
//! the loom types so the model checker (`tests/loom_model.rs`) can
//! interleave them.

#![allow(unsafe_code)]

use core::mem::MaybeUninit;

#[cfg(not(loom))]
use core::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
#[cfg(not(loom))]
use std::sync::Arc;

#[cfg(loom)]
use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
#[cfg(loom)]
use loom::sync::Arc;

/// Closure-based `UnsafeCell` facade matching loom's API, so the slot
/// access code is identical under both compilations.
#[cfg(not(loom))]
#[derive(Debug)]
struct SlotCell<T>(core::cell::UnsafeCell<T>);

#[cfg(not(loom))]
impl<T> SlotCell<T> {
    fn new(v: T) -> Self {
        Self(core::cell::UnsafeCell::new(v))
    }
    fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        f(self.0.get())
    }
}

#[cfg(loom)]
#[derive(Debug)]
struct SlotCell<T>(loom::cell::UnsafeCell<T>);

#[cfg(loom)]
impl<T> SlotCell<T> {
    fn new(v: T) -> Self {
        Self(loom::cell::UnsafeCell::new(v))
    }
    fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        self.0.with_mut(f)
    }
}

/// Index variables for the two sides live on separate cache lines so the
/// producer's `tail` stores never invalidate the consumer's `head` line.
#[derive(Debug, Default)]
#[repr(align(64))]
struct CachePadded<T>(T);

#[derive(Debug)]
struct Inner<T> {
    mask: usize,
    slots: Box<[SlotCell<MaybeUninit<T>>]>,
    /// Next index the consumer will pop (consumer-owned).
    head: CachePadded<AtomicUsize>,
    /// Next index the producer will fill (producer-owned).
    tail: CachePadded<AtomicUsize>,
    /// Producer dropped: no further items will arrive.
    producer_closed: AtomicBool,
    /// Consumer closed the ring (drain); see the handshake in module docs.
    consumer_closed: AtomicBool,
    /// `tail` as observed by the consumer at close time; the consumer
    /// never pops at or past this index.
    final_tail: AtomicUsize,
    /// `final_tail` is published (0 = pending, 1 = set).
    final_set: AtomicBool,
}

// SAFETY: the ring hands each item from exactly one thread to exactly one
// other thread; `T: Send` is all that transfer needs. The `&Inner` shared
// between the two sides only touches slots according to the head/tail
// protocol above.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Both sides are gone; drop whatever is still in flight,
        // including an orphaned close-race item past `final_tail`.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        let mut i = head;
        while i != tail {
            self.slots[i & self.mask].with_mut(|p| unsafe { (*p).assume_init_drop() });
            i = i.wrapping_add(1);
        }
    }
}

/// Why a [`RingProducer::push`] did not enqueue.
#[derive(Debug)]
pub enum PushError<T> {
    /// The ring is full; the item is handed back for a retry.
    Full(T),
    /// The consumer closed the ring. `Some` hands the item back (it never
    /// entered the ring); `None` means the item landed in a slot the
    /// consumer will not pop — it is dropped with the ring, and was *not*
    /// processed. Either way the push must not be counted as submitted.
    Closed(Option<T>),
}

/// The producing half: owned by one [`crate::engine::IngestLane`].
#[derive(Debug)]
pub struct RingProducer<T> {
    inner: Arc<Inner<T>>,
    /// Local copy of `tail` (only this side ever writes it).
    tail: usize,
    /// Local lower bound on `head`, refreshed only when full.
    head_cache: usize,
}

/// The consuming half: owned by the shard worker thread.
#[derive(Debug)]
pub struct RingConsumer<T> {
    inner: Arc<Inner<T>>,
    /// Local copy of `head` (only this side ever writes it).
    head: usize,
    /// After [`RingConsumer::close`]: pop no further than this index.
    bound: Option<usize>,
}

/// Creates a ring holding at least `capacity` items (rounded up to a
/// power of two, minimum 2).
#[must_use]
pub fn ring<T>(capacity: usize) -> (RingProducer<T>, RingConsumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let slots: Box<[SlotCell<MaybeUninit<T>>]> =
        (0..cap).map(|_| SlotCell::new(MaybeUninit::uninit())).collect();
    let inner = Arc::new(Inner {
        mask: cap - 1,
        slots,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        producer_closed: AtomicBool::new(false),
        consumer_closed: AtomicBool::new(false),
        final_tail: AtomicUsize::new(0),
        final_set: AtomicBool::new(false),
    });
    (
        RingProducer { inner: Arc::clone(&inner), tail: 0, head_cache: 0 },
        RingConsumer { inner, head: 0, bound: None },
    )
}

impl<T> RingProducer<T> {
    /// Attempts to enqueue `item` without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when no slot is free, [`PushError::Closed`]
    /// when the consumer closed the ring (see the drain handshake in the
    /// module docs for which side keeps the item).
    pub fn push(&mut self, item: T) -> Result<(), PushError<T>> {
        let inner = &*self.inner;
        if inner.consumer_closed.load(Ordering::SeqCst) {
            return Err(PushError::Closed(Some(item)));
        }
        let cap = inner.mask + 1;
        if self.tail.wrapping_sub(self.head_cache) == cap {
            self.head_cache = inner.head.0.load(Ordering::Acquire);
            if self.tail.wrapping_sub(self.head_cache) == cap {
                return Err(PushError::Full(item));
            }
        }
        inner.slots[self.tail & inner.mask].with_mut(|p| unsafe { (*p).write(item) });
        let published = self.tail;
        self.tail = self.tail.wrapping_add(1);
        inner.tail.0.store(self.tail, Ordering::SeqCst);
        if inner.consumer_closed.load(Ordering::SeqCst) {
            // Close raced this push: resolve via the consumer's final
            // bound (published right after the flag; bounded wait).
            while !inner.final_set.load(Ordering::Acquire) {
                spin_hint();
            }
            // Only this push can be in flight, so the consumer's bound is
            // either at our slot (orphaned) or one past it (drained).
            let fin = inner.final_tail.load(Ordering::Acquire);
            if fin.wrapping_sub(published) != 0 {
                return Ok(());
            }
            return Err(PushError::Closed(None));
        }
        Ok(())
    }

    /// Items currently enqueued (occupancy telemetry; racy by nature).
    #[must_use]
    pub fn len(&self) -> usize {
        self.tail.wrapping_sub(self.inner.head.0.load(Ordering::Relaxed))
    }

    /// Whether the ring is currently empty (racy by nature).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Slot capacity of the ring.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }
}

impl<T> Drop for RingProducer<T> {
    fn drop(&mut self) {
        self.inner.producer_closed.store(true, Ordering::SeqCst);
    }
}

impl<T> RingConsumer<T> {
    /// Dequeues the next item, or `None` when the ring is empty (or the
    /// close bound was reached).
    pub fn pop(&mut self) -> Option<T> {
        let inner = &*self.inner;
        if let Some(bound) = self.bound {
            if self.head == bound {
                return None;
            }
        }
        let tail = inner.tail.0.load(Ordering::Acquire);
        if self.head == tail {
            return None;
        }
        let item =
            inner.slots[self.head & inner.mask].with_mut(|p| unsafe { (*p).assume_init_read() });
        self.head = self.head.wrapping_add(1);
        inner.head.0.store(self.head, Ordering::Release);
        Some(item)
    }

    /// Whether the producing side was dropped (no more items will come).
    #[must_use]
    pub fn producer_closed(&self) -> bool {
        self.inner.producer_closed.load(Ordering::Acquire)
    }

    /// Whether every item this consumer will ever pop has been popped:
    /// up to the close bound after [`RingConsumer::close`] (an orphaned
    /// close-race push past the bound does not count), otherwise
    /// everything published so far (exact on the consumer thread once
    /// `producer_closed` is observed).
    #[must_use]
    pub fn is_drained(&self) -> bool {
        match self.bound {
            Some(bound) => self.head == bound,
            None => self.head == self.inner.tail.0.load(Ordering::Acquire),
        }
    }

    /// Closes the ring for the drain handshake: rejects future pushes and
    /// fixes the final index this consumer will pop up to. Idempotent.
    /// Call, then keep popping until `None` — that final sweep is what
    /// makes shutdown packet-exact.
    pub fn close(&mut self) {
        if self.bound.is_some() {
            return;
        }
        let inner = &*self.inner;
        inner.consumer_closed.store(true, Ordering::SeqCst);
        let fin = inner.tail.0.load(Ordering::SeqCst);
        inner.final_tail.store(fin, Ordering::Release);
        inner.final_set.store(true, Ordering::SeqCst);
        self.bound = Some(fin);
    }
}

impl<T> Drop for RingConsumer<T> {
    fn drop(&mut self) {
        // A consumer dropped without `close` (worker unwind) must still
        // unblock a producer waiting in the late-push handshake.
        self.close();
    }
}

fn spin_hint() {
    #[cfg(loom)]
    loom::hint::spin_loop();
    #[cfg(not(loom))]
    std::hint::spin_loop();
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_and_capacity() {
        let (mut tx, mut rx) = ring::<u32>(3); // rounds up to 4
        assert_eq!(tx.capacity(), 4);
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert!(matches!(tx.push(99), Err(PushError::Full(99))));
        for i in 0..4 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
        // Freed slots are reusable.
        tx.push(7).unwrap();
        assert_eq!(rx.pop(), Some(7));
    }

    #[test]
    fn producer_drop_is_visible() {
        let (tx, rx) = ring::<u8>(2);
        assert!(!rx.producer_closed());
        drop(tx);
        assert!(rx.producer_closed());
        assert!(rx.is_drained());
    }

    #[test]
    fn close_rejects_pushes_and_bounds_pops() {
        let (mut tx, mut rx) = ring::<u8>(4);
        tx.push(1).unwrap();
        rx.close();
        match tx.push(2) {
            Err(PushError::Closed(Some(2))) => {}
            other => panic!("expected early-closed rejection, got {other:?}"),
        }
        // The pre-close item is inside the bound and must drain.
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn close_then_sweep_reports_drained() {
        let (mut tx, mut rx) = ring::<u8>(4);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        rx.close();
        assert!(!rx.is_drained());
        while rx.pop().is_some() {}
        assert!(rx.is_drained(), "after the close sweep the bound is reached");
    }

    #[test]
    fn drops_in_flight_items_without_leaking() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut tx, rx) = ring::<D>(4);
        tx.push(D).unwrap();
        tx.push(D).unwrap();
        drop(rx);
        drop(tx);
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn threaded_transfer_is_lossless() {
        const N: u64 = 200_000;
        let (mut tx, mut rx) = ring::<u64>(64);
        let consumer = thread::spawn(move || {
            let mut sum = 0u64;
            let mut seen = 0u64;
            let mut expect = 0u64;
            while seen < N {
                if let Some(v) = rx.pop() {
                    assert_eq!(v, expect, "FIFO order violated");
                    expect += 1;
                    sum += v;
                    seen += 1;
                } else {
                    thread::yield_now();
                }
            }
            sum
        });
        for i in 0..N {
            let mut item = i;
            loop {
                match tx.push(item) {
                    Ok(()) => break,
                    Err(PushError::Full(back)) => {
                        item = back;
                        thread::yield_now();
                    }
                    Err(e) => panic!("unexpected close: {e:?}"),
                }
            }
        }
        assert_eq!(consumer.join().unwrap(), N * (N - 1) / 2);
    }

    #[test]
    fn close_race_accounts_every_item_exactly_once() {
        // Hammer the drain handshake: however close races the pushes,
        // (items the producer counted Ok) == (items the consumer popped).
        for round in 0..200 {
            let (mut tx, mut rx) = ring::<u64>(4);
            let consumer = thread::spawn(move || {
                let mut popped = 0u64;
                // Drain a random-ish prefix, then close mid-stream.
                for _ in 0..(round % 5) {
                    if rx.pop().is_some() {
                        popped += 1;
                    }
                }
                rx.close();
                while rx.pop().is_some() {
                    popped += 1;
                }
                popped
            });
            let mut ok = 0u64;
            for i in 0..64u64 {
                let mut item = i;
                match loop {
                    match tx.push(item) {
                        Ok(()) => break Ok(()),
                        Err(PushError::Full(back)) => {
                            item = back;
                            thread::yield_now();
                        }
                        Err(e) => break Err(e),
                    }
                } {
                    Ok(()) => ok += 1,
                    Err(_) => break,
                }
            }
            let popped = consumer.join().unwrap();
            assert_eq!(ok, popped, "round {round}: producer Ok count must equal consumer pops");
        }
    }
}
