//! Epoch-stamped shard snapshots: how queries read a shard that is owned
//! by exactly one worker thread.
//!
//! The worker never shares its live [`instameasure_core::InstaMeasure`];
//! instead it *publishes* — at batch boundaries, on demand — an immutable
//! view behind a seqlock-style version stamp:
//!
//! 1. worker bumps the stamp to **odd** (publication in progress),
//! 2. worker swaps the view slot,
//! 3. worker bumps the stamp to the next **even** value, which is also
//!    recorded inside the view itself.
//!
//! Readers load the stamp, read the slot, and re-load the stamp: an odd
//! stamp, a changed stamp, or a view whose embedded stamp disagrees means
//! the read raced a publication — retry (counted, so the torn-read test
//! can prove validation actually fires). The classic seqlock lets readers
//! race the writer over the *raw data* and relies on the re-check to
//! discard torn reads; that is sound for plain-old-data but not for heap
//! structures in Rust (a reader could dereference memory the writer
//! already freed *before* reaching the re-check). Here the slot holds an
//! `Arc`, so memory safety never depends on the stamp — the stamp exists
//! to pair the slot with publication epochs, to detect mixed-epoch reads,
//! and to keep the retry discipline observable. The slot swap itself sits
//! behind a reader/writer lock that only publication (a per-publish, not
//! per-batch, event) takes for writing; the ingest hot path never touches
//! it.
//!
//! Ordering argument: the writer's final `store(even, Release)` happens
//! after the slot swap; a reader that observes that even value with
//! `Acquire` therefore observes the swapped slot, and equality of the
//! before/after loads plus the embedded stamp proves the slot belonged to
//! that publication interval.

#[cfg(not(loom))]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(loom))]
use std::sync::{Arc, RwLock};

#[cfg(loom)]
use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(loom)]
use loom::sync::{Arc, RwLock};

/// A published value plus the (even) stamp of its publication.
#[derive(Debug)]
pub struct Stamped<T> {
    /// Seqlock stamp at publication: even, strictly increasing.
    pub stamp: u64,
    /// The published view.
    pub value: T,
}

/// One shard's publication slot (see module docs).
#[derive(Debug)]
pub struct SnapshotSlot<T> {
    stamp: AtomicU64,
    slot: RwLock<Arc<Stamped<T>>>,
    /// Test hook: nanoseconds to dawdle inside the odd window, so the
    /// torn-read regression test can force readers into the retry path.
    publish_stall: AtomicU64,
}

impl<T> SnapshotSlot<T> {
    /// Creates the slot holding `initial` at stamp 0.
    #[must_use]
    pub fn new(initial: T) -> Self {
        SnapshotSlot {
            stamp: AtomicU64::new(0),
            slot: RwLock::new(Arc::new(Stamped { stamp: 0, value: initial })),
            publish_stall: AtomicU64::new(0),
        }
    }

    /// Publishes a new view. Single writer only: the owning worker, or
    /// the engine once the worker has exited (serialized by the drain
    /// lock) — never both.
    pub fn publish(&self, value: T) {
        let s0 = self.stamp.load(Ordering::Relaxed);
        self.stamp.store(s0 + 1, Ordering::Release);
        self.stall();
        let next = Arc::new(Stamped { stamp: s0 + 2, value });
        *self.slot.write().unwrap_or_else(std::sync::PoisonError::into_inner) = next;
        self.stall();
        self.stamp.store(s0 + 2, Ordering::Release);
    }

    /// Reads a validated view, returning it plus the number of retries
    /// the seqlock validation forced (0 on a quiet slot).
    pub fn read(&self) -> (Arc<Stamped<T>>, u64) {
        let mut retries = 0u64;
        loop {
            let s1 = self.stamp.load(Ordering::Acquire);
            if s1 & 1 == 0 {
                let view = Arc::clone(
                    &self.slot.read().unwrap_or_else(std::sync::PoisonError::into_inner),
                );
                let s2 = self.stamp.load(Ordering::Acquire);
                if s1 == s2 && view.stamp == s1 {
                    return (view, retries);
                }
            }
            retries += 1;
            spin_hint();
        }
    }

    /// Stamp as of now (odd while a publication is in flight).
    #[must_use]
    pub fn stamp(&self) -> u64 {
        self.stamp.load(Ordering::Acquire)
    }

    /// Arms the slow-publication test hook (nanoseconds per odd-window
    /// pause); 0 disarms.
    pub fn set_publish_stall(&self, nanos: u64) {
        self.publish_stall.store(nanos, Ordering::Relaxed);
    }

    fn stall(&self) {
        let nanos = self.publish_stall.load(Ordering::Relaxed);
        if nanos > 0 {
            #[cfg(not(loom))]
            std::thread::sleep(std::time::Duration::from_nanos(nanos));
            #[cfg(loom)]
            loom::thread::yield_now();
        }
    }
}

fn spin_hint() {
    #[cfg(loom)]
    loom::hint::spin_loop();
    #[cfg(not(loom))]
    std::thread::yield_now();
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    #[test]
    fn read_returns_latest_publication() {
        let slot = SnapshotSlot::new(0u64);
        let (v, retries) = slot.read();
        assert_eq!((v.stamp, v.value, retries), (0, 0, 0));
        slot.publish(7);
        slot.publish(9);
        let (v, _) = slot.read();
        assert_eq!((v.stamp, v.value), (4, 9));
    }

    #[test]
    fn readers_never_observe_odd_or_mixed_stamps() {
        let slot = std::sync::Arc::new(SnapshotSlot::new((0u64, 0u64)));
        slot.set_publish_stall(50_000); // 50µs odd window
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..2 {
            let slot = std::sync::Arc::clone(&slot);
            let stop = std::sync::Arc::clone(&stop);
            readers.push(thread::spawn(move || {
                let mut retries = 0u64;
                let mut last_stamp = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let (v, r) = slot.read();
                    retries += r;
                    assert_eq!(v.stamp & 1, 0, "validated read returned an odd stamp");
                    assert!(v.stamp >= last_stamp, "stamps went backwards");
                    // The two halves are written together; a mixed-epoch
                    // view would expose disagreeing halves.
                    assert_eq!(v.value.0, v.value.1, "mixed-epoch view observed");
                    last_stamp = v.stamp;
                }
                retries
            }));
        }
        for i in 1..=50u64 {
            slot.publish((i, i));
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let total: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
        // With a 50µs odd window and continuous readers, some reads must
        // have hit the window and retried.
        assert!(total > 0, "slow publications never forced a retry");
    }
}
