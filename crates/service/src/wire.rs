//! The length-prefixed binary wire protocol of the live service.
//!
//! Every message on the socket — ingest and query alike, in both
//! directions — is one *frame*:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "IMSW" (0x49 0x4D 0x53 0x57)
//! 4       1     opcode (see [`Opcode`])
//! 5       4     payload length, big-endian u32
//! 9       len   payload
//! ```
//!
//! The decoder is written for untrusted peers: a frame with a bad magic,
//! an unknown opcode, an oversized length prefix or a payload that does
//! not parse yields a classified [`WireError`] — never a panic and never
//! an unbounded allocation (the payload buffer is only reserved after the
//! length passed the `max_payload` check). Connections that stop mid-frame
//! are reported as truncation, distinguished from a clean end-of-stream at
//! a frame boundary ([`read_frame`] returns `Ok(None)`).
//!
//! Request opcodes occupy `0x01..=0x7F`; each response reuses its
//! request's opcode with the high bit set, so a reply can be matched
//! without a correlation id (the protocol is strictly request/response
//! per connection, except ingest batches which are unacknowledged until
//! [`Request::IngestFin`], and [`Opcode::Alert`] frames, which the
//! server pushes unsolicited to connections that sent
//! [`Request::Subscribe`]).

use std::io::{Read, Write};

use instameasure_core::detect::{Anomaly, AnomalyKind, Subject};
use instameasure_packet::{FlowKey, PacketRecord};

/// Frame magic: `"IMSW"` — **I**nsta**M**easure **S**ervice **W**ire.
pub const MAGIC: [u8; 4] = *b"IMSW";

/// Bytes in a frame header (magic + opcode + payload length).
pub const HEADER_BYTES: usize = 9;

/// Default ceiling on a frame payload (1 MiB ≈ 45 k packet records);
/// larger length prefixes are rejected before any allocation.
pub const DEFAULT_MAX_PAYLOAD: u32 = 1 << 20;

/// Largest `k` a [`Request::QueryTopK`] may ask for — bounds the reply
/// frame and the per-shard merge work a single query can demand.
pub const MAX_TOP_K: u32 = 65_536;

/// Frame opcodes. Requests are `0x01..=0x7F`; responses set the high bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// A batch of [`PacketRecord`]s from a tap (unacknowledged).
    IngestBatch = 0x01,
    /// End of an ingest stream; the server acks with [`Opcode::FinAck`].
    IngestFin = 0x02,
    /// Per-flow lookup by 5-tuple.
    QueryFlow = 0x10,
    /// Merged top-K heavy hitters by packets.
    QueryTopK = 0x11,
    /// Live accounting summary.
    QueryStatus = 0x12,
    /// Full telemetry snapshot as JSON.
    QueryTelemetry = 0x13,
    /// The auto-tune plan the daemon is running (if it booted with one).
    QueryPlan = 0x14,
    /// Rotate the measurement epoch (reset shards, bump epoch counter).
    Rotate = 0x20,
    /// Drain and stop the daemon.
    Shutdown = 0x21,
    /// Register this connection for streaming anomaly alerts.
    Subscribe = 0x30,
    /// Ack of [`Opcode::IngestFin`], carrying the accepted-packet total.
    FinAck = 0x82,
    /// Reply to [`Opcode::QueryFlow`].
    FlowReply = 0x90,
    /// Reply to [`Opcode::QueryTopK`].
    TopKReply = 0x91,
    /// Reply to [`Opcode::QueryStatus`] and [`Opcode::Shutdown`].
    StatusReply = 0x92,
    /// Reply to [`Opcode::QueryTelemetry`].
    TelemetryReply = 0x93,
    /// Reply to [`Opcode::QueryPlan`].
    PlanReply = 0x94,
    /// Reply to [`Opcode::Rotate`].
    RotateReply = 0xA0,
    /// Ack of [`Opcode::Subscribe`], echoing the accepted kind mask.
    SubscribeAck = 0xB0,
    /// Server-push anomaly alert to a subscribed connection.
    Alert = 0xB1,
    /// Classified failure reply (any request may receive one).
    Error = 0xFF,
}

impl Opcode {
    /// Decodes a wire byte, rejecting anything outside the table.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnknownOpcode`] for unassigned bytes.
    pub fn from_u8(b: u8) -> Result<Self, WireError> {
        Ok(match b {
            0x01 => Opcode::IngestBatch,
            0x02 => Opcode::IngestFin,
            0x10 => Opcode::QueryFlow,
            0x11 => Opcode::QueryTopK,
            0x12 => Opcode::QueryStatus,
            0x13 => Opcode::QueryTelemetry,
            0x14 => Opcode::QueryPlan,
            0x20 => Opcode::Rotate,
            0x21 => Opcode::Shutdown,
            0x30 => Opcode::Subscribe,
            0x82 => Opcode::FinAck,
            0x90 => Opcode::FlowReply,
            0x91 => Opcode::TopKReply,
            0x92 => Opcode::StatusReply,
            0x93 => Opcode::TelemetryReply,
            0x94 => Opcode::PlanReply,
            0xA0 => Opcode::RotateReply,
            0xB0 => Opcode::SubscribeAck,
            0xB1 => Opcode::Alert,
            0xFF => Opcode::Error,
            other => return Err(WireError::UnknownOpcode(other)),
        })
    }
}

/// Classified protocol failures. Every malformed input from an untrusted
/// peer lands in exactly one variant; [`WireError::class`] gives the
/// stable label the server's `service.rejects.*` telemetry counts.
#[derive(Debug)]
pub enum WireError {
    /// The first four bytes of a frame were not [`MAGIC`].
    BadMagic {
        /// The bytes actually received.
        got: [u8; 4],
    },
    /// The opcode byte is not assigned.
    UnknownOpcode(u8),
    /// The length prefix exceeds the negotiated maximum.
    Oversized {
        /// Length the peer declared.
        len: u32,
        /// Ceiling the frame was checked against.
        max: u32,
    },
    /// The stream ended inside a frame header.
    TruncatedHeader {
        /// Header bytes received before EOF (1..[`HEADER_BYTES`]).
        got: usize,
    },
    /// The stream ended inside a frame payload.
    TruncatedPayload {
        /// Payload length the header declared.
        expected: u32,
        /// Payload bytes received before EOF.
        got: usize,
    },
    /// The payload did not parse as its opcode's message.
    BadPayload {
        /// What was being decoded when the payload was rejected.
        what: &'static str,
    },
    /// Transport-level failure (includes read timeouts).
    Io(std::io::Error),
}

impl WireError {
    /// Stable one-word classification, used as the telemetry label under
    /// `service.rejects.<class>` and as the error class byte on the wire.
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            WireError::BadMagic { .. } => "bad_magic",
            WireError::UnknownOpcode(_) => "unknown_opcode",
            WireError::Oversized { .. } => "oversized",
            WireError::TruncatedHeader { .. } | WireError::TruncatedPayload { .. } => "truncated",
            WireError::BadPayload { .. } => "bad_payload",
            WireError::Io(_) => "io",
        }
    }
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::BadMagic { got } => write!(f, "bad frame magic {got:02x?}"),
            WireError::UnknownOpcode(b) => write!(f, "unknown opcode {b:#04x}"),
            WireError::Oversized { len, max } => {
                write!(f, "length prefix {len} exceeds max payload {max}")
            }
            WireError::TruncatedHeader { got } => {
                write!(f, "stream ended inside a frame header ({got}/{HEADER_BYTES} bytes)")
            }
            WireError::TruncatedPayload { expected, got } => {
                write!(f, "stream ended inside a frame payload ({got}/{expected} bytes)")
            }
            WireError::BadPayload { what } => write!(f, "malformed payload: {what}"),
            WireError::Io(e) => write!(f, "transport: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// One decoded frame: opcode plus raw payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the payload means.
    pub opcode: Opcode,
    /// Raw payload bytes (interpretation is per-opcode).
    pub payload: Vec<u8>,
}

/// Writes one frame. The caller is responsible for flushing buffered
/// writers before expecting a reply.
///
/// # Errors
///
/// Propagates transport errors from the writer.
pub fn write_frame(w: &mut impl Write, opcode: Opcode, payload: &[u8]) -> std::io::Result<()> {
    debug_assert!(payload.len() <= u32::MAX as usize);
    let mut header = [0u8; HEADER_BYTES];
    header[0..4].copy_from_slice(&MAGIC);
    header[4] = opcode as u8;
    header[5..9].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    w.write_all(&header)?;
    w.write_all(payload)
}

/// Reads bytes until `buf` is full; returns how many were read if the
/// stream ended early (a clean `Ok(0)` before the first byte is `Ok(0)`).
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream at a frame
/// boundary; ending anywhere else is a classified truncation error.
///
/// # Errors
///
/// Returns the [`WireError`] classifying what was wrong with the bytes
/// (or the transport).
pub fn read_frame(r: &mut impl Read, max_payload: u32) -> Result<Option<Frame>, WireError> {
    let mut header = [0u8; HEADER_BYTES];
    match read_full(r, &mut header)? {
        0 => return Ok(None),
        n if n < HEADER_BYTES => return Err(WireError::TruncatedHeader { got: n }),
        _ => {}
    }
    if header[0..4] != MAGIC {
        let mut got = [0u8; 4];
        got.copy_from_slice(&header[0..4]);
        return Err(WireError::BadMagic { got });
    }
    let opcode = Opcode::from_u8(header[4])?;
    let len = u32::from_be_bytes(header[5..9].try_into().expect("4-byte slice"));
    if len > max_payload {
        return Err(WireError::Oversized { len, max: max_payload });
    }
    let mut payload = vec![0u8; len as usize];
    let got = read_full(r, &mut payload)?;
    if got < len as usize {
        return Err(WireError::TruncatedPayload { expected: len, got });
    }
    Ok(Some(Frame { opcode, payload }))
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A batch of packet records to ingest.
    IngestBatch(Vec<PacketRecord>),
    /// End of this connection's ingest stream; request the packet total.
    IngestFin,
    /// Estimate one flow's packets and bytes.
    QueryFlow(FlowKey),
    /// The merged top-`k` flows by packets.
    QueryTopK(u32),
    /// Live accounting summary.
    QueryStatus,
    /// Full telemetry snapshot as JSON.
    QueryTelemetry,
    /// The auto-tune plan the daemon booted with (and keeps re-solving).
    QueryPlan,
    /// Rotate the measurement epoch.
    Rotate,
    /// Drain all ingest and stop the daemon.
    Shutdown,
    /// Register this connection for anomaly alerts. The payload is a
    /// kind bitmask over [`AnomalyKind::bit`]; `0x00` means *all* kinds.
    Subscribe {
        /// Kind bitmask (`0x00` = all; only bits `0x0F` are assigned).
        kinds: u8,
    },
}

/// The kind-mask bits currently assigned ([`ALL_ANOMALY_KINDS`] worth).
///
/// [`ALL_ANOMALY_KINDS`]: instameasure_core::detect::ALL_ANOMALY_KINDS
pub const SUBSCRIBE_MASK_ALL: u8 = 0x0F;

impl Request {
    /// Encodes the request as a frame.
    #[must_use]
    pub fn encode(&self) -> Frame {
        match self {
            Request::IngestBatch(records) => {
                let mut payload = Vec::with_capacity(4 + records.len() * PacketRecord::WIRE_BYTES);
                payload.extend_from_slice(&(records.len() as u32).to_be_bytes());
                for r in records {
                    payload.extend_from_slice(&r.to_wire_bytes());
                }
                Frame { opcode: Opcode::IngestBatch, payload }
            }
            Request::IngestFin => Frame { opcode: Opcode::IngestFin, payload: Vec::new() },
            Request::QueryFlow(key) => {
                Frame { opcode: Opcode::QueryFlow, payload: key.to_bytes().to_vec() }
            }
            Request::QueryTopK(k) => {
                Frame { opcode: Opcode::QueryTopK, payload: k.to_be_bytes().to_vec() }
            }
            Request::QueryStatus => Frame { opcode: Opcode::QueryStatus, payload: Vec::new() },
            Request::QueryTelemetry => {
                Frame { opcode: Opcode::QueryTelemetry, payload: Vec::new() }
            }
            Request::QueryPlan => Frame { opcode: Opcode::QueryPlan, payload: Vec::new() },
            Request::Rotate => Frame { opcode: Opcode::Rotate, payload: Vec::new() },
            Request::Shutdown => Frame { opcode: Opcode::Shutdown, payload: Vec::new() },
            Request::Subscribe { kinds } => {
                Frame { opcode: Opcode::Subscribe, payload: vec![*kinds] }
            }
        }
    }

    /// Decodes a request frame.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::BadPayload`] if the payload does not match the
    /// opcode's layout, [`WireError::UnknownOpcode`] for response opcodes
    /// arriving on the request path.
    pub fn decode(frame: &Frame) -> Result<Self, WireError> {
        let p = &frame.payload;
        match frame.opcode {
            Opcode::IngestBatch => {
                if p.len() < 4 {
                    return Err(WireError::BadPayload { what: "ingest batch shorter than count" });
                }
                let count = u32::from_be_bytes(p[0..4].try_into().expect("4-byte slice")) as usize;
                let body = &p[4..];
                if body.len() != count * PacketRecord::WIRE_BYTES {
                    return Err(WireError::BadPayload {
                        what: "ingest batch length disagrees with record count",
                    });
                }
                let records = body
                    .chunks_exact(PacketRecord::WIRE_BYTES)
                    .map(|c| PacketRecord::from_wire_bytes(c.try_into().expect("23-byte chunk")))
                    .collect();
                Ok(Request::IngestBatch(records))
            }
            Opcode::IngestFin => expect_empty(p, Request::IngestFin, "ingest fin"),
            Opcode::QueryFlow => {
                let key: [u8; 13] = p.as_slice().try_into().map_err(|_| WireError::BadPayload {
                    what: "flow query needs a 13-byte key",
                })?;
                Ok(Request::QueryFlow(FlowKey::from_bytes(key)))
            }
            Opcode::QueryTopK => {
                let k: [u8; 4] = p.as_slice().try_into().map_err(|_| WireError::BadPayload {
                    what: "top-k query needs a 4-byte count",
                })?;
                let k = u32::from_be_bytes(k);
                if k > MAX_TOP_K {
                    return Err(WireError::BadPayload { what: "top-k count above MAX_TOP_K" });
                }
                Ok(Request::QueryTopK(k))
            }
            Opcode::QueryStatus => expect_empty(p, Request::QueryStatus, "status query"),
            Opcode::QueryTelemetry => expect_empty(p, Request::QueryTelemetry, "telemetry query"),
            Opcode::QueryPlan => expect_empty(p, Request::QueryPlan, "plan query"),
            Opcode::Rotate => expect_empty(p, Request::Rotate, "rotate"),
            Opcode::Shutdown => expect_empty(p, Request::Shutdown, "shutdown"),
            Opcode::Subscribe => {
                let [kinds] = p.as_slice() else {
                    return Err(WireError::BadPayload {
                        what: "subscribe carries a single mask byte",
                    });
                };
                if *kinds & !SUBSCRIBE_MASK_ALL != 0 {
                    return Err(WireError::BadPayload {
                        what: "subscribe mask has unassigned kind bits",
                    });
                }
                Ok(Request::Subscribe { kinds: *kinds })
            }
            _ => Err(WireError::UnknownOpcode(frame.opcode as u8)),
        }
    }
}

fn expect_empty(payload: &[u8], req: Request, what: &'static str) -> Result<Request, WireError> {
    if payload.is_empty() {
        Ok(req)
    } else {
        Err(WireError::BadPayload { what })
    }
}

/// One merged heavy-hitter entry in a top-K reply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopFlow {
    /// The flow.
    pub key: FlowKey,
    /// Estimated packets.
    pub packets: f64,
    /// Estimated bytes.
    pub bytes: f64,
}

const TOP_FLOW_BYTES: usize = 13 + 8 + 8;

/// Fixed [`Opcode::Alert`] payload width: epoch (8) + kind (1) +
/// subject tag (1) + subject (13, host-padded) + score (8) +
/// threshold (8).
const ALERT_BYTES: usize = 8 + 1 + 1 + 13 + 8 + 8;

/// Live accounting summary of the daemon — also the shutdown ack, where
/// it carries the final drained totals (`packets_submitted ==
/// packets_processed` once the pipeline is empty).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatusReport {
    /// Packets accepted from ingest frames and handed to the pipeline.
    pub packets_submitted: u64,
    /// Packets fully processed by the measurement shards.
    pub packets_processed: u64,
    /// Ingest frames accepted.
    pub ingest_frames: u64,
    /// Connections accepted over the daemon's lifetime.
    pub connections: u64,
    /// Distinct flows currently resident across all WSAF shards.
    pub flows: u64,
    /// Measurement epoch (bumped by [`Request::Rotate`]).
    pub epoch: u64,
    /// Worker shard count.
    pub workers: u32,
}

const STATUS_BYTES: usize = 6 * 8 + 4;

/// The auto-tune plan a daemon booted with, as reported over the
/// handshake: the chosen geometry plus the predictions it was chosen on.
/// Mirrors `instameasure_autotune::TunePlan` field for field (the wire
/// type is kept dependency-free so the protocol crate surface stays
/// self-contained).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanReport {
    /// Layer-1 sketch memory in bytes.
    pub l1_memory_bytes: u64,
    /// Per-layer virtual-vector size in bits.
    pub vector_bits: u32,
    /// Regulator depth the plan was solved for.
    pub layers: u32,
    /// log₂ of the WSAF slot count.
    pub wsaf_entries_log2: u32,
    /// Predicted WSAF insertion rate.
    pub predicted_regulation: f64,
    /// Expected slow-memory accesses per insertion.
    pub probes_per_insert: f64,
    /// Capacity/demand margin at the measured latency.
    pub margin: f64,
    /// Predicted relative estimate error.
    pub predicted_epsilon: f64,
    /// Measured random-access latency (ns) the margin ran on.
    pub access_nanos: f64,
    /// Measured ns per flow-key digest on the profiled host.
    pub hash_ns: f64,
}

/// Fixed [`Opcode::PlanReply`] payload width: the geometry words plus six
/// f64 predictions.
const PLAN_BYTES: usize = 8 + 4 + 4 + 4 + 6 * 8;

impl PlanReport {
    fn encode_into(self, payload: &mut Vec<u8>) {
        payload.extend_from_slice(&self.l1_memory_bytes.to_be_bytes());
        payload.extend_from_slice(&self.vector_bits.to_be_bytes());
        payload.extend_from_slice(&self.layers.to_be_bytes());
        payload.extend_from_slice(&self.wsaf_entries_log2.to_be_bytes());
        for f in [
            self.predicted_regulation,
            self.probes_per_insert,
            self.margin,
            self.predicted_epsilon,
            self.access_nanos,
            self.hash_ns,
        ] {
            payload.extend_from_slice(&f.to_bits().to_be_bytes());
        }
    }

    fn decode(p: &[u8]) -> Result<Self, WireError> {
        if p.len() != PLAN_BYTES {
            return Err(WireError::BadPayload { what: "plan reply has a fixed 68-byte layout" });
        }
        let w = |i: usize| u32::from_be_bytes(p[i..i + 4].try_into().expect("4-byte slice"));
        let f = |i: usize| {
            f64::from_bits(u64::from_be_bytes(p[i..i + 8].try_into().expect("8-byte slice")))
        };
        Ok(PlanReport {
            l1_memory_bytes: u64::from_be_bytes(p[0..8].try_into().expect("8-byte slice")),
            vector_bits: w(8),
            layers: w(12),
            wsaf_entries_log2: w(16),
            predicted_regulation: f(20),
            probes_per_insert: f(28),
            margin: f(36),
            predicted_epsilon: f(44),
            access_nanos: f(52),
            hash_ns: f(60),
        })
    }
}

impl StatusReport {
    fn encode_into(self, payload: &mut Vec<u8>) {
        payload.extend_from_slice(&self.packets_submitted.to_be_bytes());
        payload.extend_from_slice(&self.packets_processed.to_be_bytes());
        payload.extend_from_slice(&self.ingest_frames.to_be_bytes());
        payload.extend_from_slice(&self.connections.to_be_bytes());
        payload.extend_from_slice(&self.flows.to_be_bytes());
        payload.extend_from_slice(&self.epoch.to_be_bytes());
        payload.extend_from_slice(&self.workers.to_be_bytes());
    }

    fn decode(p: &[u8]) -> Result<Self, WireError> {
        if p.len() != STATUS_BYTES {
            return Err(WireError::BadPayload { what: "status report has a fixed 52-byte layout" });
        }
        let u = |i: usize| u64::from_be_bytes(p[i..i + 8].try_into().expect("8-byte slice"));
        Ok(StatusReport {
            packets_submitted: u(0),
            packets_processed: u(8),
            ingest_frames: u(16),
            connections: u(24),
            flows: u(32),
            epoch: u(40),
            workers: u32::from_be_bytes(p[48..52].try_into().expect("4-byte slice")),
        })
    }
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Ack of [`Request::IngestFin`]: packets accepted on this connection.
    FinAck {
        /// Packet records accepted from this connection's batches.
        packets: u64,
    },
    /// One flow's estimates (zero for flows never seen).
    Flow {
        /// Estimated packet count.
        packets: f64,
        /// Estimated byte count.
        bytes: f64,
    },
    /// Merged top-K flows by packets, descending.
    TopK(Vec<TopFlow>),
    /// Live accounting summary (also the shutdown ack).
    Status(StatusReport),
    /// Telemetry snapshot as a JSON document.
    Telemetry(String),
    /// The auto-tune plan the daemon is running.
    Plan(PlanReport),
    /// Epoch rotated.
    Rotated {
        /// The epoch now current.
        epoch: u64,
        /// Flows that were resident in the retired epoch.
        flows_retired: u64,
    },
    /// Subscription accepted.
    Subscribed {
        /// The epoch current at subscription time (alerts carry later
        /// epochs).
        epoch: u64,
        /// The kind mask in effect (`0x00` requests are echoed as
        /// [`SUBSCRIBE_MASK_ALL`]).
        kinds: u8,
    },
    /// One anomaly verdict for a closed epoch, pushed unsolicited to
    /// subscribed connections.
    Alert {
        /// The epoch that closed and was evaluated.
        epoch: u64,
        /// The detector verdict.
        anomaly: Anomaly,
    },
    /// Classified failure; `class` mirrors [`WireError::class`] plus the
    /// server-side classes `"draining"` and `"unsupported"`.
    Error {
        /// Stable machine-readable class.
        class: String,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Encodes the response as a frame.
    #[must_use]
    pub fn encode(&self) -> Frame {
        match self {
            Response::FinAck { packets } => {
                Frame { opcode: Opcode::FinAck, payload: packets.to_be_bytes().to_vec() }
            }
            Response::Flow { packets, bytes } => {
                let mut payload = Vec::with_capacity(16);
                payload.extend_from_slice(&packets.to_bits().to_be_bytes());
                payload.extend_from_slice(&bytes.to_bits().to_be_bytes());
                Frame { opcode: Opcode::FlowReply, payload }
            }
            Response::TopK(flows) => {
                let mut payload = Vec::with_capacity(4 + flows.len() * TOP_FLOW_BYTES);
                payload.extend_from_slice(&(flows.len() as u32).to_be_bytes());
                for f in flows {
                    payload.extend_from_slice(&f.key.to_bytes());
                    payload.extend_from_slice(&f.packets.to_bits().to_be_bytes());
                    payload.extend_from_slice(&f.bytes.to_bits().to_be_bytes());
                }
                Frame { opcode: Opcode::TopKReply, payload }
            }
            Response::Status(report) => {
                let mut payload = Vec::with_capacity(STATUS_BYTES);
                report.encode_into(&mut payload);
                Frame { opcode: Opcode::StatusReply, payload }
            }
            Response::Telemetry(json) => {
                Frame { opcode: Opcode::TelemetryReply, payload: json.clone().into_bytes() }
            }
            Response::Plan(report) => {
                let mut payload = Vec::with_capacity(PLAN_BYTES);
                report.encode_into(&mut payload);
                Frame { opcode: Opcode::PlanReply, payload }
            }
            Response::Rotated { epoch, flows_retired } => {
                let mut payload = Vec::with_capacity(16);
                payload.extend_from_slice(&epoch.to_be_bytes());
                payload.extend_from_slice(&flows_retired.to_be_bytes());
                Frame { opcode: Opcode::RotateReply, payload }
            }
            Response::Subscribed { epoch, kinds } => {
                let mut payload = Vec::with_capacity(9);
                payload.extend_from_slice(&epoch.to_be_bytes());
                payload.push(*kinds);
                Frame { opcode: Opcode::SubscribeAck, payload }
            }
            Response::Alert { epoch, anomaly } => {
                let mut payload = Vec::with_capacity(ALERT_BYTES);
                payload.extend_from_slice(&epoch.to_be_bytes());
                payload.push(anomaly.kind.code());
                match anomaly.subject {
                    Subject::Host(ip) => {
                        payload.push(0);
                        payload.extend_from_slice(&ip);
                        payload.extend_from_slice(&[0u8; 9]); // pad to key width
                    }
                    Subject::Flow(key) => {
                        payload.push(1);
                        payload.extend_from_slice(&key.to_bytes());
                    }
                }
                payload.extend_from_slice(&anomaly.score.to_bits().to_be_bytes());
                payload.extend_from_slice(&anomaly.threshold.to_bits().to_be_bytes());
                Frame { opcode: Opcode::Alert, payload }
            }
            Response::Error { class, message } => {
                let mut payload = Vec::with_capacity(1 + class.len() + message.len());
                debug_assert!(class.len() <= u8::MAX as usize);
                payload.push(class.len() as u8);
                payload.extend_from_slice(class.as_bytes());
                payload.extend_from_slice(message.as_bytes());
                Frame { opcode: Opcode::Error, payload }
            }
        }
    }

    /// Decodes a response frame.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::BadPayload`] on layout mismatches and
    /// [`WireError::UnknownOpcode`] for request opcodes arriving on the
    /// response path.
    pub fn decode(frame: &Frame) -> Result<Self, WireError> {
        let p = &frame.payload;
        match frame.opcode {
            Opcode::FinAck => {
                let b: [u8; 8] = p.as_slice().try_into().map_err(|_| WireError::BadPayload {
                    what: "fin ack needs an 8-byte packet count",
                })?;
                Ok(Response::FinAck { packets: u64::from_be_bytes(b) })
            }
            Opcode::FlowReply => {
                if p.len() != 16 {
                    return Err(WireError::BadPayload { what: "flow reply is two f64s" });
                }
                let bits =
                    |i: usize| u64::from_be_bytes(p[i..i + 8].try_into().expect("8-byte slice"));
                Ok(Response::Flow {
                    packets: f64::from_bits(bits(0)),
                    bytes: f64::from_bits(bits(8)),
                })
            }
            Opcode::TopKReply => {
                if p.len() < 4 {
                    return Err(WireError::BadPayload { what: "top-k reply shorter than count" });
                }
                let count = u32::from_be_bytes(p[0..4].try_into().expect("4-byte slice")) as usize;
                let body = &p[4..];
                if body.len() != count * TOP_FLOW_BYTES {
                    return Err(WireError::BadPayload {
                        what: "top-k reply length disagrees with entry count",
                    });
                }
                let flows = body
                    .chunks_exact(TOP_FLOW_BYTES)
                    .map(|c| TopFlow {
                        key: FlowKey::from_bytes(c[0..13].try_into().expect("13-byte slice")),
                        packets: f64::from_bits(u64::from_be_bytes(
                            c[13..21].try_into().expect("8-byte slice"),
                        )),
                        bytes: f64::from_bits(u64::from_be_bytes(
                            c[21..29].try_into().expect("8-byte slice"),
                        )),
                    })
                    .collect();
                Ok(Response::TopK(flows))
            }
            Opcode::StatusReply => Ok(Response::Status(StatusReport::decode(p)?)),
            Opcode::TelemetryReply => {
                let json = String::from_utf8(p.clone())
                    .map_err(|_| WireError::BadPayload { what: "telemetry reply is UTF-8 JSON" })?;
                Ok(Response::Telemetry(json))
            }
            Opcode::PlanReply => Ok(Response::Plan(PlanReport::decode(p)?)),
            Opcode::RotateReply => {
                if p.len() != 16 {
                    return Err(WireError::BadPayload { what: "rotate reply is two u64s" });
                }
                let u = |i: usize| u64::from_be_bytes(p[i..i + 8].try_into().expect("8 bytes"));
                Ok(Response::Rotated { epoch: u(0), flows_retired: u(8) })
            }
            Opcode::SubscribeAck => {
                if p.len() != 9 {
                    return Err(WireError::BadPayload {
                        what: "subscribe ack is an epoch plus a mask byte",
                    });
                }
                let epoch = u64::from_be_bytes(p[0..8].try_into().expect("8-byte slice"));
                Ok(Response::Subscribed { epoch, kinds: p[8] })
            }
            Opcode::Alert => {
                if p.len() != ALERT_BYTES {
                    return Err(WireError::BadPayload { what: "alert has a fixed 39-byte layout" });
                }
                let epoch = u64::from_be_bytes(p[0..8].try_into().expect("8-byte slice"));
                let kind = AnomalyKind::from_code(p[8])
                    .ok_or(WireError::BadPayload { what: "alert kind code is unassigned" })?;
                let subject = match p[9] {
                    0 => {
                        if p[14..23].iter().any(|b| *b != 0) {
                            return Err(WireError::BadPayload {
                                what: "host subject padding must be zero",
                            });
                        }
                        Subject::Host(p[10..14].try_into().expect("4-byte slice"))
                    }
                    1 => Subject::Flow(FlowKey::from_bytes(
                        p[10..23].try_into().expect("13-byte slice"),
                    )),
                    _ => {
                        return Err(WireError::BadPayload {
                            what: "alert subject tag is unassigned",
                        })
                    }
                };
                let bits =
                    |i: usize| u64::from_be_bytes(p[i..i + 8].try_into().expect("8-byte slice"));
                Ok(Response::Alert {
                    epoch,
                    anomaly: Anomaly {
                        kind,
                        subject,
                        score: f64::from_bits(bits(23)),
                        threshold: f64::from_bits(bits(31)),
                    },
                })
            }
            Opcode::Error => {
                let class_len = *p.first().ok_or(WireError::BadPayload {
                    what: "error reply shorter than class length",
                })? as usize;
                if p.len() < 1 + class_len {
                    return Err(WireError::BadPayload { what: "error reply class truncated" });
                }
                let class = std::str::from_utf8(&p[1..1 + class_len])
                    .map_err(|_| WireError::BadPayload { what: "error class is UTF-8" })?;
                let message = String::from_utf8_lossy(&p[1 + class_len..]).into_owned();
                Ok(Response::Error { class: class.to_string(), message })
            }
            _ => Err(WireError::UnknownOpcode(frame.opcode as u8)),
        }
    }
}

/// Writes a frame and counts its bytes into `tx_bytes` (header included).
pub(crate) fn frame_wire_len(payload_len: usize) -> u64 {
    (HEADER_BYTES + payload_len) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use instameasure_packet::Protocol;

    fn sample_records(n: usize) -> Vec<PacketRecord> {
        (0..n)
            .map(|i| {
                let key = FlowKey::new(
                    (i as u32).to_be_bytes(),
                    [10, 0, 0, 1],
                    i as u16,
                    443,
                    Protocol::Tcp,
                );
                PacketRecord::new(key, 64 + i as u16, i as u64 * 1000)
            })
            .collect()
    }

    fn roundtrip_request(req: &Request) -> Request {
        let frame = req.encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, frame.opcode, &frame.payload).unwrap();
        let decoded = read_frame(&mut wire.as_slice(), DEFAULT_MAX_PAYLOAD).unwrap().unwrap();
        assert_eq!(decoded, frame);
        Request::decode(&decoded).unwrap()
    }

    fn roundtrip_response(resp: &Response) -> Response {
        let frame = resp.encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, frame.opcode, &frame.payload).unwrap();
        let decoded = read_frame(&mut wire.as_slice(), DEFAULT_MAX_PAYLOAD).unwrap().unwrap();
        Response::decode(&decoded).unwrap()
    }

    #[test]
    fn every_request_roundtrips() {
        let key = FlowKey::new([1, 2, 3, 4], [5, 6, 7, 8], 9, 10, Protocol::Udp);
        for req in [
            Request::IngestBatch(sample_records(17)),
            Request::IngestBatch(Vec::new()),
            Request::IngestFin,
            Request::QueryFlow(key),
            Request::QueryTopK(25),
            Request::QueryStatus,
            Request::QueryTelemetry,
            Request::QueryPlan,
            Request::Rotate,
            Request::Shutdown,
            Request::Subscribe { kinds: 0x00 },
            Request::Subscribe { kinds: SUBSCRIBE_MASK_ALL },
            Request::Subscribe { kinds: AnomalyKind::DdosVictim.bit() },
        ] {
            assert_eq!(roundtrip_request(&req), req);
        }
    }

    #[test]
    fn every_response_roundtrips() {
        let key = FlowKey::new([1, 2, 3, 4], [5, 6, 7, 8], 9, 10, Protocol::Udp);
        for resp in [
            Response::FinAck { packets: u64::MAX },
            Response::Flow { packets: 1234.5, bytes: 6789.25 },
            Response::TopK(vec![TopFlow { key, packets: 10.0, bytes: 640.0 }]),
            Response::TopK(Vec::new()),
            Response::Status(StatusReport {
                packets_submitted: 1,
                packets_processed: 2,
                ingest_frames: 3,
                connections: 4,
                flows: 5,
                epoch: 6,
                workers: 7,
            }),
            Response::Telemetry("{\"a\":1}".to_string()),
            Response::Plan(PlanReport {
                l1_memory_bytes: 64 * 1024,
                vector_bits: 16,
                layers: 2,
                wsaf_entries_log2: 21,
                predicted_regulation: 0.0123,
                probes_per_insert: 9.07,
                margin: 2.5,
                predicted_epsilon: 0.034,
                access_nanos: 78.5,
                hash_ns: 3.25,
            }),
            Response::Rotated { epoch: 3, flows_retired: 99 },
            Response::Subscribed { epoch: 12, kinds: SUBSCRIBE_MASK_ALL },
            Response::Alert {
                epoch: 7,
                anomaly: Anomaly {
                    kind: AnomalyKind::DdosVictim,
                    subject: Subject::Host([99, 9, 9, 9]),
                    score: 211.0,
                    threshold: 64.0,
                },
            },
            Response::Alert {
                epoch: 8,
                anomaly: Anomaly {
                    kind: AnomalyKind::HeavyChange,
                    subject: Subject::Flow(key),
                    score: -80_211.5,
                    threshold: 2_000.0,
                },
            },
            Response::Error { class: "oversized".into(), message: "too big".into() },
        ] {
            assert_eq!(roundtrip_response(&resp), resp);
        }
    }

    #[test]
    fn subscribe_mask_with_unassigned_bits_is_rejected() {
        let frame = Frame { opcode: Opcode::Subscribe, payload: vec![0x10] };
        assert!(matches!(Request::decode(&frame), Err(WireError::BadPayload { .. })));
        let frame = Frame { opcode: Opcode::Subscribe, payload: vec![0x01, 0x02] };
        assert!(matches!(Request::decode(&frame), Err(WireError::BadPayload { .. })));
    }

    #[test]
    fn malformed_alert_payloads_are_classified() {
        let good = Response::Alert {
            epoch: 1,
            anomaly: Anomaly {
                kind: AnomalyKind::SuperSpreader,
                subject: Subject::Host([1, 2, 3, 4]),
                score: 100.0,
                threshold: 64.0,
            },
        }
        .encode();
        // Unassigned kind code.
        let mut bad = good.clone();
        bad.payload[8] = 4;
        assert!(matches!(Response::decode(&bad), Err(WireError::BadPayload { .. })));
        // Unassigned subject tag.
        let mut bad = good.clone();
        bad.payload[9] = 2;
        assert!(matches!(Response::decode(&bad), Err(WireError::BadPayload { .. })));
        // Nonzero padding behind a host subject.
        let mut bad = good.clone();
        bad.payload[20] = 0xAA;
        assert!(matches!(Response::decode(&bad), Err(WireError::BadPayload { .. })));
        // Wrong length.
        let mut bad = good;
        bad.payload.pop();
        assert!(matches!(Response::decode(&bad), Err(WireError::BadPayload { .. })));
    }

    #[test]
    fn malformed_plan_payloads_are_classified() {
        // Wrong length in either direction.
        for len in [0usize, PLAN_BYTES - 1, PLAN_BYTES + 1] {
            let frame = Frame { opcode: Opcode::PlanReply, payload: vec![0u8; len] };
            assert!(matches!(Response::decode(&frame), Err(WireError::BadPayload { .. })), "{len}");
        }
        // Plan queries carry no payload.
        let frame = Frame { opcode: Opcode::QueryPlan, payload: vec![1] };
        assert!(matches!(Request::decode(&frame), Err(WireError::BadPayload { .. })));
    }

    #[test]
    fn clean_eof_at_frame_boundary_is_none() {
        let empty: &[u8] = &[];
        assert!(read_frame(&mut { empty }, DEFAULT_MAX_PAYLOAD).unwrap().is_none());
    }

    #[test]
    fn garbage_magic_is_classified() {
        let wire = b"HTTP/1.1 200 OK\r\n".to_vec();
        match read_frame(&mut wire.as_slice(), DEFAULT_MAX_PAYLOAD) {
            Err(WireError::BadMagic { got }) => assert_eq!(&got, b"HTTP"),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn truncated_header_is_classified() {
        let mut wire = Vec::new();
        write_frame(&mut wire, Opcode::QueryStatus, &[]).unwrap();
        for cut in 1..HEADER_BYTES {
            match read_frame(&mut &wire[..cut], DEFAULT_MAX_PAYLOAD) {
                Err(WireError::TruncatedHeader { got }) => assert_eq!(got, cut),
                other => panic!("cut {cut}: expected TruncatedHeader, got {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_payload_is_classified() {
        let frame = Request::IngestBatch(sample_records(4)).encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, frame.opcode, &frame.payload).unwrap();
        for cut in HEADER_BYTES..wire.len() - 1 {
            match read_frame(&mut &wire[..cut], DEFAULT_MAX_PAYLOAD) {
                Err(WireError::TruncatedPayload { expected, got }) => {
                    assert_eq!(expected as usize, frame.payload.len());
                    assert_eq!(got, cut - HEADER_BYTES);
                }
                other => panic!("cut {cut}: expected TruncatedPayload, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC);
        wire.push(Opcode::IngestBatch as u8);
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        match read_frame(&mut wire.as_slice(), DEFAULT_MAX_PAYLOAD) {
            Err(WireError::Oversized { len, max }) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, DEFAULT_MAX_PAYLOAD);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn batch_count_must_match_length() {
        let mut frame = Request::IngestBatch(sample_records(3)).encode();
        // Claim 4 records but carry 3.
        frame.payload[0..4].copy_from_slice(&4u32.to_be_bytes());
        match Request::decode(&frame) {
            Err(WireError::BadPayload { .. }) => {}
            other => panic!("expected BadPayload, got {other:?}"),
        }
    }

    #[test]
    fn top_k_above_cap_is_rejected() {
        let frame =
            Frame { opcode: Opcode::QueryTopK, payload: (MAX_TOP_K + 1).to_be_bytes().to_vec() };
        assert!(matches!(Request::decode(&frame), Err(WireError::BadPayload { .. })));
    }

    #[test]
    fn unknown_opcode_is_classified() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC);
        wire.push(0x7E);
        wire.extend_from_slice(&0u32.to_be_bytes());
        assert!(matches!(
            read_frame(&mut wire.as_slice(), DEFAULT_MAX_PAYLOAD),
            Err(WireError::UnknownOpcode(0x7E))
        ));
    }

    #[test]
    fn error_classes_are_stable() {
        assert_eq!(WireError::BadMagic { got: [0; 4] }.class(), "bad_magic");
        assert_eq!(WireError::UnknownOpcode(9).class(), "unknown_opcode");
        assert_eq!(WireError::Oversized { len: 1, max: 0 }.class(), "oversized");
        assert_eq!(WireError::TruncatedHeader { got: 1 }.class(), "truncated");
        assert_eq!(WireError::TruncatedPayload { expected: 2, got: 1 }.class(), "truncated");
        assert_eq!(WireError::BadPayload { what: "x" }.class(), "bad_payload");
    }
}
