//! Point-in-time metric snapshots: the exchange currency of the telemetry
//! layer. Components produce them ([`crate::Instrumented`]), shards merge
//! them, deltas subtract them, and binaries render them as TSV or JSON.

use crate::histogram::HistogramSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One exported metric value.
// Snapshots are cold-path (built once per run/query, never per packet), so
// the histogram variant's 65 inline buckets are cheaper than a Box hop on
// every merge.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic event count. Merges by summation.
    Counter(u64),
    /// Instantaneous level (load factor, fill ratio). Merges by maximum.
    Gauge(f64),
    /// Log2 distribution. Merges bucket-wise.
    Histogram(HistogramSnapshot),
}

/// An ordered name → value map. Names are dot-separated
/// (`wsaf.probe_len`, `multicore.worker0.packets`); ordering makes the
/// rendered output diffable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    metrics: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    pub fn set_counter(&mut self, name: impl Into<String>, value: u64) {
        self.metrics.insert(name.into(), MetricValue::Counter(value));
    }

    pub fn set_gauge(&mut self, name: impl Into<String>, value: f64) {
        self.metrics.insert(name.into(), MetricValue::Gauge(value));
    }

    pub fn set_histogram(&mut self, name: impl Into<String>, value: HistogramSnapshot) {
        self.metrics.insert(name.into(), MetricValue::Histogram(value));
    }

    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.metrics.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Sum of every counter whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .filter_map(|(_, v)| match v {
                MetricValue::Counter(c) => Some(*c),
                _ => None,
            })
            .sum()
    }

    /// Returns a copy with every metric name prefixed by `prefix` and a dot.
    pub fn prefixed(&self, prefix: &str) -> Snapshot {
        let metrics =
            self.metrics.iter().map(|(k, v)| (format!("{prefix}.{k}"), v.clone())).collect();
        Snapshot { metrics }
    }

    /// Folds `other` into `self`: counters and histograms sum, gauges take
    /// the maximum, names missing on either side are unioned. This is the
    /// shard-merge operation — merging N worker snapshots with identical
    /// names yields totals across the fleet.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, value) in &other.metrics {
            match (self.metrics.get_mut(name), value) {
                (Some(MetricValue::Counter(a)), MetricValue::Counter(b)) => *a += *b,
                (Some(MetricValue::Gauge(a)), MetricValue::Gauge(b)) => *a = a.max(*b),
                (Some(MetricValue::Histogram(a)), MetricValue::Histogram(b)) => a.merge(b),
                (Some(slot), other_value) => *slot = other_value.clone(),
                (None, _) => {
                    self.metrics.insert(name.clone(), value.clone());
                }
            }
        }
    }

    /// `self - earlier`: what happened between two snapshots of the same
    /// source. Counters and histograms subtract (saturating); gauges keep
    /// the later (self) level.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let mut out = Snapshot::new();
        for (name, value) in &self.metrics {
            let diffed = match (value, earlier.metrics.get(name)) {
                (MetricValue::Counter(a), Some(MetricValue::Counter(b))) => {
                    MetricValue::Counter(a.saturating_sub(*b))
                }
                (MetricValue::Histogram(a), Some(MetricValue::Histogram(b))) => {
                    MetricValue::Histogram(a.delta(b))
                }
                (v, _) => v.clone(),
            };
            out.metrics.insert(name.clone(), diffed);
        }
        out
    }

    /// One `name\tkind\tvalue` row per metric; histograms render count,
    /// mean, p50/p99, and max.
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.metrics {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{name}\tcounter\t{v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{name}\tgauge\t{v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "{name}\thistogram\tcount={} mean={:.3} p50={} p99={} max={}",
                        h.count,
                        h.mean(),
                        h.quantile(0.5),
                        h.quantile(0.99),
                        h.max
                    );
                }
            }
        }
        out
    }

    /// Self-contained JSON document (no external serializer). Histograms
    /// serialize their non-empty buckets as `[lo, hi, count]` triples.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (name, value) in &self.metrics {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n  {}: ", json_string(name));
            match value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "{v}");
                }
                MetricValue::Gauge(v) => out.push_str(&json_f64(*v)),
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {}, \
                         \"p50\": {}, \"p99\": {}, \"buckets\": [",
                        h.count,
                        h.sum,
                        h.max,
                        json_f64(h.mean()),
                        h.quantile(0.5),
                        h.quantile(0.99)
                    );
                    let mut first_bucket = true;
                    for (lo, hi, count) in h.nonzero_buckets() {
                        if !first_bucket {
                            out.push_str(", ");
                        }
                        first_bucket = false;
                        let _ = write!(out, "[{lo}, {hi}, {count}]");
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("\n}\n");
        out
    }
}

impl<'a> IntoIterator for &'a Snapshot {
    type Item = (&'a String, &'a MetricValue);
    type IntoIter = std::collections::btree_map::Iter<'a, String, MetricValue>;

    fn into_iter(self) -> Self::IntoIter {
        self.metrics.iter()
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Bare `{}` prints integral floats without a dot; keep them typed.
        if s.contains(['.', 'e', 'E']) {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

/// Anything that can report its telemetry as a [`Snapshot`]. This replaces
/// per-component ad-hoc stats plumbing: callers hold a
/// `&dyn Instrumented` and render/merge uniformly.
pub trait Instrumented {
    fn telemetry(&self) -> Snapshot;
}

#[cfg(test)]
mod tests {
    use super::{Instrumented, MetricValue, Snapshot};
    use crate::histogram::LogHistogram;

    #[test]
    fn merge_sums_counters_and_maxes_gauges() {
        let mut a = Snapshot::new();
        a.set_counter("pkts", 10);
        a.set_gauge("load", 0.25);
        let mut b = Snapshot::new();
        b.set_counter("pkts", 32);
        b.set_gauge("load", 0.75);
        b.set_counter("only_b", 1);
        a.merge(&b);
        assert_eq!(a.counter("pkts"), Some(42));
        assert_eq!(a.gauge("load"), Some(0.75));
        assert_eq!(a.counter("only_b"), Some(1));
    }

    #[test]
    fn delta_subtracts_and_keeps_latest_gauge() {
        let mut h = LogHistogram::new();
        h.observe(4);
        let mut t0 = Snapshot::new();
        t0.set_counter("pkts", 10);
        t0.set_gauge("load", 0.5);
        t0.set_histogram("probe", h.snapshot());
        h.observe(9);
        let mut t1 = Snapshot::new();
        t1.set_counter("pkts", 25);
        t1.set_gauge("load", 0.4);
        t1.set_histogram("probe", h.snapshot());
        let d = t1.delta(&t0);
        assert_eq!(d.counter("pkts"), Some(15));
        assert_eq!(d.gauge("load"), Some(0.4));
        assert_eq!(d.histogram("probe").unwrap().count, 1);
    }

    #[test]
    fn counter_sum_selects_by_prefix() {
        let mut s = Snapshot::new();
        s.set_counter("worker0.packets", 5);
        s.set_counter("worker1.packets", 7);
        s.set_counter("other", 100);
        assert_eq!(s.counter_sum("worker"), 12);
    }

    #[test]
    fn prefixed_renames_everything() {
        let mut s = Snapshot::new();
        s.set_counter("x", 1);
        let p = s.prefixed("shard3");
        assert_eq!(p.counter("shard3.x"), Some(1));
        assert_eq!(p.counter("x"), None);
    }

    #[test]
    fn json_and_tsv_render() {
        struct Fake;
        impl Instrumented for Fake {
            fn telemetry(&self) -> Snapshot {
                let mut h = LogHistogram::new();
                h.observe(3);
                let mut s = Snapshot::new();
                s.set_counter("a.count", 7);
                s.set_gauge("a.load", 0.5);
                s.set_histogram("a.dist", h.snapshot());
                s
            }
        }
        let snap = Fake.telemetry();
        let tsv = snap.to_tsv();
        assert!(tsv.contains("a.count\tcounter\t7"));
        assert!(tsv.contains("a.load\tgauge\t0.5"));
        let json = snap.to_json();
        assert!(json.contains("\"a.count\": 7"));
        assert!(json.contains("\"a.load\": 0.5"));
        assert!(json.contains("[2, 3, 1]"), "bucket [2,3] holds one sample: {json}");
        // Whole-number gauges stay float-typed.
        let mut s2 = Snapshot::new();
        s2.set_gauge("g", 2.0);
        assert!(s2.to_json().contains("\"g\": 2.0"));
    }

    #[test]
    fn conflicting_kinds_take_the_newer_value() {
        let mut a = Snapshot::new();
        a.set_counter("x", 1);
        let mut b = Snapshot::new();
        b.set_gauge("x", 9.0);
        a.merge(&b);
        assert_eq!(a.gauge("x"), Some(9.0));
        assert!(matches!(a.iter().next().unwrap().1, MetricValue::Gauge(_)));
    }
}
