//! Unified telemetry for the InstaMeasure pipeline.
//!
//! The paper's headline claim is operational — the FlowRegulator holds the
//! WSAF insertion rate near 1% of packet rate — and verifying it in a live
//! deployment needs one coherent metrics surface rather than per-component
//! stats structs threaded by hand. This crate provides that surface:
//!
//! * [`LocalCell`] / [`AtomicCell`] — plain-`u64` cells for single-threaded
//!   components, relaxed `AtomicU64` cells for the multicore path, behind
//!   one [`TelemetryCell`] trait.
//! * [`LogHistogram`] / [`Histogram`] — fixed 65-bucket log2 histograms
//!   (probe lengths, queue depths) with O(1) recording.
//! * [`Registry`] — named metric handles; [`LocalRegistry`] and
//!   [`SharedRegistry`] choose the cell type.
//! * [`Snapshot`] — ordered name → value map supporting shard
//!   [`Snapshot::merge`], interval [`Snapshot::delta`], and TSV / JSON
//!   rendering with no external dependencies.
//! * [`Instrumented`] — `fn telemetry(&self) -> Snapshot`, the one trait
//!   every instrumented component implements.
//!
//! Metric names are dot-separated, lowest-level component first:
//! `regulator.l1.saturations.class1`, `wsaf.probe_len`,
//! `multicore.worker0.packets`.

mod cell;
mod histogram;
mod registry;
mod snapshot;

pub use cell::{AtomicCell, LocalCell, TelemetryCell};
pub use histogram::{
    bucket_bounds, bucket_index, HistogramCore, HistogramSnapshot, LogHistogram, BUCKETS,
};
pub use registry::{Counter, Gauge, Histogram, LocalRegistry, Registry, SharedRegistry};
pub use snapshot::{Instrumented, MetricValue, Snapshot};
