//! Named metric registration and live handles.
//!
//! A [`Registry`] owns the name → cell map; components hold cheap cloneable
//! handles ([`Counter`], [`Gauge`], [`Histogram`]) and update them without
//! touching the map again. `Registry<AtomicCell>` (= [`SharedRegistry`]) is
//! `Sync` and its handles are `Send + Sync`, so one registry can span the
//! manager and every worker thread; `Registry<LocalCell>`
//! (= [`LocalRegistry`]) keeps updates to plain loads/stores but its handles
//! must stay on one thread.

use crate::cell::{AtomicCell, LocalCell, TelemetryCell};
use crate::histogram::HistogramCore;
use crate::snapshot::{Instrumented, Snapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

pub type LocalRegistry = Registry<LocalCell>;
pub type SharedRegistry = Registry<AtomicCell>;

enum Entry<C: TelemetryCell> {
    Counter(Arc<C>),
    Gauge(Arc<C>),
    Histogram(Arc<HistogramCore<C>>),
}

pub struct Registry<C: TelemetryCell> {
    entries: Mutex<BTreeMap<String, Entry<C>>>,
}

impl<C: TelemetryCell> Default for Registry<C> {
    fn default() -> Self {
        Registry { entries: Mutex::new(BTreeMap::new()) }
    }
}

/// Monotonic counter handle.
pub struct Counter<C: TelemetryCell>(Arc<C>);

impl<C: TelemetryCell> Clone for Counter<C> {
    fn clone(&self) -> Self {
        Counter(Arc::clone(&self.0))
    }
}

impl<C: TelemetryCell> Counter<C> {
    #[inline]
    pub fn inc(&self) {
        self.0.add(1);
    }

    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.add(delta);
    }

    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// Instantaneous-level handle; stores the `f64` bit pattern in the cell.
pub struct Gauge<C: TelemetryCell>(Arc<C>);

impl<C: TelemetryCell> Clone for Gauge<C> {
    fn clone(&self) -> Self {
        Gauge(Arc::clone(&self.0))
    }
}

impl<C: TelemetryCell> Gauge<C> {
    pub fn set(&self, value: f64) {
        self.0.set(value.to_bits());
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.get())
    }
}

/// Log2-distribution handle.
pub struct Histogram<C: TelemetryCell>(Arc<HistogramCore<C>>);

impl<C: TelemetryCell> Clone for Histogram<C> {
    fn clone(&self) -> Self {
        Histogram(Arc::clone(&self.0))
    }
}

impl<C: TelemetryCell> Histogram<C> {
    #[inline]
    pub fn observe(&self, value: u64) {
        self.0.observe(value);
    }
}

impl<C: TelemetryCell> Registry<C> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-attaches to) the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter<C> {
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        let entry = entries
            .entry(name.to_string())
            .or_insert_with(|| Entry::Counter(Arc::new(C::default())));
        match entry {
            Entry::Counter(cell) => Counter(Arc::clone(cell)),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Registers (or re-attaches to) the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge<C> {
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        let entry =
            entries.entry(name.to_string()).or_insert_with(|| Entry::Gauge(Arc::new(C::default())));
        match entry {
            Entry::Gauge(cell) => Gauge(Arc::clone(cell)),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Registers (or re-attaches to) the histogram `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram<C> {
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        let entry = entries
            .entry(name.to_string())
            .or_insert_with(|| Entry::Histogram(Arc::new(HistogramCore::default())));
        match entry {
            Entry::Histogram(core) => Histogram(Arc::clone(core)),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    pub fn snapshot(&self) -> Snapshot {
        let entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        let mut snap = Snapshot::new();
        for (name, entry) in entries.iter() {
            match entry {
                Entry::Counter(cell) => snap.set_counter(name.clone(), cell.get()),
                Entry::Gauge(cell) => snap.set_gauge(name.clone(), f64::from_bits(cell.get())),
                Entry::Histogram(core) => snap.set_histogram(name.clone(), core.snapshot()),
            }
        }
        snap
    }
}

impl<C: TelemetryCell> Instrumented for Registry<C> {
    fn telemetry(&self) -> Snapshot {
        self.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::{LocalRegistry, SharedRegistry};
    use crate::snapshot::Instrumented;
    use std::sync::Arc;

    #[test]
    fn handles_share_cells_by_name() {
        let reg = LocalRegistry::new();
        let a = reg.counter("hits");
        let b = reg.counter("hits");
        a.add(2);
        b.inc();
        assert_eq!(reg.snapshot().counter("hits"), Some(3));
    }

    #[test]
    fn gauge_roundtrips_floats() {
        let reg = LocalRegistry::new();
        let g = reg.gauge("load");
        g.set(0.625);
        assert_eq!(g.get(), 0.625);
        assert_eq!(reg.telemetry().gauge("load"), Some(0.625));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_are_loud() {
        let reg = LocalRegistry::new();
        let _c = reg.counter("x");
        let _g = reg.gauge("x");
    }

    #[test]
    fn shared_registry_spans_threads() {
        let reg = Arc::new(SharedRegistry::new());
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    let c = reg.counter(&format!("worker{w}.packets"));
                    let h = reg.histogram("depth");
                    for i in 0..1000 {
                        c.inc();
                        h.observe(i % 16);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter_sum("worker"), 4000);
        assert_eq!(snap.histogram("depth").unwrap().count, 4000);
    }
}
