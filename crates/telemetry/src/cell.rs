//! Metric storage cells.
//!
//! The two implementations trade contention behaviour for cost:
//! [`LocalCell`] is a plain `u64` behind a `Cell` — one move instruction per
//! update, `!Sync`, for single-threaded components on the packet path.
//! [`AtomicCell`] is an `AtomicU64` updated with `Relaxed` ordering — for the
//! multicore pipeline, where each worker owns its handles and the snapshot
//! reader tolerates instantaneous skew (totals are exact once workers join).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// A single monotonic 64-bit metric slot.
pub trait TelemetryCell: Default {
    fn add(&self, delta: u64);
    fn get(&self) -> u64;
    fn set(&self, value: u64);

    /// Raises the cell to `value` if it is currently lower.
    fn raise_to(&self, value: u64);
}

/// Unsynchronized cell for single-threaded use (`!Sync`).
#[derive(Debug, Default)]
pub struct LocalCell(Cell<u64>);

impl TelemetryCell for LocalCell {
    #[inline]
    fn add(&self, delta: u64) {
        self.0.set(self.0.get().wrapping_add(delta));
    }

    #[inline]
    fn get(&self) -> u64 {
        self.0.get()
    }

    #[inline]
    fn set(&self, value: u64) {
        self.0.set(value);
    }

    #[inline]
    fn raise_to(&self, value: u64) {
        if value > self.0.get() {
            self.0.set(value);
        }
    }
}

/// Relaxed-ordering atomic cell for cross-thread use.
#[derive(Debug, Default)]
pub struct AtomicCell(AtomicU64);

impl TelemetryCell for AtomicCell {
    #[inline]
    fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    #[inline]
    fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    #[inline]
    fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    #[inline]
    fn raise_to(&self, value: u64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::{AtomicCell, LocalCell, TelemetryCell};

    fn exercise<C: TelemetryCell>(cell: &C) {
        cell.add(3);
        cell.add(4);
        assert_eq!(cell.get(), 7);
        cell.raise_to(5);
        assert_eq!(cell.get(), 7, "raise_to never lowers");
        cell.raise_to(100);
        assert_eq!(cell.get(), 100);
        cell.set(1);
        assert_eq!(cell.get(), 1);
    }

    #[test]
    fn both_cells_behave_identically() {
        exercise(&LocalCell::default());
        exercise(&AtomicCell::default());
    }

    #[test]
    fn atomic_cell_sums_across_threads() {
        let cell = std::sync::Arc::new(AtomicCell::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = std::sync::Arc::clone(&cell);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.add(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cell.get(), 40_000);
    }
}
